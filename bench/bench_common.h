// Shared harness for the table/figure reproduction benches: one generated
// corpus per process, cached per-pair schema data, and evaluation glue.
//
// Every bench binary accepts the corpus scale via the WIKIMATCH_SCALE
// environment variable (default 1.0 = the paper-sized dataset: 8,898 Pt-En
// and 659 Vn-En dual infoboxes).

#ifndef WIKIMATCH_BENCH_BENCH_COMMON_H_
#define WIKIMATCH_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "match/pipeline.h"
#include "synth/generator.h"

namespace wikimatch {
namespace benchharness {

/// \brief Scale from $WIKIMATCH_SCALE, or `fallback`.
double ScaleFromEnv(double fallback = 1.0);

/// \brief Everything cached for one (lang, hub) pair.
struct TypeContext {
  std::string hub_type;  ///< ground-truth key ("film")
  std::string type_a;    ///< localized ("filme")
  std::string type_b;    ///< hub-side ("film")
  size_t num_duals = 0;
  /// Schema data with lang_a values translated through the dictionary.
  match::TypePairData translated;
  /// Schema data with raw (untranslated) values — for baselines without
  /// dictionary access.
  match::TypePairData raw;
  /// Bounded-sample variants (first kComaSampleInfoboxes duals) modelling
  /// schema-matching tools that see limited instances (COMA++).
  match::TypePairData sampled_translated;
  match::TypePairData sampled_raw;
  eval::AttrFrequencies freqs;
};

struct PairContext {
  std::string lang;  ///< "pt" or "vi"
  std::vector<match::TypeMatch> type_matches;
  std::vector<TypeContext> types;  ///< ordered by num_duals, descending
};

/// \brief Process-wide bench fixture.
class BenchContext {
 public:
  explicit BenchContext(double scale);

  const synth::GeneratedCorpus& gc() const { return *gc_; }
  const match::MatchPipeline& pipeline() const { return *pipeline_; }
  double scale() const { return scale_; }

  /// \brief Cached pair context; builds on first use.
  const PairContext& Pair(const std::string& lang);

  /// \brief Ground truth for a hub type.
  const eval::MatchSet& Truth(const std::string& hub_type) const;

  /// \brief Weighted P/R/F of `matches` for (lang, hub).
  eval::Prf Eval(const TypeContext& type, const eval::MatchSet& matches,
                 const std::string& lang) const;

 private:
  double scale_;
  std::unique_ptr<synth::GeneratedCorpus> gc_;
  std::unique_ptr<match::MatchPipeline> pipeline_;
  std::map<std::string, PairContext> pairs_;
};

/// \brief "0.93"-style formatting shorthand.
std::string F2(double v);

/// \brief Instance budget of the COMA++ baseline (dual infoboxes).
inline constexpr size_t kComaSampleInfoboxes = 12;

}  // namespace benchharness
}  // namespace wikimatch

#endif  // WIKIMATCH_BENCH_BENCH_COMMON_H_
