// Extension experiment: sensitivity of WikiMatch to this implementation's
// own design choices (the knobs DESIGN.md calls out that the paper leaves
// unspecified):
//
//   * LSI truncation rank f            (the paper never states f)
//   * same-language co-occurrence tolerance (paper: "co-occur => 0")
//   * link-structure support floor     (our guard against stray links)
//   * ReviseUncertain minimum-similarity floor and inductive threshold
//
// Each sweep varies one knob with everything else at defaults, reporting
// the averaged weighted P/R/F for both pairs.

#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "eval/table.h"
#include "match/aligner.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

eval::Prf RunConfig(BenchContext* ctx, const std::string& lang,
                    const match::MatcherConfig& config) {
  match::AttributeAligner aligner(config);
  std::vector<eval::Prf> rows;
  for (const auto& type : ctx->Pair(lang).types) {
    auto result = aligner.Align(type.translated);
    if (!result.ok()) continue;
    rows.push_back(ctx->Eval(type, result->matches, lang));
  }
  return eval::AveragePrf(rows);
}

void Sweep(BenchContext* ctx, const char* title,
           const std::vector<double>& values,
           const std::function<void(match::MatcherConfig*, double)>& apply) {
  eval::Table table({"value", "Pt:P", "Pt:R", "Pt:F", "Vn:P", "Vn:R",
                     "Vn:F"});
  for (double v : values) {
    match::MatcherConfig config;
    apply(&config, v);
    eval::Prf pt = RunConfig(ctx, "pt", config);
    eval::Prf vn = RunConfig(ctx, "vi", config);
    table.AddRow({eval::Table::Num(v, 3), F2(pt.precision), F2(pt.recall),
                  F2(pt.f1), F2(vn.precision), F2(vn.recall), F2(vn.f1)});
  }
  std::printf("\n%s\n%s\n", title, table.ToString().c_str());
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());

  Sweep(&ctx, "LSI truncation rank f (0 = auto)",
        {0, 2, 4, 8, 16, 32, 64},
        [](match::MatcherConfig* c, double v) {
          c->lsi.rank = static_cast<size_t>(v);
        });

  Sweep(&ctx, "Same-language co-occurrence tolerance",
        {0.0, 0.01, 0.02, 0.05, 0.10, 0.25},
        [](match::MatcherConfig* c, double v) {
          c->lsi.co_occur_tolerance = v;
        });

  Sweep(&ctx, "Link-structure support floor (min links per occurrence)",
        {0.0, 0.02, 0.05, 0.10, 0.25, 0.5},
        [](match::MatcherConfig* c, double v) { c->min_link_support = v; });

  Sweep(&ctx, "ReviseUncertain minimum-similarity floor",
        {0.0, 0.02, 0.05, 0.10, 0.20, 0.40},
        [](match::MatcherConfig* c, double v) { c->t_revise_min_sim = v; });

  Sweep(&ctx, "Inductive grouping threshold",
        {0.0, 0.1, 0.2, 0.3, 0.5, 0.7},
        [](match::MatcherConfig* c, double v) { c->t_inductive = v; });

  return 0;
}
