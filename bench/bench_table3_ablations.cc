// Reproduces Table 3 and Figure 3: contribution of WikiMatch's components.
//
// Configurations (paper Section 4.2):
//   WikiMatch                 — the full system
//   -ReviseUncertain (WM*)    — recall should drop sharply, precision hold
//   -IntegrateMatches         — precision drops (unchecked absorptions)
//   random                    — LSI-ordering replaced by random order:
//                               both precision and recall collapse
//   single step               — accept all positive-similarity pairs:
//                               recall spikes, precision collapses
//   -vsim / -lsim / -LSI      — feature removals; vsim matters most, lsim
//                               matters more for Vn-En than Pt-En
//   -inductive grouping       — revise every uncertain pair
//   WM* variants of the feature removals (Figure 3): WM recall > WM*.

#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "eval/table.h"
#include "match/aligner.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

struct Config {
  const char* name;
  std::function<void(match::MatcherConfig*)> apply;
};

eval::Prf RunConfig(BenchContext* ctx, const std::string& lang,
                    const match::MatcherConfig& config) {
  const auto& pair = ctx->Pair(lang);
  match::AttributeAligner aligner(config);
  std::vector<eval::Prf> rows;
  for (const auto& type : pair.types) {
    auto result = aligner.Align(type.translated);
    if (!result.ok()) continue;
    rows.push_back(ctx->Eval(type, result->matches, lang));
  }
  return eval::AveragePrf(rows);
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());

  const std::vector<Config> configs = {
      {"WikiMatch", [](match::MatcherConfig*) {}},
      {"WikiMatch-ReviseUncertain",
       [](match::MatcherConfig* c) { c->use_revise_uncertain = false; }},
      {"WikiMatch-IntegrateMatches",
       [](match::MatcherConfig* c) { c->use_integrate_constraint = false; }},
      {"WikiMatch random",
       [](match::MatcherConfig* c) { c->random_order = true; }},
      {"WikiMatch single step",
       [](match::MatcherConfig* c) { c->single_step = true; }},
      {"WikiMatch-vsim",
       [](match::MatcherConfig* c) { c->use_vsim = false; }},
      {"WikiMatch-lsim",
       [](match::MatcherConfig* c) { c->use_lsim = false; }},
      {"WikiMatch-LSI", [](match::MatcherConfig* c) { c->use_lsi = false; }},
      {"WikiMatch-inductive grouping",
       [](match::MatcherConfig* c) { c->use_inductive_grouping = false; }},
      {"WikiMatch*-vsim",
       [](match::MatcherConfig* c) {
         c->use_revise_uncertain = false;
         c->use_vsim = false;
       }},
      {"WikiMatch*-lsim",
       [](match::MatcherConfig* c) {
         c->use_revise_uncertain = false;
         c->use_lsim = false;
       }},
      {"WikiMatch*-LSI",
       [](match::MatcherConfig* c) {
         c->use_revise_uncertain = false;
         c->use_lsi = false;
       }},
      {"WikiMatch* random",
       [](match::MatcherConfig* c) {
         c->use_revise_uncertain = false;
         c->random_order = true;
       }},
  };

  std::map<std::string, std::map<std::string, eval::Prf>> results;
  eval::Table table({"configuration", "Pt:P", "Pt:R", "Pt:F", "Vn:P", "Vn:R",
                     "Vn:F"});
  for (const auto& config : configs) {
    match::MatcherConfig mc;
    config.apply(&mc);
    eval::Prf pt = RunConfig(&ctx, "pt", mc);
    eval::Prf vn = RunConfig(&ctx, "vi", mc);
    results[config.name] = {{"pt", pt}, {"vi", vn}};
    table.AddRow({config.name, F2(pt.precision), F2(pt.recall), F2(pt.f1),
                  F2(vn.precision), F2(vn.recall), F2(vn.f1)});
  }
  std::printf("\nTable 3 — contribution of different components\n%s\n",
              table.ToString().c_str());

  // Percentage change vs. the full system.
  const auto& base = results["WikiMatch"];
  eval::Table pct({"configuration", "Pt:dP%", "Pt:dR%", "Pt:dF%", "Vn:dP%",
                   "Vn:dR%", "Vn:dF%"});
  auto delta = [](double v, double b) {
    return b > 0.0 ? 100.0 * (v - b) / b : 0.0;
  };
  for (const auto& config : configs) {
    if (std::string(config.name) == "WikiMatch") continue;
    const auto& r = results[config.name];
    pct.AddRow({config.name,
                F2(delta(r.at("pt").precision, base.at("pt").precision)),
                F2(delta(r.at("pt").recall, base.at("pt").recall)),
                F2(delta(r.at("pt").f1, base.at("pt").f1)),
                F2(delta(r.at("vi").precision, base.at("vi").precision)),
                F2(delta(r.at("vi").recall, base.at("vi").recall)),
                F2(delta(r.at("vi").f1, base.at("vi").f1))});
  }
  std::printf("%% change vs WikiMatch (paper: -ReviseUncertain cost ~-28%% "
              "Pt recall; random ~-47%%; single step +19%% recall, -58%% "
              "precision; vsim the most important feature)\n%s\n",
              pct.ToString().c_str());

  // Figure 3 — impact of ReviseUncertain under feature removal.
  eval::Table fig3({"variant", "WM*:P", "WM*:R", "WM:P", "WM:R"});
  for (const std::string lang : {"pt", "vi"}) {
    for (const std::string feature : {"vsim", "lsim", "LSI"}) {
      const auto& with = results["WikiMatch-" + feature].at(lang);
      const auto& without = results["WikiMatch*-" + feature].at(lang);
      fig3.AddRow({(lang == "pt" ? "Pt-En no " : "Vn-En no ") + feature,
                   F2(without.precision), F2(without.recall),
                   F2(with.precision), F2(with.recall)});
    }
  }
  std::printf("Figure 3 — WM vs WM* (no ReviseUncertain) under feature "
              "removal; WM recall should exceed WM* everywhere\n%s\n",
              fig3.ToString().c_str());
  return 0;
}
