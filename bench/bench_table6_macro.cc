// Reproduces Table 6 (Appendix B): macro-averaged precision/recall/F —
// counting distinct attribute-name pairs instead of frequency weighting —
// for WikiMatch, Bouma, COMA++, and LSI. WikiMatch should stay on top.

#include <cstdio>

#include "baselines/bouma_matcher.h"
#include "baselines/coma_matcher.h"
#include "baselines/lsi_matcher.h"
#include "bench_common.h"
#include "eval/table.h"
#include "match/aligner.h"
#include "synth/mt_oracle.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

// Aggregates distinct-pair counts across all types of a pair, then derives
// macro P/R.
struct PairCounts {
  size_t derived = 0;
  size_t truth = 0;
  size_t correct = 0;

  void Add(const eval::MatchSet& matches, const eval::MatchSet& truth_set,
           const std::string& lang_a, const std::string& lang_b) {
    auto derived_pairs = matches.CrossLanguagePairs(lang_a, lang_b);
    auto truth_pairs = truth_set.CrossLanguagePairs(lang_a, lang_b);
    derived += derived_pairs.size();
    truth += truth_pairs.size();
    for (const auto& pair : derived_pairs) {
      if (truth_set.AreMatched(pair.first, pair.second)) ++correct;
    }
  }

  eval::Prf Prf() const {
    double p = derived > 0 ? static_cast<double>(correct) / derived : 0.0;
    double r = truth > 0 ? static_cast<double>(correct) / truth : 0.0;
    return eval::Prf::Of(p, r);
  }
};

void RunPair(BenchContext* ctx, const std::string& lang, eval::Table* table) {
  const auto& pair = ctx->Pair(lang);
  const auto& gc = ctx->gc();
  baselines::NameTranslations mt = synth::MakeMtOracle(gc);
  match::AttributeAligner wikimatch{match::MatcherConfig{}};

  PairCounts wm, bouma, coma, lsi;
  for (const auto& type : pair.types) {
    const auto& truth = ctx->Truth(type.hub_type);
    auto wm_result = wikimatch.Align(type.translated);
    if (wm_result.ok()) wm.Add(wm_result->matches, truth, lang, gc.hub);

    auto bouma_result = baselines::RunBoumaMatcher(gc.corpus, lang,
                                                   type.type_a, gc.hub,
                                                   type.type_b);
    if (bouma_result.ok()) {
      bouma.Add(bouma_result->matches, truth, lang, gc.hub);
    }

    baselines::ComaConfig coma_config;
    coma_config.use_instance = true;
    coma_config.threshold = 0.01;
    coma_config.use_name = lang == "pt";
    coma_config.translate_names = lang == "pt";
    auto coma_result =
        baselines::RunComaMatcher(type.sampled_translated, coma_config, mt);
    if (coma_result.ok()) coma.Add(coma_result->matches, truth, lang, gc.hub);

    auto lsi_result = baselines::RunLsiMatcher(type.translated);
    if (lsi_result.ok()) lsi.Add(lsi_result->matches, truth, lang, gc.hub);
  }

  auto add = [&](const char* name, const PairCounts& counts) {
    eval::Prf prf = counts.Prf();
    table->AddRow({(lang == "pt" ? "Pt-En " : "Vn-En ") + std::string(name),
                   F2(prf.precision), F2(prf.recall), F2(prf.f1)});
  };
  add("WikiMatch", wm);
  add("Bouma", bouma);
  add("COMA++", coma);
  add("LSI", lsi);
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());
  eval::Table table({"pair / approach", "P", "R", "F"});
  RunPair(&ctx, "pt", &table);
  RunPair(&ctx, "vi", &table);
  std::printf("\nTable 6 — macro-averaged results (paper: Pt-En WM "
              "0.88/0.60/0.71, Bouma 0.93/0.36/0.52, COMA 0.79/0.47/0.59, "
              "LSI 0.27/0.28/0.27; Vn-En WM 1.00/0.58/0.73)\n%s\n",
              table.ToString().c_str());
  return 0;
}
