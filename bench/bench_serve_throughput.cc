// Serving-path benchmark: builds a synthetic corpus, runs the matcher,
// writes a snapshot, and measures (1) cold snapshot load time, (2) cached
// vs uncached request latency through MatchService::Handle, and (3)
// multi-threaded query throughput. Emits one JSON object on stdout so runs
// are diffable across commits.
//
// Scale comes from $WIKIMATCH_SCALE (default 0.1 — the serving path is
// corpus-size-bound only at load; request latency is schema-bound).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "match/pipeline.h"
#include "serve/match_service.h"
#include "store/snapshot.h"
#include "synth/generator.h"
#include "util/parallel.h"

namespace wikimatch {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// The request mix exercised by the latency and throughput sections.
std::vector<std::string> RequestMix() {
  return {
      "query pt:en filme(receita > 1000000, elenco=?)",
      "query pt:en filme(diretor=?, elenco=?)",
      "attr pt:en film pt elenco",
      "alignments pt:en film",
      "types pt:en",
  };
}

// Median-of-runs latency (ms) of serving every request in `mix` once.
double PassLatencyMs(serve::MatchService* service,
                     const std::vector<std::string>& mix, int passes) {
  std::vector<double> times;
  for (int p = 0; p < passes; ++p) {
    auto start = Clock::now();
    for (const auto& request : mix) service->Handle(request);
    times.push_back(MsSince(start));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

int Run() {
  const char* env = std::getenv("WIKIMATCH_SCALE");
  double scale = env ? std::atof(env) : 0.1;
  if (scale <= 0) scale = 0.1;

  // ---- offline: corpus -> pipeline -> snapshot file ----
  synth::CorpusGenerator generator(synth::GeneratorOptions::Paper(scale));
  auto gc = generator.Generate();
  if (!gc.ok()) {
    std::fprintf(stderr, "generate: %s\n", gc.status().ToString().c_str());
    return 1;
  }
  match::MatchPipeline pipeline(&gc->corpus);
  match::PipelineOptions options;
  options.num_threads = util::DefaultThreads();
  auto result = pipeline.Run("pt", "en", options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  store::Snapshot snapshot;
  snapshot.corpus = gc->corpus;
  snapshot.dictionary = pipeline.dictionary();
  snapshot.pipelines.emplace(store::LanguagePair("pt", "en"),
                             std::move(result).ValueOrDie());
  std::string path = "/tmp/wikimatch_bench_serve.snap";
  auto written = store::WriteSnapshotFile(snapshot, path);
  if (!written.ok()) {
    std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
    return 1;
  }

  // ---- cold load ----
  // With the mmap directory this is O(1) in snapshot size: the decode is
  // deferred, so the honest total cost of reaching the first data answer
  // is load_ms + core_build_ms (reported separately below).
  auto load_start = Clock::now();
  auto service = serve::MatchService::Load(path);
  double load_ms = MsSince(load_start);
  if (!service.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  const bool deferred = !(*service)->CoreLoaded();

  // ---- cached vs uncached latency ----
  const auto mix = RequestMix();
  serve::ServiceOptions uncached_options;
  uncached_options.cache_capacity = 0;
  auto uncached = serve::MatchService::Load(path, uncached_options);
  if (!uncached.ok()) return 1;
  // First data request pays the deferred decode + index build; timing it
  // up front also keeps it out of every latency median below.
  auto core_start = Clock::now();
  (*service)->Handle(mix[0]);
  double core_build_ms = MsSince(core_start);
  (*uncached)->Handle(mix[0]);
  constexpr int kPasses = 15;
  double uncached_ms = PassLatencyMs(uncached->get(), mix, kPasses);
  double cached_ms = PassLatencyMs(service->get(), mix, kPasses);

  // ---- multi-threaded throughput ----
  size_t num_threads = util::DefaultThreads();
  constexpr int kRequestsPerThread = 2000;
  auto throughput_start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        (*service)->Handle(mix[(i + t) % mix.size()]);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  double throughput_s = MsSince(throughput_start) / 1000.0;
  double requests_per_sec =
      static_cast<double>(num_threads * kRequestsPerThread) / throughput_s;
  serve::ServiceStats stats = (*service)->Stats();

  std::printf("{\n");
  std::printf("  \"bench\": \"serve_throughput\",\n");
  std::printf("  \"scale\": %g,\n", scale);
  std::printf("  \"articles\": %zu,\n", gc->corpus.size());
  std::printf("  \"snapshot_load_ms\": %.3f,\n", load_ms);
  std::printf("  \"load_deferred_core\": %s,\n", deferred ? "true" : "false");
  std::printf("  \"core_build_ms\": %.2f,\n", core_build_ms);
  std::printf("  \"request_mix_size\": %zu,\n", mix.size());
  std::printf("  \"uncached_pass_ms\": %.3f,\n", uncached_ms);
  std::printf("  \"cached_pass_ms\": %.3f,\n", cached_ms);
  std::printf("  \"threads\": %zu,\n", num_threads);
  std::printf("  \"requests\": %d,\n",
              static_cast<int>(num_threads) * kRequestsPerThread);
  std::printf("  \"requests_per_sec\": %.0f,\n", requests_per_sec);
  std::printf("  \"cache_hit_rate\": %.3f\n",
              stats.cache.hits + stats.cache.misses == 0
                  ? 0.0
                  : static_cast<double>(stats.cache.hits) /
                        static_cast<double>(stats.cache.hits +
                                            stats.cache.misses));
  std::printf("}\n");
  std::remove(path.c_str());
  return 0;
}

}  // namespace
}  // namespace wikimatch

int main() { return wikimatch::Run(); }
