// Extension experiment: the Ziggurat-style self-supervised classifier
// (Adar et al. 2009) that the paper could not obtain for comparison
// (Section 6), trained on heuristic labels from the corpus itself.
//
// Expected (from the paper's qualitative argument): competitive on
// Portuguese-English, where half its features — name string similarities —
// carry signal, and clearly weaker on Vietnamese-English, where they
// don't. WikiMatch should beat it on both.

#include <cstdio>

#include "baselines/ziggurat.h"
#include "bench_common.h"
#include "eval/table.h"
#include "match/aligner.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

void RunPair(BenchContext* ctx, const std::string& lang) {
  const auto& pair = ctx->Pair(lang);

  // Ziggurat sees raw (untranslated) values — it has no dictionary.
  std::vector<const match::TypePairData*> training;
  for (const auto& type : pair.types) training.push_back(&type.raw);
  baselines::ZigguratMatcher ziggurat;
  auto trained = ziggurat.Train(training);
  if (!trained.ok()) {
    std::printf("ziggurat training failed for %s: %s\n", lang.c_str(),
                trained.ToString().c_str());
    return;
  }

  match::AttributeAligner wikimatch{match::MatcherConfig{}};
  eval::Table table({"type", "WM:P", "WM:R", "WM:F", "Zig:P", "Zig:R",
                     "Zig:F"});
  std::vector<eval::Prf> wm_rows;
  std::vector<eval::Prf> zig_rows;
  for (const auto& type : pair.types) {
    auto wm = wikimatch.Align(type.translated);
    auto zig = ziggurat.Match(type.raw);
    if (!wm.ok() || !zig.ok()) continue;
    eval::Prf wm_prf = ctx->Eval(type, wm->matches, lang);
    eval::Prf zig_prf = ctx->Eval(type, *zig, lang);
    wm_rows.push_back(wm_prf);
    zig_rows.push_back(zig_prf);
    table.AddRow({type.hub_type, F2(wm_prf.precision), F2(wm_prf.recall),
                  F2(wm_prf.f1), F2(zig_prf.precision), F2(zig_prf.recall),
                  F2(zig_prf.f1)});
  }
  eval::Prf wm_avg = eval::AveragePrf(wm_rows);
  eval::Prf zig_avg = eval::AveragePrf(zig_rows);
  table.AddRow({"Avg", F2(wm_avg.precision), F2(wm_avg.recall),
                F2(wm_avg.f1), F2(zig_avg.precision), F2(zig_avg.recall),
                F2(zig_avg.f1)});
  std::printf("\nExtension — WikiMatch vs Ziggurat-style classifier, "
              "%s-En (%zu positives / %zu negatives harvested)\n%s\n",
              lang == "pt" ? "Portuguese" : "Vietnamese",
              ziggurat.num_positives(), ziggurat.num_negatives(),
              table.ToString().c_str());
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());
  RunPair(&ctx, "pt");
  RunPair(&ctx, "vi");
  return 0;
}
