// Value-synchronization benchmark: generates a synthetic corpus at Paper
// scale, runs a full SyncEngine pass over every ground-truth scope, then
// applies a delta batch dirtying well under 10% of the article pairs and
// compares Resync() against a fresh full Run() on the post-delta corpus —
// in wall-clock time and in serialized report bytes. Exits nonzero if the
// incremental report diverges from the full one, so the byte-equivalence
// guarantee is enforced on every bench run, not just in the unit tests.
// Emits one JSON object on stdout (headlines: full_sync_ms, resync_ms,
// resync_speedup — registered in tools/bench_trend.py).
//
// Scale comes from $WIKIMATCH_SCALE (default 0.1); pass --smoke (or set
// WIKIMATCH_BENCH_SMOKE=1) for a fast CI-sized run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ingest/delta.h"
#include "match/dictionary.h"
#include "synth/sync_oracle.h"
#include "sync/sync_engine.h"
#include "synth/delta.h"
#include "synth/generator.h"
#include "util/parallel.h"

namespace wikimatch {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::set<std::pair<std::string, std::string>> DirtyKeys(
    const ingest::DeltaBatch& batch) {
  std::set<std::pair<std::string, std::string>> dirty;
  for (const wiki::Article& a : batch.added) {
    dirty.insert({a.language, a.title});
  }
  for (const wiki::Article& a : batch.updated) {
    dirty.insert({a.language, a.title});
  }
  for (const auto& key : batch.removed) dirty.insert(key);
  return dirty;
}

int Run(bool smoke) {
  const char* env = std::getenv("WIKIMATCH_SCALE");
  double scale = env ? std::atof(env) : 0.1;
  if (scale <= 0) scale = 0.1;
  if (smoke) scale = std::min(scale, 0.05);
  size_t threads = util::DefaultThreads();

  synth::CorpusGenerator generator(synth::GeneratorOptions::Paper(scale));
  auto gc = generator.Generate();
  if (!gc.ok()) {
    std::fprintf(stderr, "generate: %s\n", gc.status().ToString().c_str());
    return 1;
  }
  match::TranslationDictionary dictionary;
  dictionary.Build(gc->corpus);
  sync::SyncEngine engine(&gc->corpus, &dictionary, gc->hub);
  // Ground-truth scopes keep the bench about the sync engine, not the
  // matcher upstream of it; alignment pointers borrow from gc.
  std::vector<sync::SyncScope> scopes =
      synth::SyncOracle::ScopesFromGroundTruth(*gc);

  // ---- baseline: full pass over the base corpus ----
  auto full_start = Clock::now();
  sync::SyncReport before = engine.Run(scopes, threads);
  double full_sync_ms = MsSince(full_start);

  // ---- delta batch touching a small slice of the corpus ----
  synth::DeltaSpec spec;
  spec.lang_a = "pt";
  spec.lang_b = gc->hub;
  spec.attribute_renames = 1;
  spec.value_edits = 8;
  spec.new_articles = 3;
  spec.removals = 2;
  auto batch = synth::MakeDeltaBatch(gc->corpus, spec);
  if (!batch.ok()) {
    std::fprintf(stderr, "delta: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  auto dirty = DirtyKeys(*batch);
  ingest::DeltaUndo undo;
  auto applied = ingest::ApplyDeltaInPlace(&gc->corpus, *batch, &undo);
  if (!applied.ok()) {
    std::fprintf(stderr, "apply: %s\n", applied.ToString().c_str());
    return 1;
  }

  // ---- incremental re-sync vs full pass on the post-delta corpus ----
  auto resync_start = Clock::now();
  sync::SyncReport incremental = engine.Resync(scopes, before, dirty, threads);
  double resync_ms = MsSince(resync_start);

  auto post_start = Clock::now();
  sync::SyncReport post = engine.Run(scopes, threads);
  double post_full_sync_ms = MsSince(post_start);

  bool identical =
      sync::EncodeSyncReport(incremental) == sync::EncodeSyncReport(post);
  if (!identical) {
    std::fprintf(stderr, "DIVERGENCE: Resync() != Run() on the post-delta "
                 "corpus\n");
  }
  double dirty_fraction =
      gc->corpus.size() == 0
          ? 0.0
          : static_cast<double>(dirty.size()) /
                static_cast<double>(gc->corpus.size());
  double speedup = resync_ms == 0.0 ? 0.0 : post_full_sync_ms / resync_ms;

  std::printf("{\n");
  std::printf("  \"bench\": \"sync\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"scale\": %g,\n", scale);
  std::printf("  \"threads\": %zu,\n", threads);
  std::printf("  \"articles\": %zu,\n", gc->corpus.size());
  std::printf("  \"scopes\": %zu,\n", scopes.size());
  std::printf("  \"cells\": %zu,\n", post.cells.size());
  std::printf("  \"updates\": %zu,\n", post.updates.size());
  std::printf("  \"batch_size\": %zu,\n", batch->size());
  std::printf("  \"dirty_articles\": %zu,\n", dirty.size());
  std::printf("  \"dirty_fraction\": %.4f,\n", dirty_fraction);
  std::printf("  \"full_sync_ms\": %.2f,\n", full_sync_ms);
  std::printf("  \"post_full_sync_ms\": %.2f,\n", post_full_sync_ms);
  std::printf("  \"resync_ms\": %.2f,\n", resync_ms);
  std::printf("  \"resync_speedup\": %.2f,\n", speedup);
  std::printf("  \"identical\": %s\n", identical ? "true" : "false");
  std::printf("}\n");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace wikimatch

int main(int argc, char** argv) {
  bool smoke = false;
  const char* env = std::getenv("WIKIMATCH_BENCH_SMOKE");
  if (env != nullptr && std::strcmp(env, "1") == 0) smoke = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return wikimatch::Run(smoke);
}
