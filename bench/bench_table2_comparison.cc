// Reproduces Table 2: weighted Precision / Recall / F-measure per entity
// type for WikiMatch, Bouma, COMA++ (best configuration per pair), and LSI
// (top-1), on Portuguese-English and Vietnamese-English.
//
// Expected shape (paper): WikiMatch has the best F on nearly every type and
// the best average on both pairs, driven by recall; Bouma and COMA++ can
// win precision on individual types; LSI alone is the weakest.

#include <cstdio>

#include "baselines/bouma_matcher.h"
#include "baselines/coma_matcher.h"
#include "baselines/lsi_matcher.h"
#include "bench_common.h"
#include "eval/table.h"
#include "match/aligner.h"
#include "synth/mt_oracle.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

void RunPair(BenchContext* ctx, const std::string& lang) {
  const auto& pair = ctx->Pair(lang);
  const auto& gc = ctx->gc();

  baselines::NameTranslations mt = synth::MakeMtOracle(gc);

  eval::Table table({"type", "WM:P", "WM:R", "WM:F", "Bouma:P", "Bouma:R",
                     "Bouma:F", "COMA:P", "COMA:R", "COMA:F", "LSI:P",
                     "LSI:R", "LSI:F"});
  std::vector<eval::Prf> wm_rows, bouma_rows, coma_rows, lsi_rows;

  match::AttributeAligner wikimatch{match::MatcherConfig{}};
  for (const auto& type : pair.types) {
    // --- WikiMatch ---
    auto wm = wikimatch.Align(type.translated);
    if (!wm.ok()) continue;
    eval::Prf wm_prf = ctx->Eval(type, wm->matches, lang);

    // --- Bouma ---
    eval::Prf bouma_prf;
    auto bouma = baselines::RunBoumaMatcher(gc.corpus, lang, type.type_a,
                                            gc.hub, type.type_b);
    if (bouma.ok()) bouma_prf = ctx->Eval(type, bouma->matches, lang);

    // --- COMA++ best configuration per pair (paper Appendix C):
    // Pt-En: NG+ID (names via MT, instances via dictionary);
    // Vn-En: ID (instances via dictionary only).
    baselines::ComaConfig coma_config;
    coma_config.use_instance = true;
    coma_config.threshold = 0.01;
    if (lang == "pt") {
      coma_config.use_name = true;
      coma_config.translate_names = true;
    } else {
      coma_config.use_name = false;
    }
    eval::Prf coma_prf;
    auto coma =
        baselines::RunComaMatcher(type.sampled_translated, coma_config, mt);
    if (coma.ok()) coma_prf = ctx->Eval(type, coma->matches, lang);

    // --- LSI top-1 ---
    eval::Prf lsi_prf;
    auto lsi = baselines::RunLsiMatcher(type.translated);
    if (lsi.ok()) lsi_prf = ctx->Eval(type, lsi->matches, lang);

    wm_rows.push_back(wm_prf);
    bouma_rows.push_back(bouma_prf);
    coma_rows.push_back(coma_prf);
    lsi_rows.push_back(lsi_prf);
    table.AddRow({type.hub_type, F2(wm_prf.precision), F2(wm_prf.recall),
                  F2(wm_prf.f1), F2(bouma_prf.precision), F2(bouma_prf.recall),
                  F2(bouma_prf.f1), F2(coma_prf.precision),
                  F2(coma_prf.recall), F2(coma_prf.f1), F2(lsi_prf.precision),
                  F2(lsi_prf.recall), F2(lsi_prf.f1)});
  }
  eval::Prf wm_avg = eval::AveragePrf(wm_rows);
  eval::Prf bouma_avg = eval::AveragePrf(bouma_rows);
  eval::Prf coma_avg = eval::AveragePrf(coma_rows);
  eval::Prf lsi_avg = eval::AveragePrf(lsi_rows);
  table.AddRow({"Avg", F2(wm_avg.precision), F2(wm_avg.recall), F2(wm_avg.f1),
                F2(bouma_avg.precision), F2(bouma_avg.recall),
                F2(bouma_avg.f1), F2(coma_avg.precision), F2(coma_avg.recall),
                F2(coma_avg.f1), F2(lsi_avg.precision), F2(lsi_avg.recall),
                F2(lsi_avg.f1)});

  std::printf("\nTable 2 — %s-English (paper Avg for reference: Pt-En WM "
              "0.93/0.75/0.82, Vn-En WM 1.00/0.75/0.84)\n%s\n",
              lang == "pt" ? "Portuguese" : "Vietnamese",
              table.ToString().c_str());
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());
  RunPair(&ctx, "pt");
  RunPair(&ctx, "vi");
  return 0;
}
