// Reproduces Figure 7 (Appendix C): COMA++ configurations —
//   N     name matcher only
//   I     instance matcher only (raw values)
//   NI    both, no translation
//   N+G   names via machine translation (synthetic MT oracle)
//   I+D   instances with the auto-derived dictionary
//   NG+ID both with their translations
//
// Expected shape (paper): name-only matching is poor across languages
// (very poor for Vn-En); instance matching carries most of the signal; for
// Pt-En the best is NG+ID, for Vn-En adding translated names *hurts*
// (ID alone is best).

#include <cstdio>

#include "baselines/coma_matcher.h"
#include "bench_common.h"
#include "eval/table.h"
#include "synth/mt_oracle.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

struct Variant {
  const char* name;
  bool use_name;
  bool use_instance;
  bool translate_names;
  bool translated_values;  // which TypePairData sample to use
};

eval::Prf RunVariant(BenchContext* ctx, const std::string& lang,
                     const Variant& variant,
                     const baselines::NameTranslations& mt) {
  baselines::ComaConfig config;
  config.use_name = variant.use_name;
  config.use_instance = variant.use_instance;
  config.translate_names = variant.translate_names;
  config.threshold = 0.01;
  std::vector<eval::Prf> rows;
  for (const auto& type : ctx->Pair(lang).types) {
    const auto& data = variant.translated_values ? type.sampled_translated
                                                 : type.sampled_raw;
    auto result = baselines::RunComaMatcher(data, config, mt);
    if (!result.ok()) continue;
    rows.push_back(ctx->Eval(type, result->matches, lang));
  }
  return eval::AveragePrf(rows);
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());
  baselines::NameTranslations mt = synth::MakeMtOracle(ctx.gc());

  const std::vector<Variant> variants = {
      {"N", true, false, false, false},
      {"I", false, true, false, false},
      {"NI", true, true, false, false},
      {"N+G", true, false, true, false},
      {"I+D", false, true, false, true},
      {"NG+ID", true, true, true, true},
  };

  eval::Table table({"config", "Pt-En P", "Pt-En R", "Pt-En F", "Vn-En P",
                     "Vn-En R", "Vn-En F"});
  for (const auto& variant : variants) {
    eval::Prf pt = RunVariant(&ctx, "pt", variant, mt);
    eval::Prf vn = RunVariant(&ctx, "vi", variant, mt);
    table.AddRow({variant.name, F2(pt.precision), F2(pt.recall), F2(pt.f1),
                  F2(vn.precision), F2(vn.recall), F2(vn.f1)});
  }
  std::printf("\nFigure 7 — COMA++ configurations (paper: instance matching "
              "dominates; NG+ID best for Pt-En; for Vn-En translated names "
              "hurt, I+D best)\n%s\n",
              table.ToString().c_str());
  return 0;
}
