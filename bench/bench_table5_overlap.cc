// Reproduces Table 5 (Appendix A): attribute-set overlap between
// corresponding infoboxes per entity type and language pair, measured on
// the generated corpus with the ground-truth alignment.
//
// The generator *targets* the paper's Table 5 values (they are calibration
// inputs), so this bench doubles as a calibration check: measured overlap
// should track the paper's column for each type, and Vn-En should be far
// more homogeneous than Pt-En.

#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "synth/concept_model.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

double MeasureOverlap(BenchContext* ctx, const std::string& lang,
                      const benchharness::TypeContext& type) {
  const auto& corpus = ctx->gc().corpus;
  const auto& truth = ctx->Truth(type.hub_type);
  double total = 0.0;
  size_t count = 0;
  for (wiki::ArticleId id : corpus.ArticlesOfType(lang, type.type_a)) {
    wiki::ArticleId other = corpus.CrossLanguageTarget(id, ctx->gc().hub);
    if (other == wiki::kInvalidArticle) continue;
    const wiki::Article& a = corpus.Get(id);
    const wiki::Article& b = corpus.Get(other);
    if (!b.infobox.has_value()) continue;
    total += eval::SchemaOverlap(a.infobox->Schema(), b.infobox->Schema(),
                                 lang, ctx->gc().hub, truth);
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());

  // Paper's Table 5 targets for reference.
  const std::map<std::string, std::pair<double, double>> paper = {
      {"film", {0.36, 0.87}},         {"show", {0.45, 0.75}},
      {"actor", {0.42, 0.46}},        {"artist", {0.52, 0.67}},
      {"channel", {0.15, -1}},        {"company", {0.31, -1}},
      {"comics character", {0.59, -1}}, {"album", {0.52, -1}},
      {"adult actor", {0.47, -1}},    {"book", {0.38, -1}},
      {"episode", {0.31, -1}},        {"writer", {0.63, -1}},
      {"comics", {0.47, -1}},         {"fictional character", {0.32, -1}},
  };

  eval::Table table({"type", "Pt-En measured", "Pt-En paper", "Vn-En measured",
                     "Vn-En paper", "model expected (Pt)"});
  double pt_sum = 0.0;
  double vn_sum = 0.0;
  size_t pt_n = 0;
  size_t vn_n = 0;
  for (const auto& type : ctx.Pair("pt").types) {
    double measured_pt = MeasureOverlap(&ctx, "pt", type);
    pt_sum += measured_pt;
    ++pt_n;
    double measured_vn = -1.0;
    for (const auto& vtype : ctx.Pair("vi").types) {
      if (vtype.hub_type == type.hub_type) {
        measured_vn = MeasureOverlap(&ctx, "vi", vtype);
        vn_sum += measured_vn;
        ++vn_n;
      }
    }
    auto paper_it = paper.find(type.hub_type);
    double expected = synth::ExpectedOverlap(
        ctx.gc().models.at(type.hub_type), ctx.gc().hub, "pt");
    table.AddRow({type.hub_type, F2(measured_pt),
                  paper_it != paper.end() ? F2(paper_it->second.first) : "-",
                  measured_vn >= 0 ? F2(measured_vn) : "-",
                  paper_it != paper.end() && paper_it->second.second > 0
                      ? F2(paper_it->second.second)
                      : "-",
                  F2(expected)});
  }
  table.AddRow({"Avg", F2(pt_n ? pt_sum / pt_n : 0), "0.42",
                F2(vn_n ? vn_sum / vn_n : 0), "0.69", ""});
  std::printf("\nTable 5 — schema overlap per type and language pair\n%s\n",
              table.ToString().c_str());
  return 0;
}
