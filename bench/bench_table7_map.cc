// Reproduces Table 7 (Appendix B): mean average precision of the candidate
// orderings produced by LSI and the co-occurrence measures X1, X2, X3,
// against a random baseline. Expected shape: LSI best, every X beats
// random, X2 the strongest X.

#include <cstdio>

#include "baselines/correlation_measures.h"
#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

double PairMap(BenchContext* ctx, const std::string& lang,
               baselines::CorrelationMeasure measure) {
  const auto& pair = ctx->Pair(lang);
  double sum = 0.0;
  size_t n = 0;
  for (const auto& type : pair.types) {
    auto ranking = baselines::RankCandidates(type.translated, measure);
    if (!ranking.ok()) continue;
    sum += eval::MeanAveragePrecision(*ranking, ctx->Truth(type.hub_type),
                                      lang);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());
  eval::Table table({"pair", "LSI", "X1", "X2", "X3", "Random"});
  for (const std::string lang : {"pt", "vi"}) {
    std::vector<std::string> row = {lang == "pt" ? "Portuguese-English"
                                                 : "Vietnamese-English"};
    for (auto measure :
         {baselines::CorrelationMeasure::kLsi,
          baselines::CorrelationMeasure::kX1,
          baselines::CorrelationMeasure::kX2,
          baselines::CorrelationMeasure::kX3,
          baselines::CorrelationMeasure::kRandom}) {
      row.push_back(F2(PairMap(&ctx, lang, measure)));
    }
    table.AddRow(row);
  }
  std::printf("\nTable 7 — MAP of candidate orderings (paper: Pt-En LSI "
              "0.43, X1 0.26, X2 0.39, X3 0.35, Random 0.18; Vn-En LSI "
              "0.57, X1 0.30, X2 0.54, X3 0.43, Random 0.22)\n%s\n",
              table.ToString().c_str());
  return 0;
}
