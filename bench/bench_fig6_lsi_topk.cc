// Reproduces Figure 6 (Appendix C): precision and recall of the LSI-only
// baseline for top-k configurations k in {1, 3, 5, 10}. Expected shape:
// recall rises with k while precision falls; top-1 has the best F.

#include <cstdio>

#include "baselines/lsi_matcher.h"
#include "bench_common.h"
#include "eval/table.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

eval::Prf RunTopK(BenchContext* ctx, const std::string& lang, size_t k) {
  std::vector<eval::Prf> rows;
  for (const auto& type : ctx->Pair(lang).types) {
    baselines::LsiMatcherConfig config;
    config.top_k = k;
    auto result = baselines::RunLsiMatcher(type.translated, config);
    if (!result.ok()) continue;
    rows.push_back(ctx->Eval(type, result->matches, lang));
  }
  return eval::AveragePrf(rows);
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());
  eval::Table table({"k", "Pt-En P", "Pt-En R", "Pt-En F", "Vn-En P",
                     "Vn-En R", "Vn-En F"});
  for (size_t k : {1u, 3u, 5u, 10u}) {
    eval::Prf pt = RunTopK(&ctx, "pt", k);
    eval::Prf vn = RunTopK(&ctx, "vi", k);
    table.AddRow({std::to_string(k), F2(pt.precision), F2(pt.recall),
                  F2(pt.f1), F2(vn.precision), F2(vn.recall), F2(vn.f1)});
  }
  std::printf("\nFigure 6 — LSI top-k (paper: recall increases with k, "
              "precision decreases; top-1 gives the best F)\n%s\n",
              table.ToString().c_str());
  return 0;
}
