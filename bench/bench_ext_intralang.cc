// Extension experiment: intra-language synonym discovery. The paper's
// algorithm "finds, in a single step, inter- and intra-language
// correspondences" (Section 3); its evaluation only scores the
// cross-language ones. This bench scores the same-language pairs inside
// the derived match components against the concept ground truth.

#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"
#include "match/aligner.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

// Distinct unordered same-language pairs of a match set.
std::set<std::pair<eval::AttrKey, eval::AttrKey>> IntraPairs(
    const eval::MatchSet& matches, const std::string& lang) {
  std::set<std::pair<eval::AttrKey, eval::AttrKey>> out;
  for (const auto& cluster : matches.Clusters()) {
    for (const auto& a : cluster) {
      if (a.language != lang) continue;
      for (const auto& b : cluster) {
        if (b.language != lang || !(a < b)) continue;
        out.emplace(a, b);
      }
    }
  }
  return out;
}

void RunPair(BenchContext* ctx, const std::string& pair_lang) {
  match::AttributeAligner aligner{match::MatcherConfig{}};
  eval::Table table({"language", "derived", "truth", "correct", "P", "R",
                     "F"});
  for (const std::string& side : {pair_lang, std::string("en")}) {
    size_t derived_total = 0;
    size_t truth_total = 0;
    size_t correct_total = 0;
    for (const auto& type : ctx->Pair(pair_lang).types) {
      auto result = aligner.Align(type.translated);
      if (!result.ok()) continue;
      const eval::MatchSet& truth = ctx->Truth(type.hub_type);
      auto derived = IntraPairs(result->matches, side);
      // Ground-truth intra pairs restricted to attributes that actually
      // occur in this type pair's schemas.
      std::set<std::pair<eval::AttrKey, eval::AttrKey>> truth_pairs;
      for (const auto& cluster : truth.Clusters()) {
        for (const auto& a : cluster) {
          if (a.language != side ||
              type.translated.GroupIndex(a) == SIZE_MAX) {
            continue;
          }
          for (const auto& b : cluster) {
            if (b.language != side || !(a < b) ||
                type.translated.GroupIndex(b) == SIZE_MAX) {
              continue;
            }
            truth_pairs.emplace(a, b);
          }
        }
      }
      derived_total += derived.size();
      truth_total += truth_pairs.size();
      for (const auto& pair : derived) {
        if (truth.AreMatched(pair.first, pair.second)) ++correct_total;
      }
    }
    double p = derived_total
                   ? static_cast<double>(correct_total) / derived_total
                   : 0.0;
    double r = truth_total
                   ? static_cast<double>(correct_total) / truth_total
                   : 0.0;
    eval::Prf prf = eval::Prf::Of(p, r);
    table.AddRow({side, std::to_string(derived_total),
                  std::to_string(truth_total),
                  std::to_string(correct_total), F2(prf.precision),
                  F2(prf.recall), F2(prf.f1)});
  }
  std::printf("\nExtension — intra-language synonyms discovered while "
              "aligning the %s-En pair\n%s\n",
              pair_lang.c_str(), table.ToString().c_str());
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());
  RunPair(&ctx, "pt");
  RunPair(&ctx, "vi");
  return 0;
}
