// Network serving benchmark: drives the epoll TCP server (net::Server)
// with a multi-connection load generator and reports p50/p90/p99 request
// latency and sustained RPS at high connection counts. Each connection is
// closed-loop (one request in flight), so concurrency comes from the
// number of simultaneous connections — the production shape for this
// service — and latency includes the full socket round trip, not just
// MatchService::Handle.
//
// Scale comes from $WIKIMATCH_SCALE (default 0.1); connection count from
// $WIKIMATCH_NET_CONNS (default 1000, the acceptance floor).
// Emits one JSON object on stdout so runs are diffable across commits.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "match/pipeline.h"
#include "net/server.h"
#include "serve/match_service.h"
#include "store/snapshot.h"
#include "synth/generator.h"
#include "util/parallel.h"

namespace wikimatch {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// The stdin-bench request mix plus the health probe a load balancer adds.
std::vector<std::string> RequestMix() {
  return {
      "query pt:en filme(receita > 1000000, elenco=?)",
      "query pt:en filme(diretor=?, elenco=?)",
      "attr pt:en film pt elenco",
      "alignments pt:en film",
      "types pt:en",
      "health",
  };
}

// One closed-loop connection owned by a load-generator thread.
struct Conn {
  int fd = -1;
  std::string outbox;        // unsent request bytes
  std::string inbox;         // received, not yet framed
  long lines_needed = -1;    // body lines left; -1 = header not seen
  int requests_done = 0;
  Clock::time_point sent_at;
};

struct LoadResult {
  std::vector<double> latencies_ms;
  long errors = 0;
};

void RaiseFdLimit(rlim_t want) {
  rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= want) return;
  limit.rlim_cur = std::min(want, limit.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Queues the next request on `conn` (closed loop: called once at start
// and again after each completed response).
void QueueRequest(Conn* conn, const std::vector<std::string>& mix,
                  size_t conn_index) {
  const std::string& request =
      mix[(static_cast<size_t>(conn->requests_done) + conn_index) %
          mix.size()];
  conn->outbox = request + "\n";
  conn->lines_needed = -1;
  conn->sent_at = Clock::now();
}

// Flushes as much of the outbox as the socket accepts.
bool PumpSend(Conn* conn) {
  while (!conn->outbox.empty()) {
    ssize_t w = ::send(conn->fd, conn->outbox.data(), conn->outbox.size(),
                       MSG_NOSIGNAL);
    if (w > 0) {
      conn->outbox.erase(0, static_cast<size_t>(w));
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
  }
  return true;
}

// Consumes complete response lines from the inbox. Returns the number of
// responses completed in this call (0 or 1 under the closed loop).
int PumpLines(Conn* conn) {
  int completed = 0;
  for (;;) {
    size_t newline = conn->inbox.find('\n');
    if (newline == std::string::npos) return completed;
    std::string line = conn->inbox.substr(0, newline);
    conn->inbox.erase(0, newline + 1);
    if (conn->lines_needed < 0) {
      // Header: "ok N" promises N body lines; anything else is one line.
      conn->lines_needed =
          line.compare(0, 3, "ok ") == 0 ? std::atol(line.c_str() + 3) : 0;
    } else {
      conn->lines_needed--;
    }
    if (conn->lines_needed == 0) {
      conn->requests_done++;
      completed++;
      conn->lines_needed = -1;
    }
  }
}

// Runs `conns` closed-loop connections to completion on one epoll set.
LoadResult RunClientThread(uint16_t port, size_t thread_index,
                           size_t num_conns, int requests_per_conn,
                           const std::vector<std::string>& mix) {
  LoadResult result;
  result.latencies_ms.reserve(num_conns *
                              static_cast<size_t>(requests_per_conn));
  int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    result.errors = static_cast<long>(num_conns);
    return result;
  }
  std::vector<Conn> conns(num_conns);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  for (size_t i = 0; i < num_conns; ++i) {
    Conn& conn = conns[i];
    conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (conn.fd < 0 ||
        ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0 ||
        !SetNonBlocking(conn.fd)) {
      result.errors++;
      if (conn.fd >= 0) ::close(conn.fd);
      conn.fd = -1;
      continue;
    }
    int one = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.u64 = i;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, conn.fd, &ev);
    QueueRequest(&conn, mix, thread_index + i);
    PumpSend(&conn);
  }

  size_t remaining = 0;
  for (const Conn& conn : conns) {
    if (conn.fd >= 0) remaining++;
  }
  auto deadline = Clock::now() + std::chrono::seconds(180);
  std::vector<epoll_event> events(256);
  char buf[16 * 1024];
  while (remaining > 0 && Clock::now() < deadline) {
    int n = ::epoll_wait(epoll_fd, events.data(),
                         static_cast<int>(events.size()), 1000);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int e = 0; e < n; ++e) {
      Conn& conn = conns[events[e].data.u64];
      if (conn.fd < 0) continue;
      bool dead = (events[e].events & (EPOLLERR | EPOLLHUP)) != 0;
      if (!dead && (events[e].events & EPOLLOUT)) dead = !PumpSend(&conn);
      while (!dead && (events[e].events & EPOLLIN)) {
        ssize_t r = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (r > 0) {
          conn.inbox.append(buf, static_cast<size_t>(r));
          if (PumpLines(&conn) > 0) {
            result.latencies_ms.push_back(MsSince(conn.sent_at));
            if (conn.requests_done >= requests_per_conn) {
              ::close(conn.fd);
              conn.fd = -1;
              remaining--;
            } else {
              QueueRequest(&conn, mix, thread_index + events[e].data.u64);
              dead = !PumpSend(&conn);
            }
          }
          continue;
        }
        if (r < 0 && errno == EINTR) continue;
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        dead = true;  // EOF or a hard error mid-run
      }
      if (dead && conn.fd >= 0) {
        result.errors++;
        ::close(conn.fd);
        conn.fd = -1;
        remaining--;
      }
    }
  }
  // Connections still open past the deadline are stuck — count them.
  for (Conn& conn : conns) {
    if (conn.fd >= 0) {
      result.errors++;
      ::close(conn.fd);
    }
  }
  ::close(epoll_fd);
  return result;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  return sorted[std::min(index, sorted.size() - 1)];
}

int Run() {
  const char* scale_env = std::getenv("WIKIMATCH_SCALE");
  double scale = scale_env ? std::atof(scale_env) : 0.1;
  if (scale <= 0) scale = 0.1;
  const char* conns_env = std::getenv("WIKIMATCH_NET_CONNS");
  size_t total_conns =
      conns_env ? static_cast<size_t>(std::atol(conns_env)) : 1000;
  if (total_conns == 0) total_conns = 1000;
  constexpr int kRequestsPerConn = 25;
  RaiseFdLimit(static_cast<rlim_t>(2 * total_conns + 256));

  // ---- offline: corpus -> pipeline -> in-memory service ----
  synth::CorpusGenerator generator(synth::GeneratorOptions::Paper(scale));
  auto gc = generator.Generate();
  if (!gc.ok()) {
    std::fprintf(stderr, "generate: %s\n", gc.status().ToString().c_str());
    return 1;
  }
  match::MatchPipeline pipeline(&gc->corpus);
  match::PipelineOptions pipeline_options;
  pipeline_options.num_threads = util::DefaultThreads();
  auto result = pipeline.Run("pt", "en", pipeline_options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  store::Snapshot snapshot;
  snapshot.corpus = gc->corpus;
  snapshot.dictionary = pipeline.dictionary();
  snapshot.pipelines.emplace(store::LanguagePair("pt", "en"),
                             std::move(result).ValueOrDie());
  size_t articles = gc->corpus.size();
  auto service = serve::MatchService::Create(std::move(snapshot));

  // ---- the server under test ----
  net::ServerOptions server_options;
  server_options.num_threads = util::DefaultThreads();
  server_options.max_connections = total_conns + 64;
  server_options.max_pending_requests = 1u << 30;
  auto server = net::Server::Create(service.get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  auto started = (*server)->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }

  // ---- load generation (connections all established before timing) ----
  const auto mix = RequestMix();
  size_t client_threads =
      std::min<size_t>(4, std::max<size_t>(2, util::DefaultThreads()));
  size_t per_thread = (total_conns + client_threads - 1) / client_threads;
  auto load_start = Clock::now();
  std::vector<std::thread> threads;
  std::vector<LoadResult> results(client_threads);
  size_t assigned = 0;
  for (size_t t = 0; t < client_threads; ++t) {
    size_t count = std::min(per_thread, total_conns - assigned);
    assigned += count;
    threads.emplace_back([&, t, count]() {
      results[t] = RunClientThread((*server)->port(), t, count,
                                   kRequestsPerConn, mix);
    });
  }
  for (auto& thread : threads) thread.join();
  double duration_s = MsSince(load_start) / 1000.0;

  std::vector<double> latencies;
  long errors = 0;
  for (const auto& r : results) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    errors += r.errors;
  }
  std::sort(latencies.begin(), latencies.end());
  double rps = duration_s > 0
                   ? static_cast<double>(latencies.size()) / duration_s
                   : 0.0;

  (*server)->Shutdown();
  (*server)->Wait();
  net::ServerStats stats = (*server)->Stats();
  if (errors > 0) {
    std::fprintf(stderr, "warning: %ld connections errored or stalled\n",
                 errors);
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"serve_net\",\n");
  std::printf("  \"scale\": %g,\n", scale);
  std::printf("  \"articles\": %zu,\n", articles);
  std::printf("  \"connections\": %zu,\n", total_conns);
  std::printf("  \"net_threads\": %zu,\n", server_options.num_threads);
  std::printf("  \"client_threads\": %zu,\n", client_threads);
  std::printf("  \"requests\": %zu,\n", latencies.size());
  std::printf("  \"connection_errors\": %ld,\n", errors);
  std::printf("  \"duration_s\": %.3f,\n", duration_s);
  std::printf("  \"requests_per_sec\": %.0f,\n", rps);
  std::printf("  \"p50_ms\": %.3f,\n", Percentile(latencies, 0.50));
  std::printf("  \"p90_ms\": %.3f,\n", Percentile(latencies, 0.90));
  std::printf("  \"p99_ms\": %.3f,\n", Percentile(latencies, 0.99));
  std::printf("  \"max_ms\": %.3f,\n",
              latencies.empty() ? 0.0 : latencies.back());
  std::printf("  \"shed\": %llu,\n",
              static_cast<unsigned long long>(stats.shed));
  std::printf("  \"protocol_errors\": %llu\n",
              static_cast<unsigned long long>(stats.protocol_errors));
  std::printf("}\n");
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace wikimatch

int main() { return wikimatch::Run(); }
