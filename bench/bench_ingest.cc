// Incremental-ingest benchmark: builds a synthetic corpus at Paper scale,
// matches two language pairs from scratch, then applies a delta batch that
// dirties one small entity type and compares the incremental apply against
// a full rebuild on the post-delta corpus — both in wall-clock time and in
// serialized bytes. Exits nonzero if the incremental result diverges from
// the rebuild, so the equivalence guarantee is enforced on every bench run,
// not just in the unit tests. Emits one JSON object on stdout.
//
// Scale comes from $WIKIMATCH_SCALE (default 0.1); pass --smoke (or set
// WIKIMATCH_BENCH_SMOKE=1) for a fast CI-sized run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "ingest/delta.h"
#include "ingest/incremental_matcher.h"
#include "match/pipeline.h"
#include "match/serialize.h"
#include "synth/delta.h"
#include "synth/generator.h"
#include "util/binary_io.h"
#include "util/parallel.h"

namespace wikimatch {
namespace {

using Clock = std::chrono::steady_clock;
using store::LanguagePair;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string ResultBytes(const match::PipelineResult& result) {
  util::BinaryWriter w;
  match::EncodePipelineResult(result, &w);
  return w.TakeBuffer();
}

util::Result<std::map<LanguagePair, match::PipelineResult>> FullRun(
    wiki::Corpus* corpus, const std::vector<LanguagePair>& pairs,
    const match::PipelineOptions& options) {
  match::MatchPipeline pipeline(corpus);
  std::map<LanguagePair, match::PipelineResult> results;
  for (const auto& [lang_a, lang_b] : pairs) {
    auto result = pipeline.Run(lang_a, lang_b, options);
    if (!result.ok()) return result.status();
    results.emplace(LanguagePair(lang_a, lang_b),
                    std::move(result).ValueOrDie());
  }
  return results;
}

int Run(bool smoke) {
  const char* env = std::getenv("WIKIMATCH_SCALE");
  double scale = env ? std::atof(env) : 0.1;
  if (scale <= 0) scale = 0.1;
  if (smoke) scale = std::min(scale, 0.05);

  synth::CorpusGenerator generator(synth::GeneratorOptions::Paper(scale));
  auto gc = generator.Generate();
  if (!gc.ok()) {
    std::fprintf(stderr, "generate: %s\n", gc.status().ToString().c_str());
    return 1;
  }
  const std::vector<LanguagePair> pairs = {{"pt", "en"}, {"vi", "en"}};
  match::PipelineOptions options;
  options.num_threads = util::DefaultThreads();

  // ---- baseline: both pairs from scratch on the base corpus ----
  auto full_start = Clock::now();
  auto base_results = FullRun(&gc->corpus, pairs, options);
  double full_build_ms = MsSince(full_start);
  if (!base_results.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 base_results.status().ToString().c_str());
    return 1;
  }

  // ---- delta batch dirtying one small type ("writer": pt-only duals) ----
  synth::DeltaSpec spec;
  spec.lang_a = "pt";
  spec.lang_b = "en";
  spec.types_b = {"writer"};
  spec.attribute_renames = 1;
  spec.value_edits = 4;
  spec.new_articles = 2;
  spec.removals = 1;
  auto batch = synth::MakeDeltaBatch(gc->corpus, spec);
  if (!batch.ok()) {
    std::fprintf(stderr, "delta: %s\n", batch.status().ToString().c_str());
    return 1;
  }

  // ---- incremental apply (footprints are matcher construction, not part
  // of the per-batch cost, so they are built before the clock starts) ----
  ingest::IncrementalMatcher matcher(gc->corpus, *base_results, options);
  auto apply_start = Clock::now();
  auto stats = matcher.Apply(*batch);
  double delta_apply_ms = MsSince(apply_start);
  if (!stats.ok()) {
    std::fprintf(stderr, "apply: %s\n", stats.status().ToString().c_str());
    return 1;
  }

  // ---- full rebuild: construct the post-delta corpus and match both
  // pairs from scratch. The corpus construction is timed on this side too —
  // a rebuild has to materialize the post corpus just like the incremental
  // path does (Apply times it inside delta_apply_ms), so both columns cover
  // the same end-to-end work. ----
  auto rebuild_start = Clock::now();
  auto post =
      ingest::ApplyDeltaToCorpus(gc->corpus, *batch, options.num_threads);
  if (!post.ok()) {
    std::fprintf(stderr, "post: %s\n", post.status().ToString().c_str());
    return 1;
  }
  auto rebuilt = FullRun(&*post, pairs, options);
  double full_rebuild_ms = MsSince(rebuild_start);
  if (!rebuilt.ok()) {
    std::fprintf(stderr, "rebuild: %s\n",
                 rebuilt.status().ToString().c_str());
    return 1;
  }

  // ---- equivalence: serialized bytes per pair ----
  bool identical = true;
  for (const auto& pair : pairs) {
    if (ResultBytes(matcher.results().at(pair)) !=
        ResultBytes(rebuilt->at(pair))) {
      identical = false;
      std::fprintf(stderr, "DIVERGENCE in pair %s:%s\n", pair.first.c_str(),
                   pair.second.c_str());
    }
  }

  double dirty_fraction =
      stats->units_total == 0
          ? 0.0
          : static_cast<double>(stats->units_recomputed) /
                static_cast<double>(stats->units_total);
  double speedup =
      delta_apply_ms == 0.0 ? 0.0 : full_rebuild_ms / delta_apply_ms;

  std::printf("{\n");
  std::printf("  \"bench\": \"ingest\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"scale\": %g,\n", scale);
  std::printf("  \"articles\": %zu,\n", gc->corpus.size());
  std::printf("  \"batch_size\": %zu,\n", batch->size());
  std::printf("  \"units_total\": %zu,\n", stats->units_total);
  std::printf("  \"units_recomputed\": %zu,\n", stats->units_recomputed);
  std::printf("  \"units_reused\": %zu,\n", stats->units_reused);
  std::printf("  \"dirty_fraction\": %.3f,\n", dirty_fraction);
  std::printf("  \"full_build_ms\": %.2f,\n", full_build_ms);
  std::printf("  \"delta_apply_ms\": %.2f,\n", delta_apply_ms);
  std::printf("  \"apply_corpus_ms\": %.2f,\n", stats->corpus_ms);
  std::printf("  \"apply_dictionary_ms\": %.2f,\n", stats->dictionary_ms);
  std::printf("  \"apply_align_ms\": %.2f,\n", stats->align_ms);
  std::printf("  \"full_rebuild_ms\": %.2f,\n", full_rebuild_ms);
  std::printf("  \"speedup\": %.2f,\n", speedup);
  std::printf("  \"identical\": %s\n", identical ? "true" : "false");
  std::printf("}\n");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace wikimatch

int main(int argc, char** argv) {
  bool smoke = false;
  const char* env = std::getenv("WIKIMATCH_BENCH_SMOKE");
  if (env != nullptr && std::strcmp(env, "1") == 0) smoke = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return wikimatch::Run(smoke);
}
