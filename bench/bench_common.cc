#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace wikimatch {
namespace benchharness {

double ScaleFromEnv(double fallback) {
  const char* env = std::getenv("WIKIMATCH_SCALE");
  if (env == nullptr) return fallback;
  double v = std::atof(env);
  return v > 0.0 ? v : fallback;
}

BenchContext::BenchContext(double scale) : scale_(scale) {
  std::printf("# generating corpus at scale %.2f ...\n", scale);
  synth::CorpusGenerator generator(synth::GeneratorOptions::Paper(scale));
  auto generated = generator.Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 generated.status().ToString().c_str());
    std::abort();
  }
  gc_ = std::make_unique<synth::GeneratedCorpus>(
      std::move(generated).ValueOrDie());
  pipeline_ = std::make_unique<match::MatchPipeline>(&gc_->corpus);
  std::printf("# corpus: %zu articles | pt infoboxes %zu | vi infoboxes %zu\n",
              gc_->corpus.size(), gc_->corpus.InfoboxCount("pt"),
              gc_->corpus.InfoboxCount("vi"));
}

const PairContext& BenchContext::Pair(const std::string& lang) {
  auto it = pairs_.find(lang);
  if (it != pairs_.end()) return it->second;

  PairContext ctx;
  ctx.lang = lang;
  match::TypeMatcher type_matcher;
  ctx.type_matches = type_matcher.Match(gc_->corpus, lang, gc_->hub);

  for (const auto& tm : ctx.type_matches) {
    TypeContext tc;
    tc.type_a = tm.type_a;
    tc.type_b = tm.type_b;
    auto hub_it = gc_->hub_type_of.find({gc_->hub, tm.type_b});
    if (hub_it == gc_->hub_type_of.end()) continue;
    tc.hub_type = hub_it->second;

    match::SchemaBuilderOptions translated_opts;
    translated_opts.translate_values = true;
    auto translated = pipeline_->BuildPair(lang, tm.type_a, gc_->hub,
                                           tm.type_b, translated_opts);
    if (!translated.ok()) continue;
    tc.translated = std::move(translated).ValueOrDie();

    match::SchemaBuilderOptions raw_opts;
    raw_opts.translate_values = false;
    auto raw =
        pipeline_->BuildPair(lang, tm.type_a, gc_->hub, tm.type_b, raw_opts);
    if (!raw.ok()) continue;
    tc.raw = std::move(raw).ValueOrDie();

    match::SchemaBuilderOptions sampled_opts = translated_opts;
    sampled_opts.max_sample_infoboxes = kComaSampleInfoboxes;
    auto sampled_translated = pipeline_->BuildPair(lang, tm.type_a, gc_->hub,
                                                   tm.type_b, sampled_opts);
    if (!sampled_translated.ok()) continue;
    tc.sampled_translated = std::move(sampled_translated).ValueOrDie();

    sampled_opts.translate_values = false;
    auto sampled_raw = pipeline_->BuildPair(lang, tm.type_a, gc_->hub,
                                            tm.type_b, sampled_opts);
    if (!sampled_raw.ok()) continue;
    tc.sampled_raw = std::move(sampled_raw).ValueOrDie();

    tc.num_duals = tc.translated.num_duals;
    tc.freqs = tc.translated.Frequencies();
    ctx.types.push_back(std::move(tc));
  }
  std::stable_sort(ctx.types.begin(), ctx.types.end(),
                   [](const TypeContext& x, const TypeContext& y) {
                     return x.num_duals > y.num_duals;
                   });
  return pairs_.emplace(lang, std::move(ctx)).first->second;
}

const eval::MatchSet& BenchContext::Truth(const std::string& hub_type) const {
  return gc_->ground_truth.at(hub_type);
}

eval::Prf BenchContext::Eval(const TypeContext& type,
                             const eval::MatchSet& matches,
                             const std::string& lang) const {
  return eval::WeightedPrf(matches, Truth(type.hub_type), type.freqs, lang,
                           gc_->hub);
}

std::string F2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace benchharness
}  // namespace wikimatch
