// Performance micro-benchmarks (not in the paper): throughput of the
// substrates — SVD, wikitext parsing, similarity computation, and the
// end-to-end aligner — via google-benchmark.

#include <benchmark/benchmark.h>

#include "la/svd.h"
#include "match/aligner.h"
#include "match/pipeline.h"
#include "synth/generator.h"
#include "text/string_similarity.h"
#include "util/rng.h"
#include "wiki/wikitext_parser.h"

using namespace wikimatch;

namespace {

// Shared tiny corpus for the aligner benchmarks.
const synth::GeneratedCorpus& SharedCorpus() {
  static const synth::GeneratedCorpus* corpus = [] {
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(99));
    auto g = generator.Generate();
    return new synth::GeneratedCorpus(std::move(g).ValueOrDie());
  }();
  return *corpus;
}

void BM_SvdTruncated(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t cols = rows * 8;
  util::Rng rng(7);
  la::Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m(i, j) = rng.NextBool(0.3) ? 1.0 : 0.0;
    }
  }
  for (auto _ : state) {
    auto svd = la::ComputeTruncatedSvd(m, rows / 3);
    benchmark::DoNotOptimize(svd);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * cols));
}
BENCHMARK(BM_SvdTruncated)->Arg(16)->Arg(32)->Arg(64);

void BM_WikitextParse(benchmark::State& state) {
  const std::string source =
      "{{Infobox film\n| directed by = [[Bernardo Bertolucci]]\n"
      "| starring = {{ubl|[[John Lone]]|[[Joan Chen]]|[[Peter O'Toole]]}}\n"
      "| release date = november 18 1987\n| running time = 160 minutes\n"
      "| country = [[Italy]]\n| budget = US$ 23000000\n}}\n"
      "'''The Last Emperor''' is a film.<ref>citation</ref>\n"
      "[[category:film]]\n[[pt:O Último Imperador]]\n";
  wiki::WikitextParser parser;
  for (auto _ : state) {
    auto article = parser.ParseArticle("The Last Emperor", "en", source);
    benchmark::DoNotOptimize(article);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(source.size()));
}
BENCHMARK(BM_WikitextParse);

void BM_StringSimilarity(benchmark::State& state) {
  const std::string a = "elenco original";
  const std::string b = "original cast listing";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinSimilarity(a, b));
    benchmark::DoNotOptimize(text::JaroWinklerSimilarity(a, b));
    benchmark::DoNotOptimize(text::TrigramSimilarity(a, b));
  }
}
BENCHMARK(BM_StringSimilarity);

void BM_EndToEndAlign(benchmark::State& state) {
  const auto& gc = SharedCorpus();
  match::MatchPipeline pipeline(&gc.corpus);
  auto data = pipeline.BuildPair("pt", "filme", "en", "film");
  if (!data.ok()) {
    state.SkipWithError("no pair data");
    return;
  }
  match::AttributeAligner aligner{match::MatcherConfig{}};
  for (auto _ : state) {
    auto result = aligner.Align(*data);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EndToEndAlign);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(11));
    auto g = generator.Generate();
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_CorpusGeneration);

}  // namespace

BENCHMARK_MAIN();
