// Reproduces Figure 4 (Section 5): cumulative gain of the top-k answers
// for the case-study workload run natively (Pt, Vn) and translated into
// English via WikiMatch's correspondences (Pt->En, Vn->En).
//
// Expected shape: the translated-to-English curves dominate their native
// counterparts (the English corpus covers more entities), and the Vn->En
// gain is smaller than Pt->En (dangling Vietnamese types/attributes force
// more query relaxation).

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "eval/table.h"
#include "match/aligner.h"
#include "query/case_study.h"
#include "query/translator.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

std::vector<query::CaseStudyCurve> RunLang(BenchContext* ctx,
                                           const std::string& lang) {
  const auto& pair = ctx->Pair(lang);
  const auto& gc = ctx->gc();

  // Derive correspondences with WikiMatch and wire up the translator.
  match::AttributeAligner aligner{match::MatcherConfig{}};
  std::map<std::string, eval::MatchSet> per_type_matches;
  for (const auto& type : pair.types) {
    auto result = aligner.Align(type.translated);
    if (result.ok()) {
      per_type_matches.emplace(type.type_b, std::move(result->matches));
    }
  }
  std::map<std::string, const eval::MatchSet*> match_ptrs;
  for (const auto& [type_b, matches] : per_type_matches) {
    match_ptrs.emplace(type_b, &matches);
  }
  query::QueryTranslator translator(lang, gc.hub, pair.type_matches,
                                    match_ptrs,
                                    &ctx->pipeline().dictionary());

  auto queries = query::BuildCaseQueries(gc);
  auto curves = query::RunCaseStudy(gc, queries, lang, translator);
  if (!curves.ok()) {
    std::fprintf(stderr, "case study failed for %s: %s\n", lang.c_str(),
                 curves.status().ToString().c_str());
    return {};
  }
  return std::move(curves).ValueOrDie();
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());

  auto pt_curves = RunLang(&ctx, "pt");
  auto vn_curves = RunLang(&ctx, "vi");

  eval::Table table({"k", "Pt", "Pt->En", "Vn", "Vn->En"});
  size_t top_k = 20;
  for (size_t k = 0; k < top_k; ++k) {
    auto cell = [&](const std::vector<query::CaseStudyCurve>& curves,
                    size_t idx) {
      if (idx >= curves.size() || k >= curves[idx].cg.size()) {
        return std::string("-");
      }
      return F2(curves[idx].cg[k]);
    };
    table.AddRow({std::to_string(k + 1), cell(pt_curves, 0),
                  cell(pt_curves, 1), cell(vn_curves, 0),
                  cell(vn_curves, 1)});
  }
  std::printf("\nFigure 4 — cumulative gain of top-k answers (paper: "
              "translated-to-English curves dominate; Vn->En gain smaller "
              "than Pt->En)\n%s\n",
              table.ToString().c_str());
  return 0;
}
