// Reproduces Table 1: example alignments identified by WikiMatch for the
// Actor (Pt-En) and Movie (Vn-En) types, including one-to-many matches.

#include <cstdio>

#include "bench_common.h"
#include "match/aligner.h"

using namespace wikimatch;
using benchharness::BenchContext;

namespace {

void ShowAlignments(BenchContext* ctx, const std::string& lang,
                    const std::string& hub_type, size_t max_rows) {
  const auto& pair = ctx->Pair(lang);
  for (const auto& type : pair.types) {
    if (type.hub_type != hub_type) continue;
    match::AttributeAligner aligner{match::MatcherConfig{}};
    auto result = aligner.Align(type.translated);
    if (!result.ok()) {
      std::printf("  (alignment failed: %s)\n",
                  result.status().ToString().c_str());
      return;
    }
    std::printf("\nType %s (%s-En), %zu dual infoboxes:\n", hub_type.c_str(),
                lang.c_str(), type.num_duals);
    const auto& truth = ctx->Truth(hub_type);
    size_t shown = 0;
    for (const auto& cluster : result->matches.Clusters()) {
      if (shown >= max_rows) break;
      // Render the cluster, marking whether it is fully correct.
      bool all_correct = true;
      std::string line;
      for (const auto& attr : cluster) {
        if (!line.empty()) line += " ~ ";
        line += attr.language + ":" + attr.name;
        for (const auto& other : cluster) {
          if (!(attr == other) && !truth.AreMatched(attr, other)) {
            all_correct = false;
          }
        }
      }
      std::printf("  [%s] %s\n", all_correct ? "ok" : "??", line.c_str());
      ++shown;
    }
    return;
  }
  std::printf("  (type %s not found for %s)\n", hub_type.c_str(),
              lang.c_str());
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());
  std::printf("\nTable 1 — example alignments found by WikiMatch\n");
  ShowAlignments(&ctx, "pt", "actor", 12);
  ShowAlignments(&ctx, "pt", "film", 12);
  ShowAlignments(&ctx, "vi", "film", 12);
  ShowAlignments(&ctx, "vi", "actor", 12);
  return 0;
}
