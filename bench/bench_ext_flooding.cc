// Extension experiment (not in the paper — its Section 7 names similarity
// flooding as future work): WikiMatch vs. a similarity-flooding matcher
// seeded with the same features, per type and averaged, on both pairs.

#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"
#include "match/aligner.h"
#include "match/similarity_flooding.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

void RunPair(BenchContext* ctx, const std::string& lang) {
  const auto& pair = ctx->Pair(lang);
  match::AttributeAligner wikimatch{match::MatcherConfig{}};

  eval::Table table({"type", "WM:P", "WM:R", "WM:F", "Flood:P", "Flood:R",
                     "Flood:F", "iters"});
  std::vector<eval::Prf> wm_rows;
  std::vector<eval::Prf> flood_rows;
  for (const auto& type : pair.types) {
    auto wm = wikimatch.Align(type.translated);
    auto flood = match::RunSimilarityFlooding(type.translated);
    if (!wm.ok() || !flood.ok()) continue;
    eval::Prf wm_prf = ctx->Eval(type, wm->matches, lang);
    eval::Prf flood_prf = ctx->Eval(type, flood->matches, lang);
    wm_rows.push_back(wm_prf);
    flood_rows.push_back(flood_prf);
    table.AddRow({type.hub_type, F2(wm_prf.precision), F2(wm_prf.recall),
                  F2(wm_prf.f1), F2(flood_prf.precision),
                  F2(flood_prf.recall), F2(flood_prf.f1),
                  std::to_string(flood->iterations)});
  }
  eval::Prf wm_avg = eval::AveragePrf(wm_rows);
  eval::Prf flood_avg = eval::AveragePrf(flood_rows);
  table.AddRow({"Avg", F2(wm_avg.precision), F2(wm_avg.recall),
                F2(wm_avg.f1), F2(flood_avg.precision),
                F2(flood_avg.recall), F2(flood_avg.f1), ""});
  std::printf("\nExtension — WikiMatch vs similarity flooding, %s-En\n%s\n",
              lang == "pt" ? "Portuguese" : "Vietnamese",
              table.ToString().c_str());
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());
  RunPair(&ctx, "pt");
  RunPair(&ctx, "vi");
  return 0;
}
