// Aligner feature-stage benchmark: naive all-pairs cosine loop vs the
// inverted-index sparse similarity join, single- vs multi-threaded, on a
// synthetic large-schema type pair (the paper's `settlement`-sized case).
// Emits one JSON object on stdout so runs are diffable across commits:
//
//   {"bench":"align","groups":...,"pairs":...,
//    "naive_ms":...,"indexed_ms":...,"speedup":...,
//    "indexed_mt_ms":...,"mt_threads":...,"mt_pool_workers":...,
//    "mt_speedup":...,"pruned_ms":...,"pruned_pairs_pruned":...,
//    "scalar_kernel_ms":...,"quantized_ms":...,
//    "quantized_max_abs_delta":...,
//    "postings_visited":...,"pairs_generated":...,"pairs_pruned":...,
//    "identical":true,"mt_identical":true,...}
//
// Runs, all over the same synthetic schema:
//   * naive        — the all-pairs reference path
//   * indexed      — the join (default vector kernel, exact weights)
//   * indexed_mt   — same, sharded across the shared pool; `mt_threads` is
//                    the *effective* participant count (calling thread plus
//                    engaged pool workers), not the requested knob — on a
//                    single-core box it honestly reads 1
//   * pruned       — keep_all_pairs off, the production configuration,
//                    over a schema extended with orphan groups whose pairs
//                    carry zero evidence, so pairs_pruned is exercised;
//                    matches must equal a full-materialization run over
//                    the same schema
//   * scalar       — kernel forced to the scalar reference, must be
//                    bit-identical to the vector run
//   * quantized    — use_exact_cosine off (fp32 posting weights); reports
//                    the max |Δscore| against the exact run and whether the
//                    derived matches moved
//
// `identical` asserts the indexed path reproduced the naive path's
// AlignmentResult bit-for-bit; `mt_identical` asserts thread-count
// invariance; `kernel_identical` and `pruned_identical` likewise. A false
// value in any of them is a correctness regression, not noise.
//
// Modes: pass --smoke (or set WIKIMATCH_BENCH_SMOKE=1) for a tiny corpus
// sanity run wired into tools/check.sh; scale the full run with
// WIKIMATCH_BENCH_GROUPS (groups per language, default 280).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "match/aligner.h"
#include "match/join_kernels.h"
#include "match/schema_builder.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wikimatch {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Builds a settlement-sized synthetic TypePairData directly: two languages
// of `groups_per_lang` attribute groups over a shared (translated) value
// vocabulary with Zipfian term usage, link vectors over a smaller target
// space, and enough dual-document overlap for the LSI occurrence matrix.
// `orphans_per_lang` appends attribute groups with private single-group
// vocabularies, no links, and no dual-document overlap: their
// cross-language pairs carry zero direct evidence and zero LSI
// correlation, so the pruned (keep_all_pairs = false) configuration
// actually drops pairs instead of reporting pairs_pruned = 0 forever.
match::TypePairData SyntheticSchema(size_t groups_per_lang,
                                    size_t terms_per_group,
                                    size_t num_duals, uint64_t seed,
                                    size_t orphans_per_lang = 0) {
  util::Rng rng(seed);
  match::TypePairData data;
  data.lang_a = "pt";
  data.lang_b = "en";
  data.type_a = "localidade";
  data.type_b = "settlement";
  data.num_duals = num_duals;

  const size_t vocab = groups_per_lang * 12;
  std::vector<uint32_t> term_ids(vocab);
  for (size_t t = 0; t < vocab; ++t) {
    term_ids[t] = data.value_terms.GetOrAdd("term_" + std::to_string(t));
  }
  const size_t link_space = groups_per_lang * 4;

  for (size_t lang = 0; lang < 2; ++lang) {
    const std::string language = lang == 0 ? "pt" : "en";
    for (size_t g = 0; g < groups_per_lang; ++g) {
      match::AttributeGroup group;
      group.key.language = language;
      group.key.name = "attr_" + std::to_string(g);
      group.occurrences = 20.0 + static_cast<double>(rng.NextBounded(200));
      // Zipfian terms: frequent terms shared across many groups give the
      // inverted index realistic long posting lists.
      for (size_t t = 0; t < terms_per_group; ++t) {
        uint32_t id = term_ids[rng.NextZipf(vocab, 1.1)];
        group.values.Add(id, 1.0 + static_cast<double>(rng.NextBounded(5)));
      }
      // Roughly half the groups carry enough links to clear the support
      // floor; targets cluster so cross-language twins stay similar.
      if (rng.NextBool(0.55)) {
        size_t links = 4 + rng.NextBounded(12);
        for (size_t l = 0; l < links; ++l) {
          group.links.Add(static_cast<uint32_t>(rng.NextZipf(link_space, 1.05)),
                          1.0 + static_cast<double>(rng.NextBounded(3)));
        }
      }
      size_t docs = 3 + rng.NextBounded(num_duals / 2 + 1);
      for (size_t d = 0; d < docs; ++d) {
        group.dual_docs.insert(
            static_cast<uint32_t>(rng.NextBounded(num_duals)));
      }
      data.groups.push_back(std::move(group));
    }
    for (size_t g = 0; g < orphans_per_lang; ++g) {
      match::AttributeGroup group;
      group.key.language = language;
      group.key.name = "orphan_" + std::to_string(g);
      group.occurrences = 2.0 + static_cast<double>(rng.NextBounded(6));
      for (size_t t = 0; t < 8; ++t) {
        uint32_t id = data.value_terms.GetOrAdd(
            "orphan_" + language + "_" + std::to_string(g) + "_" +
            std::to_string(t));
        group.values.Add(id, 1.0);
      }
      data.groups.push_back(std::move(group));
    }
  }
  // Sparse mono-language co-occurrence counts for the grouping scores.
  const size_t n = data.groups.size();
  for (size_t e = 0; e < n * 4; ++e) {
    size_t i = rng.NextBounded(n);
    size_t j = rng.NextBounded(n);
    if (i == j) continue;
    if (data.groups[i].key.language != data.groups[j].key.language) continue;
    data.co_occur[{std::min(i, j), std::max(i, j)}] +=
        1.0 + static_cast<double>(rng.NextBounded(8));
  }
  return data;
}

bool SamePairs(const std::vector<match::CandidatePair>& a,
               const std::vector<match::CandidatePair>& b) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (a[k].i != b[k].i || a[k].j != b[k].j || a[k].vsim != b[k].vsim ||
        a[k].lsim != b[k].lsim || a[k].lsi != b[k].lsi) {
      return false;
    }
  }
  return true;
}

bool SameAlignment(const match::AlignmentResult& a,
                   const match::AlignmentResult& b) {
  return a.matches.Clusters() == b.matches.Clusters() &&
         SamePairs(a.processed_order, b.processed_order) &&
         SamePairs(a.all_pairs, b.all_pairs);
}

// Best-of-`reps` Align() wall time.
double TimeAlign(const match::AttributeAligner& aligner,
                 const match::TypePairData& data, int reps,
                 match::AlignmentResult* out) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    auto result = aligner.Align(data);
    double ms = MsSince(start);
    if (!result.ok()) {
      std::fprintf(stderr, "align: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (best < 0.0 || ms < best) best = ms;
    *out = std::move(result).ValueOrDie();
  }
  return best;
}

int Run(bool smoke) {
  const char* groups_env = std::getenv("WIKIMATCH_BENCH_GROUPS");
  size_t groups_per_lang =
      smoke ? 24
            : (groups_env != nullptr
                   ? static_cast<size_t>(std::atol(groups_env))
                   : 280);
  if (groups_per_lang < 4) groups_per_lang = 4;
  const size_t terms_per_group = smoke ? 24 : 160;
  const size_t num_duals = smoke ? 24 : 96;
  const int reps = smoke ? 1 : 3;

  match::TypePairData data =
      SyntheticSchema(groups_per_lang, terms_per_group, num_duals, 0xA11C4);

  match::MatcherConfig config;
  config.keep_all_pairs = true;  // both paths materialize everything
  config.lsi.rank = 16;          // keep the shared SVD off the critical path

  match::MatcherConfig naive_config = config;
  naive_config.use_indexed_join = false;
  match::MatcherConfig indexed_config = config;
  match::MatcherConfig indexed_mt_config = config;
  indexed_mt_config.num_threads = util::DefaultThreads();

  // Production configuration: no all-pairs retention, so the join prunes
  // pairs with zero direct evidence whose LSI cannot admit them either.
  match::MatcherConfig pruned_config = config;
  pruned_config.keep_all_pairs = false;

  // Opt-in fp32 posting weights.
  match::MatcherConfig quantized_config = config;
  quantized_config.use_exact_cosine = false;

  match::AlignmentResult naive_result, indexed_result, mt_result;
  match::AlignmentResult pruned_result, scalar_result, quantized_result;
  double naive_ms =
      TimeAlign(match::AttributeAligner(naive_config), data, reps,
                &naive_result);
  double indexed_ms =
      TimeAlign(match::AttributeAligner(indexed_config), data, reps,
                &indexed_result);
  double mt_ms = TimeAlign(match::AttributeAligner(indexed_mt_config), data,
                           reps, &mt_result);
  // The pruning run gets its own schema with orphan groups appended (the
  // headline runs keep the unchanged workload, so their timings stay
  // comparable across commits) plus a full-materialization reference run
  // to diff matches against.
  match::TypePairData pruned_data =
      SyntheticSchema(groups_per_lang, terms_per_group, num_duals, 0xA11C4,
                      std::max<size_t>(groups_per_lang / 8, 2));
  match::AlignmentResult pruned_ref_result;
  TimeAlign(match::AttributeAligner(indexed_config), pruned_data, 1,
            &pruned_ref_result);
  double pruned_ms = TimeAlign(match::AttributeAligner(pruned_config),
                               pruned_data, reps, &pruned_result);
  const match::JoinKernel scalar_kernel = match::JoinKernel::kScalar;
  match::SetJoinKernelForTest(&scalar_kernel);
  double scalar_ms = TimeAlign(match::AttributeAligner(indexed_config), data,
                               reps, &scalar_result);
  match::SetJoinKernelForTest(nullptr);
  double quantized_ms =
      TimeAlign(match::AttributeAligner(quantized_config), data, reps,
                &quantized_result);

  bool identical = SameAlignment(naive_result, indexed_result);
  bool mt_identical = SameAlignment(indexed_result, mt_result);
  bool kernel_identical = SameAlignment(indexed_result, scalar_result);
  // Pruning drops only pairs no stage can admit, so matches and the
  // processed order must not move (all_pairs is intentionally empty).
  bool pruned_identical =
      pruned_result.matches.Clusters() ==
          pruned_ref_result.matches.Clusters() &&
      SamePairs(pruned_result.processed_order,
                pruned_ref_result.processed_order);

  // Quantization precision: max |Δvsim|, |Δlsim| over the full scored
  // list, aligned by (i, j) — the ordering itself may legitimately move.
  double quantized_max_abs_delta = 0.0;
  {
    auto by_ij = [](std::vector<match::CandidatePair> v) {
      std::sort(v.begin(), v.end(),
                [](const match::CandidatePair& x,
                   const match::CandidatePair& y) {
                  return x.i != y.i ? x.i < y.i : x.j < y.j;
                });
      return v;
    };
    std::vector<match::CandidatePair> exact = by_ij(indexed_result.all_pairs);
    std::vector<match::CandidatePair> quant =
        by_ij(quantized_result.all_pairs);
    if (exact.size() == quant.size()) {
      for (size_t k = 0; k < exact.size(); ++k) {
        quantized_max_abs_delta =
            std::max({quantized_max_abs_delta,
                      std::abs(exact[k].vsim - quant[k].vsim),
                      std::abs(exact[k].lsim - quant[k].lsim)});
      }
    }
  }
  bool quantized_matches_identical =
      quantized_result.matches.Clusters() ==
      indexed_result.matches.Clusters();

  // Effective mt participants: thread_pool_for runs inline when the knob
  // is <= 1 and otherwise engages at most pool-size workers beside the
  // calling thread.
  const size_t requested = indexed_mt_config.num_threads;
  const size_t pool_workers =
      requested <= 1 ? 0 : util::ThreadPool::Global()->size();
  const size_t mt_threads =
      requested <= 1 ? 1 : std::min(requested, pool_workers + 1);

  const size_t n = data.groups.size();
  std::printf(
      "{\"bench\":\"align\",\"smoke\":%s,\"groups\":%zu,\"pairs\":%zu,"
      "\"naive_ms\":%.3f,\"indexed_ms\":%.3f,\"speedup\":%.2f,"
      "\"indexed_mt_ms\":%.3f,\"mt_threads\":%zu,\"mt_pool_workers\":%zu,"
      "\"mt_speedup\":%.2f,"
      "\"pruned_ms\":%.3f,\"pruned_pairs_generated\":%zu,"
      "\"pruned_pairs_pruned\":%zu,"
      "\"scalar_kernel_ms\":%.3f,\"quantized_ms\":%.3f,"
      "\"quantized_max_abs_delta\":%.3e,"
      "\"quantized_matches_identical\":%s,"
      "\"postings_visited\":%zu,\"pairs_generated\":%zu,"
      "\"pairs_pruned\":%zu,\"lsi_ms\":%.3f,\"feature_ms\":%.3f,"
      "\"order_ms\":%.3f,\"match_ms\":%.3f,"
      "\"identical\":%s,\"mt_identical\":%s,\"kernel_identical\":%s,"
      "\"pruned_identical\":%s}\n",
      smoke ? "true" : "false", n, n * (n - 1) / 2, naive_ms, indexed_ms,
      naive_ms / indexed_ms, mt_ms, mt_threads, pool_workers,
      naive_ms / mt_ms, pruned_ms, pruned_result.stats.pairs_generated,
      pruned_result.stats.pairs_pruned, scalar_ms, quantized_ms,
      quantized_max_abs_delta,
      quantized_matches_identical ? "true" : "false",
      indexed_result.stats.postings_visited,
      indexed_result.stats.pairs_generated,
      indexed_result.stats.pairs_pruned, indexed_result.stats.lsi_ms,
      indexed_result.stats.feature_ms, indexed_result.stats.order_ms,
      indexed_result.stats.match_ms, identical ? "true" : "false",
      mt_identical ? "true" : "false", kernel_identical ? "true" : "false",
      pruned_identical ? "true" : "false");
  if (!identical || !mt_identical || !kernel_identical ||
      !pruned_identical) {
    std::fprintf(stderr,
                 "FAIL: indexed join diverged from the naive path\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace wikimatch

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const char* env = std::getenv("WIKIMATCH_BENCH_SMOKE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') smoke = true;
  return wikimatch::Run(smoke);
}
