// Reproduces Figure 5 (Appendix B): weighted F-measure as Tsim and TLSI
// vary from 0 to 0.9, for both language pairs. Expected shape: broad
// stability; F peaks around Tsim = 0.6; TLSI flat for 0..0.6 and recall
// (hence F) decays for high TLSI.

#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"
#include "match/aligner.h"

using namespace wikimatch;
using benchharness::BenchContext;
using benchharness::F2;

namespace {

eval::Prf RunConfig(BenchContext* ctx, const std::string& lang,
                    const match::MatcherConfig& config) {
  match::AttributeAligner aligner(config);
  std::vector<eval::Prf> rows;
  for (const auto& type : ctx->Pair(lang).types) {
    auto result = aligner.Align(type.translated);
    if (!result.ok()) continue;
    rows.push_back(ctx->Eval(type, result->matches, lang));
  }
  return eval::AveragePrf(rows);
}

}  // namespace

int main() {
  BenchContext ctx(benchharness::ScaleFromEnv());

  eval::Table table({"threshold", "Tsim Pt-En F", "Tsim Vn-En F",
                     "TLSI Pt-En F", "TLSI Vn-En F"});
  for (int step = 0; step <= 9; ++step) {
    double t = 0.1 * step;
    match::MatcherConfig sim_config;
    sim_config.t_sim = t;
    match::MatcherConfig lsi_config;
    lsi_config.t_lsi = t;
    table.AddRow({F2(t), F2(RunConfig(&ctx, "pt", sim_config).f1),
                  F2(RunConfig(&ctx, "vi", sim_config).f1),
                  F2(RunConfig(&ctx, "pt", lsi_config).f1),
                  F2(RunConfig(&ctx, "vi", lsi_config).f1)});
  }
  std::printf("\nFigure 5 — F-measure vs thresholds (paper: stable for a "
              "broad range; best around Tsim=0.6; high TLSI hurts recall)\n"
              "%s\n",
              table.ToString().c_str());
  return 0;
}
