// Extension experiment: quality vs corpus size. The paper's motivation is
// under-represented languages — WikiMatch needs no training data, so it
// should hold up as the corpus shrinks toward Vietnamese-sized samples.
// This sweep measures weighted P/R/F for both pairs across corpus scales.

#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"
#include "match/aligner.h"

using namespace wikimatch;
using benchharness::F2;

namespace {

eval::Prf RunPair(benchharness::BenchContext* ctx, const std::string& lang) {
  match::AttributeAligner aligner{match::MatcherConfig{}};
  std::vector<eval::Prf> rows;
  for (const auto& type : ctx->Pair(lang).types) {
    auto result = aligner.Align(type.translated);
    if (!result.ok()) continue;
    rows.push_back(ctx->Eval(type, result->matches, lang));
  }
  return eval::AveragePrf(rows);
}

}  // namespace

int main() {
  eval::Table table({"scale", "pt duals", "vi duals", "Pt:P", "Pt:R", "Pt:F",
                     "Vn:P", "Vn:R", "Vn:F"});
  for (double scale : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    benchharness::BenchContext ctx(scale);
    size_t pt_duals = 0;
    size_t vi_duals = 0;
    for (const auto& type : ctx.Pair("pt").types) pt_duals += type.num_duals;
    for (const auto& type : ctx.Pair("vi").types) vi_duals += type.num_duals;
    eval::Prf pt = RunPair(&ctx, "pt");
    eval::Prf vn = RunPair(&ctx, "vi");
    table.AddRow({F2(scale), std::to_string(pt_duals),
                  std::to_string(vi_duals), F2(pt.precision), F2(pt.recall),
                  F2(pt.f1), F2(vn.precision), F2(vn.recall), F2(vn.f1)});
  }
  std::printf("\nExtension — WikiMatch quality vs corpus scale (the paper's "
              "under-represented-language claim: quality degrades gracefully "
              "as the corpus shrinks)\n%s\n",
              table.ToString().c_str());
  return 0;
}
