file(REMOVE_RECURSE
  "CMakeFiles/dump_ingest.dir/dump_ingest.cpp.o"
  "CMakeFiles/dump_ingest.dir/dump_ingest.cpp.o.d"
  "dump_ingest"
  "dump_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
