# Empty compiler generated dependencies file for dump_ingest.
# This may be replaced when dependencies are built.
