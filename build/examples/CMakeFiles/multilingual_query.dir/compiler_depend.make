# Empty compiler generated dependencies file for multilingual_query.
# This may be replaced when dependencies are built.
