file(REMOVE_RECURSE
  "CMakeFiles/multilingual_query.dir/multilingual_query.cpp.o"
  "CMakeFiles/multilingual_query.dir/multilingual_query.cpp.o.d"
  "multilingual_query"
  "multilingual_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilingual_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
