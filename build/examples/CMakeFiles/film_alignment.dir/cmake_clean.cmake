file(REMOVE_RECURSE
  "CMakeFiles/film_alignment.dir/film_alignment.cpp.o"
  "CMakeFiles/film_alignment.dir/film_alignment.cpp.o.d"
  "film_alignment"
  "film_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/film_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
