# Empty dependencies file for film_alignment.
# This may be replaced when dependencies are built.
