file(REMOVE_RECURSE
  "libwikimatch_match.a"
)
