file(REMOVE_RECURSE
  "CMakeFiles/wikimatch_match.dir/aligner.cc.o"
  "CMakeFiles/wikimatch_match.dir/aligner.cc.o.d"
  "CMakeFiles/wikimatch_match.dir/dictionary.cc.o"
  "CMakeFiles/wikimatch_match.dir/dictionary.cc.o.d"
  "CMakeFiles/wikimatch_match.dir/lsi.cc.o"
  "CMakeFiles/wikimatch_match.dir/lsi.cc.o.d"
  "CMakeFiles/wikimatch_match.dir/match_io.cc.o"
  "CMakeFiles/wikimatch_match.dir/match_io.cc.o.d"
  "CMakeFiles/wikimatch_match.dir/pipeline.cc.o"
  "CMakeFiles/wikimatch_match.dir/pipeline.cc.o.d"
  "CMakeFiles/wikimatch_match.dir/schema_builder.cc.o"
  "CMakeFiles/wikimatch_match.dir/schema_builder.cc.o.d"
  "CMakeFiles/wikimatch_match.dir/similarity_flooding.cc.o"
  "CMakeFiles/wikimatch_match.dir/similarity_flooding.cc.o.d"
  "CMakeFiles/wikimatch_match.dir/type_matcher.cc.o"
  "CMakeFiles/wikimatch_match.dir/type_matcher.cc.o.d"
  "libwikimatch_match.a"
  "libwikimatch_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikimatch_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
