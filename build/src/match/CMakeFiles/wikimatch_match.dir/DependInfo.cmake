
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/aligner.cc" "src/match/CMakeFiles/wikimatch_match.dir/aligner.cc.o" "gcc" "src/match/CMakeFiles/wikimatch_match.dir/aligner.cc.o.d"
  "/root/repo/src/match/dictionary.cc" "src/match/CMakeFiles/wikimatch_match.dir/dictionary.cc.o" "gcc" "src/match/CMakeFiles/wikimatch_match.dir/dictionary.cc.o.d"
  "/root/repo/src/match/lsi.cc" "src/match/CMakeFiles/wikimatch_match.dir/lsi.cc.o" "gcc" "src/match/CMakeFiles/wikimatch_match.dir/lsi.cc.o.d"
  "/root/repo/src/match/match_io.cc" "src/match/CMakeFiles/wikimatch_match.dir/match_io.cc.o" "gcc" "src/match/CMakeFiles/wikimatch_match.dir/match_io.cc.o.d"
  "/root/repo/src/match/pipeline.cc" "src/match/CMakeFiles/wikimatch_match.dir/pipeline.cc.o" "gcc" "src/match/CMakeFiles/wikimatch_match.dir/pipeline.cc.o.d"
  "/root/repo/src/match/schema_builder.cc" "src/match/CMakeFiles/wikimatch_match.dir/schema_builder.cc.o" "gcc" "src/match/CMakeFiles/wikimatch_match.dir/schema_builder.cc.o.d"
  "/root/repo/src/match/similarity_flooding.cc" "src/match/CMakeFiles/wikimatch_match.dir/similarity_flooding.cc.o" "gcc" "src/match/CMakeFiles/wikimatch_match.dir/similarity_flooding.cc.o.d"
  "/root/repo/src/match/type_matcher.cc" "src/match/CMakeFiles/wikimatch_match.dir/type_matcher.cc.o" "gcc" "src/match/CMakeFiles/wikimatch_match.dir/type_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wikimatch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wikimatch_text.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/wikimatch_la.dir/DependInfo.cmake"
  "/root/repo/build/src/wiki/CMakeFiles/wikimatch_wiki.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/wikimatch_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
