# Empty dependencies file for wikimatch_match.
# This may be replaced when dependencies are built.
