file(REMOVE_RECURSE
  "libwikimatch_wiki.a"
)
