file(REMOVE_RECURSE
  "CMakeFiles/wikimatch_wiki.dir/article.cc.o"
  "CMakeFiles/wikimatch_wiki.dir/article.cc.o.d"
  "CMakeFiles/wikimatch_wiki.dir/corpus.cc.o"
  "CMakeFiles/wikimatch_wiki.dir/corpus.cc.o.d"
  "CMakeFiles/wikimatch_wiki.dir/dump_reader.cc.o"
  "CMakeFiles/wikimatch_wiki.dir/dump_reader.cc.o.d"
  "CMakeFiles/wikimatch_wiki.dir/wikitext_parser.cc.o"
  "CMakeFiles/wikimatch_wiki.dir/wikitext_parser.cc.o.d"
  "libwikimatch_wiki.a"
  "libwikimatch_wiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikimatch_wiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
