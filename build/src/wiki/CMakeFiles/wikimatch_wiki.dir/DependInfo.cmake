
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wiki/article.cc" "src/wiki/CMakeFiles/wikimatch_wiki.dir/article.cc.o" "gcc" "src/wiki/CMakeFiles/wikimatch_wiki.dir/article.cc.o.d"
  "/root/repo/src/wiki/corpus.cc" "src/wiki/CMakeFiles/wikimatch_wiki.dir/corpus.cc.o" "gcc" "src/wiki/CMakeFiles/wikimatch_wiki.dir/corpus.cc.o.d"
  "/root/repo/src/wiki/dump_reader.cc" "src/wiki/CMakeFiles/wikimatch_wiki.dir/dump_reader.cc.o" "gcc" "src/wiki/CMakeFiles/wikimatch_wiki.dir/dump_reader.cc.o.d"
  "/root/repo/src/wiki/wikitext_parser.cc" "src/wiki/CMakeFiles/wikimatch_wiki.dir/wikitext_parser.cc.o" "gcc" "src/wiki/CMakeFiles/wikimatch_wiki.dir/wikitext_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wikimatch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wikimatch_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
