# Empty compiler generated dependencies file for wikimatch_wiki.
# This may be replaced when dependencies are built.
