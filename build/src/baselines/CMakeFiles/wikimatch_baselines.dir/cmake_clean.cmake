file(REMOVE_RECURSE
  "CMakeFiles/wikimatch_baselines.dir/bouma_matcher.cc.o"
  "CMakeFiles/wikimatch_baselines.dir/bouma_matcher.cc.o.d"
  "CMakeFiles/wikimatch_baselines.dir/coma_matcher.cc.o"
  "CMakeFiles/wikimatch_baselines.dir/coma_matcher.cc.o.d"
  "CMakeFiles/wikimatch_baselines.dir/correlation_measures.cc.o"
  "CMakeFiles/wikimatch_baselines.dir/correlation_measures.cc.o.d"
  "CMakeFiles/wikimatch_baselines.dir/lsi_matcher.cc.o"
  "CMakeFiles/wikimatch_baselines.dir/lsi_matcher.cc.o.d"
  "CMakeFiles/wikimatch_baselines.dir/ziggurat.cc.o"
  "CMakeFiles/wikimatch_baselines.dir/ziggurat.cc.o.d"
  "libwikimatch_baselines.a"
  "libwikimatch_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikimatch_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
