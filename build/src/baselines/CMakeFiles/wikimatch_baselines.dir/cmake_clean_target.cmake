file(REMOVE_RECURSE
  "libwikimatch_baselines.a"
)
