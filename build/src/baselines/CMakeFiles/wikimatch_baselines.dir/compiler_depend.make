# Empty compiler generated dependencies file for wikimatch_baselines.
# This may be replaced when dependencies are built.
