
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bouma_matcher.cc" "src/baselines/CMakeFiles/wikimatch_baselines.dir/bouma_matcher.cc.o" "gcc" "src/baselines/CMakeFiles/wikimatch_baselines.dir/bouma_matcher.cc.o.d"
  "/root/repo/src/baselines/coma_matcher.cc" "src/baselines/CMakeFiles/wikimatch_baselines.dir/coma_matcher.cc.o" "gcc" "src/baselines/CMakeFiles/wikimatch_baselines.dir/coma_matcher.cc.o.d"
  "/root/repo/src/baselines/correlation_measures.cc" "src/baselines/CMakeFiles/wikimatch_baselines.dir/correlation_measures.cc.o" "gcc" "src/baselines/CMakeFiles/wikimatch_baselines.dir/correlation_measures.cc.o.d"
  "/root/repo/src/baselines/lsi_matcher.cc" "src/baselines/CMakeFiles/wikimatch_baselines.dir/lsi_matcher.cc.o" "gcc" "src/baselines/CMakeFiles/wikimatch_baselines.dir/lsi_matcher.cc.o.d"
  "/root/repo/src/baselines/ziggurat.cc" "src/baselines/CMakeFiles/wikimatch_baselines.dir/ziggurat.cc.o" "gcc" "src/baselines/CMakeFiles/wikimatch_baselines.dir/ziggurat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/match/CMakeFiles/wikimatch_match.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/wikimatch_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/wiki/CMakeFiles/wikimatch_wiki.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wikimatch_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wikimatch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/wikimatch_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
