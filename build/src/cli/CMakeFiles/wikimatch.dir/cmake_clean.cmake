file(REMOVE_RECURSE
  "CMakeFiles/wikimatch.dir/wikimatch_main.cc.o"
  "CMakeFiles/wikimatch.dir/wikimatch_main.cc.o.d"
  "wikimatch"
  "wikimatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikimatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
