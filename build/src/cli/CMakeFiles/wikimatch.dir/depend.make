# Empty dependencies file for wikimatch.
# This may be replaced when dependencies are built.
