# Empty dependencies file for wikimatch_query.
# This may be replaced when dependencies are built.
