file(REMOVE_RECURSE
  "CMakeFiles/wikimatch_query.dir/c_query.cc.o"
  "CMakeFiles/wikimatch_query.dir/c_query.cc.o.d"
  "CMakeFiles/wikimatch_query.dir/case_study.cc.o"
  "CMakeFiles/wikimatch_query.dir/case_study.cc.o.d"
  "CMakeFiles/wikimatch_query.dir/evaluator.cc.o"
  "CMakeFiles/wikimatch_query.dir/evaluator.cc.o.d"
  "CMakeFiles/wikimatch_query.dir/translator.cc.o"
  "CMakeFiles/wikimatch_query.dir/translator.cc.o.d"
  "libwikimatch_query.a"
  "libwikimatch_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikimatch_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
