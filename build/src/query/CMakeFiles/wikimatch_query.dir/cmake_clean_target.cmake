file(REMOVE_RECURSE
  "libwikimatch_query.a"
)
