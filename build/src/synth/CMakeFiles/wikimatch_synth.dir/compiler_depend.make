# Empty compiler generated dependencies file for wikimatch_synth.
# This may be replaced when dependencies are built.
