file(REMOVE_RECURSE
  "libwikimatch_synth.a"
)
