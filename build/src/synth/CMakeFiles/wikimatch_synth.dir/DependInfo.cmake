
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/concept_model.cc" "src/synth/CMakeFiles/wikimatch_synth.dir/concept_model.cc.o" "gcc" "src/synth/CMakeFiles/wikimatch_synth.dir/concept_model.cc.o.d"
  "/root/repo/src/synth/generator.cc" "src/synth/CMakeFiles/wikimatch_synth.dir/generator.cc.o" "gcc" "src/synth/CMakeFiles/wikimatch_synth.dir/generator.cc.o.d"
  "/root/repo/src/synth/lexicon.cc" "src/synth/CMakeFiles/wikimatch_synth.dir/lexicon.cc.o" "gcc" "src/synth/CMakeFiles/wikimatch_synth.dir/lexicon.cc.o.d"
  "/root/repo/src/synth/mt_oracle.cc" "src/synth/CMakeFiles/wikimatch_synth.dir/mt_oracle.cc.o" "gcc" "src/synth/CMakeFiles/wikimatch_synth.dir/mt_oracle.cc.o.d"
  "/root/repo/src/synth/value_render.cc" "src/synth/CMakeFiles/wikimatch_synth.dir/value_render.cc.o" "gcc" "src/synth/CMakeFiles/wikimatch_synth.dir/value_render.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wikimatch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wikimatch_text.dir/DependInfo.cmake"
  "/root/repo/build/src/wiki/CMakeFiles/wikimatch_wiki.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/wikimatch_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
