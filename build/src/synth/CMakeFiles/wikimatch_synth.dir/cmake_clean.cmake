file(REMOVE_RECURSE
  "CMakeFiles/wikimatch_synth.dir/concept_model.cc.o"
  "CMakeFiles/wikimatch_synth.dir/concept_model.cc.o.d"
  "CMakeFiles/wikimatch_synth.dir/generator.cc.o"
  "CMakeFiles/wikimatch_synth.dir/generator.cc.o.d"
  "CMakeFiles/wikimatch_synth.dir/lexicon.cc.o"
  "CMakeFiles/wikimatch_synth.dir/lexicon.cc.o.d"
  "CMakeFiles/wikimatch_synth.dir/mt_oracle.cc.o"
  "CMakeFiles/wikimatch_synth.dir/mt_oracle.cc.o.d"
  "CMakeFiles/wikimatch_synth.dir/value_render.cc.o"
  "CMakeFiles/wikimatch_synth.dir/value_render.cc.o.d"
  "libwikimatch_synth.a"
  "libwikimatch_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikimatch_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
