file(REMOVE_RECURSE
  "CMakeFiles/wikimatch_eval.dir/match_set.cc.o"
  "CMakeFiles/wikimatch_eval.dir/match_set.cc.o.d"
  "CMakeFiles/wikimatch_eval.dir/metrics.cc.o"
  "CMakeFiles/wikimatch_eval.dir/metrics.cc.o.d"
  "CMakeFiles/wikimatch_eval.dir/table.cc.o"
  "CMakeFiles/wikimatch_eval.dir/table.cc.o.d"
  "libwikimatch_eval.a"
  "libwikimatch_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikimatch_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
