# Empty dependencies file for wikimatch_eval.
# This may be replaced when dependencies are built.
