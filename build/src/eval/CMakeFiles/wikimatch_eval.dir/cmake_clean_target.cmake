file(REMOVE_RECURSE
  "libwikimatch_eval.a"
)
