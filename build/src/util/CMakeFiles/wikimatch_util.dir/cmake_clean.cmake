file(REMOVE_RECURSE
  "CMakeFiles/wikimatch_util.dir/logging.cc.o"
  "CMakeFiles/wikimatch_util.dir/logging.cc.o.d"
  "CMakeFiles/wikimatch_util.dir/rng.cc.o"
  "CMakeFiles/wikimatch_util.dir/rng.cc.o.d"
  "CMakeFiles/wikimatch_util.dir/status.cc.o"
  "CMakeFiles/wikimatch_util.dir/status.cc.o.d"
  "CMakeFiles/wikimatch_util.dir/string_util.cc.o"
  "CMakeFiles/wikimatch_util.dir/string_util.cc.o.d"
  "CMakeFiles/wikimatch_util.dir/utf8.cc.o"
  "CMakeFiles/wikimatch_util.dir/utf8.cc.o.d"
  "libwikimatch_util.a"
  "libwikimatch_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikimatch_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
