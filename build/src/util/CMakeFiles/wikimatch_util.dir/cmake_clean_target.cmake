file(REMOVE_RECURSE
  "libwikimatch_util.a"
)
