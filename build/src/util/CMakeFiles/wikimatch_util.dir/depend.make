# Empty dependencies file for wikimatch_util.
# This may be replaced when dependencies are built.
