file(REMOVE_RECURSE
  "libwikimatch_la.a"
)
