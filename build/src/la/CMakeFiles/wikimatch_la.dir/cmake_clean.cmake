file(REMOVE_RECURSE
  "CMakeFiles/wikimatch_la.dir/logistic.cc.o"
  "CMakeFiles/wikimatch_la.dir/logistic.cc.o.d"
  "CMakeFiles/wikimatch_la.dir/matrix.cc.o"
  "CMakeFiles/wikimatch_la.dir/matrix.cc.o.d"
  "CMakeFiles/wikimatch_la.dir/sparse_vector.cc.o"
  "CMakeFiles/wikimatch_la.dir/sparse_vector.cc.o.d"
  "CMakeFiles/wikimatch_la.dir/svd.cc.o"
  "CMakeFiles/wikimatch_la.dir/svd.cc.o.d"
  "libwikimatch_la.a"
  "libwikimatch_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikimatch_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
