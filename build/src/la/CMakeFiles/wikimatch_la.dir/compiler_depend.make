# Empty compiler generated dependencies file for wikimatch_la.
# This may be replaced when dependencies are built.
