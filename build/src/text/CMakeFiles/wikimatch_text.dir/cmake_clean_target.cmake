file(REMOVE_RECURSE
  "libwikimatch_text.a"
)
