# Empty compiler generated dependencies file for wikimatch_text.
# This may be replaced when dependencies are built.
