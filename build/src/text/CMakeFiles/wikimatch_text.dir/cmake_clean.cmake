file(REMOVE_RECURSE
  "CMakeFiles/wikimatch_text.dir/normalize.cc.o"
  "CMakeFiles/wikimatch_text.dir/normalize.cc.o.d"
  "CMakeFiles/wikimatch_text.dir/string_similarity.cc.o"
  "CMakeFiles/wikimatch_text.dir/string_similarity.cc.o.d"
  "CMakeFiles/wikimatch_text.dir/tokenizer.cc.o"
  "CMakeFiles/wikimatch_text.dir/tokenizer.cc.o.d"
  "libwikimatch_text.a"
  "libwikimatch_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikimatch_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
