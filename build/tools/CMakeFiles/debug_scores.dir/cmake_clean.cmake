file(REMOVE_RECURSE
  "CMakeFiles/debug_scores.dir/debug_scores.cpp.o"
  "CMakeFiles/debug_scores.dir/debug_scores.cpp.o.d"
  "debug_scores"
  "debug_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
