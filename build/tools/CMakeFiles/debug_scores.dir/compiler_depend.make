# Empty compiler generated dependencies file for debug_scores.
# This may be replaced when dependencies are built.
