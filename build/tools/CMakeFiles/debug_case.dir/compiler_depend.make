# Empty compiler generated dependencies file for debug_case.
# This may be replaced when dependencies are built.
