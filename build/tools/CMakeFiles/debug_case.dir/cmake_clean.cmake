file(REMOVE_RECURSE
  "CMakeFiles/debug_case.dir/debug_case.cpp.o"
  "CMakeFiles/debug_case.dir/debug_case.cpp.o.d"
  "debug_case"
  "debug_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
