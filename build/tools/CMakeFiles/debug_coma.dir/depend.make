# Empty dependencies file for debug_coma.
# This may be replaced when dependencies are built.
