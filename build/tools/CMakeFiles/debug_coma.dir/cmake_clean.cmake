file(REMOVE_RECURSE
  "CMakeFiles/debug_coma.dir/debug_coma.cpp.o"
  "CMakeFiles/debug_coma.dir/debug_coma.cpp.o.d"
  "debug_coma"
  "debug_coma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_coma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
