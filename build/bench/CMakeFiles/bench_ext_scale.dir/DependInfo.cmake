
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cc" "bench/CMakeFiles/bench_ext_scale.dir/bench_common.cc.o" "gcc" "bench/CMakeFiles/bench_ext_scale.dir/bench_common.cc.o.d"
  "/root/repo/bench/bench_ext_scale.cc" "bench/CMakeFiles/bench_ext_scale.dir/bench_ext_scale.cc.o" "gcc" "bench/CMakeFiles/bench_ext_scale.dir/bench_ext_scale.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/wikimatch_query.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/wikimatch_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/wikimatch_match.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/wikimatch_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/wikimatch_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/wiki/CMakeFiles/wikimatch_wiki.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/wikimatch_la.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wikimatch_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wikimatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
