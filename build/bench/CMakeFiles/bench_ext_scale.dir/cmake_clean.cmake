file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_scale.dir/bench_common.cc.o"
  "CMakeFiles/bench_ext_scale.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_ext_scale.dir/bench_ext_scale.cc.o"
  "CMakeFiles/bench_ext_scale.dir/bench_ext_scale.cc.o.d"
  "bench_ext_scale"
  "bench_ext_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
