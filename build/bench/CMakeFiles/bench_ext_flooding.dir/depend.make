# Empty dependencies file for bench_ext_flooding.
# This may be replaced when dependencies are built.
