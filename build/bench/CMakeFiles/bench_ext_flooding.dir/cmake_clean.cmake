file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_flooding.dir/bench_common.cc.o"
  "CMakeFiles/bench_ext_flooding.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_ext_flooding.dir/bench_ext_flooding.cc.o"
  "CMakeFiles/bench_ext_flooding.dir/bench_ext_flooding.cc.o.d"
  "bench_ext_flooding"
  "bench_ext_flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
