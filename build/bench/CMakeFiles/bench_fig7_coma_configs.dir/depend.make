# Empty dependencies file for bench_fig7_coma_configs.
# This may be replaced when dependencies are built.
