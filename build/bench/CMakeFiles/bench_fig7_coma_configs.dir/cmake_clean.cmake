file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_coma_configs.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig7_coma_configs.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig7_coma_configs.dir/bench_fig7_coma_configs.cc.o"
  "CMakeFiles/bench_fig7_coma_configs.dir/bench_fig7_coma_configs.cc.o.d"
  "bench_fig7_coma_configs"
  "bench_fig7_coma_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_coma_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
