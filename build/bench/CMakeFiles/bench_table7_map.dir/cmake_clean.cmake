file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_map.dir/bench_common.cc.o"
  "CMakeFiles/bench_table7_map.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_table7_map.dir/bench_table7_map.cc.o"
  "CMakeFiles/bench_table7_map.dir/bench_table7_map.cc.o.d"
  "bench_table7_map"
  "bench_table7_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
