# Empty compiler generated dependencies file for bench_table7_map.
# This may be replaced when dependencies are built.
