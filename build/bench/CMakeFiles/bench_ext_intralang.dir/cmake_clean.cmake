file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_intralang.dir/bench_common.cc.o"
  "CMakeFiles/bench_ext_intralang.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_ext_intralang.dir/bench_ext_intralang.cc.o"
  "CMakeFiles/bench_ext_intralang.dir/bench_ext_intralang.cc.o.d"
  "bench_ext_intralang"
  "bench_ext_intralang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_intralang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
