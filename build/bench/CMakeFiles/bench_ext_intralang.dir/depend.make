# Empty dependencies file for bench_ext_intralang.
# This may be replaced when dependencies are built.
