file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_overlap.dir/bench_common.cc.o"
  "CMakeFiles/bench_table5_overlap.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_table5_overlap.dir/bench_table5_overlap.cc.o"
  "CMakeFiles/bench_table5_overlap.dir/bench_table5_overlap.cc.o.d"
  "bench_table5_overlap"
  "bench_table5_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
