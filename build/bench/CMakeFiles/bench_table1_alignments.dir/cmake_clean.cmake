file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_alignments.dir/bench_common.cc.o"
  "CMakeFiles/bench_table1_alignments.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_table1_alignments.dir/bench_table1_alignments.cc.o"
  "CMakeFiles/bench_table1_alignments.dir/bench_table1_alignments.cc.o.d"
  "bench_table1_alignments"
  "bench_table1_alignments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_alignments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
