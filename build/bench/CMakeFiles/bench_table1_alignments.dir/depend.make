# Empty dependencies file for bench_table1_alignments.
# This may be replaced when dependencies are built.
