file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ziggurat.dir/bench_common.cc.o"
  "CMakeFiles/bench_ext_ziggurat.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_ext_ziggurat.dir/bench_ext_ziggurat.cc.o"
  "CMakeFiles/bench_ext_ziggurat.dir/bench_ext_ziggurat.cc.o.d"
  "bench_ext_ziggurat"
  "bench_ext_ziggurat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ziggurat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
