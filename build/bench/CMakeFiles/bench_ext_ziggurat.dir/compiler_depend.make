# Empty compiler generated dependencies file for bench_ext_ziggurat.
# This may be replaced when dependencies are built.
