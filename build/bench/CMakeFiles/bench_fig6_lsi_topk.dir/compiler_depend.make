# Empty compiler generated dependencies file for bench_fig6_lsi_topk.
# This may be replaced when dependencies are built.
