file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_lsi_topk.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig6_lsi_topk.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig6_lsi_topk.dir/bench_fig6_lsi_topk.cc.o"
  "CMakeFiles/bench_fig6_lsi_topk.dir/bench_fig6_lsi_topk.cc.o.d"
  "bench_fig6_lsi_topk"
  "bench_fig6_lsi_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lsi_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
