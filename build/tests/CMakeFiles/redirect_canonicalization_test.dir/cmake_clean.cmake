file(REMOVE_RECURSE
  "CMakeFiles/redirect_canonicalization_test.dir/redirect_canonicalization_test.cc.o"
  "CMakeFiles/redirect_canonicalization_test.dir/redirect_canonicalization_test.cc.o.d"
  "redirect_canonicalization_test"
  "redirect_canonicalization_test.pdb"
  "redirect_canonicalization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redirect_canonicalization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
