# Empty dependencies file for redirect_canonicalization_test.
# This may be replaced when dependencies are built.
