# Empty compiler generated dependencies file for ziggurat_test.
# This may be replaced when dependencies are built.
