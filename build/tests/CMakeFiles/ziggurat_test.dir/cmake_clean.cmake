file(REMOVE_RECURSE
  "CMakeFiles/ziggurat_test.dir/ziggurat_test.cc.o"
  "CMakeFiles/ziggurat_test.dir/ziggurat_test.cc.o.d"
  "ziggurat_test"
  "ziggurat_test.pdb"
  "ziggurat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziggurat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
