# Empty compiler generated dependencies file for wiki_test.
# This may be replaced when dependencies are built.
