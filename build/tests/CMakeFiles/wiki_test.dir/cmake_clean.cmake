file(REMOVE_RECURSE
  "CMakeFiles/wiki_test.dir/wiki_test.cc.o"
  "CMakeFiles/wiki_test.dir/wiki_test.cc.o.d"
  "wiki_test"
  "wiki_test.pdb"
  "wiki_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiki_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
