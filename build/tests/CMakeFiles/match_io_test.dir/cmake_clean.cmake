file(REMOVE_RECURSE
  "CMakeFiles/match_io_test.dir/match_io_test.cc.o"
  "CMakeFiles/match_io_test.dir/match_io_test.cc.o.d"
  "match_io_test"
  "match_io_test.pdb"
  "match_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
