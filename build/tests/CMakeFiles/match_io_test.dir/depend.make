# Empty dependencies file for match_io_test.
# This may be replaced when dependencies are built.
