# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/wiki_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/match_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/flooding_test[1]_include.cmake")
include("/root/repo/build/tests/ziggurat_test[1]_include.cmake")
include("/root/repo/build/tests/match_io_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/redirect_canonicalization_test[1]_include.cmake")
