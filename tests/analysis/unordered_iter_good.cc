// @file: src/serve/use.cc
#include <map>
#include <unordered_map>
#include <vector>

void Use(int);
std::vector<int> SortedKeys(const std::unordered_map<int, int>& m);

void Emit() {
  // Ordered containers iterate deterministically.
  std::map<int, int> ordered;
  for (const auto& [k, v] : ordered) Use(v);

  // Lookups into an unordered container are fine; only iteration is not.
  std::unordered_map<int, int> index;
  Use(index.count(3) > 0 ? index.at(3) : 0);

  // Iterating a function's RESULT is fine — the call may return an
  // ordered view of the container.
  for (int k : SortedKeys(index)) Use(k);

  // Order provably cannot reach output: justified escape hatch.
  int sum = 0;
  for (const auto& [k, v] : index) sum += v;  // NOLINT(unordered-iter)
  Use(sum);
}
