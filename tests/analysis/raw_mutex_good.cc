// @file: src/util/fixture.cc
#include <mutex>

// util/ is exempt: it is where the annotated wrappers live.
std::mutex g_impl_mu;

// @file: src/match/user.cc
#include "util/mutex.h"

util::Mutex g_mu;

void Use() { util::MutexLock lock(g_mu); }

// Mentions in comments/strings are fine: std::mutex
const char* Doc() { return "std::mutex"; }
