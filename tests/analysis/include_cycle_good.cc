// @file: src/match/a.h
// A diamond is fine — only a directed cycle is banned.
#include "match/b.h"
#include "match/c.h"

// @file: src/match/b.h
#include "match/d.h"

// @file: src/match/c.h
#include "match/d.h"

// @file: src/match/d.h
namespace wikimatch {}
