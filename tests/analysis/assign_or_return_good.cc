// @file: src/match/fixture.cc
#include "util/status.h"

bool Cond();
util::Result<int> Get();

util::Status F() {
  if (Cond()) {
    WIKIMATCH_ASSIGN_OR_RETURN(int a, Get());
  }
  WIKIMATCH_ASSIGN_OR_RETURN(int b, Get());
  WIKIMATCH_ASSIGN_OR_RETURN(int c, Get());
  return util::Status::OK();
}
