// @file: src/match/fixture.h
#include "util/mutex.h"

// No field in this header is annotated WIKIMATCH_GUARDED_BY, so every
// mutex member flags; `state_lock_` additionally violates the *mu*
// naming convention.
class Cache {
 private:
  util::Mutex mu_;  // LINT[guarded-by]
  util::Mutex state_lock_;  // LINT[guarded-by]
  int hits_ = 0;
};
