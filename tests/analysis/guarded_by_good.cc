// @file: src/match/fixture.h
#include "util/mutex.h"
#include "util/thread_annotations.h"

class Cache {
 private:
  util::Mutex mu_;
  int hits_ WIKIMATCH_GUARDED_BY(mu_) = 0;
};

// @file: src/match/fixture.cc
#include "match/fixture.h"

// The rule only applies to headers; a .cc-local mutex (rare, but legal
// for file-scope state) is std-banned by raw-mutex instead.
util::Mutex g_mu;
