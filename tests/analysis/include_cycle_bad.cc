// @file: src/match/a.h
#include "match/b.h"
namespace wikimatch {}

// @file: src/match/b.h
// Header guards make this compile; it is still a banned cycle. The
// report anchors at the include that closes it.
#include "match/a.h"  // LINT[include-cycle]
namespace wikimatch {}
