// @file: src/util/low.h
namespace wikimatch {}

// @file: src/text/mid.h
#include "util/low.h"

// @file: src/util/bad.cc
// util is the bottom layer: it may not include upward into text.
#include "text/mid.h"  // LINT[layering]

// @file: src/foo/undeclared.cc
// Module `foo` is not in the declared DAG at all.
#include "util/low.h"  // LINT[layering]
