// @file: src/match/fixture.cc
#include <string>

int* Leak() {
  int* p = new int(4);  // LINT[naked-new]
  return p;
}

std::string* MultiLine() {
  // The legacy regex only looked at single lines; the token stream sees
  // the allocation regardless of where the line breaks fall.
  std::string* q =
      new std::string("x");  // LINT[naked-new]
  return q;
}
