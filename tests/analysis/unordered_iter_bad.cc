// @file: src/serve/state.h
#include <unordered_map>

struct State {
  std::unordered_map<int, int> table;
};

// @file: src/serve/use.cc
#include <unordered_map>

#include "serve/state.h"

void Use(int);

void Emit(State* s) {
  // Member declared in a transitively included header.
  for (const auto& [k, v] : s->table) {  // LINT[unordered-iter]
    Use(v);
  }
  auto it = s->table.begin();  // LINT[unordered-iter]
  Use(it->second);
}

using FdMap = std::unordered_map<int, int>;

void Drain() {
  FdMap conns;
  for (auto& kv : conns) {  // LINT[unordered-iter]
    Use(kv.second);
  }
}
