// @file: src/net/fixture.cc
#include <thread>

// net/ is exempt: its event-loop threads are the serving substrate, not
// work that belongs on the shared pool.
void Loop();
void Spawn() { std::thread t(Loop); t.join(); }

// @file: src/match/user.cc
#include "util/thread_pool.h"

// Comment mention only: std::thread
void Use() {}
