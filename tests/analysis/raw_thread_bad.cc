// @file: src/match/fixture.cc
#include <thread>

void Work();

void Spawn() {
  std::thread t(Work);  // LINT[raw-thread]
  t.join();
  std::jthread j(Work);  // LINT[raw-thread]
}
