// @file: src/match/fixture.cc
#include "util/status.h"

bool Cond();
util::Result<int> Get();

util::Status F() {
  // Unbraced control body: the macro expands to multiple statements, so
  // only the first is governed by the condition. The same-line form was a
  // false negative of the legacy regex (it only looked one line back).
  if (Cond()) WIKIMATCH_ASSIGN_OR_RETURN(int a, Get());  // LINT[assign-or-return]
  if (Cond()) {
  } else
    WIKIMATCH_ASSIGN_OR_RETURN(int b, Get());  // LINT[assign-or-return]
  // Two expansions on one line: the second shadows the first's internal
  // status variable.
  WIKIMATCH_ASSIGN_OR_RETURN(int c, Get()); WIKIMATCH_ASSIGN_OR_RETURN(int d, Get());  // LINT[assign-or-return]
  return util::Status::OK();
}
