// @file: src/match/fixture.cc
#include <memory>
#include <string>

void Owned() {
  auto a = std::make_unique<int>(3);
  std::unique_ptr<std::string> b(new std::string("x"));
  auto c = std::make_shared<std::string>("y");
}

// `new` inside comments or literals is not an allocation: new Foo()
const char* Text() { return "new Foo()"; }

struct Pool {
  void* operator new(unsigned long n);  // overload decl, not an allocation
};
