// @file: src/match/fixture.cc
#include <condition_variable>
#include <mutex>

std::mutex g_mu;  // LINT[raw-mutex]

// condition_variable_any was a false negative of the legacy regex (it
// only matched `condition_variable\b` forms it listed explicitly).
std::condition_variable_any g_cv;  // LINT[raw-mutex]

void TakeBoth() {
  std  // LINT[raw-mutex]
      ::scoped_lock both(g_mu);
}
