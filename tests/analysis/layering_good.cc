// @file: src/util/low.h
namespace wikimatch {}

// @file: src/text/mid.h
#include "util/low.h"

// @file: src/match/high.cc
#include "text/mid.h"
#include "util/low.h"

// @file: src/match/sibling.cc
// Same-module includes are always allowed.
#include "match/high.cc"
