// Tests for the runtime lock-order deadlock detector (util/deadlock.h).
//
// The LockOrderRegistry engine is always compiled, so the graph logic is
// tested in every build with explicit thread ids and fake lock addresses.
// The end-to-end hook path (util::Mutex feeding the global registry and
// aborting on a cycle) only exists under the WIKIMATCH_DEADLOCK_DEBUG
// build option; that test runs as a death test there and skips elsewhere.

#include <gtest/gtest.h>

#include "util/deadlock.h"
#include "util/mutex.h"

namespace wikimatch {
namespace {

// Fake lock addresses: the registry only keys on pointers.
struct FakeLocks {
  int a = 0, b = 0, c = 0;
  const void* A() const { return &a; }
  const void* B() const { return &b; }
  const void* C() const { return &c; }
};

TEST(LockOrderRegistry, ConsistentOrderIsClean) {
  util::LockOrderRegistry reg;
  FakeLocks l;
  for (int round = 0; round < 3; ++round) {
    EXPECT_FALSE(reg.NoteAcquire(1, l.A()).has_value());
    EXPECT_FALSE(reg.NoteAcquire(1, l.B()).has_value());
    reg.NoteRelease(1, l.B());
    reg.NoteRelease(1, l.A());
  }
  EXPECT_EQ(reg.NumEdges(), 1u);  // A -> B, recorded once
}

TEST(LockOrderRegistry, InvertedOrderReportsCycle) {
  util::LockOrderRegistry reg;
  FakeLocks l;
  EXPECT_FALSE(reg.NoteAcquire(1, l.A()).has_value());
  EXPECT_FALSE(reg.NoteAcquire(1, l.B()).has_value());
  reg.NoteRelease(1, l.B());
  reg.NoteRelease(1, l.A());

  EXPECT_FALSE(reg.NoteAcquire(1, l.B()).has_value());
  auto report = reg.NoteAcquire(1, l.A());
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->acquiring, l.A());
  EXPECT_EQ(report->holding, l.B());
  ASSERT_EQ(report->path.size(), 2u);
  EXPECT_EQ(report->path[0], l.A());
  EXPECT_EQ(report->path[1], l.B());
  // The report carries both acquisition stacks, clearly labeled.
  std::string text = report->Format();
  EXPECT_NE(text.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(text.find("this acquisition"), std::string::npos);
  EXPECT_NE(text.find("prior conflicting acquisition"), std::string::npos);
}

TEST(LockOrderRegistry, ThreeLockCycleReportsFullPath) {
  util::LockOrderRegistry reg;
  FakeLocks l;
  auto pair = [&](const void* x, const void* y) {
    EXPECT_FALSE(reg.NoteAcquire(7, x).has_value());
    EXPECT_FALSE(reg.NoteAcquire(7, y).has_value());
    reg.NoteRelease(7, y);
    reg.NoteRelease(7, x);
  };
  pair(l.A(), l.B());
  pair(l.B(), l.C());
  EXPECT_FALSE(reg.NoteAcquire(7, l.C()).has_value());
  auto report = reg.NoteAcquire(7, l.A());
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->acquiring, l.A());
  EXPECT_EQ(report->holding, l.C());
  ASSERT_EQ(report->path.size(), 3u);  // A -> B -> C, closed by C -> A
  EXPECT_EQ(report->path[0], l.A());
  EXPECT_EQ(report->path[2], l.C());
}

TEST(LockOrderRegistry, CycleAcrossThreadsIsDetected) {
  util::LockOrderRegistry reg;
  FakeLocks l;
  // Thread 1 establishes A -> B and keeps holding both; thread 2 holds B
  // and tries A. A real run would deadlock; the detector reports instead.
  EXPECT_FALSE(reg.NoteAcquire(1, l.A()).has_value());
  EXPECT_FALSE(reg.NoteAcquire(1, l.B()).has_value());
  EXPECT_FALSE(reg.NoteAcquire(2, l.B()).has_value());
  EXPECT_TRUE(reg.NoteAcquire(2, l.A()).has_value());
}

TEST(LockOrderRegistry, RecursiveAcquisitionIsNotACycle) {
  util::LockOrderRegistry reg;
  FakeLocks l;
  EXPECT_FALSE(reg.NoteAcquire(1, l.A()).has_value());
  EXPECT_FALSE(reg.NoteAcquire(1, l.A()).has_value());
  EXPECT_EQ(reg.NumEdges(), 0u);
}

TEST(LockOrderRegistry, OutOfOrderReleaseKeepsStacksBalanced) {
  util::LockOrderRegistry reg;
  FakeLocks l;
  EXPECT_FALSE(reg.NoteAcquire(1, l.A()).has_value());
  EXPECT_FALSE(reg.NoteAcquire(1, l.B()).has_value());
  reg.NoteRelease(1, l.A());  // released while B still held
  EXPECT_FALSE(reg.NoteAcquire(1, l.C()).has_value());  // edge B -> C only
  EXPECT_EQ(reg.NumEdges(), 2u);  // A -> B and B -> C; no A -> C
  reg.NoteRelease(1, l.C());
  reg.NoteRelease(1, l.B());
}

TEST(LockOrderRegistry, ForgetDropsEdgesForDestroyedMutex) {
  util::LockOrderRegistry reg;
  FakeLocks l;
  EXPECT_FALSE(reg.NoteAcquire(1, l.A()).has_value());
  EXPECT_FALSE(reg.NoteAcquire(1, l.B()).has_value());
  reg.NoteRelease(1, l.B());
  reg.NoteRelease(1, l.A());
  reg.Forget(l.B());  // B's storage is gone; its address may be reused
  EXPECT_EQ(reg.NumEdges(), 0u);
  EXPECT_FALSE(reg.NoteAcquire(1, l.B()).has_value());
  EXPECT_FALSE(reg.NoteAcquire(1, l.A()).has_value());  // no stale cycle
}

#if defined(WIKIMATCH_DEADLOCK_DEBUG)
TEST(DeadlockHookDeathTest, InvertedUtilMutexOrderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The ISSUE acceptance scenario: two util::Mutexes acquired in inverted
  // order under WIKIMATCH_DEADLOCK_DEBUG must abort with a cycle report
  // carrying both acquisition stacks.
  EXPECT_DEATH(
      {
        util::Mutex a;
        util::Mutex b;
        {
          util::MutexLock la(a);
          util::MutexLock lb(b);
        }
        {
          util::MutexLock lb(b);
          util::MutexLock la(a);
        }
      },
      "prior conflicting acquisition");
}
#else
TEST(DeadlockHookDeathTest, InvertedUtilMutexOrderAborts) {
  GTEST_SKIP() << "hooks are compiled out; configure with "
                  "-DWIKIMATCH_DEADLOCK_DEBUG=ON (tools/check.sh does this "
                  "for its TSan stage)";
}
#endif

}  // namespace
}  // namespace wikimatch
