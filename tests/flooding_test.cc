// Tests for the similarity-flooding extension (the paper's named future
// work): fixpoint behavior on hand-built graphs and end-to-end quality on
// a generated corpus.

#include <gtest/gtest.h>

#include "match/pipeline.h"
#include "match/similarity_flooding.h"
#include "synth/generator.h"

namespace wikimatch {
namespace match {
namespace {

// Hand data: two pt attributes and two en attributes. The pair (a0, b0)
// has strong initial similarity; (a1, b1) has none of its own but
// co-occurs with the strong pair on both sides — flooding must lift it.
TypePairData HandData() {
  TypePairData data;
  data.lang_a = "pt";
  data.lang_b = "en";
  data.num_duals = 6;
  auto add = [&](const std::string& lang, const std::string& name,
                 std::initializer_list<uint32_t> docs) {
    AttributeGroup g;
    g.key = {lang, name};
    g.occurrences = static_cast<double>(docs.size());
    g.dual_docs.insert(docs.begin(), docs.end());
    data.groups.push_back(std::move(g));
  };
  add("pt", "a0", {0, 1, 2, 3});  // 0
  add("pt", "a1", {0, 1, 2, 3});  // 1
  add("en", "b0", {0, 1, 2, 3});  // 2
  add("en", "b1", {0, 1, 2, 3});  // 3
  // Strong value agreement only for (a0, b0): give them one shared term.
  uint32_t term = 1;
  data.groups[0].values.Add(term, 10.0);
  data.groups[2].values.Add(term, 10.0);
  // Distinct junk terms for a1/b1 so their direct similarity is 0.
  data.groups[1].values.Add(50, 5.0);
  data.groups[3].values.Add(60, 5.0);
  // Mono-language co-occurrence: a0~a1 and b0~b1.
  data.co_occur[{0, 1}] = 4.0;
  data.co_occur[{2, 3}] = 4.0;
  return data;
}

TEST(FloodingTest, PropagatesThroughCoOccurrence) {
  FloodingConfig config;
  config.lsi_blend = 0.0;  // isolate the propagation effect
  config.select_threshold = 0.3;
  auto result = RunSimilarityFlooding(HandData(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->iterations, 0);
  // The strong pair is selected...
  EXPECT_TRUE(result->matches.AreMatched({"pt", "a0"}, {"en", "b0"}));
  // ...and the structurally supported pair was lifted above pairs with no
  // support: find sigma of (a1, b1) vs (a1, b0).
  double s_good = -1.0;
  double s_cross = -1.0;
  for (size_t n = 0; n < result->pairs.size(); ++n) {
    const auto& [a, b] = result->pairs[n];
    if (a.name == "a1" && b.name == "b1") s_good = result->similarity[n];
    if (a.name == "a1" && b.name == "b0") s_cross = result->similarity[n];
  }
  ASSERT_GE(s_good, 0.0);
  EXPECT_GT(s_good, 0.1);       // Received flooded mass.
  EXPECT_GE(s_good, s_cross);   // More than the structurally wrong pair.
}

TEST(FloodingTest, NoEdgesMeansInitialSimilaritiesDecide) {
  TypePairData data = HandData();
  data.co_occur.clear();
  FloodingConfig config;
  config.lsi_blend = 0.0;
  config.select_threshold = 0.5;
  auto result = RunSimilarityFlooding(data, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.AreMatched({"pt", "a0"}, {"en", "b0"}));
  EXPECT_FALSE(result->matches.AreMatched({"pt", "a1"}, {"en", "b1"}));
}

TEST(FloodingTest, EmptySidesAreSafe) {
  TypePairData data;
  data.lang_a = "pt";
  data.lang_b = "en";
  auto result = RunSimilarityFlooding(data);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.empty());
  EXPECT_TRUE(result->pairs.empty());
}

TEST(FloodingTest, ConvergesWithinBudget) {
  FloodingConfig config;
  config.max_iterations = 200;
  auto result = RunSimilarityFlooding(HandData(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->iterations, 200);
}

TEST(FloodingTest, SimilaritiesNormalized) {
  auto result = RunSimilarityFlooding(HandData());
  ASSERT_TRUE(result.ok());
  for (double s : result->similarity) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-12);
  }
}

TEST(FloodingTest, ReciprocalSelectionIsStricter) {
  FloodingConfig strict;
  strict.select_threshold = 0.05;
  FloodingConfig loose = strict;
  loose.reciprocal = false;
  auto strict_result = RunSimilarityFlooding(HandData(), strict);
  auto loose_result = RunSimilarityFlooding(HandData(), loose);
  ASSERT_TRUE(strict_result.ok());
  ASSERT_TRUE(loose_result.ok());
  EXPECT_LE(strict_result->matches.CrossLanguagePairs("pt", "en").size(),
            loose_result->matches.CrossLanguagePairs("pt", "en").size());
}

TEST(FloodingTest, EndToEndQualityOnTinyCorpus) {
  synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(77));
  auto gc = generator.Generate();
  ASSERT_TRUE(gc.ok());
  MatchPipeline pipeline(&gc->corpus);
  auto data = pipeline.BuildPair("pt", "filme", "en", "film");
  ASSERT_TRUE(data.ok());
  auto result = RunSimilarityFlooding(*data);
  ASSERT_TRUE(result.ok());
  const eval::MatchSet& truth = gc->ground_truth.at("film");
  size_t correct = 0;
  size_t total = 0;
  for (const auto& [a, b] :
       result->matches.CrossLanguagePairs("pt", "en")) {
    ++total;
    if (truth.AreMatched(a, b)) ++correct;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.6);
}

}  // namespace
}  // namespace match
}  // namespace wikimatch
