// ShardedLruCache unit tests: edge-capacity eviction, exact counter
// accounting, LRU promotion, and the generation-keyed invalidation scheme
// MatchService::Handle relies on — exercised here with inserts racing a
// generation swap, so the TSan stage of tools/check.sh doubles as a race
// detector for the shard locking.

#include "serve/lru_cache.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wikimatch {
namespace serve {
namespace {

TEST(ShardedLruCacheTest, CapacityZeroDisablesCaching) {
  ShardedLruCache cache(0);
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));
  cache.Put("a", "1");
  EXPECT_FALSE(cache.Get("a", &value));
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.capacity, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ShardedLruCacheTest, CapacityOneEvictsPreviousEntry) {
  ShardedLruCache cache(1, /*num_shards=*/1);
  cache.Put("a", "1");
  cache.Put("b", "2");  // evicts "a"
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));
  ASSERT_TRUE(cache.Get("b", &value));
  EXPECT_EQ(value, "2");
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ShardedLruCacheTest, GetPromotesToMostRecentlyUsed) {
  ShardedLruCache cache(2, /*num_shards=*/1);
  cache.Put("a", "1");
  cache.Put("b", "2");
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));  // "b" is now least recent
  cache.Put("c", "3");                  // evicts "b", not "a"
  EXPECT_TRUE(cache.Get("a", &value));
  EXPECT_FALSE(cache.Get("b", &value));
  EXPECT_TRUE(cache.Get("c", &value));
}

TEST(ShardedLruCacheTest, PutRefreshesExistingKeyWithoutEviction) {
  ShardedLruCache cache(2, /*num_shards=*/1);
  cache.Put("a", "1");
  cache.Put("b", "2");
  cache.Put("a", "updated");  // refresh, not an insert — nothing evicted
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));
  EXPECT_EQ(value, "updated");
  EXPECT_TRUE(cache.Get("b", &value));
  EXPECT_EQ(cache.Stats().evictions, 0u);
}

TEST(ShardedLruCacheTest, StatsCountersAreExact) {
  ShardedLruCache cache(2, /*num_shards=*/1);
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));  // miss 1
  cache.Put("a", "1");
  EXPECT_TRUE(cache.Get("a", &value));   // hit 1
  cache.Put("b", "2");
  cache.Put("c", "3");                   // eviction 1 (of "a", LRU)
  EXPECT_FALSE(cache.Get("a", &value));  // miss 2
  EXPECT_TRUE(cache.Get("b", &value));   // hit 2
  EXPECT_TRUE(cache.Get("c", &value));   // hit 3
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(ShardedLruCacheTest, ClearEmptiesEveryShard) {
  ShardedLruCache cache(64, /*num_shards=*/4);
  for (int i = 0; i < 32; ++i) {
    cache.Put("key" + std::to_string(i), "v");
  }
  EXPECT_GT(cache.Stats().entries, 0u);
  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
  std::string value;
  EXPECT_FALSE(cache.Get("key0", &value));
}

// MatchService::Handle prefixes every cache key with the generation's load
// sequence, so a snapshot swap invalidates older entries by making them
// unaddressable (they age out of the LRU). This test drives that scheme
// with writer threads racing a mid-flight generation bump against readers:
// the invariant is that a hit for a key built as gen:payload always
// returns the value stored for exactly that generation — never a stale
// generation's value — and the counters still add up. Under the TSan
// build (tools/check.sh) this doubles as a race check on the shard locks.
TEST(ShardedLruCacheTest, GenerationKeyedInvalidationRacingInserts) {
  ShardedLruCache cache(256, /*num_shards=*/8);
  std::atomic<uint64_t> generation{1};
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kOpsPerThread = 2000;

  auto key_for = [](uint64_t gen, int i) {
    return std::to_string(gen) + '\x1f' + "req" + std::to_string(i % 97);
  };
  auto value_for = [](uint64_t gen, int i) {
    return "gen" + std::to_string(gen) + ":resp" + std::to_string(i % 97);
  };

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = w; i < kOpsPerThread; ++i) {
        uint64_t gen = generation.load(std::memory_order_relaxed);
        cache.Put(key_for(gen, i), value_for(gen, i));
      }
    });
  }
  std::atomic<uint64_t> bad_hits{0};
  std::atomic<uint64_t> reader_lookups{0};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::string value;
      for (int i = r; i < kOpsPerThread; ++i) {
        uint64_t gen = generation.load(std::memory_order_relaxed);
        reader_lookups.fetch_add(1, std::memory_order_relaxed);
        if (cache.Get(key_for(gen, i), &value) &&
            value != value_for(gen, i)) {
          bad_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // The "reloader": bumps the generation mid-flight, twice.
  threads.emplace_back([&] {
    for (int bump = 0; bump < 2; ++bump) {
      std::this_thread::yield();
      generation.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_EQ(bad_hits.load(), 0u) << "a generation-keyed hit returned "
                                    "another generation's value";
  CacheStats stats = cache.Stats();
  // Every reader lookup is exactly one hit or one miss; writers never read.
  EXPECT_EQ(stats.hits + stats.misses, reader_lookups.load());
  EXPECT_LE(stats.entries, stats.capacity);

  // After the final swap, old-generation keys are unaddressable by
  // construction; fill the cache with distinct current-generation entries
  // (4x total capacity, so every shard cycles fully) and verify the stale
  // ones age out entirely.
  uint64_t final_gen = generation.load();
  for (int i = 0; i < 1024; ++i) {
    cache.Put(std::to_string(final_gen) + '\x1f' + "flush" +
                  std::to_string(i),
              "x");
  }
  std::string value;
  for (int i = 0; i < 97; ++i) {
    EXPECT_FALSE(cache.Get(key_for(1, i), &value))
        << "stale generation-1 entry survived a full current-gen refill";
  }
}

}  // namespace
}  // namespace serve
}  // namespace wikimatch
