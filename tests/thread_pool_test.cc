// Tests for the shared work-stealing thread pool (util/thread_pool.h):
// loop coverage and determinism, work stealing under skewed index costs,
// reentrancy (For inside For, For inside Async), TaskHandle wait/steal/
// error semantics, pool injection, DefaultThreads resolution — and the
// regression this subsystem exists for: a nested pipeline run must not
// put more threads on the box than the pool owns (the pre-pool
// ParallelFor spawned fresh std::threads per call, so pipeline-over-pairs
// times join-within-pair multiplied to T² workers).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "match/pipeline.h"
#include "synth/generator.h"
#include "util/thread_pool.h"

namespace wikimatch {
namespace {

// Live threads in this process, counted from /proc/self/task (Linux).
size_t CountProcessThreads() {
  size_t n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    (void)entry;
    ++n;
  }
  return n;
}

// Spin until `pred` holds, failing the test after ~10s of wall clock.
template <typename Pred>
void SpinUntil(const Pred& pred, const char* what) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) {
      FAIL() << "timed out waiting for: " << what;
    }
    std::this_thread::yield();
  }
}

TEST(ThreadPoolTest, ForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.For(hits.size(), 8,
           [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroItemsAndSingleWorkerRunInline) {
  util::ThreadPool pool(2);
  bool called = false;
  pool.For(0, 8, [&](size_t) { called = true; });
  EXPECT_FALSE(called);

  // max_workers <= 1 runs on the calling thread, in order.
  std::vector<int> order;
  pool.For(5, 1, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, CallerParticipatesInItsOwnLoop) {
  // With zero helpers available (every worker pinned by a blocker task),
  // the caller alone must finish the loop: progress never requires a free
  // worker.
  util::ThreadPool pool(1);
  std::atomic<bool> release{false};
  util::TaskHandle blocker = pool.Async([&]() {
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  std::atomic<size_t> sum{0};
  pool.For(100, 8,
           [&](size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), 4950u);
  release.store(true, std::memory_order_release);
  blocker.Wait();
}

TEST(ThreadPoolTest, WorkStealingBalancesSkewedCosts) {
  // Index 0 blocks until every other index has retired. That can only
  // happen if idle workers attach to the published job and drain the
  // remaining indexes while one participant is stuck — the index-level
  // steal that balances skewed per-index costs.
  util::ThreadPool pool(3);
  std::atomic<size_t> others_done{0};
  std::atomic<bool> timed_out{false};
  pool.For(8, 4, [&](size_t i) {
    if (i == 0) {
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (others_done.load(std::memory_order_acquire) < 7) {
        if (std::chrono::steady_clock::now() > deadline) {
          timed_out.store(true);
          return;
        }
        std::this_thread::yield();
      }
    } else {
      others_done.fetch_add(1, std::memory_order_acq_rel);
    }
  });
  EXPECT_FALSE(timed_out.load()) << "no worker stole the remaining indexes";
  EXPECT_EQ(others_done.load(), 7u);
}

TEST(ThreadPoolTest, ForExceptionRethrownOnCallingThread) {
  util::ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  try {
    pool.For(1000, 8, [&](size_t i) {
      if (i == 137) throw std::runtime_error("index 137 failed");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 137 failed");
  }
  // Handout stops after the failure; indexes that did run did so before
  // the call returned.
  EXPECT_LE(ran.load(), 999u);
}

TEST(ThreadPoolTest, EveryIndexThrowingYieldsExactlyOneRethrow) {
  // All participants throw; exactly the first captured exception (in
  // completion order) may surface, and the pool must stay usable after.
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.For(64, 8,
                        [&](size_t i) {
                          throw std::runtime_error("fail " +
                                                   std::to_string(i));
                        }),
               std::runtime_error);
  std::atomic<size_t> sum{0};
  pool.For(10, 8,
           [&](size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, ReentrantForInsideFor) {
  // The oversubscription bug's shape: an outer loop whose bodies run
  // inner loops on the same pool. Must neither deadlock nor miss indexes.
  util::ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(16 * 32);
  pool.For(16, 8, [&](size_t outer) {
    pool.For(32, 8, [&](size_t inner) {
      hits[outer * 32 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ForInsideAsyncTask) {
  util::ThreadPool pool(2);
  std::atomic<size_t> sum{0};
  util::TaskHandle handle = pool.Async([&]() {
    pool.For(100, 4,
             [&](size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  });
  handle.Wait();
  EXPECT_EQ(handle.error(), nullptr);
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, AsyncRunsAndWaitIsIdempotent) {
  util::ThreadPool pool(2);
  std::atomic<bool> ran{false};
  util::TaskHandle handle = pool.Async([&]() { ran.store(true); });
  handle.Wait();
  handle.Wait();  // second Wait is a no-op
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(handle.error(), nullptr);
}

TEST(ThreadPoolTest, AsyncExceptionCapturedInHandle) {
  util::ThreadPool pool(2);
  util::TaskHandle handle =
      pool.Async([]() { throw std::runtime_error("async boom"); });
  handle.Wait();
  ASSERT_NE(handle.error(), nullptr);
  try {
    std::rethrow_exception(handle.error());
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "async boom");
  }
}

TEST(ThreadPoolTest, WaitStealsQueuedTaskBehindSaturatedPool) {
  // The only worker is pinned; Wait on the still-queued task must run it
  // on the waiting thread instead of deadlocking.
  util::ThreadPool pool(1);
  std::atomic<bool> release{false};
  util::TaskHandle blocker = pool.Async([&]() {
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  std::thread::id ran_on{};
  util::TaskHandle queued =
      pool.Async([&]() { ran_on = std::this_thread::get_id(); });
  queued.Wait();
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  release.store(true, std::memory_order_release);
  blocker.Wait();
}

TEST(ThreadPoolTest, EmptyHandleIsInert) {
  util::TaskHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.Wait();  // no-op
  EXPECT_EQ(handle.error(), nullptr);
}

TEST(ThreadPoolTest, DestructorCompletesQueuedTasks) {
  std::atomic<bool> ran{false};
  util::TaskHandle handle;
  {
    util::ThreadPool pool(1);
    std::atomic<bool> release{false};
    util::TaskHandle blocker = pool.Async([&]() {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    handle = pool.Async([&]() { ran.store(true); });
    release.store(true, std::memory_order_release);
    blocker.Wait();
    // The queued task may or may not have started; either way the
    // destructor must not strand it.
  }
  EXPECT_TRUE(ran.load());
  handle.Wait();  // safe after the pool is gone: the task completed
  EXPECT_EQ(handle.error(), nullptr);
}

TEST(ThreadPoolTest, ScopedOverrideRedirectsGlobalAndNests) {
  util::ThreadPool* base = util::ThreadPool::Global();
  util::ThreadPool inner_pool(2);
  util::ThreadPool innermost_pool(3);
  {
    util::ScopedThreadPoolOverride outer(&inner_pool);
    EXPECT_EQ(util::ThreadPool::Global(), &inner_pool);
    {
      util::ScopedThreadPoolOverride nested(&innermost_pool);
      EXPECT_EQ(util::ThreadPool::Global(), &innermost_pool);
    }
    EXPECT_EQ(util::ThreadPool::Global(), &inner_pool);
  }
  EXPECT_EQ(util::ThreadPool::Global(), base);
}

TEST(ThreadPoolTest, DefaultThreadsHonorsEnvOverride) {
  ASSERT_EQ(setenv("WIKIMATCH_THREADS", "3", 1), 0);
  EXPECT_EQ(util::DefaultThreads(), 3u);
  // Non-positive or non-numeric values fall through to detection.
  ASSERT_EQ(setenv("WIKIMATCH_THREADS", "0", 1), 0);
  size_t detected = util::DefaultThreads();
  EXPECT_GE(detected, 1u);
  ASSERT_EQ(setenv("WIKIMATCH_THREADS", "banana", 1), 0);
  EXPECT_EQ(util::DefaultThreads(), detected);
  ASSERT_EQ(unsetenv("WIKIMATCH_THREADS"), 0);
  EXPECT_GE(util::DefaultThreads(), 1u);
}

// The regression the tentpole fixes: a pipeline run that is parallel at
// BOTH levels (across type pairs, and across join rows within each pair)
// must execute entirely on the injected pool — total live threads in the
// process never exceeds the pre-run count. The pre-pool implementation
// spawned outer*inner fresh std::threads and this sampler caught them.
TEST(ThreadPoolTest, NestedPipelineRunDoesNotOversubscribe) {
  synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(123));
  auto gc = generator.Generate();
  ASSERT_TRUE(gc.ok());
  match::MatchPipeline pipeline(&gc->corpus);

  util::ThreadPool pool(4);
  util::ScopedThreadPoolOverride override_pool(&pool);

  match::PipelineOptions options;
  options.num_threads = 4;          // across type pairs
  options.matcher.num_threads = 4;  // within each pair's similarity join

  // One sampler thread polls the kernel's thread count for the duration
  // of the run; it is itself part of the baseline.
  std::atomic<bool> sampling{true};
  std::atomic<size_t> max_seen{0};
  std::thread sampler([&]() {
    while (sampling.load(std::memory_order_acquire)) {
      size_t now = CountProcessThreads();
      size_t prev = max_seen.load(std::memory_order_relaxed);
      while (now > prev &&
             !max_seen.compare_exchange_weak(prev, now,
                                             std::memory_order_relaxed)) {
      }
      std::this_thread::yield();
    }
  });
  SpinUntil([&]() { return max_seen.load() > 0; }, "first sample");
  const size_t baseline = CountProcessThreads();

  auto result = pipeline.Run("pt", "en", options);
  sampling.store(false, std::memory_order_release);
  sampler.join();

  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->per_type.size(), 2u)
      << "corpus too small to exercise outer parallelism";
  EXPECT_LE(max_seen.load(), baseline)
      << "the nested run spawned threads beyond the pool";
}

TEST(ThreadPoolTest, PipelineOutputInvariantAcrossPoolSizes) {
  // Byte-identical results at any pool size and any thread request:
  // a 2-worker pool serving an 8-thread request must reproduce the
  // sequential run exactly.
  synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(123));
  auto gc = generator.Generate();
  ASSERT_TRUE(gc.ok());
  match::MatchPipeline pipeline(&gc->corpus);

  match::PipelineOptions sequential;
  sequential.num_threads = 1;
  auto a = pipeline.Run("pt", "en", sequential);
  ASSERT_TRUE(a.ok());

  util::ThreadPool pool(2);
  util::ScopedThreadPoolOverride override_pool(&pool);
  match::PipelineOptions parallel;
  parallel.num_threads = 8;
  parallel.matcher.num_threads = 8;
  auto b = pipeline.Run("pt", "en", parallel);
  ASSERT_TRUE(b.ok());

  ASSERT_EQ(a->per_type.size(), b->per_type.size());
  for (size_t i = 0; i < a->per_type.size(); ++i) {
    EXPECT_EQ(a->per_type[i].type_a, b->per_type[i].type_a);
    EXPECT_EQ(a->per_type[i].alignment.matches.Clusters(),
              b->per_type[i].alignment.matches.Clusters());
  }
}

}  // namespace
}  // namespace wikimatch
