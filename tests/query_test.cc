// Unit tests for the query module: the c-query parser, the evaluator
// (including hyperlink joins), the match-driven translator with relaxation,
// and the case-study machinery.

#include <gtest/gtest.h>

#include "query/c_query.h"
#include <algorithm>

#include "query/case_study.h"
#include "query/evaluator.h"
#include "query/translator.h"
#include "synth/generator.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace query {
namespace {

// ------------------------------------------------------------------ Parser

TEST(CQueryParserTest, SimpleQuery) {
  auto q = ParseCQuery("actor(born=\"brazil\", website=?)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->parts.size(), 1u);
  EXPECT_EQ(q->parts[0].type, "actor");
  ASSERT_EQ(q->parts[0].constraints.size(), 2u);
  EXPECT_EQ(q->parts[0].constraints[0].value, "brazil");
  EXPECT_TRUE(q->parts[0].constraints[1].is_projection);
}

TEST(CQueryParserTest, Conjunction) {
  auto q = ParseCQuery(
      "actor(born=\"brazil\") and film(award=\"oscar\")");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->parts.size(), 2u);
  EXPECT_EQ(q->parts[1].type, "film");
}

TEST(CQueryParserTest, AttributeAlternation) {
  auto q = ParseCQuery(
      "diretor(nascimento|data de nascimento >= 1970)");
  ASSERT_TRUE(q.ok());
  const Constraint& c = q->parts[0].constraints[0];
  ASSERT_EQ(c.attributes.size(), 2u);
  EXPECT_EQ(c.attributes[0], "nascimento");
  EXPECT_EQ(c.attributes[1], "data de nascimento");
  EXPECT_EQ(c.op, Op::kGe);
  EXPECT_EQ(c.number, 1970.0);
}

TEST(CQueryParserTest, NumericOperators) {
  for (const auto& [text, op] :
       std::vector<std::pair<std::string, Op>>{{"<", Op::kLt},
                                               {">", Op::kGt},
                                               {"<=", Op::kLe},
                                               {">=", Op::kGe}}) {
    auto q = ParseCQuery("filme(receita " + text + " 10000000)");
    ASSERT_TRUE(q.ok()) << text;
    EXPECT_EQ(q->parts[0].constraints[0].op, op);
    EXPECT_TRUE(q->parts[0].constraints[0].is_numeric);
  }
}

TEST(CQueryParserTest, UnicodeAttributeNames) {
  auto q = ParseCQuery("phim(đạo diễn=?, thể loại=\"rock\")");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->parts[0].constraints[0].attributes[0], "đạo diễn");
}

TEST(CQueryParserTest, Errors) {
  EXPECT_FALSE(ParseCQuery("").ok());
  EXPECT_FALSE(ParseCQuery("actor").ok());
  EXPECT_FALSE(ParseCQuery("actor(born=)").ok());
  EXPECT_FALSE(ParseCQuery("actor(born=\"x) ").ok());
  EXPECT_FALSE(ParseCQuery("actor(born<abc)").ok());
  EXPECT_FALSE(ParseCQuery("actor(born<?)").ok());
  EXPECT_FALSE(ParseCQuery("actor(born=1) garbage").ok());
}

TEST(CQueryParserTest, ToStringRoundTrips) {
  auto q = ParseCQuery("actor(born>=1970, website=?) and film(name=\"x\")");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseCQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString();
  EXPECT_EQ(q2->parts.size(), 2u);
  EXPECT_EQ(q2->ToString(), q->ToString());
}

// --------------------------------------------------------------- Evaluator

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wiki::WikitextParser parser;
    auto add = [&](const std::string& title, const std::string& lang,
                   const std::string& text) {
      auto article = parser.ParseArticle(title, lang, text);
      ASSERT_TRUE(article.ok());
      ASSERT_TRUE(corpus_.AddArticle(std::move(article).ValueOrDie()).ok());
    };
    add("Actor One", "en",
        "{{Infobox actor\n| born = june 4 1950, [[Brazil]]\n"
        "| occupation = [[politician]]\n}}\n");
    add("Actor Two", "en",
        "{{Infobox actor\n| born = may 1 1980, [[France]]\n"
        "| occupation = [[actor work|acting]]\n}}\n");
    add("Film One", "en",
        "{{Infobox film\n| starring = [[Actor One]], [[Actor Two]]\n"
        "| gross = US$ 50000000\n}}\n");
    add("Film Two", "en",
        "{{Infobox film\n| starring = [[Actor Two]]\n"
        "| gross = US$ 1000\n}}\n");
    corpus_.Finalize();
  }

  std::vector<Answer> Run(const std::string& text) {
    auto q = ParseCQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    QueryEvaluator evaluator(&corpus_, "en");
    auto answers = evaluator.Run(*q);
    EXPECT_TRUE(answers.ok()) << answers.status().ToString();
    return std::move(answers).ValueOrDie();
  }

  wiki::Corpus corpus_;
};

TEST_F(EvaluatorTest, EqualityOnLinkedValue) {
  auto answers = Run("actor(born=\"brazil\")");
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(corpus_.Get(answers[0].article).title, "actor one");
}

TEST_F(EvaluatorTest, NumericComparisonUsesLargestNumber) {
  // born = "june 4 1950": the year, not the day, must drive comparisons.
  EXPECT_EQ(Run("actor(born<1975)").size(), 1u);
  EXPECT_EQ(Run("actor(born<1700)").size(), 0u);
  EXPECT_EQ(Run("actor(born>1975)").size(), 1u);
}

TEST_F(EvaluatorTest, ProjectionRequiresPresence) {
  auto answers = Run("actor(occupation=?)");
  EXPECT_EQ(answers.size(), 2u);
  ASSERT_FALSE(answers[0].projections.empty());
}

TEST_F(EvaluatorTest, JoinThroughHyperlinks) {
  // Films starring an actor who is a politician: Film One only.
  auto answers =
      Run("film(gross=?) and actor(occupation=\"politician\")");
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(corpus_.Get(answers[0].article).title, "film one");
}

TEST_F(EvaluatorTest, JoinWithUnsatisfiableSecondaryIsEmpty) {
  EXPECT_EQ(Run("film(gross=?) and actor(occupation=\"astronaut\")").size(),
            0u);
}

TEST_F(EvaluatorTest, UnknownTypeIsNotFound) {
  auto q = ParseCQuery("martian(name=?)");
  ASSERT_TRUE(q.ok());
  QueryEvaluator evaluator(&corpus_, "en");
  EXPECT_FALSE(evaluator.Run(*q).ok());
}

TEST_F(EvaluatorTest, TopKTruncates) {
  auto q = ParseCQuery("actor(born=?)");
  ASSERT_TRUE(q.ok());
  QueryEvaluator evaluator(&corpus_, "en");
  EvaluatorOptions options;
  options.top_k = 1;
  auto answers = evaluator.Run(*q, options);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

// -------------------------------------------------------------- Translator

class TranslatorTest : public ::testing::Test {
 protected:
  TranslatorTest() {
    matches_.AddPair({"pt", "nascimento"}, {"en", "born"});
    matches_.AddPair({"pt", "data de nascimento"}, {"en", "born"});
    matches_.AddPair({"pt", "ocupação"}, {"en", "occupation"});
    attribute_matches_["actor"] = &matches_;
    type_matches_.push_back({"ator", "actor", 10, 1.0});
    dictionary_.Add("pt", "brasil", "en", "brazil");
  }

  QueryTranslator MakeTranslator() {
    return QueryTranslator("pt", "en", type_matches_, attribute_matches_,
                           &dictionary_);
  }

  eval::MatchSet matches_;
  std::map<std::string, const eval::MatchSet*> attribute_matches_;
  std::vector<match::TypeMatch> type_matches_;
  match::TranslationDictionary dictionary_;
};

TEST_F(TranslatorTest, TranslatesTypeAttributesAndValues) {
  auto q = ParseCQuery("ator(nascimento=\"brasil\", ocupação=?)");
  ASSERT_TRUE(q.ok());
  TranslationReport report;
  auto translated = MakeTranslator().Translate(*q, &report);
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();
  EXPECT_EQ(translated->parts[0].type, "actor");
  EXPECT_EQ(translated->parts[0].constraints[0].attributes[0], "born");
  EXPECT_EQ(translated->parts[0].constraints[0].value, "brazil");
  EXPECT_EQ(report.constraints_translated, 2u);
  EXPECT_EQ(report.constraints_relaxed, 0u);
}

TEST_F(TranslatorTest, AlternationMergesCorrespondents) {
  auto q = ParseCQuery("ator(nascimento|data de nascimento < 1975)");
  ASSERT_TRUE(q.ok());
  auto translated = MakeTranslator().Translate(*q);
  ASSERT_TRUE(translated.ok());
  // Both alternatives map to "born"; duplicates are tolerable but at least
  // one "born" must be present.
  const auto& attrs = translated->parts[0].constraints[0].attributes;
  EXPECT_NE(std::find(attrs.begin(), attrs.end(), "born"), attrs.end());
}

TEST_F(TranslatorTest, RelaxesUntranslatableConstraint) {
  auto q = ParseCQuery("ator(sem correspondencia=\"x\", ocupação=?)");
  ASSERT_TRUE(q.ok());
  TranslationReport report;
  auto translated = MakeTranslator().Translate(*q, &report);
  ASSERT_TRUE(translated.ok());
  EXPECT_EQ(translated->parts[0].constraints.size(), 1u);
  EXPECT_EQ(report.constraints_relaxed, 1u);
}

TEST_F(TranslatorTest, DropsUnmappedType) {
  auto q = ParseCQuery("livro(nome=?) and ator(ocupação=?)");
  ASSERT_TRUE(q.ok());
  TranslationReport report;
  auto translated = MakeTranslator().Translate(*q, &report);
  ASSERT_TRUE(translated.ok());
  ASSERT_EQ(translated->parts.size(), 1u);
  EXPECT_EQ(translated->parts[0].type, "actor");
  EXPECT_EQ(report.parts_dropped, 1u);
}

TEST_F(TranslatorTest, FullyUntranslatableQueryFails) {
  auto q = ParseCQuery("livro(nome=?)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(MakeTranslator().Translate(*q).ok());
}

// -------------------------------------------------------------- CaseStudy

class CaseStudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(55));
    auto g = generator.Generate();
    ASSERT_TRUE(g.ok());
    gc_ = new synth::GeneratedCorpus(std::move(g).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete gc_;
    gc_ = nullptr;
  }
  static synth::GeneratedCorpus* gc_;
};

synth::GeneratedCorpus* CaseStudyTest::gc_ = nullptr;

TEST_F(CaseStudyTest, BuildsQueriesForAvailableTypes) {
  auto queries = BuildCaseQueries(*gc_);
  // Tiny corpus has film + actor: at least the film/actor patterns apply.
  EXPECT_GE(queries.size(), 4u);
  for (const auto& q : queries) {
    EXPECT_FALSE(q.constraints.empty());
    EXPECT_TRUE(q.type == "film" || q.type == "actor") << q.type;
  }
}

TEST_F(CaseStudyTest, SurfaceQueriesRenderPerLanguage) {
  auto queries = BuildCaseQueries(*gc_);
  ASSERT_FALSE(queries.empty());
  auto en = RenderSurfaceQuery(queries[0], *gc_, "en");
  auto pt = RenderSurfaceQuery(queries[0], *gc_, "pt");
  ASSERT_TRUE(en.ok());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(en->parts[0].type, "film");
  EXPECT_EQ(pt->parts[0].type, "filme");
  EXPECT_FALSE(pt->parts[0].constraints.empty());
}

TEST_F(CaseStudyTest, UnknownTypeFailsToRender) {
  CaseQuery cq;
  cq.type = "nonexistent";
  EXPECT_FALSE(RenderSurfaceQuery(cq, *gc_, "en").ok());
}

TEST_F(CaseStudyTest, OracleJudgesFactsNotSurface) {
  auto queries = BuildCaseQueries(*gc_);
  ASSERT_FALSE(queries.empty());
  RelevanceOracle oracle(gc_);
  // A support article title is not an entity: judged 0.
  EXPECT_EQ(oracle.Judge(queries[0], "en",
                         gc_->supports.places[0].titles.at("en")),
            0.0);
  // Entities of the wrong type score 0 too.
  for (const auto& rec : gc_->entities) {
    if (rec.type != queries[0].type) {
      EXPECT_EQ(oracle.Judge(queries[0], "en", rec.titles.at("en")), 0.0);
      break;
    }
  }
}

TEST_F(CaseStudyTest, JoinQueryRendersAndJudges) {
  auto queries = BuildCaseQueries(*gc_);
  const CaseQuery* join = nullptr;
  for (const auto& q : queries) {
    if (!q.join_type.empty()) join = &q;
  }
  ASSERT_NE(join, nullptr) << "workload must contain a join query";
  EXPECT_EQ(join->type, "film");
  EXPECT_EQ(join->join_type, "actor");
  auto rendered = RenderSurfaceQuery(*join, *gc_, "en");
  ASSERT_TRUE(rendered.ok());
  ASSERT_EQ(rendered->parts.size(), 2u);
  EXPECT_EQ(rendered->parts[1].type, "actor");
  // The join query must be answerable end-to-end.
  QueryEvaluator evaluator(&gc_->corpus, "en");
  auto answers = evaluator.Run(*rendered);
  ASSERT_TRUE(answers.ok());
  RelevanceOracle oracle(gc_);
  double best = 0.0;
  for (const auto& a : *answers) {
    best = std::max(best, oracle.Judge(*join, "en",
                                       gc_->corpus.Get(a.article).title));
  }
  EXPECT_EQ(best, 4.0);
}

TEST_F(CaseStudyTest, CrossrefFactsPointAtActorEntities) {
  bool found = false;
  for (const auto& rec : gc_->entities) {
    if (rec.type != "film") continue;
    auto fact_it = rec.facts.find("starring");
    if (fact_it == rec.facts.end()) continue;
    if (fact_it->second.crossref_type.empty()) continue;
    found = true;
    EXPECT_EQ(fact_it->second.crossref_type, "actor");
    for (int ref : fact_it->second.refs) {
      ASSERT_GE(ref, 0);
      ASSERT_LT(static_cast<size_t>(ref), gc_->entities.size());
      EXPECT_EQ(gc_->entities[static_cast<size_t>(ref)].type, "actor");
    }
    break;
  }
  EXPECT_TRUE(found);
}

TEST_F(CaseStudyTest, OracleScaleIsZeroToFour) {
  auto queries = BuildCaseQueries(*gc_);
  RelevanceOracle oracle(gc_);
  for (const auto& q : queries) {
    for (const auto& rec : gc_->entities) {
      if (!rec.titles.count("en")) continue;
      double score = oracle.Judge(q, "en", rec.titles.at("en"));
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 4.0);
    }
  }
}

}  // namespace
}  // namespace query
}  // namespace wikimatch
