// Tests for the parallel-for helper and the pipeline's parallel execution
// determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "match/pipeline.h"
#include "synth/generator.h"
#include "util/parallel.h"

namespace wikimatch {
namespace {

TEST(ParallelForTest, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  util::ParallelFor(hits.size(), 8, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, InlineWhenSingleThreaded) {
  std::vector<int> order;
  util::ParallelFor(5, 1, [&](size_t i) {
    order.push_back(static_cast<int>(i));  // Safe: runs inline.
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroItems) {
  bool called = false;
  util::ParallelFor(0, 8, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::atomic<size_t> sum{0};
  util::ParallelFor(3, 64, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 3u);
}

TEST(ParallelForTest, WorkerExceptionRethrownOnCallingThread) {
  // Before the fix, a throw inside a worker escaped a raw std::thread and
  // hit std::terminate. Now the first exception is captured, every worker
  // joins, and the calling thread rethrows it.
  std::atomic<size_t> ran{0};
  try {
    util::ParallelFor(1000, 8, [&](size_t i) {
      if (i == 137) throw std::runtime_error("worker 137 failed");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 137 failed");
  }
  // Workers stop handing out new indexes after the failure, so not every
  // index need run — but none may run after the call returned.
  EXPECT_LE(ran.load(), 999u);
}

TEST(ParallelForTest, InlineExceptionStillPropagates) {
  EXPECT_THROW(
      util::ParallelFor(5, 1,
                        [&](size_t i) {
                          if (i == 3) throw std::logic_error("inline");
                        }),
      std::logic_error);
}

TEST(ParallelForTest, AllWorkersJoinWhenEveryCallThrows) {
  // Every invocation throwing must still produce exactly one rethrow.
  EXPECT_THROW(util::ParallelFor(64, 8,
                                 [&](size_t) {
                                   throw std::runtime_error("all fail");
                                 }),
               std::runtime_error);
}

TEST(ParallelPipelineTest, SameResultsAsSequential) {
  synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(123));
  auto gc = generator.Generate();
  ASSERT_TRUE(gc.ok());
  match::MatchPipeline pipeline(&gc->corpus);

  match::PipelineOptions sequential;
  sequential.num_threads = 1;
  match::PipelineOptions parallel;
  parallel.num_threads = 8;

  auto a = pipeline.Run("pt", "en", sequential);
  auto b = pipeline.Run("pt", "en", parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->per_type.size(), b->per_type.size());
  for (size_t i = 0; i < a->per_type.size(); ++i) {
    EXPECT_EQ(a->per_type[i].type_a, b->per_type[i].type_a);
    EXPECT_EQ(a->per_type[i].alignment.matches.Clusters(),
              b->per_type[i].alignment.matches.Clusters());
  }
}

}  // namespace
}  // namespace wikimatch
