// Tests for the parallel-for helper and the pipeline's parallel execution
// determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "match/pipeline.h"
#include "synth/generator.h"
#include "util/parallel.h"

namespace wikimatch {
namespace {

TEST(ParallelForTest, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  util::ParallelFor(hits.size(), 8, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, InlineWhenSingleThreaded) {
  std::vector<int> order;
  util::ParallelFor(5, 1, [&](size_t i) {
    order.push_back(static_cast<int>(i));  // Safe: runs inline.
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroItems) {
  bool called = false;
  util::ParallelFor(0, 8, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::atomic<size_t> sum{0};
  util::ParallelFor(3, 64, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 3u);
}

TEST(ParallelPipelineTest, SameResultsAsSequential) {
  synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(123));
  auto gc = generator.Generate();
  ASSERT_TRUE(gc.ok());
  match::MatchPipeline pipeline(&gc->corpus);

  match::PipelineOptions sequential;
  sequential.num_threads = 1;
  match::PipelineOptions parallel;
  parallel.num_threads = 8;

  auto a = pipeline.Run("pt", "en", sequential);
  auto b = pipeline.Run("pt", "en", parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->per_type.size(), b->per_type.size());
  for (size_t i = 0; i < a->per_type.size(); ++i) {
    EXPECT_EQ(a->per_type[i].type_a, b->per_type[i].type_a);
    EXPECT_EQ(a->per_type[i].alignment.matches.Clusters(),
              b->per_type[i].alignment.matches.Clusters());
  }
}

}  // namespace
}  // namespace wikimatch
