// Tests for match/dictionary serialization.

#include <gtest/gtest.h>

#include <cstdio>

#include "match/match_io.h"

namespace wikimatch {
namespace match {
namespace {

eval::AttrKey A(const std::string& lang, const std::string& name) {
  return eval::AttrKey{lang, name};
}

TEST(MatchIoTest, MatchSetsRoundTrip) {
  TypeMatchSets original;
  original["film"].AddCluster(
      {A("en", "directed by"), A("pt", "direção")});
  original["film"].AddCluster(
      {A("en", "born"), A("pt", "nascimento"),
       A("pt", "data de nascimento")});
  original["actor"].AddPair(A("en", "spouse"), A("pt", "cônjuge"));

  auto loaded = ReadMatchSets(WriteMatchSets(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_TRUE(loaded->at("film").AreMatched(A("en", "directed by"),
                                            A("pt", "direção")));
  EXPECT_TRUE(loaded->at("film").AreMatched(A("pt", "nascimento"),
                                            A("pt", "data de nascimento")));
  EXPECT_FALSE(loaded->at("film").AreMatched(A("en", "directed by"),
                                             A("en", "born")));
  EXPECT_TRUE(loaded->at("actor").AreMatched(A("en", "spouse"),
                                             A("pt", "cônjuge")));
}

TEST(MatchIoTest, EmptyAndComments) {
  auto loaded = ReadMatchSets("# only a comment\n\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(MatchIoTest, MalformedRowIsError) {
  auto loaded = ReadMatchSets("film\ten\tonly three fields\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
}

TEST(MatchIoTest, FileRoundTrip) {
  TypeMatchSets original;
  original["film"].AddPair(A("en", "genre"), A("vi", "thể loại"));
  std::string path = ::testing::TempDir() + "/matches.tsv";
  ASSERT_TRUE(SaveMatchSets(original, path).ok());
  auto loaded = LoadMatchSets(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->at("film").AreMatched(A("en", "genre"),
                                            A("vi", "thể loại")));
  std::remove(path.c_str());
  EXPECT_FALSE(LoadMatchSets(path).ok());
}

TEST(MatchIoTest, DictionaryRoundTrip) {
  TranslationDictionary original;
  original.Add("pt", "o último imperador", "en", "the last emperor");
  original.Add("vi", "hoàng đế cuối cùng", "en", "the last emperor");
  auto loaded = ReadDictionary(WriteDictionary(original));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(
      loaded->TranslateOrKeep("pt", "o último imperador", "en"),
      "the last emperor");
}

TEST(MatchIoTest, DictionaryMalformedRow) {
  EXPECT_FALSE(ReadDictionary("pt\tonly\ttwo\n").ok());
}

}  // namespace
}  // namespace match
}  // namespace wikimatch
