// Tests for the snapshot store: binary primitives, corpus / dictionary /
// pipeline round trips, and robustness against corrupt, truncated, and
// version-mismatched files (every failure must be a clean util::Result
// error, never a crash — the sanitizer build runs this suite).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "match/pipeline.h"
#include "match/serialize.h"
#include "store/crc32.h"
#include "store/snapshot.h"
#include "store/snapshot_reader.h"
#include "synth/generator.h"
#include "util/binary_io.h"
#include "wiki/serialize.h"

namespace wikimatch {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// One generated corpus + pipeline run shared by the suite (building it is
// the expensive part of these tests).
struct Fixture {
  synth::GeneratedCorpus gc;
  match::PipelineResult result;
  match::TranslationDictionary dictionary;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny());
    f->gc = std::move(generator.Generate()).ValueOrDie();
    match::MatchPipeline pipeline(&f->gc.corpus);
    f->result = std::move(pipeline.Run("pt", "en")).ValueOrDie();
    f->dictionary = pipeline.dictionary();
    return f;
  }();
  return *fixture;
}

Snapshot MakeSnapshot() {
  const Fixture& f = GetFixture();
  Snapshot snapshot;
  snapshot.corpus = f.gc.corpus;
  snapshot.dictionary = f.dictionary;
  snapshot.pipelines.emplace(LanguagePair("pt", "en"), f.result);
  return snapshot;
}

// ---------------------------------------------------------------- binary io

TEST(BinaryIoTest, PrimitivesRoundTrip) {
  util::BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutDouble(-0.125);
  w.PutString("olá");
  w.PutString("");
  util::BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadU8().ValueOrDie(), 0xAB);
  EXPECT_EQ(r.ReadU32().ValueOrDie(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().ValueOrDie(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadDouble().ValueOrDie(), -0.125);
  EXPECT_EQ(r.ReadString().ValueOrDie(), "olá");
  EXPECT_EQ(r.ReadString().ValueOrDie(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, TruncatedReadsFailCleanly) {
  util::BinaryWriter w;
  w.PutU32(7);
  util::BinaryReader r(w.buffer());
  EXPECT_TRUE(r.ReadU32().ok());
  EXPECT_FALSE(r.ReadU8().ok());
  EXPECT_FALSE(r.ReadU64().ok());
  // A string whose length field exceeds the remaining bytes.
  util::BinaryWriter w2;
  w2.PutU64(1000);
  w2.PutBytes("short");
  util::BinaryReader r2(w2.buffer());
  auto s = r2.ReadString();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), util::StatusCode::kOutOfRange);
}

TEST(Crc32Test, KnownVectorsAndChunking) {
  // Standard check value of CRC-32/ISO-HDLC.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  uint32_t chunked = Crc32("6789", Crc32("12345"));
  EXPECT_EQ(chunked, 0xCBF43926u);
}

// --------------------------------------------------------------- round trips

TEST(StoreTest, CorpusRoundTrip) {
  const wiki::Corpus& original = GetFixture().gc.corpus;
  util::BinaryWriter w;
  wiki::EncodeCorpus(original, &w);
  util::BinaryReader r(w.buffer());
  auto decoded = wiki::DecodeCorpus(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), original.size());
  for (wiki::ArticleId id = 0; id < original.size(); ++id) {
    const wiki::Article& a = original.Get(id);
    const wiki::Article& b = decoded->Get(id);
    ASSERT_EQ(a.title, b.title);
    ASSERT_EQ(a.language, b.language);
    ASSERT_EQ(a.entity_type, b.entity_type);
    ASSERT_EQ(a.redirect_to, b.redirect_to);
    ASSERT_EQ(a.categories, b.categories);
    ASSERT_EQ(a.cross_language_links, b.cross_language_links);
    ASSERT_EQ(a.infobox.has_value(), b.infobox.has_value());
    if (a.infobox.has_value()) {
      ASSERT_EQ(a.infobox->template_type, b.infobox->template_type);
      ASSERT_EQ(a.infobox->attributes.size(), b.infobox->attributes.size());
      for (size_t i = 0; i < a.infobox->attributes.size(); ++i) {
        ASSERT_EQ(a.infobox->attributes[i].first,
                  b.infobox->attributes[i].first);
        ASSERT_EQ(a.infobox->attributes[i].second.text,
                  b.infobox->attributes[i].second.text);
        ASSERT_EQ(a.infobox->attributes[i].second.links,
                  b.infobox->attributes[i].second.links);
      }
    }
  }
  // Finalized indexes answer identically.
  EXPECT_EQ(decoded->Languages(), original.Languages());
  EXPECT_EQ(decoded->TypesIn("pt"), original.TypesIn("pt"));
  EXPECT_EQ(decoded->ArticlesOfType("en", "film").size(),
            original.ArticlesOfType("en", "film").size());
}

TEST(StoreTest, DictionaryRoundTrip) {
  const match::TranslationDictionary& original = GetFixture().dictionary;
  util::BinaryWriter w;
  match::EncodeDictionary(original, &w);
  util::BinaryReader r(w.buffer());
  auto decoded = match::DecodeDictionary(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->entries(), original.entries());
}

TEST(StoreTest, MatchSetRoundTripBothModes) {
  eval::MatchSet transitive(true);
  transitive.AddCluster({{"en", "starring"}, {"pt", "elenco"}});
  transitive.AddPair({"en", "born"}, {"pt", "nascimento"});
  util::BinaryWriter w1;
  match::EncodeMatchSet(transitive, &w1);
  util::BinaryReader r1(w1.buffer());
  auto t = match::DecodeMatchSet(&r1);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->transitive());
  EXPECT_EQ(t->Clusters(), transitive.Clusters());

  eval::MatchSet pairwise(false);
  pairwise.AddPair({"en", "a"}, {"pt", "b"});
  pairwise.AddPair({"en", "a"}, {"pt", "c"});
  util::BinaryWriter w2;
  match::EncodeMatchSet(pairwise, &w2);
  util::BinaryReader r2(w2.buffer());
  auto p = match::DecodeMatchSet(&r2);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->transitive());
  EXPECT_EQ(p->DirectPairs(), pairwise.DirectPairs());
  // Pairwise mode must not fabricate b ~ c.
  EXPECT_FALSE(p->AreMatched({"pt", "b"}, {"pt", "c"}));
}

TEST(StoreTest, PipelineResultRoundTrip) {
  const match::PipelineResult& original = GetFixture().result;
  util::BinaryWriter w;
  match::EncodePipelineResult(original, &w);
  util::BinaryReader r(w.buffer());
  auto decoded = match::DecodePipelineResult(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->type_matches.size(), original.type_matches.size());
  for (size_t i = 0; i < original.type_matches.size(); ++i) {
    EXPECT_EQ(decoded->type_matches[i].type_a,
              original.type_matches[i].type_a);
    EXPECT_EQ(decoded->type_matches[i].type_b,
              original.type_matches[i].type_b);
    EXPECT_EQ(decoded->type_matches[i].votes,
              original.type_matches[i].votes);
    EXPECT_EQ(decoded->type_matches[i].confidence,
              original.type_matches[i].confidence);
  }
  ASSERT_EQ(decoded->per_type.size(), original.per_type.size());
  for (size_t i = 0; i < original.per_type.size(); ++i) {
    const auto& a = original.per_type[i];
    const auto& b = decoded->per_type[i];
    EXPECT_EQ(a.type_a, b.type_a);
    EXPECT_EQ(a.type_b, b.type_b);
    EXPECT_EQ(a.num_duals, b.num_duals);
    EXPECT_EQ(a.frequencies, b.frequencies);
    EXPECT_EQ(a.alignment.matches.Clusters(),
              b.alignment.matches.Clusters());
    ASSERT_EQ(a.alignment.all_pairs.size(), b.alignment.all_pairs.size());
    for (size_t j = 0; j < a.alignment.all_pairs.size(); ++j) {
      EXPECT_EQ(a.alignment.all_pairs[j].i, b.alignment.all_pairs[j].i);
      EXPECT_EQ(a.alignment.all_pairs[j].j, b.alignment.all_pairs[j].j);
      EXPECT_EQ(a.alignment.all_pairs[j].lsi, b.alignment.all_pairs[j].lsi);
    }
    EXPECT_EQ(a.alignment.processed_order.size(),
              b.alignment.processed_order.size());
  }
}

TEST(StoreTest, SnapshotFileRoundTrip) {
  std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  auto loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->corpus.size(), GetFixture().gc.corpus.size());
  EXPECT_EQ(loaded->dictionary.entries(),
            GetFixture().dictionary.entries());
  ASSERT_EQ(loaded->pipelines.size(), 1u);
  const auto& result = loaded->pipelines.at(LanguagePair("pt", "en"));
  EXPECT_EQ(result.per_type.size(), GetFixture().result.per_type.size());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- robustness

TEST(StoreTest, MissingFileIsIoError) {
  auto loaded = ReadSnapshotFile(TempPath("does-not-exist.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
}

TEST(StoreTest, BadMagicIsRejected) {
  std::string path = TempPath("badmagic.snap");
  WriteFileBytes(path, "this is definitely not a snapshot file at all");
  auto loaded = ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StoreTest, WrongVersionIsRejected) {
  std::string path = TempPath("badversion.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[4] = 99;  // version field (bytes 4..7, little-endian)
  WriteFileBytes(path, bytes);
  auto loaded = ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StoreTest, CorruptPayloadFailsCrc) {
  std::string path = TempPath("corrupt.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  std::string bytes = ReadFileBytes(path);
  // Flip one byte deep inside the first section's payload.
  size_t victim = 16 + 16 + 100;
  ASSERT_LT(victim, bytes.size());
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x5A);
  WriteFileBytes(path, bytes);
  auto loaded = ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StoreTest, TruncatedFileIsRejected) {
  std::string path = TempPath("truncated.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  std::string bytes = ReadFileBytes(path);
  // Cut at several depths: inside the header, inside a section header,
  // and inside a section payload.
  for (size_t keep : {size_t{7}, size_t{20}, bytes.size() / 2}) {
    WriteFileBytes(path, bytes.substr(0, keep));
    auto loaded = ReadSnapshotFile(path);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kOutOfRange)
        << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(StoreTest, UnfinishedSnapshotIsRejected) {
  // A writer that never called Finish() leaves section_count = 0.
  std::string path = TempPath("unfinished.snap");
  {
    auto writer = SnapshotWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteCorpus(GetFixture().gc.corpus).ok());
    // No Finish().
  }
  auto loaded = ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("incomplete"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(StoreTest, SectionSizeBeyondFileIsRejected) {
  std::string path = TempPath("badsize.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  std::string bytes = ReadFileBytes(path);
  // Inflate the first section's payload_size field (offset 16 + 4) to an
  // absurd value; the reader must reject it before allocating.
  size_t off = 16 + 4;
  for (int i = 0; i < 8; ++i) bytes[off + i] = static_cast<char>(0xFF);
  WriteFileBytes(path, bytes);
  auto loaded = ReadSnapshotFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

// ------------------------------------------------------- meta + stats compat

TEST(StoreTest, MetaSectionRoundTrip) {
  Snapshot snapshot = MakeSnapshot();
  snapshot.meta.generation = 3;
  snapshot.meta.history.push_back({1, 10, 2, 1, 12, 2});
  snapshot.meta.history.push_back({3, 0, 5, 0, 13, 1});
  std::string path = TempPath("meta.snap");
  ASSERT_TRUE(WriteSnapshotFile(snapshot, path).ok());
  auto loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta.generation, 3u);
  ASSERT_EQ(loaded->meta.history.size(), 2u);
  EXPECT_EQ(loaded->meta.history[0].generation, 1u);
  EXPECT_EQ(loaded->meta.history[0].articles_added, 10u);
  EXPECT_EQ(loaded->meta.history[0].units_reused, 12u);
  EXPECT_EQ(loaded->meta.history[1].generation, 3u);
  EXPECT_EQ(loaded->meta.history[1].articles_updated, 5u);
  EXPECT_EQ(loaded->meta.history[1].units_recomputed, 1u);
  // The other sections still load alongside the meta section.
  EXPECT_EQ(loaded->corpus.size(), GetFixture().gc.corpus.size());
  ASSERT_EQ(loaded->pipelines.size(), 1u);
  std::remove(path.c_str());
}

TEST(StoreTest, MetaOptionsFingerprintRoundTrip) {
  Snapshot snapshot = MakeSnapshot();
  match::PipelineOptions options;
  options.matcher.t_sim = 0.42;
  options.matcher.use_lsi = false;
  options.schema.max_sample_infoboxes = 17;
  snapshot.meta.options = OptionsFingerprint::From(options);
  std::string path = TempPath("meta_options.snap");
  ASSERT_TRUE(WriteSnapshotFile(snapshot, path).ok());
  auto loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->meta.options.has_value());
  EXPECT_TRUE(*loaded->meta.options == OptionsFingerprint::From(options));
  EXPECT_FALSE(*loaded->meta.options ==
               OptionsFingerprint::From(match::PipelineOptions{}));
  std::remove(path.c_str());
}

TEST(StoreTest, MetaWithoutFingerprintReadsBackAbsent) {
  // Generation-only meta is exactly the pre-fingerprint payload shape; the
  // reader must report options as absent, not error on the short payload.
  Snapshot snapshot = MakeSnapshot();
  snapshot.meta.generation = 2;
  snapshot.meta.history.push_back({2, 1, 0, 0, 1, 1});
  std::string path = TempPath("meta_legacy.snap");
  ASSERT_TRUE(WriteSnapshotFile(snapshot, path).ok());
  auto loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta.generation, 2u);
  EXPECT_FALSE(loaded->meta.options.has_value());
  std::remove(path.c_str());
}

TEST(StoreTest, Generation0SnapshotOmitsMetaSection) {
  std::string path = TempPath("gen0.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  std::string bytes = ReadFileBytes(path);
  uint32_t section_count;
  std::memcpy(&section_count, bytes.data() + 8, 4);
  // corpus, dictionary, one pipeline (no meta) + the pad and directory
  // sections every non-legacy writer appends.
  EXPECT_EQ(section_count, 5u);
  auto loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->meta.generation, 0u);
  EXPECT_TRUE(loaded->meta.history.empty());
  std::remove(path.c_str());
}

TEST(StoreTest, SyncReportSectionRoundTripAndOmittedWhenEmpty) {
  // Empty report: no kind-5 section, so pre-sync snapshots keep their
  // exact byte layout (same additive pattern as the meta section).
  std::string path = TempPath("sync_empty.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  std::string bytes = ReadFileBytes(path);
  uint32_t section_count;
  std::memcpy(&section_count, bytes.data() + 8, 4);
  // corpus, dictionary, one pipeline + pad + directory — no kind-5 section.
  EXPECT_EQ(section_count, 5u);
  std::remove(path.c_str());

  Snapshot snapshot = MakeSnapshot();
  snapshot.sync_report.generation = 4;
  snapshot.sync_report.cells.push_back(
      {"pt", "film", "filme x", "film x", "elenco", "starring",
       sync::CellClass::kStale, 0.5});
  snapshot.sync_report.cells.push_back(
      {"pt", "film", "filme x", "film x", "", "country",
       sync::CellClass::kMissing, 0.0});
  snapshot.sync_report.updates.push_back(
      {"en", "pt", "film x", "filme x", "starring", "elenco",
       "[[a]], [[b]]", 0.5});
  path = TempPath("sync_report.snap");
  ASSERT_TRUE(WriteSnapshotFile(snapshot, path).ok());
  auto loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->sync_report == snapshot.sync_report);
  // The other sections still load alongside the sync section.
  EXPECT_EQ(loaded->corpus.size(), GetFixture().gc.corpus.size());
  ASSERT_EQ(loaded->pipelines.size(), 1u);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- mmap reader

TEST(MappedSnapshotTest, DecodeMatchesStreamingReaderByteIdentically) {
  Snapshot snapshot = MakeSnapshot();
  snapshot.meta.generation = 2;
  snapshot.meta.history.push_back({2, 1, 0, 0, 1, 1});
  snapshot.meta.options = OptionsFingerprint::From(match::PipelineOptions{});
  std::string path = TempPath("mmap_roundtrip.snap");
  ASSERT_TRUE(WriteSnapshotFile(snapshot, path).ok());

  auto mapped = MappedSnapshot::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  auto via_mmap = (*mapped)->Decode();
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.status().ToString();
  auto via_parse = ReadSnapshotFile(path);
  ASSERT_TRUE(via_parse.ok()) << via_parse.status().ToString();

  // Strongest equivalence we can assert without an operator== over the
  // whole snapshot: both decodes re-serialize to identical bytes.
  std::string mmap_out = TempPath("mmap_roundtrip_a.snap");
  std::string parse_out = TempPath("mmap_roundtrip_b.snap");
  ASSERT_TRUE(WriteSnapshotFile(*via_mmap, mmap_out).ok());
  ASSERT_TRUE(WriteSnapshotFile(*via_parse, parse_out).ok());
  EXPECT_EQ(ReadFileBytes(mmap_out), ReadFileBytes(parse_out));
  EXPECT_EQ(via_mmap->corpus.size(), snapshot.corpus.size());
  EXPECT_EQ(via_mmap->meta.generation, 2u);
  ASSERT_TRUE(via_mmap->meta.options.has_value());
  EXPECT_TRUE(*via_mmap->meta.options ==
              OptionsFingerprint::From(match::PipelineOptions{}));
  std::remove(path.c_str());
  std::remove(mmap_out.c_str());
  std::remove(parse_out.c_str());
}

TEST(MappedSnapshotTest, TruncatedFileFallsBackToStreamingError) {
  std::string path = TempPath("mmap_truncated.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  std::string bytes = ReadFileBytes(path);
  // Any truncation destroys the trailing footer, so Map() must answer
  // NotFound (the "use the streaming reader" signal), and the streaming
  // reader then reports the real damage.
  for (size_t keep : {size_t{20}, bytes.size() / 2, bytes.size() - 1}) {
    WriteFileBytes(path, bytes.substr(0, keep));
    auto mapped = MappedSnapshot::Map(path);
    ASSERT_FALSE(mapped.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(mapped.status().code(), util::StatusCode::kNotFound)
        << mapped.status().ToString();
    // Deep cuts damage counted sections, so the streaming reader reports
    // them; a cut inside the trailing footer leaves every counted section
    // whole and degrades gracefully to a successful parse.
    EXPECT_EQ(ReadSnapshotFile(path).ok(), keep == bytes.size() - 1)
        << "kept " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST(MappedSnapshotTest, CorruptSectionDetectedOnFirstLazyTouch) {
  std::string path = TempPath("mmap_corrupt.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  std::string bytes = ReadFileBytes(path);
  // Flip one byte inside the first section's payload (header is 16 bytes,
  // first section header another 16). The directory stays intact, so
  // Map() succeeds — the damage must surface at first payload touch.
  bytes[33] = static_cast<char>(bytes[33] ^ 0x5A);
  WriteFileBytes(path, bytes);
  auto mapped = MappedSnapshot::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  auto payload = (*mapped)->Payload(0);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(payload.status().message().find("CRC"), std::string::npos);
  // The verdict is sticky: a re-touch stays an error, and Decode() (which
  // touches every section) reports it too.
  EXPECT_FALSE((*mapped)->Payload(0).ok());
  auto decoded = (*mapped)->Decode();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(MappedSnapshotTest, UnlinkedWhileMappedKeepsServing) {
  std::string path = TempPath("mmap_unlink.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  auto mapped = MappedSnapshot::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  // The mapping holds the pages, not the directory entry: decoding after
  // the file is gone must still see every byte.
  ASSERT_EQ(std::remove(path.c_str()), 0);
  auto decoded = (*mapped)->Decode();
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->corpus.size(), GetFixture().gc.corpus.size());
  ASSERT_EQ(decoded->pipelines.size(), 1u);
}

TEST(MappedSnapshotTest, LegacyLayoutFallsBackToParseIdentically) {
  Snapshot snapshot = MakeSnapshot();
  std::string legacy_path = TempPath("mmap_legacy.snap");
  std::string new_path = TempPath("mmap_new.snap");
  ASSERT_TRUE(
      WriteSnapshotFile(snapshot, legacy_path, /*legacy_layout=*/true).ok());
  ASSERT_TRUE(WriteSnapshotFile(snapshot, new_path).ok());
  // Legacy files have no footer → Map() refuses with NotFound...
  auto mapped = MappedSnapshot::Map(legacy_path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), util::StatusCode::kNotFound);
  // ...and the streaming reader decodes them to the same snapshot the new
  // layout yields through either reader (re-serialized bytes identical).
  auto via_legacy = ReadSnapshotFile(legacy_path);
  ASSERT_TRUE(via_legacy.ok()) << via_legacy.status().ToString();
  auto new_mapped = MappedSnapshot::Map(new_path);
  ASSERT_TRUE(new_mapped.ok()) << new_mapped.status().ToString();
  auto via_mmap = (*new_mapped)->Decode();
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.status().ToString();
  std::string legacy_out = TempPath("mmap_legacy_rt.snap");
  std::string mmap_out = TempPath("mmap_new_rt.snap");
  ASSERT_TRUE(WriteSnapshotFile(*via_legacy, legacy_out).ok());
  ASSERT_TRUE(WriteSnapshotFile(*via_mmap, mmap_out).ok());
  EXPECT_EQ(ReadFileBytes(legacy_out), ReadFileBytes(mmap_out));
  std::remove(legacy_path.c_str());
  std::remove(new_path.c_str());
  std::remove(legacy_out.c_str());
  std::remove(mmap_out.c_str());
}

TEST(StoreTest, PerUnitAlignStatsRoundTrip) {
  const match::PipelineResult& original = GetFixture().result;
  ASSERT_FALSE(original.per_type.empty());
  ASSERT_GT(original.per_type[0].alignment.stats.groups, 0u);
  util::BinaryWriter w;
  match::EncodePipelineResult(original, &w);
  util::BinaryReader r(w.buffer());
  auto decoded = match::DecodePipelineResult(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stats.type_pairs, original.stats.type_pairs);
  EXPECT_EQ(decoded->stats.align.groups, original.stats.align.groups);
  ASSERT_EQ(decoded->per_type.size(), original.per_type.size());
  for (size_t i = 0; i < original.per_type.size(); ++i) {
    const auto& a = original.per_type[i].alignment.stats;
    const auto& b = decoded->per_type[i].alignment.stats;
    EXPECT_EQ(a.groups, b.groups);
    EXPECT_EQ(a.pairs_total, b.pairs_total);
    EXPECT_EQ(a.pairs_generated, b.pairs_generated);
    EXPECT_EQ(a.pairs_pruned, b.pairs_pruned);
    EXPECT_EQ(a.postings_visited, b.postings_visited);
  }
}

// Rewrites the pipeline section of a written snapshot with its payload cut
// short by `cut` trailing bytes — size and CRC fields updated to match, so
// the file is exactly what an older writer (without the appended stats, or
// with fewer of them) would have produced.
std::string CutPipelinePayload(std::string bytes, size_t cut) {
  size_t pos = 16;
  while (pos + 16 <= bytes.size()) {
    uint32_t kind;
    uint64_t size;
    std::memcpy(&kind, bytes.data() + pos, 4);
    std::memcpy(&size, bytes.data() + pos + 4, 8);
    if (static_cast<SectionKind>(kind) == SectionKind::kPipeline) {
      EXPECT_LT(cut, size);
      uint64_t new_size = size - cut;
      std::string payload = bytes.substr(pos + 16, new_size);
      uint32_t crc = Crc32(payload);
      std::memcpy(bytes.data() + pos + 4, &new_size, 8);
      std::memcpy(bytes.data() + pos + 12, &crc, 4);
      bytes.erase(pos + 16 + new_size, cut);
      return bytes;
    }
    pos += 16 + size;
  }
  ADD_FAILURE() << "no pipeline section found";
  return bytes;
}

// The trailing stats of a pipeline payload (aggregate PipelineStats plus
// the per-unit AlignStats block) are an optional region: a snapshot whose
// payload stops anywhere inside it must load cleanly with the missing
// stats defaulted, never error (forward compatibility with files written
// before each append).
TEST(StoreTest, TruncatedAppendedStatsLoadWithStatsAbsent) {
  const match::PipelineResult& original = GetFixture().result;
  const size_t n = original.per_type.size();
  ASSERT_GT(n, 0u);
  ASSERT_GT(original.stats.align.groups, 0u);
  const size_t per_unit_block = 8 + n * 5 * 8;  // count + 5 counters each
  const size_t aggregate = 14 * 8;              // PipelineStats fields

  std::string path = TempPath("oldstats.snap");
  ASSERT_TRUE(WriteSnapshotFile(MakeSnapshot(), path).ok());
  const std::string bytes = ReadFileBytes(path);

  struct Case {
    const char* name;
    size_t cut;
    bool aggregate_present;
  } cases[] = {
      // Payload ends right before the aggregate stats (a v1 writer).
      {"no stats at all", per_unit_block + aggregate, false},
      // Payload ends mid-way through the aggregate stats.
      {"inside aggregate stats", per_unit_block + aggregate / 2, false},
      // Aggregate complete, per-unit block absent (an intermediate writer).
      {"no per-unit block", per_unit_block, true},
      // Payload ends mid-way through the per-unit block.
      {"inside per-unit block", per_unit_block / 2, true},
  };
  for (const Case& c : cases) {
    WriteFileBytes(path, CutPipelinePayload(bytes, c.cut));
    auto loaded = ReadSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << c.name << ": " << loaded.status().ToString();
    const auto& result = loaded->pipelines.at(LanguagePair("pt", "en"));
    // Alignment content is intact either way.
    ASSERT_EQ(result.per_type.size(), n) << c.name;
    EXPECT_EQ(result.per_type[0].alignment.matches.Clusters(),
              original.per_type[0].alignment.matches.Clusters());
    if (c.aggregate_present) {
      EXPECT_EQ(result.stats.align.groups, original.stats.align.groups)
          << c.name;
    } else {
      EXPECT_EQ(result.stats.align.groups, 0u) << c.name;
      EXPECT_EQ(result.stats.type_pairs, 0u) << c.name;
    }
    // The per-unit stats are absent (defaulted) in every truncated case.
    EXPECT_EQ(result.per_type[0].alignment.stats.groups, 0u) << c.name;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace store
}  // namespace wikimatch
