// Equivalence tests for the inverted-index similarity join: the indexed
// aligner feature stage must produce bit-identical AlignmentResults to the
// retained naive all-pairs path — same matches, same processed order, same
// scores — for every ablation configuration, any thread count, and with
// zero-pair pruning enabled.

#include <gtest/gtest.h>

#include <vector>

#include "match/aligner.h"
#include "match/pipeline.h"
#include "match/similarity_join.h"
#include "synth/generator.h"

namespace wikimatch {
namespace {

void ExpectSamePairs(const std::vector<match::CandidatePair>& a,
                     const std::vector<match::CandidatePair>& b,
                     const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].i, b[k].i) << what << " entry " << k;
    EXPECT_EQ(a[k].j, b[k].j) << what << " entry " << k;
    // Bit-identical, not approximately equal: the join accumulates each
    // dot product in the same order SparseVector::Dot does.
    EXPECT_EQ(a[k].vsim, b[k].vsim) << what << " entry " << k;
    EXPECT_EQ(a[k].lsim, b[k].lsim) << what << " entry " << k;
    EXPECT_EQ(a[k].lsi, b[k].lsi) << what << " entry " << k;
  }
}

void ExpectSameAlignment(const match::AlignmentResult& a,
                         const match::AlignmentResult& b) {
  EXPECT_EQ(a.matches.Clusters(), b.matches.Clusters());
  ExpectSamePairs(a.processed_order, b.processed_order, "processed_order");
  ExpectSamePairs(a.all_pairs, b.all_pairs, "all_pairs");
}

class AlignJoinTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(1234));
    auto g = generator.Generate();
    ASSERT_TRUE(g.ok());
    gc_ = new synth::GeneratedCorpus(std::move(g).ValueOrDie());
    pipeline_ = new match::MatchPipeline(&gc_->corpus);
    auto data = pipeline_->BuildPair("pt", "filme", "en", "film");
    ASSERT_TRUE(data.ok());
    data_ = new match::TypePairData(std::move(data).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    delete pipeline_;
    delete gc_;
    data_ = nullptr;
    pipeline_ = nullptr;
    gc_ = nullptr;
  }

  static match::AlignmentResult Run(match::MatcherConfig config,
                                    bool indexed) {
    config.use_indexed_join = indexed;
    match::AttributeAligner aligner(config);
    auto result = aligner.Align(*data_);
    EXPECT_TRUE(result.ok());
    return std::move(result).ValueOrDie();
  }

  static synth::GeneratedCorpus* gc_;
  static match::MatchPipeline* pipeline_;
  static match::TypePairData* data_;
};

synth::GeneratedCorpus* AlignJoinTest::gc_ = nullptr;
match::MatchPipeline* AlignJoinTest::pipeline_ = nullptr;
match::TypePairData* AlignJoinTest::data_ = nullptr;

TEST_F(AlignJoinTest, IndexedMatchesNaiveBitIdentical) {
  match::MatcherConfig config;
  config.keep_all_pairs = true;
  ExpectSameAlignment(Run(config, false), Run(config, true));
}

TEST_F(AlignJoinTest, EquivalentUnderEveryAblation) {
  std::vector<match::MatcherConfig> configs;
  {
    match::MatcherConfig c;
    c.use_vsim = false;
    configs.push_back(c);
  }
  {
    match::MatcherConfig c;
    c.use_lsim = false;
    configs.push_back(c);
  }
  {
    match::MatcherConfig c;
    c.use_lsi = false;
    configs.push_back(c);
  }
  {
    match::MatcherConfig c;
    c.single_step = true;
    configs.push_back(c);
  }
  {
    match::MatcherConfig c;
    c.random_order = true;
    configs.push_back(c);
  }
  {
    match::MatcherConfig c;
    c.use_revise_uncertain = false;
    configs.push_back(c);
  }
  {
    match::MatcherConfig c;
    c.min_link_support = 0.0;
    c.t_revise_min_sim = 0.0;
    configs.push_back(c);
  }
  for (size_t k = 0; k < configs.size(); ++k) {
    SCOPED_TRACE("config " + std::to_string(k));
    configs[k].keep_all_pairs = true;
    ExpectSameAlignment(Run(configs[k], false), Run(configs[k], true));
  }
}

TEST_F(AlignJoinTest, PruningPreservesMatchesAndProcessedOrder) {
  match::MatcherConfig naive_config;
  naive_config.keep_all_pairs = true;
  match::AlignmentResult naive = Run(naive_config, false);

  match::MatcherConfig pruned_config;
  pruned_config.keep_all_pairs = false;
  match::AlignmentResult pruned = Run(pruned_config, true);

  EXPECT_EQ(naive.matches.Clusters(), pruned.matches.Clusters());
  ExpectSamePairs(naive.processed_order, pruned.processed_order,
                  "processed_order");
  EXPECT_TRUE(pruned.all_pairs.empty());
  EXPECT_EQ(pruned.stats.pairs_generated + pruned.stats.pairs_pruned,
            pruned.stats.pairs_total);
}

TEST_F(AlignJoinTest, ThreadCountInvariant) {
  match::MatcherConfig config;
  config.keep_all_pairs = true;
  match::MatcherConfig threaded = config;
  threaded.num_threads = 8;
  ExpectSameAlignment(Run(config, true), Run(threaded, true));
}

TEST_F(AlignJoinTest, StatsAreCoherent) {
  match::MatcherConfig config;
  config.keep_all_pairs = true;
  match::AlignmentResult result = Run(config, true);
  const size_t n = data_->groups.size();
  EXPECT_EQ(result.stats.groups, n);
  EXPECT_EQ(result.stats.pairs_total, n * (n - 1) / 2);
  // keep_all_pairs forces full materialization.
  EXPECT_EQ(result.stats.pairs_generated, result.stats.pairs_total);
  EXPECT_EQ(result.stats.pairs_pruned, 0u);
  EXPECT_GT(result.stats.postings_visited, 0u);
}

TEST_F(AlignJoinTest, JoinEmitsAscendingPartnersPastTheRow) {
  match::SimilarityJoinOptions options;
  match::SimilarityJoinIndex index(*data_, options);
  match::SimilarityJoinIndex::Scratch scratch;
  for (size_t i = 0; i < data_->groups.size(); ++i) {
    uint32_t last = 0;
    bool first = true;
    index.ForEachNonZero(i, &scratch, [&](const match::SimilarityEntry& e) {
      EXPECT_GT(e.j, i);
      if (!first) {
        EXPECT_GT(e.j, last);
      }
      last = e.j;
      first = false;
      EXPECT_TRUE(e.vsim != 0.0 || e.lsim != 0.0);
    });
  }
  EXPECT_GT(scratch.postings_visited(), 0u);
}

TEST(AlignJoinPipelineTest, RunIsInvariantAcrossIntraPairThreads) {
  synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(77));
  auto gc = generator.Generate();
  ASSERT_TRUE(gc.ok());
  match::MatchPipeline pipeline(&gc->corpus);

  match::PipelineOptions sequential;
  sequential.num_threads = 1;
  sequential.matcher.num_threads = 1;
  match::PipelineOptions threaded;
  threaded.num_threads = 8;
  threaded.matcher.num_threads = 8;

  auto a = pipeline.Run("pt", "en", sequential);
  auto b = pipeline.Run("pt", "en", threaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->per_type.size(), b->per_type.size());
  for (size_t i = 0; i < a->per_type.size(); ++i) {
    EXPECT_EQ(a->per_type[i].type_a, b->per_type[i].type_a);
    EXPECT_EQ(a->per_type[i].alignment.matches.Clusters(),
              b->per_type[i].alignment.matches.Clusters());
    ExpectSamePairs(a->per_type[i].alignment.processed_order,
                    b->per_type[i].alignment.processed_order,
                    "processed_order");
  }
}

}  // namespace
}  // namespace wikimatch
