// Tests for the serving subsystem: the sharded LRU cache, MatchService
// request handling (including the acceptance criterion that a served
// translated c-query equals the one-shot translate+evaluate path and that
// a repeated request hits the LRU cache), and the line protocol loop.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "match/pipeline.h"
#include "query/evaluator.h"
#include "query/translator.h"
#include "serve/lru_cache.h"
#include "serve/match_service.h"
#include "serve/protocol.h"
#include "store/snapshot.h"
#include "synth/generator.h"

namespace wikimatch {
namespace serve {
namespace {

constexpr char kQuery[] = "filme(receita > 1000000, elenco=?)";

// One corpus + pipeline + snapshot file shared by the suite.
struct Fixture {
  synth::GeneratedCorpus gc;
  match::PipelineResult result;
  match::TranslationDictionary dictionary;
  std::string snapshot_path;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny());
    f->gc = std::move(generator.Generate()).ValueOrDie();
    match::MatchPipeline pipeline(&f->gc.corpus);
    f->result = std::move(pipeline.Run("pt", "en")).ValueOrDie();
    f->dictionary = pipeline.dictionary();
    // ctest runs each TEST as its own process; a per-pid path keeps those
    // processes from truncating each other's snapshot mid-load.
    f->snapshot_path = ::testing::TempDir() + "/serve_test." +
                       std::to_string(::getpid()) + ".snap";
    store::Snapshot snapshot;
    snapshot.corpus = f->gc.corpus;
    snapshot.dictionary = f->dictionary;
    snapshot.pipelines.emplace(store::LanguagePair("pt", "en"), f->result);
    auto status = store::WriteSnapshotFile(snapshot, f->snapshot_path);
    if (!status.ok()) {
      ADD_FAILURE() << status.ToString();
    }
    return f;
  }();
  return *fixture;
}

// The current one-shot CLI path: run the matcher, translate, evaluate.
std::vector<std::pair<std::string, std::vector<std::string>>>
OneShotAnswers(const std::string& query_text) {
  const Fixture& f = GetFixture();
  std::map<std::string, const eval::MatchSet*> per_type;
  for (const auto& tr : f.result.per_type) {
    per_type.emplace(tr.type_b, &tr.alignment.matches);
  }
  query::QueryTranslator translator("pt", "en", f.result.type_matches,
                                    per_type, &f.dictionary);
  auto parsed = query::ParseCQuery(query_text);
  EXPECT_TRUE(parsed.ok());
  auto translated = translator.Translate(*parsed);
  EXPECT_TRUE(translated.ok());
  query::QueryEvaluator evaluator(&f.gc.corpus, "en");
  auto answers = evaluator.Run(*translated);
  EXPECT_TRUE(answers.ok());
  std::vector<std::pair<std::string, std::vector<std::string>>> out;
  for (const auto& answer : *answers) {
    out.emplace_back(f.gc.corpus.Get(answer.article).title,
                     answer.projections);
  }
  return out;
}

// ----------------------------------------------------------------- lru cache

TEST(LruCacheTest, HitMissPromoteEvict) {
  ShardedLruCache cache(/*capacity=*/2, /*num_shards=*/1);
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));
  cache.Put("a", "1");
  cache.Put("b", "2");
  ASSERT_TRUE(cache.Get("a", &value));
  EXPECT_EQ(value, "1");
  // "b" is now least-recently-used; inserting "c" evicts it.
  cache.Put("c", "3");
  EXPECT_FALSE(cache.Get("b", &value));
  EXPECT_TRUE(cache.Get("a", &value));
  EXPECT_TRUE(cache.Get("c", &value));
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(LruCacheTest, ZeroCapacityDisables) {
  ShardedLruCache cache(0, 4);
  cache.Put("a", "1");
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));
}

TEST(LruCacheTest, ConcurrentMixedLoad) {
  ShardedLruCache cache(256, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t]() {
      for (int i = 0; i < 500; ++i) {
        std::string key = "k" + std::to_string((i * 7 + t) % 64);
        std::string value;
        if (!cache.Get(key, &value)) cache.Put(key, key + "!");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u * 500u);
  EXPECT_LE(stats.entries, 256u);
}

// -------------------------------------------------------------- match service

TEST(ServeTest, LoadRejectsMissingSnapshot) {
  auto service = MatchService::Load("/nonexistent/path.snap");
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), util::StatusCode::kIoError);
}

TEST(ServeTest, AttributeTranslationLookup) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  // "film" is the hub-side type of the Tiny corpus; its alignment must
  // carry at least one pt -> en correspondence discovered by the matcher.
  auto alignments = (*service)->ListAlignments("pt", "en", "film");
  ASSERT_TRUE(alignments.ok()) << alignments.status().ToString();
  ASSERT_FALSE(alignments->empty());
  // Take a pt attribute from the pipeline's own MatchSet and ask the
  // service for its correspondents.
  const auto* tr = GetFixture().result.FindByTypeB("film");
  ASSERT_NE(tr, nullptr);
  auto pairs = tr->alignment.matches.CrossLanguagePairs("pt", "en");
  ASSERT_FALSE(pairs.empty());
  const auto& [pt_attr, en_attr] = pairs.front();
  auto correspondents = (*service)->TranslateAttribute(
      "pt", "en", "film", "pt", pt_attr.name);
  ASSERT_TRUE(correspondents.ok()) << correspondents.status().ToString();
  bool found = false;
  for (const auto& c : *correspondents) {
    if (c == "en:" + en_attr.name) found = true;
  }
  EXPECT_TRUE(found) << "expected en:" << en_attr.name;
  // Unknown pair and unknown type are clean errors.
  EXPECT_FALSE((*service)->TranslateAttribute("vi", "en", "film", "vi",
                                              "x").ok());
  EXPECT_FALSE((*service)->TranslateAttribute("pt", "en", "nope", "pt",
                                              "x").ok());
}

TEST(ServeTest, TranslatedQueryMatchesOneShotPath) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  auto served = (*service)->EvaluateTranslatedQuery("pt", "en", kQuery);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  auto expected = OneShotAnswers(kQuery);
  ASSERT_EQ(served->answers.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(served->answers[i].title, expected[i].first) << "answer " << i;
    EXPECT_EQ(served->answers[i].projections, expected[i].second)
        << "answer " << i;
  }
  EXPECT_GT(served->constraints_translated, 0u);
}

TEST(ServeTest, SecondIdenticalRequestIsACacheHit) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  std::string request = std::string("query pt:en ") + kQuery;
  std::string first = (*service)->Handle(request);
  ASSERT_EQ(first.compare(0, 3, "ok "), 0) << first;
  std::string second = (*service)->Handle(request);
  EXPECT_EQ(first, second);
  ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServeTest, ErrorsAreCountedNotCached) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  std::string response = (*service)->Handle("query vi:en filme(x=?)");
  EXPECT_EQ(response.compare(0, 3, "err"), 0) << response;
  (*service)->Handle("bogus request");
  ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.cache.entries, 0u);
}

TEST(ServeTest, ConcurrentHandleIsSafeAndConsistent) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  const std::vector<std::string> requests = {
      std::string("query pt:en ") + kQuery,
      "alignments pt:en film",
      "types pt:en",
      "attr pt:en film en starring",
  };
  std::vector<std::string> baselines;
  for (const auto& request : requests) {
    baselines.push_back((*service)->Handle(request));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 50; ++i) {
        size_t pick = (i + t) % requests.size();
        if ((*service)->Handle(requests[pick]) != baselines[pick]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.requests, 4u + 8u * 50u);
}

// ------------------------------------------------------------ mmap startup

std::string PerPidTempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "." + name;
}

void CopyFile(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
}

// Writes the fixture snapshot in the pre-directory layout (no footer),
// exactly as an older build would have produced it.
std::string WriteLegacySnapshot(const std::string& name) {
  const Fixture& f = GetFixture();
  store::Snapshot snapshot;
  snapshot.corpus = f.gc.corpus;
  snapshot.dictionary = f.dictionary;
  snapshot.pipelines.emplace(store::LanguagePair("pt", "en"), f.result);
  std::string path = PerPidTempPath(name);
  auto status =
      store::WriteSnapshotFile(snapshot, path, /*legacy_layout=*/true);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return path;
}

TEST(ServeTest, MmapLoadDefersTheCoreUntilFirstDataRequest) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_FALSE((*service)->CoreLoaded());
  EXPECT_EQ((*service)->CorpusSize(), 0u);  // documented: 0 while deferred
  // Meta verbs (and unknown-verb errors) answer without forcing a decode.
  EXPECT_EQ((*service)->Handle("health").compare(0, 3, "ok "), 0);
  EXPECT_EQ((*service)->Handle("version").compare(0, 3, "ok "), 0);
  EXPECT_EQ((*service)->Handle("generation").compare(0, 3, "ok "), 0);
  (*service)->Handle("bogus request");
  EXPECT_FALSE((*service)->CoreLoaded());
  // The first data request materializes the core, exactly once.
  std::string types = (*service)->Handle("types pt:en");
  EXPECT_EQ(types.compare(0, 3, "ok "), 0) << types;
  EXPECT_TRUE((*service)->CoreLoaded());
  EXPECT_GT((*service)->CorpusSize(), 0u);
}

TEST(ServeTest, MmapAndLegacyParsedServicesAnswerIdentically) {
  std::string legacy = WriteLegacySnapshot("legacy_compare.snap");
  auto lazy_service = MatchService::Load(GetFixture().snapshot_path);
  auto parsed_service = MatchService::Load(legacy);
  ASSERT_TRUE(lazy_service.ok()) << lazy_service.status().ToString();
  ASSERT_TRUE(parsed_service.ok()) << parsed_service.status().ToString();
  EXPECT_FALSE((*lazy_service)->CoreLoaded());
  EXPECT_TRUE((*parsed_service)->CoreLoaded());  // legacy parses eagerly
  const std::vector<std::string> requests = {
      "pairs",
      "types pt:en",
      "alignments pt:en film",
      "attr pt:en film en starring",
      std::string("query pt:en ") + kQuery,
      "sync-status",
  };
  for (const auto& request : requests) {
    EXPECT_EQ((*lazy_service)->Handle(request),
              (*parsed_service)->Handle(request))
        << request;
  }
  std::remove(legacy.c_str());
}

TEST(ServeTest, UnlinkedSnapshotStillAnswersItsFirstRequest) {
  // A private copy so this test can delete its own file.
  std::string path = PerPidTempPath("unlink_serve.snap");
  CopyFile(GetFixture().snapshot_path, path);
  auto service = MatchService::Load(path);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_FALSE((*service)->CoreLoaded());
  ASSERT_EQ(std::remove(path.c_str()), 0);
  // The generation pins the mapping, and the mapping holds the pages: the
  // deferred decode still sees every byte of the unlinked file.
  std::string response = (*service)->Handle("alignments pt:en film");
  EXPECT_EQ(response.compare(0, 3, "ok "), 0) << response;
  EXPECT_TRUE((*service)->CoreLoaded());
}

TEST(ServeTest, LazyDecodeFailureIsStickyUntilReloadReplacesIt) {
  // Corrupt one corpus payload byte but leave the directory intact: the
  // O(1) Load() cannot see the damage, so it must surface at the first
  // core-needing request, stick, and clear when a good file is reloaded.
  std::string path = PerPidTempPath("corrupt_serve.snap");
  {
    std::ifstream in(GetFixture().snapshot_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 34u);
    bytes[33] = static_cast<char>(bytes[33] ^ 0x5A);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto service = MatchService::Load(path);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->Handle("health").compare(0, 3, "ok "), 0);
  std::string first = (*service)->Handle("pairs");
  EXPECT_EQ(first.compare(0, 3, "err"), 0) << first;
  EXPECT_NE(first.find("CRC"), std::string::npos) << first;
  EXPECT_EQ((*service)->Handle("pairs"), first);  // sticky
  EXPECT_FALSE((*service)->CoreLoaded());
  // Repair the file and hot-swap it in; the sticky error must clear.
  CopyFile(GetFixture().snapshot_path, path);
  std::string reloaded = (*service)->Handle("reload");
  EXPECT_EQ(reloaded.compare(0, 3, "ok "), 0) << reloaded;
  EXPECT_TRUE((*service)->CoreLoaded());
  EXPECT_EQ((*service)->Handle("pairs").compare(0, 3, "ok "), 0);
  std::remove(path.c_str());
}

// -------------------------------------------------------------- hot reload

// Writes a copy of the fixture snapshot stamped as generation `gen` with
// `gen` delta records — same matching payload, distinguishable meta.
std::string WriteGenerationSnapshot(uint64_t gen, const std::string& name) {
  const Fixture& f = GetFixture();
  store::Snapshot snapshot;
  snapshot.corpus = f.gc.corpus;
  snapshot.dictionary = f.dictionary;
  snapshot.pipelines.emplace(store::LanguagePair("pt", "en"), f.result);
  snapshot.meta.generation = gen;
  for (uint64_t g = 1; g <= gen; ++g) {
    snapshot.meta.history.push_back({g, 1, 0, 0, 1, 0});
  }
  std::string path =
      ::testing::TempDir() + "/" + std::to_string(::getpid()) + "." + name;
  auto status = store::WriteSnapshotFile(snapshot, path);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return path;
}

TEST(ServeTest, StatsCarryGenerationAndUptime) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.generation, 0u);
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_GT(stats.loaded_unix, 0);
  EXPECT_GE(stats.uptime_s, 0.0);
  EXPECT_GE(stats.generation_age_s, 0.0);
  std::string response = (*service)->Handle("stats");
  ASSERT_EQ(response.compare(0, 3, "ok "), 0) << response;
  EXPECT_NE(response.find(" generation=0 "), std::string::npos) << response;
  EXPECT_NE(response.find(" loads=1 "), std::string::npos) << response;
  EXPECT_NE(response.find(" loaded_unix="), std::string::npos) << response;
  EXPECT_NE(response.find(" uptime_s="), std::string::npos) << response;
  EXPECT_NE(response.find(" generation_age_s="), std::string::npos)
      << response;
}

TEST(ServeTest, GenerationVerbDescribesTheServedSnapshot) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  std::string response = (*service)->Handle("generation");
  ASSERT_EQ(response.compare(0, 5, "ok 1\n"), 0) << response;
  EXPECT_NE(response.find("generation=0 "), std::string::npos) << response;
  EXPECT_NE(response.find(" load_seq=1 "), std::string::npos) << response;
  EXPECT_NE(response.find(" deltas_applied=0"), std::string::npos)
      << response;
}

TEST(ServeTest, HealthVerbIsOneCheapLine) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  std::string response = (*service)->Handle("health");
  ASSERT_EQ(response.compare(0, 5, "ok 1\n"), 0) << response;
  EXPECT_NE(response.find("healthy generation=0 "), std::string::npos)
      << response;
  EXPECT_NE(response.find(" load_seq=1 "), std::string::npos) << response;
  EXPECT_NE(response.find(" uptime_s="), std::string::npos) << response;
  // A liveness probe must not pollute the result cache.
  EXPECT_EQ((*service)->Stats().cache.entries, 0u);
}

TEST(ServeTest, VersionVerbReportsServerAndFormatVersions) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  std::string response = (*service)->Handle("version");
  ASSERT_EQ(response.compare(0, 5, "ok 1\n"), 0) << response;
  std::string expected = std::string("wikimatch ") + kServerVersion +
                         " protocol=" + std::to_string(kProtocolVersion) +
                         " snapshot_format=" +
                         std::to_string(store::kSnapshotVersion);
  EXPECT_NE(response.find(expected), std::string::npos) << response;
  // Both verbs are documented in help.
  std::string help = (*service)->Handle("help");
  EXPECT_NE(help.find("health"), std::string::npos) << help;
  EXPECT_NE(help.find("version"), std::string::npos) << help;
}

TEST(ServeTest, ReloadSwapsGenerationAndInvalidatesCache) {
  std::string next = WriteGenerationSnapshot(1, "serve_reload_g1.snap");
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->Generation(), 0u);

  const std::string request = "alignments pt:en film";
  std::string before = (*service)->Handle(request);
  (*service)->Handle(request);
  EXPECT_EQ((*service)->Stats().cache.hits, 1u);

  std::string response = (*service)->Handle("reload " + next);
  ASSERT_EQ(response.compare(0, 3, "ok "), 0) << response;
  EXPECT_NE(response.find("reloaded generation=1 load_seq=2"),
            std::string::npos)
      << response;
  EXPECT_EQ((*service)->Generation(), 1u);
  EXPECT_EQ((*service)->Stats().loads, 2u);

  // Same request: the generation-tagged key makes it a miss, not a stale
  // hit — and the answer (same matching payload) is unchanged. Misses are
  // 3, not 2: the uncacheable reload line itself probed the cache once.
  std::string after = (*service)->Handle(request);
  EXPECT_EQ(after, before);
  EXPECT_EQ((*service)->Stats().cache.hits, 1u);
  EXPECT_EQ((*service)->Stats().cache.misses, 3u);

  // The generation verb reflects the delta manifest.
  std::string gen_line = (*service)->Handle("generation");
  EXPECT_NE(gen_line.find("generation=1 "), std::string::npos) << gen_line;
  EXPECT_NE(gen_line.find(" deltas_applied=1"), std::string::npos)
      << gen_line;
  std::remove(next.c_str());
}

TEST(ServeTest, FailedReloadKeepsServingThePreviousGeneration) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  std::string baseline = (*service)->Handle("alignments pt:en film");
  auto status = (*service)->Reload("/nonexistent/next.snap");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ((*service)->Generation(), 0u);
  EXPECT_EQ((*service)->Stats().loads, 1u);
  EXPECT_EQ((*service)->Handle("alignments pt:en film"), baseline);
  // The reload verb reports the failure as a protocol error.
  std::string response = (*service)->Handle("reload /nonexistent/next.snap");
  EXPECT_EQ(response.compare(0, 3, "err"), 0) << response;
}

TEST(ServeTest, ReloadWithoutPathReusesTheLastSource) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  EXPECT_TRUE((*service)->Reload().ok());  // re-reads snapshot_path
  EXPECT_EQ((*service)->Stats().loads, 2u);

  // A service built from memory has no source to re-read.
  store::Snapshot snapshot;
  snapshot.corpus = GetFixture().gc.corpus;
  snapshot.dictionary = GetFixture().dictionary;
  snapshot.pipelines.emplace(store::LanguagePair("pt", "en"),
                             GetFixture().result);
  auto in_memory = MatchService::Create(std::move(snapshot));
  auto status = in_memory->Reload();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

// Satellite of the reload design: readers must never observe a torn or
// dropped response while a writer hot-swaps generations under them. Runs
// under TSan via tools/check.sh.
TEST(ServeTest, ConcurrentReloadDropsNoRequests) {
  std::string next = WriteGenerationSnapshot(1, "serve_stress_g1.snap");
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  const std::vector<std::string> requests = {
      std::string("query pt:en ") + kQuery,
      "alignments pt:en film",
      "types pt:en",
      "attr pt:en film en starring",
  };
  std::vector<std::string> baselines;
  for (const auto& request : requests) {
    baselines.push_back((*service)->Handle(request));
    ASSERT_EQ(baselines.back().compare(0, 3, "ok "), 0) << baselines.back();
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failed_reloads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&, t]() {
      for (int i = 0; i < 60; ++i) {
        size_t pick = (i + t) % requests.size();
        // Both snapshots carry the same matching payload, so every
        // response must be byte-identical to the baseline no matter which
        // generation serves it.
        if ((*service)->Handle(requests[pick]) != baselines[pick]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&]() {
    for (int i = 0; i < 14; ++i) {
      const std::string& path =
          i % 2 == 0 ? next : GetFixture().snapshot_path;
      if (!(*service)->Reload(path).ok()) failed_reloads.fetch_add(1);
    }
  });
  for (auto& reader : readers) reader.join();
  writer.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failed_reloads.load(), 0);
  EXPECT_EQ((*service)->Stats().loads, 15u);
  ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.requests, 4u + 6u * 60u);
  EXPECT_EQ(stats.errors, 0u);
  std::remove(next.c_str());
}

// Like WriteGenerationSnapshot, but with a persisted sync report (section
// kind 5) computed over the fixture's pipeline alignments.
std::string WriteSyncSnapshot(uint64_t gen, const std::string& name) {
  const Fixture& f = GetFixture();
  store::Snapshot snapshot;
  snapshot.corpus = f.gc.corpus;
  snapshot.dictionary = f.dictionary;
  snapshot.pipelines.emplace(store::LanguagePair("pt", "en"), f.result);
  snapshot.meta.generation = gen;
  sync::SyncEngine engine(&snapshot.corpus, &snapshot.dictionary, "en");
  auto scopes = sync::SyncEngine::ScopesFromPipelines(snapshot.pipelines);
  snapshot.sync_report = engine.Run(scopes);
  snapshot.sync_report.generation = gen;
  EXPECT_FALSE(snapshot.sync_report.cells.empty());
  std::string path =
      ::testing::TempDir() + "/" + std::to_string(::getpid()) + "." + name;
  auto status = store::WriteSnapshotFile(snapshot, path);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return path;
}

TEST(ServeTest, SyncVerbsAnswerFromThePersistedReport) {
  std::string path = WriteSyncSnapshot(0, "serve_sync_g0.snap");
  auto service = MatchService::Load(path);
  ASSERT_TRUE(service.ok());
  std::string status_resp = (*service)->Handle("sync-status");
  ASSERT_EQ(status_resp.compare(0, 3, "ok "), 0) << status_resp;
  EXPECT_NE(status_resp.find("sync_generation=0 cells="), std::string::npos)
      << status_resp;

  const std::string& type_b = GetFixture().result.per_type.front().type_b;
  const std::string request = "sync pt:en \"" + type_b + "\"";
  std::string response = (*service)->Handle(request);
  ASSERT_EQ(response.compare(0, 3, "ok "), 0) << response;
  EXPECT_NE(response.find("sync_generation=0"), std::string::npos)
      << response;
  EXPECT_NE(response.find("cell\t"), std::string::npos) << response;
  // Both sync verbs are cacheable; the repeats must hit.
  (*service)->Handle(request);
  (*service)->Handle("sync-status");
  EXPECT_EQ((*service)->Stats().cache.hits, 2u);
  std::remove(path.c_str());
}

// Generation pinning for the sync verbs: a request races reloads between
// two snapshots whose reports differ only in generation, and every
// response must be byte-identical to one of the two baselines — never
// torn, mixed, or dropped. Runs under TSan via tools/check.sh.
TEST(ServeTest, GenerationPinnedSyncSurvivesHotReload) {
  std::string g0 = WriteSyncSnapshot(0, "serve_sync_race_g0.snap");
  std::string g1 = WriteSyncSnapshot(1, "serve_sync_race_g1.snap");
  auto service = MatchService::Load(g0);
  ASSERT_TRUE(service.ok());
  const std::string& type_b = GetFixture().result.per_type.front().type_b;
  const std::vector<std::string> requests = {
      "sync-status",
      "sync pt:en \"" + type_b + "\"",
  };
  std::vector<std::vector<std::string>> allowed(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    allowed[i].push_back((*service)->Handle(requests[i]));
    ASSERT_EQ(allowed[i][0].compare(0, 3, "ok "), 0) << allowed[i][0];
  }
  ASSERT_TRUE((*service)->Reload(g1).ok());
  for (size_t i = 0; i < requests.size(); ++i) {
    allowed[i].push_back((*service)->Handle(requests[i]));
    EXPECT_NE(allowed[i][0], allowed[i][1]);  // generations distinguishable
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failed_reloads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&, t]() {
      for (int i = 0; i < 60; ++i) {
        size_t pick = (i + t) % requests.size();
        std::string response = (*service)->Handle(requests[pick]);
        if (response != allowed[pick][0] && response != allowed[pick][1]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&]() {
    for (int i = 0; i < 14; ++i) {
      if (!(*service)->Reload(i % 2 == 0 ? g0 : g1).ok()) {
        failed_reloads.fetch_add(1);
      }
    }
  });
  for (auto& reader : readers) reader.join();
  writer.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failed_reloads.load(), 0);
  EXPECT_EQ((*service)->Stats().errors, 0u);
  std::remove(g0.c_str());
  std::remove(g1.c_str());
}

// ----------------------------------------------------------------- protocol

TEST(ServeTest, ServeLoopSpeaksTheLineProtocol) {
  auto service = MatchService::Load(GetFixture().snapshot_path);
  ASSERT_TRUE(service.ok());
  std::istringstream in(
      "pairs\n"
      "\n"
      "alignments pt:en film\n"
      "nonsense\n"
      "quit\n"
      "pairs\n");  // after quit: never served
  std::ostringstream out;
  size_t served = ServeLoop(in, out, service->get());
  EXPECT_EQ(served, 3u);
  std::string text = out.str();
  EXPECT_EQ(text.compare(0, 10, "ok 1\npt:en"), 0) << text;
  EXPECT_NE(text.find("err unknown request 'nonsense'"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace wikimatch
