// Unit tests for the WikiMatch core: translation dictionary, type matcher,
// schema builder, LSI correlation, grouping scores, and the alignment
// algorithms (Algorithms 1 and 2 plus ReviseUncertain) on hand-built data.

#include <gtest/gtest.h>

#include "match/aligner.h"
#include "match/dictionary.h"
#include "match/lsi.h"
#include "match/pipeline.h"
#include "match/schema_builder.h"
#include "match/type_matcher.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace match {
namespace {

// Builds a small bilingual corpus by hand: two "film" dual pairs plus
// support articles, exercising links, anchors, and synonyms.
class HandCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wiki::WikitextParser parser;
    auto add = [&](const std::string& title, const std::string& lang,
                   const std::string& text) {
      auto article = parser.ParseArticle(title, lang, text);
      ASSERT_TRUE(article.ok()) << article.status().ToString();
      ASSERT_TRUE(corpus_.AddArticle(std::move(article).ValueOrDie()).ok());
    };

    add("Director One", "en", "'''Director One'''\n[[pt:Diretor Um]]\n");
    add("Diretor Um", "pt", "'''Diretor Um'''\n[[en:Director One]]\n");
    add("Director Two", "en", "'''Director Two'''\n[[pt:Diretor Dois]]\n");
    add("Diretor Dois", "pt", "'''Diretor Dois'''\n[[en:Director Two]]\n");

    add("Film A", "en",
        "{{Infobox film\n| directed by = [[Director One]]\n"
        "| running time = 100 minutes\n| other names = Alpha Omega\n}}\n"
        "[[pt:Filme A]]\n");
    add("Filme A", "pt",
        "{{Info filme\n| direção = [[Diretor Um]]\n"
        "| duração = 100 minutos\n| outros nomes = Gama Delta\n}}\n"
        "[[en:Film A]]\n");
    add("Film B", "en",
        "{{Infobox film\n| directed by = [[Director Two]]\n"
        "| running time = 90 minutes\n}}\n[[pt:Filme B]]\n");
    add("Filme B", "pt",
        "{{Info filme\n| direção = [[Diretor Dois]]\n"
        "| duração = 90 minutos\n}}\n[[en:Film B]]\n");
    corpus_.Finalize();
    dictionary_.Build(corpus_);
  }

  wiki::Corpus corpus_;
  TranslationDictionary dictionary_;
};

// -------------------------------------------------------------- Dictionary

TEST_F(HandCorpusTest, DictionaryFromCrossLanguageLinks) {
  auto t = dictionary_.Translate("pt", "diretor um", "en");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, "director one");
  // Both directions.
  EXPECT_EQ(dictionary_.TranslateOrKeep("en", "film b", "pt"), "filme b");
  // Unknown terms pass through.
  EXPECT_EQ(dictionary_.TranslateOrKeep("pt", "unknown term", "en"),
            "unknown term");
  EXPECT_FALSE(dictionary_.Translate("pt", "unknown term", "en").has_value());
}

TEST(DictionaryTest, ManualEntries) {
  TranslationDictionary dict;
  dict.Add("vi", "diễn viên", "en", "starring");
  EXPECT_EQ(dict.TranslateOrKeep("vi", "diễn viên", "en"), "starring");
  EXPECT_EQ(dict.size(), 1u);
}

// ------------------------------------------------------------- TypeMatcher

TEST_F(HandCorpusTest, TypeMatcherMapsFilmeToFilm) {
  TypeMatcher matcher(/*min_votes=*/1, /*min_confidence=*/0.5);
  auto matches = matcher.Match(corpus_, "pt", "en");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].type_a, "filme");
  EXPECT_EQ(matches[0].type_b, "film");
  EXPECT_EQ(matches[0].votes, 2u);
  EXPECT_EQ(matches[0].confidence, 1.0);
}

TEST_F(HandCorpusTest, TypeMatcherRespectsMinVotes) {
  TypeMatcher matcher(/*min_votes=*/3, /*min_confidence=*/0.5);
  EXPECT_TRUE(matcher.Match(corpus_, "pt", "en").empty());
}

// ------------------------------------------------------------ SchemaBuilder

TEST_F(HandCorpusTest, BuildsGroupsForBothLanguages) {
  auto data = BuildTypePairData(corpus_, dictionary_, "pt", "filme", "en",
                                "film");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_duals, 2u);
  // pt: direção, duração, outros nomes; en: directed by, running time,
  // other names.
  EXPECT_EQ(data->groups.size(), 6u);
  // lang_a groups come first, sorted by name.
  EXPECT_EQ(data->groups[0].key.language, "pt");
  size_t direcao = data->GroupIndex({"pt", "direção"});
  ASSERT_NE(direcao, SIZE_MAX);
  EXPECT_EQ(data->groups[direcao].occurrences, 2.0);
  EXPECT_EQ(data->groups[direcao].dual_docs.size(), 2u);
}

TEST_F(HandCorpusTest, ValueTranslationAlignsVectors) {
  auto data = BuildTypePairData(corpus_, dictionary_, "pt", "filme", "en",
                                "film");
  ASSERT_TRUE(data.ok());
  size_t direcao = data->GroupIndex({"pt", "direção"});
  size_t directed = data->GroupIndex({"en", "directed by"});
  ASSERT_NE(direcao, SIZE_MAX);
  ASSERT_NE(directed, SIZE_MAX);
  // Anchors "diretor um" were translated to "director one". The word
  // tokens stay untranslated (they are not article titles), so the cosine
  // is positive but diluted.
  double vsim = AttributeAligner::ValueSimilarity(data->groups[direcao],
                                                  data->groups[directed]);
  EXPECT_GT(vsim, 0.2);

  SchemaBuilderOptions raw;
  raw.translate_values = false;
  auto untranslated = BuildTypePairData(corpus_, dictionary_, "pt", "filme",
                                        "en", "film", raw);
  ASSERT_TRUE(untranslated.ok());
  double raw_vsim = AttributeAligner::ValueSimilarity(
      untranslated->groups[untranslated->GroupIndex({"pt", "direção"})],
      untranslated->groups[untranslated->GroupIndex({"en", "directed by"})]);
  EXPECT_LT(raw_vsim, vsim);
}

TEST_F(HandCorpusTest, LinkStructureUnifiedByCrossLanguageLinks) {
  auto data = BuildTypePairData(corpus_, dictionary_, "pt", "filme", "en",
                                "film");
  ASSERT_TRUE(data.ok());
  size_t direcao = data->GroupIndex({"pt", "direção"});
  size_t directed = data->GroupIndex({"en", "directed by"});
  double lsim = AttributeAligner::LinkSimilarity(data->groups[direcao],
                                                 data->groups[directed]);
  // [[diretor um]] and [[director one]] canonicalize to the same target.
  EXPECT_NEAR(lsim, 1.0, 1e-9);
}

TEST_F(HandCorpusTest, CoOccurrenceCounts) {
  auto data = BuildTypePairData(corpus_, dictionary_, "pt", "filme", "en",
                                "film");
  ASSERT_TRUE(data.ok());
  size_t direcao = data->GroupIndex({"pt", "direção"});
  size_t duracao = data->GroupIndex({"pt", "duração"});
  auto key = std::make_pair(std::min(direcao, duracao),
                            std::max(direcao, duracao));
  ASSERT_TRUE(data->co_occur.count(key));
  EXPECT_EQ(data->co_occur.at(key), 2.0);  // Present together in both.
}

TEST_F(HandCorpusTest, NotFoundForMissingTypePair) {
  EXPECT_FALSE(BuildTypePairData(corpus_, dictionary_, "pt", "nope", "en",
                                 "film")
                   .ok());
}

TEST_F(HandCorpusTest, SamplingLimitsDuals) {
  SchemaBuilderOptions opts;
  opts.max_sample_infoboxes = 1;
  auto data = BuildTypePairData(corpus_, dictionary_, "pt", "filme", "en",
                                "film", opts);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_duals, 1u);
}

TEST(ValueComponentsTest, TokensPlusAnchors) {
  wiki::AttributeValue value;
  value.text = "John Lone, Joan Chen";
  value.links = {{"john lone", "John Lone"}, {"joan chen", "Joan Chen"}};
  auto components = ValueComponents(value);
  // 4 word tokens + 2 whole anchors.
  EXPECT_EQ(components.size(), 6u);
  EXPECT_EQ(components[4], "john lone");
}

// -------------------------------------------------------------------- LSI

// Hand occurrence pattern: pt attributes a0, a1; en attributes b0, b1.
// a0/b0 co-occur in the same duals, a1/b1 in the others.
TypePairData HandLsiData() {
  TypePairData data;
  data.lang_a = "pt";
  data.lang_b = "en";
  data.num_duals = 8;
  auto make_group = [&](const std::string& lang, const std::string& name,
                        std::initializer_list<uint32_t> docs) {
    AttributeGroup g;
    g.key = {lang, name};
    g.occurrences = static_cast<double>(docs.size());
    g.dual_docs.insert(docs.begin(), docs.end());
    data.groups.push_back(std::move(g));
  };
  make_group("pt", "a0", {0, 1, 2, 3});
  make_group("pt", "a1", {4, 5, 6, 7});
  make_group("en", "b0", {0, 1, 2, 3});
  make_group("en", "b1", {4, 5, 6, 7});
  return data;
}

TEST(LsiTest, CrossLanguageCorrelationFollowsCoOccurrence) {
  TypePairData data = HandLsiData();
  auto lsi = LsiCorrelation::Compute(data);
  ASSERT_TRUE(lsi.ok());
  // a0 correlates with b0, not with b1.
  EXPECT_GT(lsi->Score(0, 2), 0.9);
  EXPECT_LT(lsi->Score(0, 3), 0.1);
  EXPECT_GT(lsi->Score(1, 3), 0.9);
}

TEST(LsiTest, SameLanguageNonCoOccurringScoresHigh) {
  TypePairData data = HandLsiData();
  auto lsi = LsiCorrelation::Compute(data);
  ASSERT_TRUE(lsi.ok());
  // a0 and a1 never co-occur: 1 - cosine is high (they are anti-correlated
  // in the reduced space).
  EXPECT_GT(lsi->Score(0, 1), 0.9);
}

TEST(LsiTest, SameLanguageCoOccurringIsZero) {
  TypePairData data = HandLsiData();
  // Make a0 and a1 co-occur.
  data.co_occur[{0, 1}] = 3.0;
  auto lsi = LsiCorrelation::Compute(data);
  ASSERT_TRUE(lsi.ok());
  EXPECT_EQ(lsi->Score(0, 1), 0.0);
}

TEST(LsiTest, CoOccurToleranceAbsorbsNoise) {
  TypePairData data = HandLsiData();
  data.co_occur[{0, 1}] = 0.01;  // Negligible vs min occurrence 4.
  LsiOptions opts;
  opts.co_occur_tolerance = 0.02;
  auto lsi = LsiCorrelation::Compute(data, opts);
  ASSERT_TRUE(lsi.ok());
  EXPECT_GT(lsi->Score(0, 1), 0.5);
}

TEST(LsiTest, EmptyDataIsSafe) {
  TypePairData data;
  data.lang_a = "pt";
  data.lang_b = "en";
  auto lsi = LsiCorrelation::Compute(data);
  ASSERT_TRUE(lsi.ok());
  EXPECT_EQ(lsi->rank(), 0u);
}

TEST(LsiTest, RankClamped) {
  TypePairData data = HandLsiData();
  LsiOptions opts;
  opts.rank = 2;
  auto lsi = LsiCorrelation::Compute(data, opts);
  ASSERT_TRUE(lsi.ok());
  EXPECT_LE(lsi->rank(), 2u);
}

// ---------------------------------------------------------------- Aligner

TEST_F(HandCorpusTest, AlignerFindsCorrectMatches) {
  auto data = BuildTypePairData(corpus_, dictionary_, "pt", "filme", "en",
                                "film");
  ASSERT_TRUE(data.ok());
  MatcherConfig config;
  config.lsi.co_occur_tolerance = 0.0;
  AttributeAligner aligner(config);
  auto result = aligner.Align(*data);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.AreMatched({"pt", "direção"},
                                         {"en", "directed by"}));
  EXPECT_TRUE(result->matches.AreMatched({"pt", "duração"},
                                         {"en", "running time"}));
  EXPECT_FALSE(result->matches.AreMatched({"pt", "direção"},
                                          {"en", "running time"}));
}

TEST(GroupingScoreTest, Formula) {
  TypePairData data = HandLsiData();
  data.groups[0].occurrences = 4;
  data.groups[1].occurrences = 8;
  data.co_occur[{0, 1}] = 2.0;
  // g = Opq / min(Op, Oq) = 2 / 4.
  EXPECT_NEAR(AttributeAligner::GroupingScore(data, 0, 1), 0.5, 1e-9);
  EXPECT_EQ(AttributeAligner::GroupingScore(data, 0, 2), 0.0);
  EXPECT_EQ(AttributeAligner::GroupingScore(data, 0, 0), 1.0);
}

TEST(InductiveGroupingTest, HighWhenCompanionsMatch) {
  // Four attributes: (pt:a, en:b) is the uncertain pair; (pt:c, en:d) is an
  // existing match; a co-occurs with c, b with d.
  TypePairData data;
  data.lang_a = "pt";
  data.lang_b = "en";
  data.num_duals = 4;
  auto add = [&](const std::string& lang, const std::string& name) {
    AttributeGroup g;
    g.key = {lang, name};
    g.occurrences = 4;
    data.groups.push_back(g);
  };
  add("pt", "a");  // 0
  add("pt", "c");  // 1
  add("en", "b");  // 2
  add("en", "d");  // 3
  data.co_occur[{0, 1}] = 4.0;  // g(a, c) = 1
  data.co_occur[{2, 3}] = 2.0;  // g(b, d) = 0.5
  eval::MatchSet matches;
  matches.AddPair({"pt", "c"}, {"en", "d"});
  double eg = AttributeAligner::InductiveGroupingScore(data, matches, 0, 2);
  EXPECT_NEAR(eg, 1.0 * 0.5, 1e-9);
  // With no matched companions the score is zero.
  eval::MatchSet empty;
  EXPECT_EQ(AttributeAligner::InductiveGroupingScore(data, empty, 0, 2),
            0.0);
}

TEST_F(HandCorpusTest, SingleStepHasHighRecallLowPrecisionShape) {
  auto data = BuildTypePairData(corpus_, dictionary_, "pt", "filme", "en",
                                "film");
  ASSERT_TRUE(data.ok());
  MatcherConfig config;
  config.single_step = true;
  AttributeAligner aligner(config);
  auto result = aligner.Align(*data);
  ASSERT_TRUE(result.ok());
  // Every positive-similarity pair is accepted, including the wrong ones
  // that share numbers (duração vs running time are correct, but direção /
  // running time etc. stay apart only if their sims are 0).
  EXPECT_TRUE(result->matches.AreMatched({"pt", "direção"},
                                         {"en", "directed by"}));
  EXPECT_GE(result->matches.CrossLanguagePairs("pt", "en").size(), 2u);
}

TEST_F(HandCorpusTest, DisabledFeaturesZeroTheirScores) {
  auto data = BuildTypePairData(corpus_, dictionary_, "pt", "filme", "en",
                                "film");
  ASSERT_TRUE(data.ok());
  MatcherConfig config;
  config.use_vsim = false;
  config.use_lsim = false;
  AttributeAligner aligner(config);
  auto result = aligner.Align(*data);
  ASSERT_TRUE(result.ok());
  for (const auto& p : result->all_pairs) {
    EXPECT_EQ(p.vsim, 0.0);
    EXPECT_EQ(p.lsim, 0.0);
  }
  // Nothing clears Tsim, and with ReviseUncertain's minimum-similarity
  // floor nothing can be revised either: no matches.
  EXPECT_TRUE(result->matches.empty());
}

TEST_F(HandCorpusTest, ProcessedOrderIsDescendingInLsi) {
  auto data = BuildTypePairData(corpus_, dictionary_, "pt", "filme", "en",
                                "film");
  ASSERT_TRUE(data.ok());
  AttributeAligner aligner{MatcherConfig{}};
  auto result = aligner.Align(*data);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->all_pairs.size(); ++i) {
    EXPECT_GE(result->all_pairs[i - 1].lsi, result->all_pairs[i].lsi);
  }
}

// ---------------------------------------------------------------- Pipeline

TEST_F(HandCorpusTest, PipelineEndToEnd) {
  MatchPipeline pipeline(&corpus_);
  PipelineOptions options;
  options.type_min_votes = 1;
  options.matcher.lsi.co_occur_tolerance = 0.0;
  auto result = pipeline.Run("pt", "en", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_type.size(), 1u);
  const TypePairResult* film = result->FindByTypeB("film");
  ASSERT_NE(film, nullptr);
  EXPECT_EQ(film->num_duals, 2u);
  EXPECT_TRUE(film->alignment.matches.AreMatched({"pt", "direção"},
                                                 {"en", "directed by"}));
  EXPECT_EQ(result->FindByTypeB("nope"), nullptr);
  // Frequencies exported for the metrics.
  EXPECT_EQ(film->frequencies.at({"pt", "direção"}), 2.0);
}

}  // namespace
}  // namespace match
}  // namespace wikimatch
