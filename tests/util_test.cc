// Unit and property tests for the util substrate: Status/Result, the
// deterministic RNG, string helpers, and the UTF-8 codec.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/utf8.h"

namespace wikimatch {
namespace util {
namespace {

// ------------------------------------------------------------------ Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::IoError("disk").WithContext("reading dump");
  EXPECT_EQ(s.message(), "reading dump: disk");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    WIKIMATCH_RETURN_NOT_OK(Status::InvalidArgument("bad"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

// ------------------------------------------------------------------ Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto outer = [&](bool fail) -> Status {
    WIKIMATCH_ASSIGN_OR_RETURN(int v, inner(fail));
    EXPECT_EQ(v, 7);
    return Status::OK();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, NextBoolEdgeProbabilities) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    size_t pick = rng.NextWeighted({0.0, 1.0, 0.0});
    EXPECT_EQ(pick, 1u);
  }
}

TEST(RngTest, WeightedDistribution) {
  Rng rng(21);
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.NextWeighted({3.0, 1.0})]++;
  EXPECT_NEAR(static_cast<double>(counts[0]) / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(31);
  Rng child1 = parent.Fork(1);
  Rng parent2(31);
  Rng child2 = parent2.Fork(1);
  EXPECT_EQ(child1.NextU64(), child2.NextU64());  // Reproducible.
  Rng child3 = parent.Fork(2);
  EXPECT_NE(child1.NextU64(), child3.NextU64());
}

TEST(ZipfSamplerTest, RankZeroMostProbable) {
  ZipfSampler zipf(10, 1.0);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(9));
  double total = 0.0;
  for (uint64_t r = 0; r < 10; ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, SamplesInRange) {
  ZipfSampler zipf(5, 1.2);
  Rng rng(37);
  int counts[5] = {0};
  for (int i = 0; i < 5000; ++i) counts[zipf.Sample(&rng)]++;
  EXPECT_GT(counts[0], counts[4]);
}

// Parameterized property: NextZipf always lands in [0, n).
class ZipfRangeTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(ZipfRangeTest, InRange) {
  Rng rng(41 + GetParam());
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.NextZipf(GetParam(), 1.0), GetParam());
  }
}
INSTANTIATE_TEST_SUITE_P(Sizes, ZipfRangeTest,
                         ::testing::Values(1, 2, 7, 40, 1000));

// ------------------------------------------------------------ string_util

TEST(StringUtilTest, SplitBasics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a::b", "::"), (std::vector<std::string>{"a", "b"}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(AsciiToLower("MiXeD 123"), "mixed 123");
  EXPECT_TRUE(EqualsIgnoreAsciiCase("AbC", "aBc"));
  EXPECT_FALSE(EqualsIgnoreAsciiCase("abc", "abd"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("infobox film", "infobox"));
  EXPECT_FALSE(StartsWith("info", "infobox"));
  EXPECT_TRUE(EndsWith("produção", "ção"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a_b_c", "_", " "), "a b c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

TEST(StringUtilTest, CollapseWhitespace) {
  EXPECT_EQ(CollapseWhitespace("  a \t b\n\nc  "), "a b c");
  EXPECT_EQ(CollapseWhitespace(""), "");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 0.125), "0.12");
}

// -------------------------------------------------------------------- UTF-8

TEST(Utf8Test, AsciiRoundTrip) {
  std::string s = "hello world 123";
  EXPECT_EQ(EncodeUtf8(DecodeUtf8(s)), s);
  EXPECT_EQ(Utf8Length(s), s.size());
}

TEST(Utf8Test, MultiByteRoundTrip) {
  // Portuguese and Vietnamese sample covering 2- and 3-byte sequences.
  std::string s = "direção đạo diễn ngôn ngữ";
  EXPECT_TRUE(IsValidUtf8(s));
  EXPECT_EQ(EncodeUtf8(DecodeUtf8(s)), s);
  EXPECT_LT(Utf8Length(s), s.size());
}

TEST(Utf8Test, FourByteSequence) {
  std::string s = "\xF0\x9F\x98\x80";  // U+1F600
  auto cps = DecodeUtf8(s);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0], 0x1F600u);
  EXPECT_EQ(EncodeUtf8(cps), s);
}

TEST(Utf8Test, InvalidBytesBecomeReplacement) {
  std::string s = "a\xFF\x62";
  auto cps = DecodeUtf8(s);
  ASSERT_EQ(cps.size(), 3u);
  EXPECT_EQ(cps[1], kReplacementChar);
  EXPECT_FALSE(IsValidUtf8(s));
}

TEST(Utf8Test, TruncatedSequence) {
  std::string s = "\xC3";  // Lead byte with no continuation.
  auto cps = DecodeUtf8(s);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0], kReplacementChar);
}

TEST(Utf8Test, OverlongEncodingRejected) {
  std::string s = "\xC0\xAF";  // Overlong '/'.
  EXPECT_FALSE(IsValidUtf8(s));
}

TEST(Utf8Test, SurrogateRejected) {
  std::string s = "\xED\xA0\x80";  // U+D800.
  EXPECT_FALSE(IsValidUtf8(s));
}

TEST(Utf8Test, LiteralReplacementCharIsValid) {
  std::string s = "\xEF\xBF\xBD";  // U+FFFD itself.
  EXPECT_TRUE(IsValidUtf8(s));
}

TEST(Utf8Test, EncodeInvalidCodePointYieldsReplacement) {
  std::string out;
  AppendUtf8(0x110000, &out);
  EXPECT_EQ(out, "\xEF\xBF\xBD");
}

// Property: round-trip over all BMP boundaries.
class Utf8RoundTripTest : public ::testing::TestWithParam<char32_t> {};
TEST_P(Utf8RoundTripTest, EncodeDecode) {
  std::string out;
  AppendUtf8(GetParam(), &out);
  size_t pos = 0;
  char32_t back = DecodeUtf8Char(out, &pos);
  EXPECT_EQ(back, GetParam());
  EXPECT_EQ(pos, out.size());
}
INSTANTIATE_TEST_SUITE_P(Boundaries, Utf8RoundTripTest,
                         ::testing::Values(0x1u, 0x7Fu, 0x80u, 0x7FFu, 0x800u,
                                           0xFFFFu, 0x10000u, 0x10FFFFu));

}  // namespace
}  // namespace util
}  // namespace wikimatch
