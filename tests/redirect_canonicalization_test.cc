// Integration tests for redirect-aware link machinery: canonicalization in
// the schema builder, Bouma's value equivalence, and alias-targeted links
// in the generated corpus.

#include <gtest/gtest.h>

#include "baselines/bouma_matcher.h"
#include "match/aligner.h"
#include "match/schema_builder.h"
#include "synth/generator.h"
#include "wiki/corpus.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace {

class RedirectLinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wiki::WikitextParser parser;
    auto add = [&](const std::string& title, const std::string& lang,
                   const std::string& text) {
      auto article = parser.ParseArticle(title, lang, text);
      ASSERT_TRUE(article.ok());
      ASSERT_TRUE(corpus_.AddArticle(std::move(article).ValueOrDie()).ok());
    };
    // Canonical articles + a redirect alias on the en side.
    add("United States", "en",
        "'''United States'''\n[[pt:Estados Unidos]]\n");
    add("USA", "en", "#REDIRECT [[United States]]");
    add("Estados Unidos", "pt",
        "'''Estados Unidos'''\n[[en:United States]]\n");
    // One film pair: the en side links via the redirect, the pt side
    // directly.
    add("Film R", "en",
        "{{Infobox film\n| country = [[USA]]\n}}\n[[pt:Filme R]]\n");
    add("Filme R", "pt",
        "{{Info filme\n| país = [[Estados Unidos]]\n}}\n[[en:Film R]]\n");
    add("Film S", "en",
        "{{Infobox film\n| country = [[United States]]\n}}\n"
        "[[pt:Filme S]]\n");
    add("Filme S", "pt",
        "{{Info filme\n| país = [[Estados Unidos]]\n}}\n[[en:Film S]]\n");
    corpus_.Finalize();
    dictionary_.Build(corpus_);
  }

  wiki::Corpus corpus_;
  match::TranslationDictionary dictionary_;
};

TEST_F(RedirectLinkTest, LsimUnifiesRedirectedTargets) {
  auto data = match::BuildTypePairData(corpus_, dictionary_, "pt", "filme",
                                       "en", "film");
  ASSERT_TRUE(data.ok());
  size_t pais = data->GroupIndex({"pt", "país"});
  size_t country = data->GroupIndex({"en", "country"});
  ASSERT_NE(pais, SIZE_MAX);
  ASSERT_NE(country, SIZE_MAX);
  // [[usa]] resolves through the redirect to [[united states]], which is
  // cross-language linked to [[estados unidos]]: one canonical target.
  double lsim = match::AttributeAligner::LinkSimilarity(
      data->groups[pais], data->groups[country]);
  EXPECT_NEAR(lsim, 1.0, 1e-9);
}

TEST_F(RedirectLinkTest, BoumaSeesRedirectedValuesAsEqual) {
  auto result = baselines::RunBoumaMatcher(corpus_, "pt", "filme", "en",
                                           "film");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.AreMatched({"pt", "país"},
                                         {"en", "country"}));
}

TEST(GeneratedRedirectTest, AliasPagesExistAndResolve) {
  synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(31));
  auto gc = generator.Generate();
  ASSERT_TRUE(gc.ok());
  size_t redirect_pages = 0;
  size_t resolvable = 0;
  for (const auto* pool : {&gc->supports.entities, &gc->supports.places}) {
    for (const auto& e : *pool) {
      for (const auto& [lang, is_page] : e.alias_is_page) {
        if (!is_page) continue;
        ++redirect_pages;
        wiki::ArticleId id =
            gc->corpus.FindByTitle(lang, e.aliases.at(lang));
        if (id == wiki::kInvalidArticle) continue;
        // Resolution must land on the canonical article, not the redirect.
        EXPECT_EQ(gc->corpus.Get(id).title, e.titles.at(lang));
        EXPECT_FALSE(gc->corpus.Get(id).IsRedirect());
        ++resolvable;
      }
    }
  }
  EXPECT_GT(redirect_pages, 0u);
  EXPECT_GT(resolvable, 0u);
}

}  // namespace
}  // namespace wikimatch
