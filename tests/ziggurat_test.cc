// Tests for the logistic-regression substrate and the Ziggurat-style
// self-supervised baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ziggurat.h"
#include "la/logistic.h"
#include "match/pipeline.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace wikimatch {
namespace {

// --------------------------------------------------------------- Logistic

TEST(LogisticTest, LearnsLinearlySeparableData) {
  // y = 1 iff x0 > x1.
  util::Rng rng(3);
  std::vector<la::LabeledExample> examples;
  for (int i = 0; i < 400; ++i) {
    double x0 = rng.NextDouble();
    double x1 = rng.NextDouble();
    examples.push_back({{x0, x1}, x0 > x1});
  }
  la::LogisticRegression model;
  ASSERT_TRUE(model.Train(examples).ok());
  EXPECT_GT(model.Predict({0.9, 0.1}), 0.9);
  EXPECT_LT(model.Predict({0.1, 0.9}), 0.1);
}

TEST(LogisticTest, HandlesConstantFeature) {
  util::Rng rng(5);
  std::vector<la::LabeledExample> examples;
  for (int i = 0; i < 200; ++i) {
    double x = rng.NextDouble();
    examples.push_back({{x, 1.0}, x > 0.5});  // Second feature constant.
  }
  la::LogisticRegression model;
  ASSERT_TRUE(model.Train(examples).ok());
  EXPECT_GT(model.Predict({0.95, 1.0}), 0.8);
}

TEST(LogisticTest, RejectsDegenerateInput) {
  la::LogisticRegression model;
  EXPECT_FALSE(model.Train({}).ok());
  EXPECT_FALSE(model.Train({{{1.0}, true}}).ok());  // One class only.
  EXPECT_FALSE(model.Train({{{1.0}, true}, {{1.0, 2.0}, false}}).ok());
  EXPECT_FALSE(model.trained());
  EXPECT_EQ(model.Predict({1.0}), 0.5);  // Untrained: uninformative.
}

TEST(LogisticTest, DeterministicTraining) {
  util::Rng rng(7);
  std::vector<la::LabeledExample> examples;
  for (int i = 0; i < 100; ++i) {
    double x = rng.NextDouble();
    examples.push_back({{x}, x > 0.4});
  }
  la::LogisticRegression a;
  la::LogisticRegression b;
  ASSERT_TRUE(a.Train(examples).ok());
  ASSERT_TRUE(b.Train(examples).ok());
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(LogisticTest, PredictionsAreProbabilities) {
  util::Rng rng(9);
  std::vector<la::LabeledExample> examples;
  for (int i = 0; i < 100; ++i) {
    double x = rng.NextGaussian();
    examples.push_back({{x}, x > 0});
  }
  la::LogisticRegression model;
  ASSERT_TRUE(model.Train(examples).ok());
  for (double x = -5; x <= 5; x += 0.5) {
    double p = model.Predict({x});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // Monotone in the informative feature.
  EXPECT_LT(model.Predict({-2.0}), model.Predict({2.0}));
}

// --------------------------------------------------------------- Ziggurat

class ZigguratTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(88));
    auto g = generator.Generate();
    ASSERT_TRUE(g.ok());
    gc_ = new synth::GeneratedCorpus(std::move(g).ValueOrDie());
    pipeline_ = new match::MatchPipeline(&gc_->corpus);
    match::SchemaBuilderOptions raw;
    raw.translate_values = false;
    auto film = pipeline_->BuildPair("pt", "filme", "en", "film", raw);
    auto actor = pipeline_->BuildPair("pt", "ator", "en", "actor", raw);
    ASSERT_TRUE(film.ok());
    ASSERT_TRUE(actor.ok());
    film_ = new match::TypePairData(std::move(film).ValueOrDie());
    actor_ = new match::TypePairData(std::move(actor).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete film_;
    delete actor_;
    delete pipeline_;
    delete gc_;
    film_ = nullptr;
    actor_ = nullptr;
    pipeline_ = nullptr;
    gc_ = nullptr;
  }

  static synth::GeneratedCorpus* gc_;
  static match::MatchPipeline* pipeline_;
  static match::TypePairData* film_;
  static match::TypePairData* actor_;
};

synth::GeneratedCorpus* ZigguratTest::gc_ = nullptr;
match::MatchPipeline* ZigguratTest::pipeline_ = nullptr;
match::TypePairData* ZigguratTest::film_ = nullptr;
match::TypePairData* ZigguratTest::actor_ = nullptr;

TEST_F(ZigguratTest, FeatureVectorShapeAndRange) {
  const auto& a = film_->groups.front();
  const auto& b = film_->groups.back();
  auto features = baselines::ZigguratMatcher::Features(*film_, a, b);
  EXPECT_EQ(features.size(), 14u);
  for (double f : features) EXPECT_TRUE(std::isfinite(f));
  // Self-pair: name features saturate.
  auto self_features = baselines::ZigguratMatcher::Features(*film_, a, a);
  EXPECT_EQ(self_features[0], 1.0);  // trigram
  EXPECT_EQ(self_features[5], 1.0);  // exact equality flag
}

TEST_F(ZigguratTest, TrainsAndHarvestsBothClasses) {
  baselines::ZigguratMatcher matcher;
  ASSERT_TRUE(matcher.Train({film_, actor_}).ok());
  EXPECT_TRUE(matcher.trained());
  EXPECT_GT(matcher.num_positives(), 0u);
  EXPECT_GT(matcher.num_negatives(), 0u);
}

TEST_F(ZigguratTest, MatchRequiresTraining) {
  baselines::ZigguratMatcher untrained;
  EXPECT_FALSE(untrained.Match(*film_).ok());
}

TEST_F(ZigguratTest, FindsMajorityCorrectMatches) {
  baselines::ZigguratMatcher matcher;
  ASSERT_TRUE(matcher.Train({film_, actor_}).ok());
  auto matches = matcher.Match(*film_);
  ASSERT_TRUE(matches.ok());
  const eval::MatchSet& truth = gc_->ground_truth.at("film");
  size_t correct = 0;
  size_t total = 0;
  for (const auto& [a, b] : matches->CrossLanguagePairs("pt", "en")) {
    ++total;
    if (truth.AreMatched(a, b)) ++correct;
  }
  ASSERT_GT(total, 2u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.6);
}

TEST_F(ZigguratTest, ScoresAreProbabilities) {
  baselines::ZigguratMatcher matcher;
  ASSERT_TRUE(matcher.Train({film_}).ok());
  for (const auto& a : film_->groups) {
    for (const auto& b : film_->groups) {
      if (a.key.language != "pt" || b.key.language != "en") continue;
      double p = matcher.Score(*film_, a, b);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

}  // namespace
}  // namespace wikimatch
