// Tests for the cross-language value synchronization subsystem: report
// serialization, classification semantics on hand-built corpora (including
// one-to-many alignments), thread-count determinism, incremental re-sync
// byte-equivalence, and precision/recall against the generator-derived
// oracle.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "eval/match_set.h"
#include "ingest/delta.h"
#include "match/dictionary.h"
#include "sync/evidence.h"
#include "synth/sync_oracle.h"
#include "sync/sync_engine.h"
#include "synth/delta.h"
#include "synth/generator.h"
#include "wiki/corpus.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace sync {
namespace {

// ----------------------------------------------------------- serialization

SyncReport SampleReport() {
  SyncReport r;
  CellVerdict v;
  v.pair_lang = "pt";
  v.type_b = "film";
  v.pair_title = "filme alfa";
  v.hub_title = "alpha film";
  v.pair_attr = "elenco";
  v.hub_attr = "starring";
  v.cls = CellClass::kStale;
  v.score = 0.5;
  r.cells.push_back(v);
  v.pair_attr = "";
  v.hub_attr = "director";
  v.cls = CellClass::kMissing;
  v.score = 0.0;
  r.cells.push_back(v);
  PropagationUpdate u;
  u.source_lang = "en";
  u.target_lang = "pt";
  u.source_title = "alpha film";
  u.target_title = "filme alfa";
  u.source_attr = "starring";
  u.target_attr = "elenco";
  u.proposed_value = "[[john doe]], [[jane roe]]";
  u.evidence_score = 0.5;
  r.updates.push_back(u);
  r.generation = 7;
  return r;
}

TEST(SyncReportTest, EncodeDecodeRoundTrip) {
  SyncReport r = SampleReport();
  auto decoded = DecodeSyncReport(EncodeSyncReport(r));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie(), r);
}

TEST(SyncReportTest, DecodeRejectsTruncationAndBadClass) {
  std::string bytes = EncodeSyncReport(SampleReport());
  for (size_t cut : {size_t{1}, size_t{10}, bytes.size() - 1}) {
    EXPECT_FALSE(DecodeSyncReport(bytes.substr(0, cut)).ok());
  }
  // Corrupt the first cell's class byte (after version + generation +
  // count + six strings) by scanning for its known value.
  std::string corrupt = bytes;
  size_t pos = corrupt.find(static_cast<char>(CellClass::kStale),
                            4 + 8 + 4);
  ASSERT_NE(pos, std::string::npos);
  corrupt[pos] = 9;
  // Either the class check or downstream framing must reject it.
  EXPECT_FALSE(DecodeSyncReport(corrupt).ok());
}

TEST(SyncReportTest, SummariesAggregateByLangAndType) {
  SyncReport r = SampleReport();
  auto sums = r.Summaries();
  ASSERT_EQ(sums.size(), 1u);
  const SyncCounts& c = sums.at({"pt", "film"});
  EXPECT_EQ(c.stale, 1u);
  EXPECT_EQ(c.missing, 1u);
  EXPECT_EQ(c.total(), 2u);
}

// ------------------------------------------------------ hand-built corpora

class HandCorpus {
 public:
  void Add(const std::string& lang, const std::string& title,
           const std::string& body) {
    auto parsed = parser_.ParseArticle(title, lang, body);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto id = corpus_.AddArticle(std::move(parsed).ValueOrDie());
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  // A dual pair of reference articles so links resolve in both languages.
  void AddSupport(const std::string& title) {
    Add("en", title,
        "'''" + title + "''' is a reference article.\n[[pt:" + title + "]]\n");
    Add("pt", title,
        "'''" + title + "''' is a reference article.\n[[en:" + title + "]]\n");
  }
  wiki::Corpus& Finish() {
    corpus_.Finalize();
    dictionary_.Build(corpus_);
    return corpus_;
  }
  const match::TranslationDictionary& dictionary() const {
    return dictionary_;
  }

 private:
  wiki::WikitextParser parser_;
  wiki::Corpus corpus_;
  match::TranslationDictionary dictionary_;
};

TEST(SyncEngineTest, OneToManyEmitsSingleVerdictAndPrefersAgreement) {
  HandCorpus hc;
  hc.AddSupport("john doe");
  hc.AddSupport("jane roe");
  // "roteiro" aligns to BOTH "writer" and "screenplay"; one conflicts, one
  // agrees. The engine must emit exactly one verdict for the source cell —
  // in-sync against the agreeing correspondent, never a conflict row too.
  hc.Add("en", "alpha film",
         "{{Infobox film\n| writer = [[jane roe]]\n"
         "| screenplay = [[john doe]]\n}}\n\n[[pt:filme alfa]]\n");
  hc.Add("pt", "filme alfa",
         "{{Info filme\n| roteiro = [[john doe]]\n}}\n\n[[en:alpha film]]\n");
  wiki::Corpus& corpus = hc.Finish();

  eval::MatchSet alignment;
  alignment.AddCluster({eval::AttrKey{"pt", "roteiro"},
                        eval::AttrKey{"en", "writer"},
                        eval::AttrKey{"en", "screenplay"}});
  SyncEngine engine(&corpus, &hc.dictionary(), "en");
  SyncReport report =
      engine.Run({SyncScope{"pt", "en", "filme", "film", &alignment}});

  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].pair_attr, "roteiro");
  EXPECT_EQ(report.cells[0].cls, CellClass::kInSync);
  EXPECT_EQ(report.cells[0].hub_attr, "screenplay");
  EXPECT_TRUE(report.updates.empty());
}

TEST(SyncEngineTest, MissingCellsReportedInBothDirectionsWithUpdates) {
  HandCorpus hc;
  hc.AddSupport("jane roe");
  hc.Add("en", "beta film",
         "{{Infobox film\n| director = [[jane roe]]\n}}\n\n"
         "[[pt:filme beta]]\n");
  hc.Add("pt", "filme beta",
         "{{Info filme\n| orcamento = US$ 5000000\n}}\n\n[[en:beta film]]\n");
  wiki::Corpus& corpus = hc.Finish();

  eval::MatchSet alignment;
  alignment.AddPair(eval::AttrKey{"pt", "orcamento"},
                    eval::AttrKey{"en", "budget"});
  alignment.AddPair(eval::AttrKey{"pt", "diretor"},
                    eval::AttrKey{"en", "director"});
  SyncEngine engine(&corpus, &hc.dictionary(), "en");
  SyncReport report =
      engine.Run({SyncScope{"pt", "en", "filme", "film", &alignment}});

  ASSERT_EQ(report.cells.size(), 2u);
  // Forward first (pair-side attribute present, hub missing).
  EXPECT_EQ(report.cells[0].pair_attr, "orcamento");
  EXPECT_EQ(report.cells[0].hub_attr, "");
  EXPECT_EQ(report.cells[0].cls, CellClass::kMissing);
  // Reverse (hub attribute with no pair-side counterpart).
  EXPECT_EQ(report.cells[1].pair_attr, "");
  EXPECT_EQ(report.cells[1].hub_attr, "director");
  EXPECT_EQ(report.cells[1].cls, CellClass::kMissing);

  ASSERT_EQ(report.updates.size(), 2u);
  EXPECT_EQ(report.updates[0].source_lang, "pt");
  EXPECT_EQ(report.updates[0].target_attr, "budget");
  EXPECT_NE(report.updates[0].proposed_value.find("5000000"),
            std::string::npos);
  EXPECT_EQ(report.updates[1].source_lang, "en");
  EXPECT_EQ(report.updates[1].target_attr, "diretor");
  EXPECT_NE(report.updates[1].proposed_value.find("jane roe"),
            std::string::npos);
}

TEST(SyncEngineTest, StaleAndConflictClassification) {
  HandCorpus hc;
  hc.AddSupport("john doe");
  hc.AddSupport("jane roe");
  hc.AddSupport("mary major");
  hc.Add("en", "gamma film",
         "{{Infobox film\n| starring = [[john doe]], [[jane roe]]\n"
         "| director = [[john doe]]\n}}\n\n[[pt:filme gama]]\n");
  hc.Add("pt", "filme gama",
         "{{Info filme\n| elenco = [[john doe]]\n"
         "| diretor = [[mary major]]\n}}\n\n[[en:gamma film]]\n");
  wiki::Corpus& corpus = hc.Finish();

  eval::MatchSet alignment;
  alignment.AddPair(eval::AttrKey{"pt", "elenco"},
                    eval::AttrKey{"en", "starring"});
  alignment.AddPair(eval::AttrKey{"pt", "diretor"},
                    eval::AttrKey{"en", "director"});
  SyncEngine engine(&corpus, &hc.dictionary(), "en");
  SyncReport report =
      engine.Run({SyncScope{"pt", "en", "filme", "film", &alignment}});

  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.cells[0].pair_attr, "elenco");
  EXPECT_EQ(report.cells[0].cls, CellClass::kStale);
  EXPECT_EQ(report.cells[1].pair_attr, "diretor");
  EXPECT_EQ(report.cells[1].cls, CellClass::kConflict);

  // The stale cell proposes the superset side's raw value; conflicts make
  // no proposal (neither side is evidently right).
  ASSERT_EQ(report.updates.size(), 1u);
  EXPECT_EQ(report.updates[0].source_lang, "en");
  EXPECT_EQ(report.updates[0].source_attr, "starring");
  EXPECT_EQ(report.updates[0].target_attr, "elenco");
  EXPECT_NE(report.updates[0].proposed_value.find("jane roe"),
            std::string::npos);
}

// --------------------------------------------------------- generated corpora

synth::GeneratedCorpus MustGenerate(synth::GeneratorOptions options) {
  synth::CorpusGenerator gen(std::move(options));
  auto result = gen.Generate();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(SyncEngineTest, ByteIdenticalAcrossThreadCounts) {
  synth::GeneratedCorpus gc = MustGenerate(synth::GeneratorOptions::Tiny());
  match::TranslationDictionary dict;
  dict.Build(gc.corpus);
  SyncEngine engine(&gc.corpus, &dict, gc.hub);
  std::vector<SyncScope> scopes = synth::SyncOracle::ScopesFromGroundTruth(gc);
  std::string baseline = EncodeSyncReport(engine.Run(scopes, 1));
  EXPECT_FALSE(baseline.empty());
  for (size_t threads : {2u, 3u, 8u}) {
    EXPECT_EQ(EncodeSyncReport(engine.Run(scopes, threads)), baseline)
        << "thread count " << threads;
  }
}

std::set<std::pair<std::string, std::string>> DirtyKeys(
    const ingest::DeltaBatch& batch) {
  std::set<std::pair<std::string, std::string>> dirty;
  for (const wiki::Article& a : batch.added) dirty.insert({a.language, a.title});
  for (const wiki::Article& a : batch.updated) {
    dirty.insert({a.language, a.title});
  }
  for (const auto& key : batch.removed) dirty.insert(key);
  return dirty;
}

TEST(SyncEngineTest, ResyncByteIdenticalToFullRunAfterDelta) {
  synth::GeneratedCorpus gc = MustGenerate(synth::GeneratorOptions::Tiny());
  match::TranslationDictionary dict;
  dict.Build(gc.corpus);
  std::vector<SyncScope> scopes = synth::SyncOracle::ScopesFromGroundTruth(gc);
  SyncEngine engine(&gc.corpus, &dict, gc.hub);
  SyncReport before = engine.Run(scopes, 2);

  // No edits, nothing dirty: Resync must reproduce the previous report.
  EXPECT_EQ(EncodeSyncReport(engine.Resync(scopes, before, {}, 2)),
            EncodeSyncReport(before));

  synth::DeltaSpec spec;
  spec.lang_a = "pt";
  spec.lang_b = gc.hub;
  spec.attribute_renames = 1;
  spec.value_edits = 12;
  spec.new_articles = 3;
  spec.removals = 2;
  auto batch = synth::MakeDeltaBatch(gc.corpus, spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ingest::DeltaUndo undo;
  auto applied =
      ingest::ApplyDeltaInPlace(&gc.corpus, batch.ValueOrDie(), &undo);
  ASSERT_TRUE(applied.ok()) << applied.ToString();

  SyncReport full = engine.Run(scopes, 2);
  SyncReport incremental =
      engine.Resync(scopes, before, DirtyKeys(batch.ValueOrDie()), 2);
  EXPECT_EQ(EncodeSyncReport(incremental), EncodeSyncReport(full));
  // The delta actually changed something, so this equality is not vacuous.
  EXPECT_NE(EncodeSyncReport(full), EncodeSyncReport(before));
}

TEST(SyncOracleTest, PrecisionAndRecallAgainstConceptModel) {
  synth::GeneratedCorpus gc =
      MustGenerate(synth::GeneratorOptions::Paper(0.02));
  match::TranslationDictionary dict;
  dict.Build(gc.corpus);
  SyncEngine engine(&gc.corpus, &dict, gc.hub);
  std::vector<SyncScope> scopes = synth::SyncOracle::ScopesFromGroundTruth(gc);
  SyncReport report = engine.Run(scopes, 4);

  synth::SyncOracle oracle(&gc);
  ASSERT_GT(oracle.num_labels(), 500u);
  synth::SyncScore score = oracle.Score(report);

  // Every scored class occurs in the corpus — the thresholds below are
  // meaningful for all four.
  for (const auto& [cls, s] : score.per_class) {
    EXPECT_GT(s.oracle_total, 0u) << CellClassName(cls);
    SCOPED_TRACE(CellClassName(cls));
    EXPECT_GT(s.engine_total, 0u);
  }
  double p = score.micro_precision();
  double r = score.micro_recall();
  // Print the per-class table (EXPERIMENTS.md quotes these figures).
  for (const auto& [cls, s] : score.per_class) {
    std::fprintf(stderr, "sync %-12s P=%.4f R=%.4f (engine=%llu oracle=%llu)\n",
                 CellClassName(cls), s.precision(), s.recall(),
                 static_cast<unsigned long long>(s.engine_total),
                 static_cast<unsigned long long>(s.oracle_total));
  }
  std::fprintf(stderr, "sync micro        P=%.4f R=%.4f (unverifiable: engine=%llu oracle=%llu)\n",
               p, r, static_cast<unsigned long long>(score.engine_unverifiable),
               static_cast<unsigned long long>(score.oracle_unverifiable));
  EXPECT_GE(p, 0.95);
  EXPECT_GE(r, 0.95);
}

}  // namespace
}  // namespace sync
}  // namespace wikimatch
