// Tests for the incremental ingest subsystem (src/ingest/): delta-batch
// validation, corpus application, and the core guarantee — Apply() leaves
// the matcher in a state bit-identical (serialized bytes) to running
// MatchPipeline from scratch on the post-delta corpus, across multiple
// language pairs, while reusing the alignment of every unit the delta
// cannot influence.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ingest/delta.h"
#include "ingest/incremental_matcher.h"
#include "match/pipeline.h"
#include "match/serialize.h"
#include "store/snapshot.h"
#include "synth/delta.h"
#include "synth/generator.h"
#include "util/binary_io.h"
#include "util/thread_pool.h"
#include "wiki/serialize.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace ingest {
namespace {

using store::LanguagePair;

std::string ResultBytes(const match::PipelineResult& result) {
  util::BinaryWriter w;
  match::EncodePipelineResult(result, &w);
  return w.TakeBuffer();
}

std::string CorpusBytes(const wiki::Corpus& corpus) {
  util::BinaryWriter w;
  wiki::EncodeCorpus(corpus, &w);
  return w.TakeBuffer();
}

std::string DictionaryBytes(const match::TranslationDictionary& dict) {
  util::BinaryWriter w;
  match::EncodeDictionary(dict, &w);
  return w.TakeBuffer();
}

// Runs MatchPipeline from scratch over `corpus` for every pair — the
// ground truth every incremental result is compared against.
std::map<LanguagePair, match::PipelineResult> FullRun(
    wiki::Corpus* corpus, const std::vector<LanguagePair>& pairs,
    const match::PipelineOptions& options = {}) {
  match::MatchPipeline pipeline(corpus);
  std::map<LanguagePair, match::PipelineResult> results;
  for (const auto& [lang_a, lang_b] : pairs) {
    auto result = pipeline.Run(lang_a, lang_b, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    results.emplace(LanguagePair(lang_a, lang_b),
                    std::move(result).ValueOrDie());
  }
  return results;
}

// Asserts the incremental state equals a from-scratch rebuild on the
// post-delta corpus, byte for byte.
void ExpectMatchesFullRebuild(const IncrementalMatcher& matcher,
                              const wiki::Corpus& base,
                              const DeltaBatch& batch,
                              const std::vector<LanguagePair>& pairs) {
  auto post = ApplyDeltaToCorpus(base, batch);
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  auto fresh = FullRun(&*post, pairs);
  EXPECT_EQ(CorpusBytes(matcher.corpus()), CorpusBytes(*post));
  {
    match::MatchPipeline pipeline(&*post);
    EXPECT_EQ(DictionaryBytes(matcher.dictionary()),
              DictionaryBytes(pipeline.dictionary()));
  }
  ASSERT_EQ(matcher.results().size(), pairs.size());
  for (const auto& pair : pairs) {
    SCOPED_TRACE(pair.first + ":" + pair.second);
    ASSERT_EQ(matcher.results().count(pair), 1u);
    EXPECT_EQ(ResultBytes(matcher.results().at(pair)),
              ResultBytes(fresh.at(pair)));
  }
}

// Tiny generated corpus (film: pt+vi duals, actor: pt only) — two language
// pairs, three units total, so a film-only delta must reuse the actor unit.
struct SynthFixture {
  wiki::Corpus corpus;
  std::map<LanguagePair, match::PipelineResult> results;
  std::vector<LanguagePair> pairs{{"pt", "en"}, {"vi", "en"}};
};

SynthFixture MakeSynthFixture() {
  SynthFixture f;
  synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny());
  auto gc = generator.Generate();
  EXPECT_TRUE(gc.ok()) << gc.status().ToString();
  f.corpus = std::move(gc->corpus);
  f.results = FullRun(&f.corpus, f.pairs);
  return f;
}

// ---------------------------------------------------------------- validation

TEST(DeltaBatchTest, ValidationRejectsMalformedBatches) {
  wiki::Corpus corpus;
  wiki::WikitextParser parser;
  ASSERT_TRUE(
      corpus
          .AddArticle(parser.ParseArticle("Existing", "en", "body")
                          .ValueOrDie())
          .ok());
  corpus.Finalize();
  const wiki::Article existing = corpus.Get(0);
  wiki::Article missing = existing;
  missing.title = "missing";

  DeltaBatch add_existing;
  add_existing.added.push_back(existing);
  EXPECT_EQ(ValidateDeltaBatch(corpus, add_existing).code(),
            util::StatusCode::kInvalidArgument);

  DeltaBatch update_missing;
  update_missing.updated.push_back(missing);
  EXPECT_EQ(ValidateDeltaBatch(corpus, update_missing).code(),
            util::StatusCode::kInvalidArgument);

  DeltaBatch remove_missing;
  remove_missing.removed.emplace_back("en", "missing");
  EXPECT_EQ(ValidateDeltaBatch(corpus, remove_missing).code(),
            util::StatusCode::kInvalidArgument);

  DeltaBatch twice;
  twice.updated.push_back(existing);
  twice.removed.emplace_back(existing.language, existing.title);
  auto status = ValidateDeltaBatch(corpus, twice);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("twice"), std::string::npos);

  DeltaBatch empty_title;
  empty_title.added.push_back(wiki::Article{});
  EXPECT_EQ(ValidateDeltaBatch(corpus, empty_title).code(),
            util::StatusCode::kInvalidArgument);

  DeltaBatch ok;
  ok.updated.push_back(existing);
  EXPECT_TRUE(ValidateDeltaBatch(corpus, ok).ok());
}

// The in-place fast path must land on exactly the corpus the copying path
// builds, and RevertDelta must restore the pre-batch bytes — including
// article positions — with indexes left healthy enough to apply the same
// batch again.
TEST(DeltaInPlaceTest, ApplyMatchesCopyAndRevertRestoresBytes) {
  SynthFixture f = MakeSynthFixture();
  synth::DeltaSpec spec;
  spec.types_b = {"film"};
  spec.attribute_renames = 1;
  spec.value_edits = 2;
  spec.new_articles = 2;
  spec.removals = 2;
  auto batch = synth::MakeDeltaBatch(f.corpus, spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_FALSE(batch->empty());

  const std::string base_bytes = CorpusBytes(f.corpus);
  auto copied = ApplyDeltaToCorpus(f.corpus, *batch);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  const std::string post_bytes = CorpusBytes(*copied);

  DeltaUndo undo;
  ASSERT_TRUE(ApplyDeltaInPlace(&f.corpus, *batch, &undo).ok());
  EXPECT_EQ(CorpusBytes(f.corpus), post_bytes);

  RevertDelta(&f.corpus, std::move(undo));
  EXPECT_EQ(CorpusBytes(f.corpus), base_bytes);

  // Indexes must have survived the round trip: the same batch still
  // validates and applies to the same result.
  DeltaUndo undo2;
  ASSERT_TRUE(ApplyDeltaInPlace(&f.corpus, *batch, &undo2).ok());
  EXPECT_EQ(CorpusBytes(f.corpus), post_bytes);
}

TEST(IncrementalMatcherTest, FailedApplyLeavesStateUntouched) {
  SynthFixture f = MakeSynthFixture();
  const std::string before_corpus = CorpusBytes(f.corpus);
  const std::string before_pt = ResultBytes(f.results.at({"pt", "en"}));
  IncrementalMatcher matcher(f.corpus, f.results);

  DeltaBatch bad;
  bad.removed.emplace_back("en", "definitely not an article");
  auto stats = matcher.Apply(bad);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(matcher.generation(), 0u);
  EXPECT_TRUE(matcher.history().empty());
  EXPECT_EQ(CorpusBytes(matcher.corpus()), before_corpus);
  EXPECT_EQ(ResultBytes(matcher.results().at({"pt", "en"})), before_pt);
}

// --------------------------------------------------------------- equivalence

// The tentpole guarantee: a mixed batch (template-wide renames, value
// edits, new dual articles, deletions) applied incrementally produces a
// state bit-identical to a from-scratch rebuild, across two language
// pairs, while the untouched pair's units are reused, not recomputed.
TEST(IncrementalMatcherTest, MixedDeltaMatchesFullRebuildAcrossTwoPairs) {
  SynthFixture f = MakeSynthFixture();
  synth::DeltaSpec spec;
  spec.lang_a = "pt";
  spec.lang_b = "en";
  spec.types_b = {"film"};
  spec.attribute_renames = 1;
  spec.value_edits = 3;
  spec.new_articles = 2;
  spec.removals = 1;
  auto batch = synth::MakeDeltaBatch(f.corpus, spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_FALSE(batch->empty());

  IncrementalMatcher matcher(f.corpus, f.results);
  auto stats = matcher.Apply(*batch);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->generation, 1u);
  EXPECT_EQ(matcher.generation(), 1u);
  // pt:en film is dirtied; pt:en actor and (usually) vi:en film are not.
  EXPECT_EQ(stats->units_total, 3u);
  EXPECT_GE(stats->units_recomputed, 1u);
  EXPECT_GE(stats->units_reused, 1u);
  EXPECT_GT(stats->articles_changed, 0u);

  ExpectMatchesFullRebuild(matcher, f.corpus, *batch, f.pairs);
}

TEST(IncrementalMatcherTest, ViSideDeltaMatchesFullRebuild) {
  SynthFixture f = MakeSynthFixture();
  synth::DeltaSpec spec;
  spec.lang_a = "vi";
  spec.lang_b = "en";
  spec.types_b = {"film"};
  spec.attribute_renames = 1;
  spec.value_edits = 2;
  auto batch = synth::MakeDeltaBatch(f.corpus, spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  IncrementalMatcher matcher(f.corpus, f.results);
  auto stats = matcher.Apply(*batch);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // A vi-side rename cannot dirty pt:en actor (pt-only membership).
  EXPECT_GE(stats->units_reused, 1u);
  ExpectMatchesFullRebuild(matcher, f.corpus, *batch, f.pairs);
}

TEST(IncrementalMatcherTest, IdenticalUpdateReusesEveryUnit) {
  SynthFixture f = MakeSynthFixture();
  DeltaBatch batch;
  batch.updated.push_back(f.corpus.Get(0));  // byte-identical "edit"

  IncrementalMatcher matcher(f.corpus, f.results);
  auto stats = matcher.Apply(batch);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->articles_changed, 0u);
  EXPECT_EQ(stats->units_recomputed, 0u);
  EXPECT_EQ(stats->units_reused, 3u);
  EXPECT_EQ(matcher.generation(), 1u);  // a no-op batch is still a batch
  ExpectMatchesFullRebuild(matcher, f.corpus, batch, f.pairs);
}

TEST(IncrementalMatcherTest, UnrelatedArticleReusesEveryUnit) {
  SynthFixture f = MakeSynthFixture();
  wiki::WikitextParser parser;
  DeltaBatch batch;
  batch.added.push_back(
      parser.ParseArticle("Plain Prose Page", "en", "No infobox here.")
          .ValueOrDie());

  IncrementalMatcher matcher(f.corpus, f.results);
  auto stats = matcher.Apply(batch);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->articles_changed, 1u);
  EXPECT_EQ(stats->units_recomputed, 0u);
  EXPECT_EQ(stats->units_reused, 3u);
  ExpectMatchesFullRebuild(matcher, f.corpus, batch, f.pairs);
}

// Removing a support article (no infobox, so no type is touched) that unit
// members link to must dirty the unit through its title footprint: link
// canonicalization resolves through that article's record.
TEST(IncrementalMatcherTest, SupportArticleRemovalDirtiesReferencingUnit) {
  wiki::Corpus corpus;
  wiki::WikitextParser parser;
  auto add = [&](const std::string& title, const std::string& lang,
                 const std::string& text) {
    auto article = parser.ParseArticle(title, lang, text);
    ASSERT_TRUE(article.ok()) << article.status().ToString();
    ASSERT_TRUE(corpus.AddArticle(std::move(article).ValueOrDie()).ok());
  };
  add("Director One", "en", "'''Director One'''\n[[pt:Diretor Um]]\n");
  add("Diretor Um", "pt", "'''Diretor Um'''\n[[en:Director One]]\n");
  add("Film A", "en",
      "{{Infobox film\n| directed by = [[Director One]]\n"
      "| running time = 100 minutes\n}}\n[[pt:Filme A]]\n");
  add("Filme A", "pt",
      "{{Info filme\n| direção = [[Diretor Um]]\n"
      "| duração = 100 minutos\n}}\n[[en:Film A]]\n");
  add("Film B", "en",
      "{{Infobox film\n| directed by = [[Director One]]\n"
      "| running time = 90 minutes\n}}\n[[pt:Filme B]]\n");
  add("Filme B", "pt",
      "{{Info filme\n| direção = [[Diretor Um]]\n"
      "| duração = 90 minutos\n}}\n[[en:Film B]]\n");
  corpus.Finalize();

  match::PipelineOptions options;
  options.type_min_votes = 1;
  std::vector<LanguagePair> pairs{{"pt", "en"}};
  auto results = FullRun(&corpus, pairs, options);
  ASSERT_EQ(results.at({"pt", "en"}).per_type.size(), 1u);

  DeltaBatch batch;
  batch.removed.emplace_back("en", "director one");

  IncrementalMatcher matcher(corpus, results, options);
  auto stats = matcher.Apply(batch);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->units_recomputed, 1u);
  EXPECT_EQ(stats->units_reused, 0u);

  auto post = ApplyDeltaToCorpus(corpus, batch);
  ASSERT_TRUE(post.ok());
  auto fresh = FullRun(&*post, pairs, options);
  EXPECT_EQ(ResultBytes(matcher.results().at({"pt", "en"})),
            ResultBytes(fresh.at({"pt", "en"})));
}

// ------------------------------------------------------------ snapshot round

// FromSnapshot must restore enough state (including the per-unit AlignStats
// appended to the pipeline payload) that a reused unit after reload is
// byte-identical to one that never left memory — and generations keep
// counting across the round trip.
TEST(IncrementalMatcherTest, FromSnapshotApplyMatchesFreshRebuild) {
  SynthFixture f = MakeSynthFixture();
  IncrementalMatcher first(f.corpus, f.results);

  synth::DeltaSpec spec1;
  spec1.types_b = {"film"};
  spec1.value_edits = 2;
  auto batch1 = synth::MakeDeltaBatch(f.corpus, spec1);
  ASSERT_TRUE(batch1.ok());
  ASSERT_TRUE(first.Apply(*batch1).ok());
  EXPECT_EQ(first.generation(), 1u);

  std::string path = ::testing::TempDir() + "/ingest_roundtrip.snap";
  ASSERT_TRUE(store::WriteSnapshotFile(first.ToSnapshot(), path).ok());
  auto snapshot = store::ReadSnapshotFile(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  std::remove(path.c_str());
  EXPECT_EQ(snapshot->meta.generation, 1u);
  ASSERT_EQ(snapshot->meta.history.size(), 1u);

  // The applied snapshot carries the options fingerprint stamped by
  // Apply(); defaults here match the defaults `first` ran with.
  ASSERT_TRUE(snapshot->meta.options.has_value());
  auto second_or =
      IncrementalMatcher::FromSnapshot(std::move(snapshot).ValueOrDie());
  ASSERT_TRUE(second_or.ok()) << second_or.status().ToString();
  IncrementalMatcher second = std::move(second_or).ValueOrDie();
  EXPECT_EQ(second.generation(), 1u);

  const wiki::Corpus base_after_1 = second.corpus();
  synth::DeltaSpec spec2;
  spec2.seed = 99;
  spec2.types_b = {"film"};
  spec2.attribute_renames = 1;
  spec2.removals = 1;
  auto batch2 = synth::MakeDeltaBatch(base_after_1, spec2);
  ASSERT_TRUE(batch2.ok());
  auto stats = second.Apply(*batch2);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(second.generation(), 2u);
  ASSERT_EQ(second.history().size(), 2u);
  EXPECT_EQ(second.history()[0].generation, 1u);
  EXPECT_EQ(second.history()[1].generation, 2u);
  // The snapshot-loaded reuse path must still be bit-identical — this is
  // what the persisted per-unit stats buy.
  EXPECT_GE(stats->units_reused, 1u);
  ExpectMatchesFullRebuild(second, base_after_1, *batch2, f.pairs);
}

// Apply() stamps the snapshot meta with the options fingerprint; a later
// FromSnapshot with different result-affecting options must fail loudly
// (silent unit reuse under other thresholds would corrupt results), while
// execution-only switches and fingerprint-less legacy snapshots stay
// accepted.
TEST(IncrementalMatcherTest, FromSnapshotRejectsMismatchedOptions) {
  SynthFixture f = MakeSynthFixture();
  IncrementalMatcher first(f.corpus, f.results);
  synth::DeltaSpec spec;
  spec.types_b = {"film"};
  spec.value_edits = 1;
  auto batch = synth::MakeDeltaBatch(f.corpus, spec);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(first.Apply(*batch).ok());
  ASSERT_TRUE(first.ToSnapshot().meta.options.has_value());

  match::PipelineOptions different;
  different.matcher.t_sim = 0.99;
  auto rejected = IncrementalMatcher::FromSnapshot(first.ToSnapshot(),
                                                   different);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kInvalidArgument);
  // The message names both fingerprints so the operator can diff them.
  EXPECT_NE(rejected.status().ToString().find("t_sim"), std::string::npos);

  // Thread counts and join strategy change wall clock, never bytes, so
  // they are not part of the fingerprint.
  match::PipelineOptions threads_only;
  threads_only.num_threads = 7;
  threads_only.matcher.num_threads = 3;
  EXPECT_TRUE(IncrementalMatcher::FromSnapshot(first.ToSnapshot(),
                                               threads_only)
                  .ok());

  // Snapshots from pre-fingerprint writers trust the caller, as before.
  store::Snapshot legacy = first.ToSnapshot();
  legacy.meta.options.reset();
  EXPECT_TRUE(IncrementalMatcher::FromSnapshot(std::move(legacy), different)
                  .ok());
}

TEST(IncrementalMatcherTest, DestroyWhileReclaimInFlight) {
  // Apply() hands the previous generation's containers to the shared
  // thread pool for off-critical-path destruction. Destroying the matcher
  // while that reclaim is still *queued* (every worker pinned) must not
  // deadlock or leak: the destructor's Wait steals the queued task and
  // runs the reclaim on the destroying thread. Run under TSan by
  // tools/check.sh.
  SynthFixture f = MakeSynthFixture();
  synth::DeltaSpec spec;
  spec.lang_a = "pt";
  spec.lang_b = "en";
  spec.types_b = {"film"};
  spec.value_edits = 2;
  auto batch = synth::MakeDeltaBatch(f.corpus, spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  util::ThreadPool pool(1);
  util::ScopedThreadPoolOverride override_pool(&pool);
  std::atomic<bool> release{false};
  // Pin the pool's only worker so the reclaim Apply() submits stays in
  // the queue until the matcher is destroyed.
  util::TaskHandle blocker = pool.Async([&]() {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  {
    IncrementalMatcher matcher(f.corpus, f.results);
    auto stats = matcher.Apply(*batch);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    // matcher goes out of scope here with the reclaim still queued.
  }
  release.store(true, std::memory_order_release);
  blocker.Wait();
}

}  // namespace
}  // namespace ingest
}  // namespace wikimatch
