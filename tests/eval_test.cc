// Unit tests for the evaluation module: MatchSet semantics (transitive vs
// pairwise), the paper's weighted precision/recall (validated against the
// worked Example 4 of Section 4), macro scores, MAP, cumulative gain, and
// schema overlap.

#include <gtest/gtest.h>

#include "eval/match_set.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace wikimatch {
namespace eval {
namespace {

AttrKey A(const std::string& lang, const std::string& name) {
  return AttrKey{lang, name};
}

// ---------------------------------------------------------------- MatchSet

TEST(MatchSetTest, TransitiveMergesClusters) {
  MatchSet m;
  m.AddPair(A("en", "a"), A("pt", "b"));
  m.AddPair(A("pt", "b"), A("pt", "c"));
  EXPECT_TRUE(m.AreMatched(A("en", "a"), A("pt", "c")));
  EXPECT_EQ(m.NumClusters(), 1u);
  EXPECT_EQ(m.ClusterOf(A("en", "a")).size(), 3u);
}

TEST(MatchSetTest, PairwiseDoesNotClose) {
  MatchSet m(/*transitive=*/false);
  m.AddPair(A("pt", "a1"), A("en", "b"));
  m.AddPair(A("pt", "a2"), A("en", "b"));
  EXPECT_TRUE(m.AreMatched(A("pt", "a1"), A("en", "b")));
  EXPECT_TRUE(m.AreMatched(A("pt", "a2"), A("en", "b")));
  // No fabricated a1~a2 relation.
  EXPECT_FALSE(m.AreMatched(A("pt", "a1"), A("pt", "a2")));
  // But connected components still form one cluster for reporting.
  EXPECT_EQ(m.Clusters().size(), 1u);
}

TEST(MatchSetTest, AddClusterPairwiseRecordsAllPairs) {
  MatchSet m(false);
  m.AddCluster({A("en", "x"), A("pt", "y"), A("pt", "z")});
  EXPECT_TRUE(m.AreMatched(A("en", "x"), A("pt", "z")));
  EXPECT_TRUE(m.AreMatched(A("pt", "y"), A("pt", "z")));
}

TEST(MatchSetTest, CrossLanguagePairsFiltersByLanguage) {
  MatchSet m;
  m.AddCluster({A("en", "died"), A("pt", "falecimento"), A("pt", "morte")});
  auto pairs = m.CrossLanguagePairs("pt", "en");
  ASSERT_EQ(pairs.size(), 2u);
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(a.language, "pt");
    EXPECT_EQ(b.language, "en");
    EXPECT_EQ(b.name, "died");
  }
}

TEST(MatchSetTest, ContainsAndEmpty) {
  MatchSet m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.Contains(A("en", "a")));
  m.AddPair(A("en", "a"), A("pt", "b"));
  EXPECT_FALSE(m.empty());
  EXPECT_TRUE(m.Contains(A("en", "a")));
}

TEST(MatchSetTest, CorrespondentsExcludeSelfAndOtherLanguages) {
  MatchSet m;
  m.AddCluster({A("en", "born"), A("pt", "nascimento"),
                A("pt", "data de nascimento"), A("vi", "sinh")});
  auto pt = m.CorrespondentsOf(A("en", "born"), "pt");
  EXPECT_EQ(pt.size(), 2u);
  auto en = m.CorrespondentsOf(A("en", "born"), "en");
  EXPECT_TRUE(en.empty());
}

TEST(MatchSetTest, DeterministicClusters) {
  MatchSet m1;
  MatchSet m2;
  // Insert in different orders; clusters must come out identical.
  m1.AddPair(A("en", "a"), A("pt", "b"));
  m1.AddPair(A("en", "c"), A("pt", "d"));
  m2.AddPair(A("en", "c"), A("pt", "d"));
  m2.AddPair(A("en", "a"), A("pt", "b"));
  EXPECT_EQ(m1.Clusters(), m2.Clusters());
}

// -------------------------------------------------------- Weighted scores

// The paper's Example 4, verbatim: S_T = {a1, a2}, S'_T = {a'1, a'2, a'3},
// frequencies (0.6, 0.4) and (0.5, 0.3, 0.2),
// G = {{a1~a'1~a'2}, {a2~a'3}}, M = {{a1~a'1}, {a2~a'3}}.
// Expected: Precision = 1, Recall = 0.775.
TEST(WeightedPrfTest, PaperExample4) {
  MatchSet truth;
  truth.AddCluster({A("L", "a1"), A("L2", "b1"), A("L2", "b2")});
  truth.AddCluster({A("L", "a2"), A("L2", "b3")});
  MatchSet derived;
  derived.AddPair(A("L", "a1"), A("L2", "b1"));
  derived.AddPair(A("L", "a2"), A("L2", "b3"));
  AttrFrequencies freq = {
      {A("L", "a1"), 0.6},  {A("L", "a2"), 0.4},  {A("L2", "b1"), 0.5},
      {A("L2", "b2"), 0.3}, {A("L2", "b3"), 0.2},
  };
  Prf prf = WeightedPrf(derived, truth, freq, "L", "L2");
  EXPECT_NEAR(prf.precision, 1.0, 1e-9);
  EXPECT_NEAR(prf.recall, 0.775, 1e-9);
  EXPECT_NEAR(prf.f1, 2 * 1.0 * 0.775 / 1.775, 1e-9);
}

TEST(WeightedPrfTest, EmptyDerivedGivesZero) {
  MatchSet truth;
  truth.AddPair(A("pt", "a"), A("en", "b"));
  MatchSet derived;
  Prf prf = WeightedPrf(derived, truth, {}, "pt", "en");
  EXPECT_EQ(prf.precision, 0.0);
  EXPECT_EQ(prf.recall, 0.0);
  EXPECT_EQ(prf.f1, 0.0);
}

TEST(WeightedPrfTest, PerfectDerivationScoresOne) {
  MatchSet truth;
  truth.AddPair(A("pt", "a"), A("en", "b"));
  truth.AddPair(A("pt", "c"), A("en", "d"));
  Prf prf = WeightedPrf(truth, truth, {}, "pt", "en");
  EXPECT_NEAR(prf.precision, 1.0, 1e-9);
  EXPECT_NEAR(prf.recall, 1.0, 1e-9);
}

TEST(WeightedPrfTest, WrongMatchHurtsPrecisionNotRecallWeighting) {
  MatchSet truth;
  truth.AddPair(A("pt", "a"), A("en", "b"));
  MatchSet derived;
  derived.AddPair(A("pt", "a"), A("en", "wrong"));
  Prf prf = WeightedPrf(derived, truth, {}, "pt", "en");
  EXPECT_EQ(prf.precision, 0.0);
  EXPECT_EQ(prf.recall, 0.0);
}

TEST(WeightedPrfTest, FrequencyWeightingFavorsFrequentAttributes) {
  MatchSet truth;
  truth.AddPair(A("pt", "common"), A("en", "c"));
  truth.AddPair(A("pt", "rare"), A("en", "r"));
  MatchSet derived;
  derived.AddPair(A("pt", "common"), A("en", "c"));  // only the common one
  AttrFrequencies freq = {{A("pt", "common"), 99.0}, {A("pt", "rare"), 1.0}};
  Prf weighted = WeightedPrf(derived, truth, freq, "pt", "en");
  EXPECT_NEAR(weighted.recall, 0.99, 1e-9);
  Prf unweighted = WeightedPrf(derived, truth, {}, "pt", "en");
  EXPECT_NEAR(unweighted.recall, 0.5, 1e-9);
}

// ------------------------------------------------------------ Macro scores

TEST(MacroPrfTest, CountsDistinctPairs) {
  MatchSet truth;
  truth.AddCluster({A("pt", "a"), A("en", "b"), A("en", "b2")});
  MatchSet derived;
  derived.AddPair(A("pt", "a"), A("en", "b"));
  derived.AddPair(A("pt", "x"), A("en", "y"));  // wrong
  Prf prf = MacroPrf(derived, truth, "pt", "en");
  EXPECT_NEAR(prf.precision, 0.5, 1e-9);  // 1 of 2 derived pairs correct
  EXPECT_NEAR(prf.recall, 0.5, 1e-9);     // 1 of 2 truth pairs found
}

TEST(AveragePrfTest, ElementWiseMean) {
  Prf a = Prf::Of(1.0, 0.5);
  Prf b = Prf::Of(0.5, 1.0);
  Prf avg = AveragePrf({a, b});
  EXPECT_NEAR(avg.precision, 0.75, 1e-9);
  EXPECT_NEAR(avg.recall, 0.75, 1e-9);
  EXPECT_TRUE(AveragePrf({}).f1 == 0.0);
}

// --------------------------------------------------------------------- MAP

TEST(MapTest, PerfectOrderingIsOne) {
  MatchSet truth;
  truth.AddPair(A("pt", "a"), A("en", "b"));
  std::vector<std::pair<AttrKey, AttrKey>> ranked = {
      {A("pt", "a"), A("en", "b")},
      {A("pt", "a"), A("en", "x")},
  };
  EXPECT_NEAR(MeanAveragePrecision(ranked, truth, "pt"), 1.0, 1e-9);
}

TEST(MapTest, CorrectAtRankTwoIsHalf) {
  MatchSet truth;
  truth.AddPair(A("pt", "a"), A("en", "b"));
  std::vector<std::pair<AttrKey, AttrKey>> ranked = {
      {A("pt", "a"), A("en", "x")},
      {A("pt", "a"), A("en", "b")},
  };
  EXPECT_NEAR(MeanAveragePrecision(ranked, truth, "pt"), 0.5, 1e-9);
}

TEST(MapTest, AveragesAcrossAttributes) {
  MatchSet truth;
  truth.AddPair(A("pt", "a"), A("en", "b"));
  truth.AddPair(A("pt", "c"), A("en", "d"));
  std::vector<std::pair<AttrKey, AttrKey>> ranked = {
      {A("pt", "a"), A("en", "b")},  // AP(a) = 1
      {A("pt", "c"), A("en", "x")},
      {A("pt", "c"), A("en", "d")},  // AP(c) = 1/2
  };
  EXPECT_NEAR(MeanAveragePrecision(ranked, truth, "pt"), 0.75, 1e-9);
}

TEST(MapTest, AttributesWithNoCorrectMatchAreSkipped) {
  MatchSet truth;
  truth.AddPair(A("pt", "a"), A("en", "b"));
  std::vector<std::pair<AttrKey, AttrKey>> ranked = {
      {A("pt", "a"), A("en", "b")},
      {A("pt", "nomatch"), A("en", "x")},
  };
  EXPECT_NEAR(MeanAveragePrecision(ranked, truth, "pt"), 1.0, 1e-9);
}

// ------------------------------------------------------------------- CG

TEST(CumulativeGainTest, PrefixSums) {
  auto cg = CumulativeGain({3.0, 0.0, 2.0});
  ASSERT_EQ(cg.size(), 3u);
  EXPECT_EQ(cg[0], 3.0);
  EXPECT_EQ(cg[1], 3.0);
  EXPECT_EQ(cg[2], 5.0);
}

TEST(CumulativeGainTest, EmptyInput) {
  EXPECT_TRUE(CumulativeGain({}).empty());
}

// --------------------------------------------------------------- Overlap

TEST(SchemaOverlapTest, IdenticalMatchedSchemasOverlapFully) {
  MatchSet truth;
  truth.AddPair(A("pt", "a"), A("en", "a'"));
  truth.AddPair(A("pt", "b"), A("en", "b'"));
  double overlap = SchemaOverlap({"a", "b"}, {"a'", "b'"}, "pt", "en", truth);
  EXPECT_NEAR(overlap, 1.0, 1e-9);
}

TEST(SchemaOverlapTest, DisjointSchemasOverlapZero) {
  MatchSet truth;
  truth.AddPair(A("pt", "a"), A("en", "a'"));
  double overlap = SchemaOverlap({"x"}, {"y"}, "pt", "en", truth);
  EXPECT_EQ(overlap, 0.0);
}

TEST(SchemaOverlapTest, PartialOverlap) {
  MatchSet truth;
  truth.AddPair(A("pt", "a"), A("en", "a'"));
  // pt side: {a, b}; en side: {a'}; intersection = (1 + 1)/2 = 1;
  // union = 3 - 1 = 2.
  double overlap = SchemaOverlap({"a", "b"}, {"a'"}, "pt", "en", truth);
  EXPECT_NEAR(overlap, 0.5, 1e-9);
}

TEST(SchemaOverlapTest, EmptySchemas) {
  MatchSet truth;
  EXPECT_EQ(SchemaOverlap({}, {}, "pt", "en", truth), 0.0);
}

// ----------------------------------------------------------------- Table

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"x", "1.00"});
  t.AddRow({"longer", "2"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 2     |"), std::string::npos);
}

TEST(TableTest, NumFormatsFixedDecimals) {
  EXPECT_EQ(Table::Num(0.5), "0.50");
  EXPECT_EQ(Table::Num(1.0 / 3.0, 3), "0.333");
}

TEST(TableTest, MissingAndExtraCells) {
  Table t({"a", "b"});
  t.AddRow({"only"});
  t.AddRow({"x", "y", "dropped"});
  std::string s = t.ToString();
  EXPECT_EQ(s.find("dropped"), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace wikimatch
