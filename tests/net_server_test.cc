// End-to-end tests for the epoll TCP serving layer (net::Server): framing
// over real sockets (partial writes, pipelined bursts, unterminated final
// lines), connection and pending-request load shedding, idle timeouts,
// backpressure against slow readers, graceful drain, and — the acceptance
// criterion for hot reload — a reload racing live multi-connection
// traffic with zero dropped and zero cross-generation-mixed responses.
// Runs under TSan via tools/check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "match/pipeline.h"
#include "net/server.h"
#include "net/shutdown.h"
#include "serve/match_service.h"
#include "store/snapshot.h"
#include "synth/generator.h"

namespace wikimatch {
namespace {

constexpr char kQuery[] = "filme(receita > 1000000, elenco=?)";

// One corpus + pipeline + snapshot file shared by the suite.
struct Fixture {
  synth::GeneratedCorpus gc;
  match::PipelineResult result;
  match::TranslationDictionary dictionary;
  std::string snapshot_path;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny());
    f->gc = std::move(generator.Generate()).ValueOrDie();
    match::MatchPipeline pipeline(&f->gc.corpus);
    f->result = std::move(pipeline.Run("pt", "en")).ValueOrDie();
    f->dictionary = pipeline.dictionary();
    // ctest runs each TEST as its own process; a per-pid path keeps those
    // processes from truncating each other's snapshot mid-load.
    f->snapshot_path = ::testing::TempDir() + "/net_server_test." +
                       std::to_string(::getpid()) + ".snap";
    store::Snapshot snapshot;
    snapshot.corpus = f->gc.corpus;
    snapshot.dictionary = f->dictionary;
    snapshot.pipelines.emplace(store::LanguagePair("pt", "en"), f->result);
    auto status = store::WriteSnapshotFile(snapshot, f->snapshot_path);
    if (!status.ok()) ADD_FAILURE() << status.ToString();
    return f;
  }();
  return *fixture;
}

// A fixture-snapshot copy stamped as generation `gen` with `gen` delta
// records — same matching payload, distinguishable meta.
std::string WriteGenerationSnapshot(uint64_t gen, const std::string& name) {
  const Fixture& f = GetFixture();
  store::Snapshot snapshot;
  snapshot.corpus = f.gc.corpus;
  snapshot.dictionary = f.dictionary;
  snapshot.pipelines.emplace(store::LanguagePair("pt", "en"), f.result);
  snapshot.meta.generation = gen;
  for (uint64_t g = 1; g <= gen; ++g) {
    snapshot.meta.history.push_back({g, 1, 0, 0, 1, 0});
  }
  std::string path =
      ::testing::TempDir() + "/" + std::to_string(::getpid()) + "." + name;
  auto status = store::WriteSnapshotFile(snapshot, path);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return path;
}

std::unique_ptr<serve::MatchService> LoadService() {
  auto service = serve::MatchService::Load(GetFixture().snapshot_path);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

std::unique_ptr<net::Server> StartServer(serve::MatchService* service,
                                         net::ServerOptions options) {
  auto server = net::Server::Create(service, options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  auto status = (*server)->Start();
  EXPECT_TRUE(status.ok()) << status.ToString();
  return std::move(*server);
}

// A deliberately simple blocking client: what a well-behaved (or, when a
// test wants it, badly-behaved) peer would do with the protocol.
class BlockingClient {
 public:
  // `rcv_buf_bytes` shrinks SO_RCVBUF before connecting so a test can
  // keep the peer's TCP window small and trigger server backpressure.
  explicit BlockingClient(uint16_t port, int rcv_buf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    if (rcv_buf_bytes > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcv_buf_bytes,
                   sizeof(rcv_buf_bytes));
    }
    timeval timeout{10, 0};  // a stuck read fails the test, never hangs it
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~BlockingClient() { Close(); }
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  bool connected() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  bool SendRaw(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t w = ::send(fd_, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(w);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      size_t newline = rbuf_.find('\n');
      if (newline != std::string::npos) {
        line->assign(rbuf_, 0, newline);
        rbuf_.erase(0, newline + 1);
        return true;
      }
      char buf[4096];
      ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r > 0) {
        rbuf_.append(buf, static_cast<size_t>(r));
        continue;
      }
      if (r < 0 && errno == EINTR) continue;
      return false;  // EOF or timeout
    }
  }

  // Reads one full protocol response ("ok N" + N lines, or a single err
  // line), returned with newlines so it compares byte-for-byte against
  // MatchService::Handle. Empty means EOF/timeout — a dropped response.
  std::string ReadResponse() {
    std::string line;
    if (!ReadLine(&line)) return "";
    std::string block = line + "\n";
    if (line.compare(0, 3, "ok ") == 0) {
      size_t body_lines = std::stoul(line.substr(3));
      for (size_t i = 0; i < body_lines; ++i) {
        if (!ReadLine(&line)) return block;  // truncated: caller notices
        block += line + "\n";
      }
    }
    return block;
  }

  bool AtEof() {
    if (!rbuf_.empty()) return false;
    char c;
    ssize_t r = ::recv(fd_, &c, 1, 0);
    if (r > 0) rbuf_.push_back(c);
    return r == 0;
  }

 private:
  int fd_ = -1;
  std::string rbuf_;
};

// ----------------------------------------------------------------- framing

TEST(NetServerTest, SpeaksTheProtocolOverTcp) {
  auto service = LoadService();
  net::ServerOptions options;
  options.num_threads = 2;
  auto server = StartServer(service.get(), options);
  ASSERT_NE(server->port(), 0);

  BlockingClient client(server->port());
  ASSERT_TRUE(client.connected());
  const std::string request = "alignments pt:en film";
  std::string baseline = service->Handle(request);
  ASSERT_TRUE(client.SendRaw(request + "\n"));
  EXPECT_EQ(client.ReadResponse(), baseline);
  ASSERT_TRUE(client.SendRaw("health\n"));
  std::string health = client.ReadResponse();
  EXPECT_EQ(health.compare(0, 25, "ok 1\nhealthy generation=0"), 0)
      << health;
  server->Shutdown();
  server->Wait();
  EXPECT_GE(server->Stats().requests, 2u);
}

TEST(NetServerTest, ReassemblesPartialWrites) {
  auto service = LoadService();
  auto server = StartServer(service.get(), net::ServerOptions());
  BlockingClient client(server->port());
  ASSERT_TRUE(client.connected());
  std::string baseline = service->Handle("alignments pt:en film");
  for (const char* piece : {"alig", "nments pt", ":en", " film", "\n"}) {
    ASSERT_TRUE(client.SendRaw(piece));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(client.ReadResponse(), baseline);
}

TEST(NetServerTest, AnswersAPipelinedBurstInOrder) {
  auto service = LoadService();
  auto server = StartServer(service.get(), net::ServerOptions());
  const std::vector<std::string> requests = {
      "alignments pt:en film", "types pt:en", "pairs",
      std::string("query pt:en ") + kQuery};
  std::vector<std::string> baselines;
  std::string burst;
  for (const auto& request : requests) {
    baselines.push_back(service->Handle(request));
    burst += request + "\n";
  }
  BlockingClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRaw(burst));
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(client.ReadResponse(), baselines[i]) << requests[i];
  }
}

TEST(NetServerTest, QuitAnswersEarlierRequestsThenCloses) {
  auto service = LoadService();
  auto server = StartServer(service.get(), net::ServerOptions());
  BlockingClient client(server->port());
  ASSERT_TRUE(client.connected());
  std::string baseline = service->Handle("pairs");
  // The request after quit must never be answered.
  ASSERT_TRUE(client.SendRaw("pairs\nquit\npairs\n"));
  EXPECT_EQ(client.ReadResponse(), baseline);
  EXPECT_TRUE(client.AtEof());
}

TEST(NetServerTest, ServesTheUnterminatedFinalLine) {
  auto service = LoadService();
  auto server = StartServer(service.get(), net::ServerOptions());
  BlockingClient client(server->port());
  ASSERT_TRUE(client.connected());
  std::string baseline = service->Handle("types pt:en");
  ASSERT_TRUE(client.SendRaw("pairs\ntypes pt:en"));
  client.ShutdownWrite();  // half-close: no newline ever arrives
  EXPECT_EQ(client.ReadResponse(), service->Handle("pairs"));
  EXPECT_EQ(client.ReadResponse(), baseline);
  EXPECT_TRUE(client.AtEof());
}

// ------------------------------------------------------------ load shedding

TEST(NetServerTest, ShedsBeyondMaxConnectionsWithABusyReply) {
  auto service = LoadService();
  net::ServerOptions options;
  options.num_threads = 1;  // deterministic accept ordering
  options.max_connections = 2;
  auto server = StartServer(service.get(), options);

  BlockingClient first(server->port());
  BlockingClient second(server->port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(second.connected());
  // A round-trip guarantees both are accepted (not just SYN-acked)
  // before the third connection arrives.
  ASSERT_TRUE(first.SendRaw("health\n"));
  ASSERT_FALSE(first.ReadResponse().empty());
  ASSERT_TRUE(second.SendRaw("health\n"));
  ASSERT_FALSE(second.ReadResponse().empty());

  BlockingClient third(server->port());
  ASSERT_TRUE(third.connected());
  std::string line;
  ASSERT_TRUE(third.ReadLine(&line));
  EXPECT_EQ(line, "err busy (server overloaded, retry later)");
  EXPECT_TRUE(third.AtEof());

  // Room opens up again once an active connection leaves.
  first.Close();
  net::ServerStats stats = server->Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.accepted, 3u);
}

TEST(NetServerTest, ZeroPendingWatermarkShedsEveryAccept) {
  auto service = LoadService();
  net::ServerOptions options;
  options.num_threads = 1;
  options.max_pending_requests = 0;  // maintenance mode
  auto server = StartServer(service.get(), options);
  BlockingClient client(server->port());
  ASSERT_TRUE(client.connected());
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line.compare(0, 8, "err busy"), 0) << line;
  EXPECT_TRUE(client.AtEof());
  EXPECT_EQ(server->Stats().shed, 1u);
}

TEST(NetServerTest, IdleConnectionsAreClosed) {
  auto service = LoadService();
  net::ServerOptions options;
  options.num_threads = 1;
  options.idle_timeout_ms = 100;
  auto server = StartServer(service.get(), options);
  BlockingClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRaw("health\n"));
  ASSERT_FALSE(client.ReadResponse().empty());
  // Silence. The sweep closes us within a few timeout periods.
  EXPECT_TRUE(client.AtEof());
  EXPECT_GE(server->Stats().idle_closed, 1u);
}

// -------------------------------------------------------- adversarial input

TEST(NetServerTest, OversizedLineGetsAnErrorAndFramingRecovers) {
  auto service = LoadService();
  net::ServerOptions options;
  options.max_line_bytes = 128;
  auto server = StartServer(service.get(), options);
  BlockingClient client(server->port());
  ASSERT_TRUE(client.connected());
  std::string huge(4096, 'a');
  ASSERT_TRUE(client.SendRaw(huge + "\nversion\n"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "err protocol: request line exceeds 128 bytes");
  // The stream resynchronizes at the newline: the next request works.
  EXPECT_EQ(client.ReadResponse(), service->Handle("version"));
  EXPECT_EQ(server->Stats().protocol_errors, 1u);
}

TEST(NetServerTest, EmbeddedNulGetsAProtocolError) {
  auto service = LoadService();
  auto server = StartServer(service.get(), net::ServerOptions());
  BlockingClient client(server->port());
  ASSERT_TRUE(client.connected());
  std::string request = "heal";
  request += '\0';
  request += "th\n";
  ASSERT_TRUE(client.SendRaw(request));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "err protocol: request contains a NUL byte");
  EXPECT_EQ(server->Stats().protocol_errors, 1u);
}

// -------------------------------------------------------------- backpressure

TEST(NetServerTest, SlowReaderTriggersBackpressureNotUnboundedBuffering) {
  auto service = LoadService();
  net::ServerOptions options;
  options.num_threads = 1;
  options.write_buffer_limit = 1024;
  options.send_buffer_bytes = 4096;  // small SO_SNDBUF: kernel fills fast
  auto server = StartServer(service.get(), options);

  // A client with a tiny receive window that pipelines a few hundred
  // requests and reads nothing until the end.
  BlockingClient client(server->port(), /*rcv_buf_bytes=*/2048);
  ASSERT_TRUE(client.connected());
  const std::string request = "alignments pt:en film";
  std::string baseline = service->Handle(request);
  constexpr int kRequests = 300;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) burst += request + "\n";
  ASSERT_TRUE(client.SendRaw(burst));
  // Wait (bounded) for the server to fill the write buffer and pause;
  // a fixed sleep flakes when the box is busy.
  for (int i = 0; i < 500 && server->Stats().backpressure_pauses == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server->Stats().backpressure_pauses, 1u);

  // Draining the socket resumes reading; every response arrives intact
  // and in order — backpressure lost nothing.
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_EQ(client.ReadResponse(), baseline) << "response " << i;
  }
  EXPECT_EQ(server->Stats().requests, static_cast<uint64_t>(kRequests));
}

// ------------------------------------------------------------ graceful drain

TEST(NetServerTest, GracefulDrainAnswersThenRefusesNewConnections) {
  auto service = LoadService();
  net::ServerOptions options;
  options.num_threads = 2;
  auto server = StartServer(service.get(), options);
  uint16_t port = server->port();

  BlockingClient client(port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRaw("pairs\n"));
  EXPECT_EQ(client.ReadResponse(), service->Handle("pairs"));

  server->Shutdown();  // same path SIGINT/SIGTERM take
  server->Wait();
  EXPECT_TRUE(client.AtEof());  // drained, not reset

  BlockingClient late(port);
  EXPECT_FALSE(late.connected());  // listener is gone
}

TEST(NetServerTest, ExternalShutdownFlagDrainsTheServer) {
  auto service = LoadService();
  net::ShutdownFlag flag;
  net::ServerOptions options;
  auto server = net::Server::Create(service.get(), options, &flag);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto status = (*server)->Start();
  ASSERT_TRUE(status.ok()) << status.ToString();
  BlockingClient client((*server)->port());
  ASSERT_TRUE(client.connected());
  // A round-trip guarantees the connection was accepted (not still in the
  // listen backlog, where a drain would reset rather than FIN it).
  ASSERT_TRUE(client.SendRaw("health\n"));
  ASSERT_FALSE(client.ReadResponse().empty());
  flag.Request();  // what the signal handler does
  (*server)->Wait();
  EXPECT_TRUE(client.AtEof());
}

// ------------------------------------------------------- reload under load

// The acceptance criterion: a hot reload racing live TCP traffic drops
// nothing and mixes nothing. Both snapshot generations carry the same
// matching payload, so every data response must be byte-identical to its
// baseline regardless of which generation served it; the generation verb
// must always describe exactly one generation, never a blend.
TEST(NetServerTest, ReloadUnderLiveTrafficDropsAndMixesNothing) {
  std::string next = WriteGenerationSnapshot(1, "net_stress_g1.snap");
  auto service = LoadService();
  net::ServerOptions options;
  options.num_threads = 2;
  auto server = StartServer(service.get(), options);

  const std::vector<std::string> requests = {
      std::string("query pt:en ") + kQuery,
      "alignments pt:en film",
      "types pt:en",
      "attr pt:en film en starring",
  };
  std::vector<std::string> baselines;
  for (const auto& request : requests) {
    baselines.push_back(service->Handle(request));
    ASSERT_EQ(baselines.back().compare(0, 3, "ok "), 0) << baselines.back();
  }

  constexpr int kReaders = 6;
  constexpr int kPerReader = 100;
  std::atomic<int> dropped{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      BlockingClient client(server->port());
      if (!client.connected()) {
        dropped.fetch_add(kPerReader);
        return;
      }
      for (int i = 0; i < kPerReader; ++i) {
        size_t pick = static_cast<size_t>(i + t) % requests.size();
        if (!client.SendRaw(requests[pick] + "\n")) {
          dropped.fetch_add(1);
          continue;
        }
        std::string response = client.ReadResponse();
        if (response.empty()) {
          dropped.fetch_add(1);  // timeout or EOF: a dropped response
        } else if (response != baselines[pick]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  // One client watches the generation verb for torn answers.
  std::atomic<int> torn{0};
  std::thread watcher([&]() {
    BlockingClient client(server->port());
    if (!client.connected()) {
      torn.fetch_add(1);
      return;
    }
    for (int i = 0; i < 120; ++i) {
      if (!client.SendRaw("generation\n")) {
        torn.fetch_add(1);
        break;
      }
      std::string response = client.ReadResponse();
      bool gen0 = response.find("generation=0 ") != std::string::npos &&
                  response.find(" deltas_applied=0") != std::string::npos;
      bool gen1 = response.find("generation=1 ") != std::string::npos &&
                  response.find(" deltas_applied=1") != std::string::npos;
      if (gen0 == gen1) torn.fetch_add(1);  // neither, or a blend
    }
  });
  // The writer hot-swaps generations through the protocol, over TCP.
  std::atomic<int> failed_reloads{0};
  std::thread writer([&]() {
    BlockingClient client(server->port());
    if (!client.connected()) {
      failed_reloads.fetch_add(1);
      return;
    }
    for (int i = 0; i < 14; ++i) {
      const std::string& path =
          i % 2 == 0 ? next : GetFixture().snapshot_path;
      if (!client.SendRaw("reload " + path + "\n")) {
        failed_reloads.fetch_add(1);
        continue;
      }
      if (client.ReadResponse().compare(0, 3, "ok ") != 0) {
        failed_reloads.fetch_add(1);
      }
    }
  });
  for (auto& reader : readers) reader.join();
  watcher.join();
  writer.join();

  EXPECT_EQ(dropped.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(failed_reloads.load(), 0);
  EXPECT_EQ(service->Stats().loads, 15u);
  net::ServerStats stats = server->Stats();
  EXPECT_GE(stats.requests,
            static_cast<uint64_t>(kReaders * kPerReader + 120 + 14));
  std::remove(next.c_str());
}

// --------------------------------------------------------------- concurrency

TEST(NetServerTest, ServesManyConcurrentConnections) {
  auto service = LoadService();
  net::ServerOptions options;
  options.num_threads = 2;
  options.max_connections = 128;
  auto server = StartServer(service.get(), options);
  constexpr int kClients = 50;
  std::vector<std::unique_ptr<BlockingClient>> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<BlockingClient>(server->port()));
    ASSERT_TRUE(clients.back()->connected()) << "client " << i;
  }
  for (auto& client : clients) ASSERT_TRUE(client->SendRaw("health\n"));
  for (auto& client : clients) {
    std::string response = client->ReadResponse();
    EXPECT_EQ(response.compare(0, 13, "ok 1\nhealthy "), 0) << response;
  }
  EXPECT_EQ(server->Stats().active_connections,
            static_cast<size_t>(kClients));
}

}  // namespace
}  // namespace wikimatch
