// Tests for the wikimatch-lint analyzer (src/analysis/): lexer behavior,
// rule firings against the fixture corpus in tests/analysis/, and the
// self-check that the real tree is clean.
//
// Fixture format: each tests/analysis/<rule>_{bad,good}.cc file is a mini
// source tree. `// @file: <tree-path>` starts a new file section; a line
// containing `LINT[<rule>]` asserts the rule fires at exactly that line
// of that section. Good fixtures carry no markers and must be clean.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "analysis/lexer.h"
#include "analysis/rules.h"
#include "analysis/source_tree.h"

namespace wikimatch {
namespace {

#ifndef WIKIMATCH_ANALYSIS_FIXTURES
#error "build must define WIKIMATCH_ANALYSIS_FIXTURES (tests/CMakeLists.txt)"
#endif
#ifndef WIKIMATCH_REPO_ROOT
#error "build must define WIKIMATCH_REPO_ROOT (tests/CMakeLists.txt)"
#endif

using FileLine = std::pair<std::string, int>;

struct Fixture {
  analysis::SourceTree tree;
  std::set<FileLine> expected;  ///< (tree path, line) per LINT[...] marker
};

Fixture LoadFixture(const std::string& name, const std::string& rule) {
  std::ifstream in(std::string(WIKIMATCH_ANALYSIS_FIXTURES) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  Fixture f;
  std::string path;
  std::ostringstream content;
  int local_line = 0;
  auto flush = [&] {
    if (!path.empty()) f.tree.AddFile(path, content.str());
    content.str("");
    local_line = 0;
  };
  std::string line;
  constexpr char kFileMarker[] = "// @file: ";
  while (std::getline(in, line)) {
    if (line.rfind(kFileMarker, 0) == 0) {
      flush();
      path = line.substr(sizeof(kFileMarker) - 1);
      continue;
    }
    content << line << "\n";
    ++local_line;
    size_t at = line.find("LINT[");
    if (at == std::string::npos) continue;
    size_t close = line.find(']', at);
    EXPECT_NE(close, std::string::npos) << name << ": unclosed LINT marker";
    if (close == std::string::npos) continue;
    std::string marked = line.substr(at + 5, close - at - 5);
    EXPECT_EQ(marked, rule) << name << ": marker for foreign rule";
    f.expected.insert({path, local_line});
  }
  flush();
  return f;
}

void ExpectFirings(const std::string& fixture, const std::string& rule) {
  SCOPED_TRACE(fixture);
  Fixture f = LoadFixture(fixture, rule);
  std::vector<analysis::Diagnostic> diags = analysis::RunRule(f.tree, rule);
  std::set<FileLine> got;
  for (const analysis::Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, rule);
    got.insert({d.file, d.line});
  }
  EXPECT_EQ(got, f.expected) << "diagnostics were:\n"
                             << analysis::FormatDiagnostics(diags);
}

TEST(AnalysisRules, NakedNew) {
  ExpectFirings("naked_new_bad.cc", "naked-new");
  ExpectFirings("naked_new_good.cc", "naked-new");
}

TEST(AnalysisRules, RawMutex) {
  ExpectFirings("raw_mutex_bad.cc", "raw-mutex");
  ExpectFirings("raw_mutex_good.cc", "raw-mutex");
}

TEST(AnalysisRules, RawThread) {
  ExpectFirings("raw_thread_bad.cc", "raw-thread");
  ExpectFirings("raw_thread_good.cc", "raw-thread");
}

TEST(AnalysisRules, AssignOrReturn) {
  ExpectFirings("assign_or_return_bad.cc", "assign-or-return");
  ExpectFirings("assign_or_return_good.cc", "assign-or-return");
}

TEST(AnalysisRules, GuardedBy) {
  ExpectFirings("guarded_by_bad.cc", "guarded-by");
  ExpectFirings("guarded_by_good.cc", "guarded-by");
}

TEST(AnalysisRules, Layering) {
  ExpectFirings("layering_bad.cc", "layering");
  ExpectFirings("layering_good.cc", "layering");
}

TEST(AnalysisRules, IncludeCycle) {
  ExpectFirings("include_cycle_bad.cc", "include-cycle");
  ExpectFirings("include_cycle_good.cc", "include-cycle");
}

TEST(AnalysisRules, UnorderedIter) {
  ExpectFirings("unordered_iter_bad.cc", "unordered-iter");
  ExpectFirings("unordered_iter_good.cc", "unordered-iter");
}

TEST(AnalysisRules, UnknownRuleReportsInternalDiagnostic) {
  analysis::SourceTree tree;
  std::vector<analysis::Diagnostic> diags =
      analysis::RunRule(tree, "no-such-rule");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "internal");
}

TEST(AnalysisRules, CatalogHasEightRules) {
  EXPECT_EQ(analysis::RuleNames().size(), 8u);
}

TEST(AnalysisRules, DeclaredDagIsAcyclicAndClosed) {
  // The layering rule validates the declared DAG itself (Kahn's
  // algorithm + undeclared-module edges) before using it; an empty tree
  // exercises exactly that validation.
  analysis::SourceTree tree;
  std::vector<analysis::Diagnostic> diags =
      analysis::RunRule(tree, "layering");
  EXPECT_TRUE(diags.empty()) << analysis::FormatDiagnostics(diags);
}

// ----------------------------------------------------------------- lexer

TEST(AnalysisLexer, CommentsAndStringsProduceNoCodeTokens) {
  analysis::LexedSource lex = analysis::Lex(
      "// new Foo in a line comment\n"
      "/* std::mutex in a block comment */\n"
      "const char* s = \"new std::thread\";\n");
  for (const analysis::Token& t : lex.tokens) {
    EXPECT_NE(t.text, "new");
    EXPECT_NE(t.text, "mutex");
    EXPECT_NE(t.text, "thread");
  }
  // The literal's contents are blanked in clean_lines too.
  EXPECT_EQ(lex.clean_lines[2].find("thread"), std::string::npos);
}

TEST(AnalysisLexer, RawStringsAndEscapes) {
  analysis::LexedSource lex = analysis::Lex(
      "auto a = R\"(new int; \")\";\n"
      "auto b = R\"xy(ignore )\" new int)xy\";\n"
      "auto c = \"esc \\\" new int\";\n"
      "int real = 0;\n");
  int news = 0;
  for (const analysis::Token& t : lex.tokens) {
    if (t.text == "new") ++news;
  }
  EXPECT_EQ(news, 0);
  // Lexing resynchronized: the last line's tokens are intact.
  bool saw_real = false;
  for (const analysis::Token& t : lex.tokens) {
    if (t.text == "real") saw_real = true;
  }
  EXPECT_TRUE(saw_real);
}

TEST(AnalysisLexer, NolintBareAndListed) {
  analysis::LexedSource lex = analysis::Lex(
      "int a;  // NOLINT\n"
      "int b;  // NOLINT(naked-new)\n"
      "int c;  // NOLINT(naked-new, raw-mutex)\n"
      "int d;\n");
  EXPECT_TRUE(lex.Silenced(1, "naked-new"));
  EXPECT_TRUE(lex.Silenced(1, "anything-at-all"));
  EXPECT_TRUE(lex.Silenced(2, "naked-new"));
  EXPECT_FALSE(lex.Silenced(2, "raw-mutex"));
  EXPECT_TRUE(lex.Silenced(3, "naked-new"));
  EXPECT_TRUE(lex.Silenced(3, "raw-mutex"));
  EXPECT_FALSE(lex.Silenced(4, "naked-new"));
}

TEST(AnalysisLexer, IncludesExtracted) {
  analysis::LexedSource lex = analysis::Lex(
      "#include <vector>\n"
      "#include \"util/mutex.h\"\n"
      "// #include \"commented/out.h\"\n");
  ASSERT_EQ(lex.includes.size(), 2u);
  EXPECT_TRUE(lex.includes[0].angled);
  EXPECT_EQ(lex.includes[0].path, "vector");
  EXPECT_FALSE(lex.includes[1].angled);
  EXPECT_EQ(lex.includes[1].path, "util/mutex.h");
  EXPECT_EQ(lex.includes[1].line, 2);
}

TEST(AnalysisSourceTree, ModuleOf) {
  EXPECT_EQ(analysis::ModuleOf("src/util/mutex.h"), "util");
  EXPECT_EQ(analysis::ModuleOf("src/analysis/rules.cc"), "analysis");
  EXPECT_EQ(analysis::ModuleOf("tools/wikimatch_lint.cc"), "");
  EXPECT_EQ(analysis::ModuleOf("src/top_level.h"), "");
}

// ------------------------------------------------------------ self-check

// The acceptance gate: the real tree must be clean under the full rule
// catalog. Every deliberate exception in the tree carries a reasoned
// NOLINT, so any diagnostic here is a regression.
TEST(AnalysisSelfCheck, RealTreeIsClean) {
  analysis::SourceTree tree;
  util::Status st = tree.LoadFromDisk(WIKIMATCH_REPO_ROOT);
  ASSERT_TRUE(st.ok()) << st.ToString();
  // Sanity: the loader actually found the tree (it walks <root>/src).
  EXPECT_GE(tree.files().size(), 100u);
  std::vector<analysis::Diagnostic> diags = analysis::RunAllRules(tree);
  EXPECT_TRUE(diags.empty()) << analysis::FormatDiagnostics(diags);
}

}  // namespace
}  // namespace wikimatch
