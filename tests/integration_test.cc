// End-to-end integration tests: synthetic corpus -> full WikiMatch pipeline
// -> evaluation against the generated ground truth.

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "match/pipeline.h"
#include "synth/generator.h"
#include "text/normalize.h"

namespace wikimatch {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(7));
    auto generated = generator.Generate();
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    corpus_ = new synth::GeneratedCorpus(std::move(generated).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static synth::GeneratedCorpus* corpus_;
};

synth::GeneratedCorpus* IntegrationTest::corpus_ = nullptr;

TEST_F(IntegrationTest, CorpusHasArticlesInAllLanguages) {
  const auto& corpus = corpus_->corpus;
  EXPECT_GT(corpus.InfoboxCount("en"), 0u);
  EXPECT_GT(corpus.InfoboxCount("pt"), 0u);
  EXPECT_GT(corpus.InfoboxCount("vi"), 0u);
}

TEST_F(IntegrationTest, TypeMatcherFindsFilmMapping) {
  match::TypeMatcher matcher;
  auto matches = matcher.Match(corpus_->corpus, "pt", "en");
  ASSERT_FALSE(matches.empty());
  bool found_film = false;
  for (const auto& m : matches) {
    if (m.type_a == "filme" && m.type_b == "film") found_film = true;
  }
  EXPECT_TRUE(found_film);
}

TEST_F(IntegrationTest, DictionaryTranslatesEntityTitles) {
  match::MatchPipeline pipeline(&corpus_->corpus);
  // Any dual entity's pt title must translate to its en title.
  size_t checked = 0;
  for (const auto& rec : corpus_->entities) {
    if (rec.pair_lang != "pt") continue;
    auto t = pipeline.dictionary().Translate("pt", rec.titles.at("pt"), "en");
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, rec.titles.at("en"));
    if (++checked > 10) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(IntegrationTest, PipelinePtEnProducesGoodAlignments) {
  match::MatchPipeline pipeline(&corpus_->corpus);
  auto result = pipeline.Run("pt", "en");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->per_type.empty());

  std::vector<eval::Prf> rows;
  for (const auto& type_result : result->per_type) {
    auto truth_it = corpus_->hub_type_of.find({"en", type_result.type_b});
    ASSERT_NE(truth_it, corpus_->hub_type_of.end());
    const eval::MatchSet& truth = corpus_->ground_truth.at(truth_it->second);
    eval::Prf prf = eval::WeightedPrf(type_result.alignment.matches, truth,
                                      type_result.frequencies, "pt", "en");
    rows.push_back(prf);
  }
  eval::Prf avg = eval::AveragePrf(rows);
  // The tiny corpus is noisy; the full-scale behaviour is checked by the
  // benches. These floors catch gross regressions.
  EXPECT_GT(avg.precision, 0.6) << "precision";
  EXPECT_GT(avg.recall, 0.4) << "recall";
  EXPECT_GT(avg.f1, 0.5) << "f1";
}

TEST_F(IntegrationTest, PipelineVnEnProducesGoodAlignments) {
  match::MatchPipeline pipeline(&corpus_->corpus);
  auto result = pipeline.Run("vi", "en");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->per_type.empty());
  const auto& film = result->per_type.front();
  const eval::MatchSet& truth = corpus_->ground_truth.at("film");
  eval::Prf prf = eval::WeightedPrf(film.alignment.matches, truth,
                                    film.frequencies, "vi", "en");
  EXPECT_GT(prf.precision, 0.6);
  EXPECT_GT(prf.recall, 0.5);
}

TEST_F(IntegrationTest, GroundTruthContainsSeededFilmAlignments) {
  const eval::MatchSet& truth = corpus_->ground_truth.at("film");
  EXPECT_TRUE(truth.AreMatched({"en", "directed by"}, {"pt", "direção"}));
  EXPECT_TRUE(truth.AreMatched({"en", "directed by"},
                               {"vi", text::NormalizeAttributeName("đạo diễn")}));
  EXPECT_FALSE(truth.AreMatched({"en", "directed by"}, {"pt", "duração"}));
}

TEST_F(IntegrationTest, SchemaOverlapRoughlyMatchesTargets) {
  // film was configured with overlap 0.45 (pt) and 0.80 (vi).
  const auto& corpus = corpus_->corpus;
  const eval::MatchSet& truth = corpus_->ground_truth.at("film");
  auto measure = [&](const std::string& lang, const std::string& type_local) {
    double total = 0.0;
    size_t n = 0;
    for (wiki::ArticleId id : corpus.ArticlesOfType(lang, type_local)) {
      wiki::ArticleId other = corpus.CrossLanguageTarget(id, "en");
      if (other == wiki::kInvalidArticle) continue;
      const auto& a = corpus.Get(id);
      const auto& b = corpus.Get(other);
      if (!b.infobox.has_value()) continue;
      total += eval::SchemaOverlap(a.infobox->Schema(), b.infobox->Schema(),
                                   lang, "en", truth);
      ++n;
    }
    return n == 0 ? 0.0 : total / static_cast<double>(n);
  };
  double pt_overlap = measure("pt", "filme");
  double vi_overlap = measure("vi", "phim");
  EXPECT_NEAR(pt_overlap, 0.45, 0.18);
  EXPECT_NEAR(vi_overlap, 0.80, 0.18);
  EXPECT_LT(pt_overlap, vi_overlap);
}

}  // namespace
}  // namespace wikimatch
