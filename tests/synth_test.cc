// Unit and property tests for the synthetic-corpus substrate: lexicon
// synthesis, the calibrated concept model, value rendering, the corpus
// generator's invariants, and the MT oracle.

#include <gtest/gtest.h>

#include <set>

#include "ingest/delta.h"
#include "synth/concept_model.h"
#include "synth/delta.h"
#include "synth/generator.h"
#include "synth/lexicon.h"
#include "synth/mt_oracle.h"
#include "synth/value_render.h"
#include "text/normalize.h"
#include "util/utf8.h"

namespace wikimatch {
namespace synth {
namespace {

// ----------------------------------------------------------------- Lexicon

TEST(LexiconTest, WordsAreNonEmptyAndValidUtf8) {
  for (Morphology m : {Morphology::kEnglish, Morphology::kRomance,
                       Morphology::kVietnamese}) {
    WordGenerator gen(m);
    util::Rng rng(3);
    for (int i = 0; i < 100; ++i) {
      std::string w = gen.MakeWord(&rng);
      EXPECT_FALSE(w.empty());
      EXPECT_TRUE(util::IsValidUtf8(w));
    }
  }
}

TEST(LexiconTest, DeterministicForSameRngState) {
  WordGenerator gen(Morphology::kRomance);
  util::Rng a(11);
  util::Rng b(11);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(gen.MakeWord(&a), gen.MakeWord(&b));
  }
}

TEST(LexiconTest, CognateSharesRoot) {
  WordGenerator gen(Morphology::kRomance);
  util::Rng rng(5);
  EXPECT_EQ(gen.Cognate("production", &rng), "producção");
  EXPECT_EQ(gen.Cognate("payment", &rng), "paymento");
  std::string c = gen.Cognate("editor", &rng);
  EXPECT_EQ(c.rfind("edit", 0), 0u);  // Shares the root.
}

TEST(LexiconTest, ProperNamesCapitalized) {
  WordGenerator gen(Morphology::kEnglish);
  util::Rng rng(7);
  std::string name = gen.MakeProperName(&rng, 2);
  EXPECT_GE(name[0], 'A');
  EXPECT_LE(name[0], 'Z');
  EXPECT_NE(name.find(' '), std::string::npos);
}

TEST(LexiconTest, SeedConceptsCoverThreeLanguages) {
  for (const auto& seed : FilmSeedConcepts()) {
    EXPECT_FALSE(seed.id.empty());
    EXPECT_TRUE(ValueKindFromString(seed.kind).ok()) << seed.kind;
    for (const auto& lang : {"en", "pt", "vi"}) {
      auto it = seed.forms.find(lang);
      ASSERT_NE(it, seed.forms.end()) << seed.id << " lacks " << lang;
      EXPECT_FALSE(it->second.empty());
    }
  }
  EXPECT_GE(ActorSeedConcepts().size(), 10u);
}

TEST(LexiconTest, SeedTypeNamesIncludeTheFourViTypes) {
  const auto& names = SeedTypeNames();
  for (const auto& type : {"film", "show", "actor", "artist"}) {
    ASSERT_TRUE(names.count(type));
    EXPECT_TRUE(names.at(type).count("vi")) << type;
  }
  EXPECT_FALSE(names.at("book").count("vi"));
}

// ------------------------------------------------------------ ConceptModel

TEST(ValueKindTest, ParsesAllTags) {
  for (const auto& tag : {"date", "year", "number", "duration", "money",
                          "entity", "entity_list", "place", "term", "text",
                          "name"}) {
    EXPECT_TRUE(ValueKindFromString(tag).ok()) << tag;
  }
  EXPECT_FALSE(ValueKindFromString("bogus").ok());
}

TypeModelConfig FilmConfig(double overlap_pt, double overlap_vi) {
  TypeModelConfig cfg;
  cfg.type_name = "film";
  cfg.num_concepts = 18;
  cfg.dual_count["pt"] = 100;
  cfg.dual_count["vi"] = 50;
  cfg.overlap["pt"] = overlap_pt;
  cfg.overlap["vi"] = overlap_vi;
  return cfg;
}

TEST(ConceptModelTest, SeededFilmConceptsPresent) {
  util::Rng rng(13);
  // High overlap targets: no expression dropout, so every seeded form
  // survives.
  auto model = BuildTypeModel(FilmConfig(0.85, 0.9), "en", &rng);
  ASSERT_TRUE(model.ok());
  bool found_directed = false;
  for (const auto& c : model->concepts) {
    if (c.id == "directed_by") {
      found_directed = true;
      EXPECT_EQ(c.kind, ValueKind::kEntity);
      ASSERT_TRUE(c.forms.count("pt"));
      EXPECT_EQ(c.forms.at("pt")[0], "direção");
    }
  }
  EXPECT_TRUE(found_directed);
  EXPECT_EQ(model->names.at("pt"), "filme");
  EXPECT_EQ(model->names.at("vi"), "phim");
}

TEST(ConceptModelTest, CalibrationHitsOverlapTargets) {
  util::Rng rng(17);
  auto model = BuildTypeModel(FilmConfig(0.36, 0.87), "en", &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(ExpectedOverlap(*model, "en", "pt"), 0.36, 0.06);
  EXPECT_NEAR(ExpectedOverlap(*model, "en", "vi"), 0.87, 0.06);
}

TEST(ConceptModelTest, HighOverlapImpliesHighInclusionProbs) {
  util::Rng rng(19);
  auto model = BuildTypeModel(FilmConfig(0.40, 0.87), "en", &rng);
  ASSERT_TRUE(model.ok());
  double sum_vi = 0.0;
  double sum_pt = 0.0;
  size_t n_vi = 0;
  size_t n_pt = 0;
  for (const auto& c : model->concepts) {
    if (c.include_prob.count("vi")) {
      sum_vi += c.include_prob.at("vi");
      ++n_vi;
    }
    if (c.include_prob.count("pt")) {
      sum_pt += c.include_prob.at("pt");
      ++n_pt;
    }
  }
  ASSERT_GT(n_vi, 0u);
  ASSERT_GT(n_pt, 0u);
  EXPECT_GT(sum_vi / n_vi, sum_pt / n_pt);
}

TEST(ConceptModelTest, RequiresALanguage) {
  TypeModelConfig cfg;
  cfg.type_name = "empty";
  util::Rng rng(1);
  EXPECT_FALSE(BuildTypeModel(cfg, "en", &rng).ok());
}

// Property: calibration works across the whole overlap range.
class OverlapCalibrationTest : public ::testing::TestWithParam<double> {};
TEST_P(OverlapCalibrationTest, ExpectedOverlapNearTarget) {
  TypeModelConfig cfg;
  cfg.type_name = "generic";
  cfg.num_concepts = 16;
  cfg.dual_count["pt"] = 200;
  cfg.overlap["pt"] = GetParam();
  util::Rng rng(static_cast<uint64_t>(GetParam() * 1000) + 3);
  auto model = BuildTypeModel(cfg, "en", &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(ExpectedOverlap(*model, "en", "pt"), GetParam(), 0.08);
}
INSTANTIATE_TEST_SUITE_P(Targets, OverlapCalibrationTest,
                         ::testing::Values(0.15, 0.31, 0.45, 0.59, 0.75,
                                           0.87));

// ------------------------------------------------------------ ValueRender

class ValueRenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      SupportEntity e;
      e.titles["en"] = "person " + std::to_string(i);
      e.titles["pt"] = "pessoa " + std::to_string(i);
      pools_.entities.push_back(e);
    }
    SupportEntity place;
    place.titles["en"] = "northland";
    place.titles["pt"] = "nortelândia";
    place.aliases["en"] = "nl";
    pools_.places.push_back(place);
  }

  SupportPools pools_;
  WordGenerator en_{Morphology::kEnglish};
  RenderNoise quiet_{0.0, 0.0, 0.0, 0.0};
};

TEST_F(ValueRenderTest, DateFormatsPerLanguage) {
  Fact fact;
  fact.kind = ValueKind::kDate;
  fact.year = 1950;
  fact.month = 12;
  fact.day = 18;
  util::Rng rng(3);
  std::string en = RenderValue(fact, "en", pools_, quiet_, en_, &rng);
  std::string pt = RenderValue(fact, "pt", pools_, quiet_, en_, &rng);
  std::string vi = RenderValue(fact, "vi", pools_, quiet_, en_, &rng);
  EXPECT_NE(en.find("december"), std::string::npos);
  EXPECT_NE(en.find("1950"), std::string::npos);
  EXPECT_NE(pt.find("18 de dezembro de"), std::string::npos);
  EXPECT_NE(vi.find("18 tháng 12 năm 1950"), std::string::npos);
}

TEST_F(ValueRenderTest, MoneyMagnitudeDiffersPerLanguage) {
  Fact fact;
  fact.kind = ValueKind::kMoney;
  fact.number = 44000000;
  util::Rng rng(5);
  EXPECT_EQ(RenderValue(fact, "en", pools_, quiet_, en_, &rng),
            "US$ 44000000");
  EXPECT_EQ(RenderValue(fact, "pt", pools_, quiet_, en_, &rng),
            "US$ 44 milhões");
  EXPECT_EQ(RenderValue(fact, "vi", pools_, quiet_, en_, &rng),
            "44 triệu USD");
}

TEST_F(ValueRenderTest, EntityRendersAsLink) {
  Fact fact;
  fact.kind = ValueKind::kEntity;
  fact.ref = 2;
  util::Rng rng(7);
  EXPECT_EQ(RenderValue(fact, "en", pools_, quiet_, en_, &rng),
            "[[person 2]]");
  EXPECT_EQ(RenderValue(fact, "pt", pools_, quiet_, en_, &rng),
            "[[pessoa 2]]");
}

TEST_F(ValueRenderTest, LinkDropNoiseEmitsBareAnchor) {
  Fact fact;
  fact.kind = ValueKind::kEntity;
  fact.ref = 0;
  RenderNoise noisy = quiet_;
  noisy.p_link_drop = 1.0;
  util::Rng rng(9);
  EXPECT_EQ(RenderValue(fact, "en", pools_, noisy, en_, &rng), "person 0");
}

TEST_F(ValueRenderTest, AnchorVariantUsesAlias) {
  Fact fact;
  fact.kind = ValueKind::kPlace;
  fact.ref = 0;
  RenderNoise noisy = quiet_;
  noisy.p_anchor_variant = 1.0;
  util::Rng rng(11);
  EXPECT_EQ(RenderValue(fact, "en", pools_, noisy, en_, &rng),
            "[[northland|nl]]");
}

TEST_F(ValueRenderTest, SharedNameIsIdenticalAcrossLanguages) {
  util::Rng rng(13);
  Fact fact = DrawFact(ValueKind::kName, 0, 0, en_, &rng);
  fact.name_shared = true;
  std::string en = RenderValue(fact, "en", pools_, quiet_, en_, &rng);
  std::string pt = RenderValue(fact, "pt", pools_, quiet_, en_, &rng);
  EXPECT_EQ(en, pt);
}

TEST_F(ValueRenderTest, DurationUnitsLocalized) {
  Fact fact;
  fact.kind = ValueKind::kDuration;
  fact.number = 160;
  util::Rng rng(15);
  EXPECT_EQ(RenderValue(fact, "en", pools_, quiet_, en_, &rng),
            "160 minutes");
  EXPECT_EQ(RenderValue(fact, "pt", pools_, quiet_, en_, &rng),
            "160 minutos");
  EXPECT_EQ(RenderValue(fact, "vi", pools_, quiet_, en_, &rng), "160 phút");
}

TEST(DrawFactTest, EntityListHasDistinctRefs) {
  WordGenerator en(Morphology::kEnglish);
  util::Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    Fact fact = DrawFact(ValueKind::kEntityList, 10, 30, en, &rng);
    std::set<int> unique(fact.refs.begin(), fact.refs.end());
    EXPECT_EQ(unique.size(), fact.refs.size());
    for (int ref : fact.refs) {
      EXPECT_GE(ref, 10);
      EXPECT_LT(ref, 30);
    }
  }
}

TEST(MonthNameTest, Localized) {
  EXPECT_EQ(MonthName(6, "en"), "june");
  EXPECT_EQ(MonthName(6, "pt"), "junho");
  EXPECT_EQ(MonthName(6, "vi"), "6");
  EXPECT_EQ(MonthName(99, "en"), "december");  // Clamped.
}

// --------------------------------------------------------------- Generator

class GeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusGenerator generator(GeneratorOptions::Tiny(21));
    auto g = generator.Generate();
    ASSERT_TRUE(g.ok());
    gc_ = new GeneratedCorpus(std::move(g).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete gc_;
    gc_ = nullptr;
  }
  static GeneratedCorpus* gc_;
};

GeneratedCorpus* GeneratorTest::gc_ = nullptr;

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  CorpusGenerator g1(GeneratorOptions::Tiny(33));
  CorpusGenerator g2(GeneratorOptions::Tiny(33));
  auto a = g1.Generate();
  auto b = g2.Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->corpus.size(), b->corpus.size());
  for (wiki::ArticleId id = 0; id < a->corpus.size(); ++id) {
    EXPECT_EQ(a->corpus.Get(id).title, b->corpus.Get(id).title);
    EXPECT_EQ(a->corpus.Get(id).language, b->corpus.Get(id).language);
  }
}

TEST_F(GeneratorTest, DualEntitiesHaveLinkedArticles) {
  size_t checked = 0;
  for (const auto& rec : gc_->entities) {
    if (rec.pair_lang.empty()) continue;
    wiki::ArticleId local = gc_->corpus.FindByTitle(
        rec.pair_lang, rec.titles.at(rec.pair_lang));
    ASSERT_NE(local, wiki::kInvalidArticle);
    wiki::ArticleId hub = gc_->corpus.CrossLanguageTarget(local, "en");
    ASSERT_NE(hub, wiki::kInvalidArticle);
    EXPECT_EQ(gc_->corpus.Get(hub).title, rec.titles.at("en"));
    if (++checked >= 25) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(GeneratorTest, HubOnlyExtrasHaveNoPairLanguage) {
  size_t hub_only = 0;
  for (const auto& rec : gc_->entities) {
    if (rec.pair_lang.empty()) {
      ++hub_only;
      EXPECT_EQ(rec.titles.size(), 1u);
      EXPECT_TRUE(rec.titles.count("en"));
    }
  }
  EXPECT_GT(hub_only, 0u);
}

TEST_F(GeneratorTest, GroundTruthCoversEveryInfoboxAttribute) {
  // Every attribute name appearing in a film infobox must belong to some
  // ground-truth cluster of the film type.
  const eval::MatchSet& truth = gc_->ground_truth.at("film");
  size_t checked = 0;
  for (wiki::ArticleId id : gc_->corpus.ArticlesOfType("pt", "filme")) {
    for (const auto& name : gc_->corpus.Get(id).infobox->Schema()) {
      EXPECT_TRUE(truth.Contains({"pt", name})) << name;
      ++checked;
    }
    if (checked > 60) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(GeneratorTest, TypeNameMapIsConsistent) {
  ASSERT_TRUE(gc_->hub_type_of.count({"pt", "filme"}));
  EXPECT_EQ(gc_->hub_type_of.at({"pt", "filme"}), "film");
  EXPECT_EQ(gc_->hub_type_of.at({"en", "film"}), "film");
  EXPECT_EQ(gc_->hub_type_of.at({"vi", "phim"}), "film");
}

TEST_F(GeneratorTest, FactsExistForEveryModelConcept) {
  const TypeModel& model = gc_->models.at("film");
  for (const auto& rec : gc_->entities) {
    if (rec.type != "film") continue;
    for (const auto& c : model.concepts) {
      EXPECT_TRUE(rec.facts.count(c.id)) << c.id;
    }
    break;
  }
}

TEST_F(GeneratorTest, SupportPoolsPopulated) {
  EXPECT_GE(gc_->supports.entities.size(), 60u);
  EXPECT_EQ(gc_->supports.places.size(), 12u);
  EXPECT_EQ(gc_->supports.terms.size(), 16u);
  EXPECT_EQ(gc_->supports.day_pages.size(), 336u);
  EXPECT_EQ(gc_->supports.year_pages.size(),
            static_cast<size_t>(SupportPools::kLastYear -
                                SupportPools::kFirstYear + 1));
}

TEST_F(GeneratorTest, DayPageIndexing) {
  const auto& pools = gc_->supports;
  size_t idx = pools.DayPageIndex(12, 18);
  ASSERT_NE(idx, SIZE_MAX);
  EXPECT_EQ(pools.day_pages[idx].titles.at("en"), "december 18");
  EXPECT_EQ(pools.day_pages[idx].titles.at("pt"), "18 de dezembro");
  EXPECT_EQ(pools.DayPageIndex(13, 1), SIZE_MAX);
  EXPECT_EQ(pools.YearPageIndex(1899), SIZE_MAX);
}

// ---------------------------------------------------------------- MtOracle

TEST_F(GeneratorTest, MtOracleTranslatesEveryNonHubForm) {
  auto oracle = MakeMtOracle(*gc_);
  const TypeModel& model = gc_->models.at("film");
  for (const auto& c : model.concepts) {
    if (!c.forms.count("en") || c.forms.at("en").empty()) continue;
    for (const auto& [lang, forms] : c.forms) {
      if (lang == "en") continue;
      for (const auto& form : forms) {
        EXPECT_TRUE(
            oracle.count({lang, text::NormalizeAttributeName(form)}))
            << lang << ":" << form;
      }
    }
  }
}

TEST_F(GeneratorTest, MtOracleConventionalRateControlsExactHits) {
  MtOracleOptions always;
  always.p_conventional = 1.0;
  auto oracle = MakeMtOracle(*gc_, always);
  const TypeModel& model = gc_->models.at("film");
  for (const auto& c : model.concepts) {
    auto en_it = c.forms.find("en");
    auto pt_it = c.forms.find("pt");
    if (en_it == c.forms.end() || pt_it == c.forms.end()) continue;
    if (en_it->second.empty() || pt_it->second.empty()) continue;
    std::string key = text::NormalizeAttributeName(pt_it->second[0]);
    auto found = oracle.find({"pt", key});
    // Forms shared between two concepts keep their first translation, so
    // allow a miss only if the form maps elsewhere.
    if (found != oracle.end()) {
      EXPECT_EQ(found->second,
                text::NormalizeAttributeName(en_it->second[0]));
    }
  }
}

// ------------------------------------------------------------- Delta batches

// All of MakeDeltaBatch's randomness flows through DeltaSpec::seed, so two
// batches from the same corpus and spec must be identical edit for edit —
// the regression suites (sync Resync equivalence, ingest apply/rebuild
// equivalence) depend on replaying the exact same batch.
TEST_F(GeneratorTest, MakeDeltaBatchDeterministicForSameSeed) {
  DeltaSpec spec;
  spec.seed = 77;
  spec.lang_a = "pt";
  spec.lang_b = gc_->hub;
  spec.attribute_renames = 2;
  spec.value_edits = 6;
  spec.new_articles = 2;
  spec.removals = 2;
  auto a = MakeDeltaBatch(gc_->corpus, spec);
  auto b = MakeDeltaBatch(gc_->corpus, spec);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->added.size(), b->added.size());
  ASSERT_EQ(a->updated.size(), b->updated.size());
  for (size_t i = 0; i < a->added.size(); ++i) {
    EXPECT_TRUE(ingest::ArticlesEqual(a->added[i], b->added[i]))
        << a->added[i].title;
  }
  for (size_t i = 0; i < a->updated.size(); ++i) {
    EXPECT_TRUE(ingest::ArticlesEqual(a->updated[i], b->updated[i]))
        << a->updated[i].title;
  }
  EXPECT_EQ(a->removed, b->removed);
  EXPECT_GT(a->size(), 0u);

  // A different seed must actually move the batch, or the knob is dead.
  DeltaSpec other = spec;
  other.seed = 78;
  auto c = MakeDeltaBatch(gc_->corpus, other);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  bool differs = a->removed != c->removed ||
                 a->added.size() != c->added.size() ||
                 a->updated.size() != c->updated.size();
  if (!differs) {
    for (size_t i = 0; i < a->updated.size(); ++i) {
      if (!ingest::ArticlesEqual(a->updated[i], c->updated[i])) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace synth
}  // namespace wikimatch
