// Unit tests for the wiki substrate: wikitext/infobox parsing (including
// the tricky nesting cases), the XML dump reader, and the Corpus store.

#include <gtest/gtest.h>

#include "wiki/corpus.h"
#include "wiki/dump_reader.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace wiki {
namespace {

// ----------------------------------------------------------------- Parser

const char kFilmArticle[] = R"(
{{Infobox film
| name = The Last Emperor
| directed by = [[Bernardo Bertolucci]]
| starring = {{ubl|[[John Lone]]|[[Joan Chen]]|[[Peter O'Toole|O'Toole]]}}
| music by = [[Ryuichi Sakamoto]], [[David Byrne]]
| release date = [[november 18]] 1987
| running time = 160 minutes <!-- theatrical -->
| country = [[Italy]], [[United Kingdom|UK]]
| budget = US$ 23000000<ref>Box Office Mojo</ref>
| language = english
}}

'''The Last Emperor''' is a 1987 film.<ref name="a">Some citation</ref>

[[category:1987 films]]
[[Category:Films directed by Bernardo Bertolucci]]
[[pt:O Último Imperador]]
[[vi:Hoàng đế cuối cùng]]
)";

class ParserTest : public ::testing::Test {
 protected:
  WikitextParser parser_;

  Article Parse(const std::string& text, const std::string& title = "Test",
                const std::string& lang = "en") {
    auto result = parser_.ParseArticle(title, lang, text);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).ValueOrDie();
  }
};

TEST_F(ParserTest, ExtractsInfoboxType) {
  Article a = Parse(kFilmArticle, "The Last Emperor");
  ASSERT_TRUE(a.infobox.has_value());
  EXPECT_EQ(a.infobox->template_type, "film");
  EXPECT_EQ(a.infobox->template_name, "infobox film");
}

TEST_F(ParserTest, ExtractsAttributeValuePairs) {
  Article a = Parse(kFilmArticle);
  const Infobox& box = a.infobox.value();
  EXPECT_EQ(box.attributes.size(), 9u);
  const AttributeValue* director = box.Find("directed by");
  ASSERT_NE(director, nullptr);
  EXPECT_EQ(director->text, "Bernardo Bertolucci");
  ASSERT_EQ(director->links.size(), 1u);
  EXPECT_EQ(director->links[0].target, "bernardo bertolucci");
}

TEST_F(ParserTest, FlattensNestedTemplates) {
  Article a = Parse(kFilmArticle);
  const AttributeValue* starring = a.infobox->Find("starring");
  ASSERT_NE(starring, nullptr);
  ASSERT_EQ(starring->links.size(), 3u);
  EXPECT_EQ(starring->links[2].target, "peter o'toole");
  EXPECT_EQ(starring->links[2].anchor, "O'Toole");
  EXPECT_NE(starring->text.find("John Lone"), std::string::npos);
}

TEST_F(ParserTest, PipedLinkAnchors) {
  Article a = Parse(kFilmArticle);
  const AttributeValue* country = a.infobox->Find("country");
  ASSERT_NE(country, nullptr);
  ASSERT_EQ(country->links.size(), 2u);
  EXPECT_EQ(country->links[1].target, "united kingdom");
  EXPECT_EQ(country->links[1].anchor, "UK");
  EXPECT_EQ(country->text, "Italy, UK");
}

TEST_F(ParserTest, StripsCommentsAndRefs) {
  Article a = Parse(kFilmArticle);
  const AttributeValue* runtime = a.infobox->Find("running time");
  ASSERT_NE(runtime, nullptr);
  EXPECT_EQ(runtime->text, "160 minutes");
  const AttributeValue* budget = a.infobox->Find("budget");
  ASSERT_NE(budget, nullptr);
  EXPECT_EQ(budget->text, "US$ 23000000");
}

TEST_F(ParserTest, CollectsCategories) {
  Article a = Parse(kFilmArticle);
  ASSERT_EQ(a.categories.size(), 2u);
  EXPECT_EQ(a.categories[0], "1987 films");
}

TEST_F(ParserTest, CollectsCrossLanguageLinks) {
  Article a = Parse(kFilmArticle);
  ASSERT_EQ(a.cross_language_links.size(), 2u);
  EXPECT_EQ(a.cross_language_links.at("pt"), "o último imperador");
  EXPECT_EQ(a.cross_language_links.at("vi"), "hoàng đế cuối cùng");
}

TEST_F(ParserTest, PortugueseInfoTemplate) {
  Article a = Parse(
      "{{Info filme\n| direção = [[Bernardo Bertolucci]]\n"
      "| gênero = [[drama]]\n}}\n[[en:The Last Emperor]]\n",
      "O Último Imperador", "pt");
  ASSERT_TRUE(a.infobox.has_value());
  EXPECT_EQ(a.infobox->template_type, "filme");
  EXPECT_NE(a.infobox->Find("direção"), nullptr);
  EXPECT_NE(a.infobox->Find("gênero"), nullptr);
}

TEST_F(ParserTest, VietnameseInfoboxTemplate) {
  Article a = Parse(
      "{{Hộp thông tin phim\n| đạo diễn = [[Trần Anh Hùng]]\n}}\n",
      "Mùi đu đủ xanh", "vi");
  ASSERT_TRUE(a.infobox.has_value());
  EXPECT_EQ(a.infobox->template_type, "phim");
  EXPECT_NE(a.infobox->Find("đạo diễn"), nullptr);
}

TEST_F(ParserTest, SkipsNonInfoboxTemplates) {
  Article a = Parse(
      "{{Other template|x=1}}\n{{Infobox book\n| author = [[X Y]]\n}}\n");
  ASSERT_TRUE(a.infobox.has_value());
  EXPECT_EQ(a.infobox->template_type, "book");
}

TEST_F(ParserTest, NoInfobox) {
  Article a = Parse("Just '''prose''' and a [[link]].\n");
  EXPECT_FALSE(a.infobox.has_value());
}

TEST_F(ParserTest, EmptyValuedAttributesDropped) {
  Article a = Parse("{{Infobox film\n| name = X\n| budget = \n}}\n");
  ASSERT_TRUE(a.infobox.has_value());
  EXPECT_EQ(a.infobox->attributes.size(), 1u);
}

TEST_F(ParserTest, UnbalancedBracesDegradeGracefully) {
  Article a = Parse("{{Infobox film\n| name = X\n");  // Never closed.
  EXPECT_FALSE(a.infobox.has_value());
}

TEST_F(ParserTest, PipeInsideLinkIsNotASeparator) {
  Article a = Parse(
      "{{Infobox film\n| starring = [[A|The A]] and [[B|The B]]\n}}\n");
  ASSERT_TRUE(a.infobox.has_value());
  ASSERT_EQ(a.infobox->attributes.size(), 1u);
  EXPECT_EQ(a.infobox->Find("starring")->links.size(), 2u);
}

TEST_F(ParserTest, RejectsEmptyTitleOrLanguage) {
  EXPECT_FALSE(parser_.ParseArticle("", "en", "x").ok());
  EXPECT_FALSE(parser_.ParseArticle("T", "", "x").ok());
}

TEST_F(ParserTest, SchemaDeduplicatesAttributes) {
  Article a = Parse(
      "{{Infobox film\n| name = A\n| name = B\n| budget = 1\n}}\n");
  EXPECT_EQ(a.infobox->Schema(),
            (std::vector<std::string>{"name", "budget"}));
}

TEST(StripTest, Comments) {
  EXPECT_EQ(WikitextParser::StripComments("a<!-- x -->b"), "ab");
  EXPECT_EQ(WikitextParser::StripComments("a<!-- unterminated"), "a");
  EXPECT_EQ(WikitextParser::StripComments("plain"), "plain");
}

TEST(StripTest, Refs) {
  EXPECT_EQ(WikitextParser::StripRefs("a<ref>x</ref>b"), "ab");
  EXPECT_EQ(WikitextParser::StripRefs("a<ref name=\"n\"/>b"), "ab");
  EXPECT_EQ(WikitextParser::StripRefs("a<ref name=n>x</ref>b"), "ab");
}

TEST(FindTemplateTest, NestingAware) {
  std::string s = "x {{a {{b}} c}} y {{d}}";
  size_t begin = 0;
  size_t end = 0;
  ASSERT_TRUE(FindTemplate(s, 0, &begin, &end));
  EXPECT_EQ(s.substr(begin, end - begin), "{{a {{b}} c}}");
  ASSERT_TRUE(FindTemplate(s, end, &begin, &end));
  EXPECT_EQ(s.substr(begin, end - begin), "{{d}}");
  EXPECT_FALSE(FindTemplate(s, end, &begin, &end));
}

// ------------------------------------------------------------- DumpReader

TEST(XmlEscapeTest, RoundTrip) {
  std::string nasty = "a <b> & \"c\" 'd' ção";
  EXPECT_EQ(XmlUnescape(XmlEscape(nasty)), nasty);
}

TEST(XmlUnescapeTest, NumericEntities) {
  EXPECT_EQ(XmlUnescape("&#65;&#x42;"), "AB");
  EXPECT_EQ(XmlUnescape("&#231;"), "ç");
  EXPECT_EQ(XmlUnescape("&unknown;"), "&unknown;");
}

TEST(DumpReaderTest, ParsesPages) {
  std::string xml =
      "<mediawiki><page><title>A &amp; B</title><ns>0</ns>"
      "<revision><text xml:space=\"preserve\">{{Infobox film}}</text>"
      "</revision></page>"
      "<page><title>Redirect</title><ns>0</ns><redirect/>"
      "<revision><text>#REDIRECT [[A]]</text></revision></page>"
      "</mediawiki>";
  auto pages = ParseDump(xml);
  ASSERT_TRUE(pages.ok());
  ASSERT_EQ(pages->size(), 2u);
  EXPECT_EQ((*pages)[0].title, "A & B");
  EXPECT_EQ((*pages)[0].text, "{{Infobox film}}");
  EXPECT_FALSE((*pages)[0].is_redirect);
  EXPECT_TRUE((*pages)[1].is_redirect);
}

TEST(DumpReaderTest, WriteThenParseRoundTrip) {
  std::vector<DumpPage> pages = {
      {"Página <especial>", 0, false, "{{Info filme\n| direção = [[X]]\n}}"},
      {"Other", 0, true, "#REDIRECT [[Página]]"},
  };
  auto parsed = ParseDump(WriteDump(pages, "pt"));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].title, pages[0].title);
  EXPECT_EQ((*parsed)[0].text, pages[0].text);
  EXPECT_TRUE((*parsed)[1].is_redirect);
}

TEST(DumpReaderTest, ErrorsOnUnterminatedPage) {
  EXPECT_FALSE(ParseDump("<page><title>X</title>").ok());
  EXPECT_FALSE(ParseDump("<page>no title</page>").ok());
}

TEST(DumpReaderTest, MissingFile) {
  EXPECT_FALSE(ReadDumpFile("/nonexistent/path.xml").ok());
}

// ----------------------------------------------------------------- Corpus

class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WikitextParser parser;
    auto add = [&](const std::string& title, const std::string& lang,
                   const std::string& text) {
      auto article = parser.ParseArticle(title, lang, text);
      ASSERT_TRUE(article.ok());
      auto id = corpus_.AddArticle(std::move(article).ValueOrDie());
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    };
    add("Film One", "en",
        "{{Infobox film\n| directed by = [[Person A]]\n}}\n"
        "[[pt:Filme Um]]\n");
    // The pt article has no backlink: Finalize must symmetrize.
    add("Filme Um", "pt", "{{Info filme\n| direção = [[Pessoa A]]\n}}\n");
    add("Person A", "en", "'''Person A'''\n[[pt:Pessoa A]]\n");
    add("Pessoa A", "pt", "'''Pessoa A'''\n[[en:Person A]]\n");
    corpus_.Finalize();
  }

  Corpus corpus_;
};

TEST_F(CorpusTest, Indexes) {
  EXPECT_EQ(corpus_.size(), 4u);
  EXPECT_EQ(corpus_.ArticlesInLanguage("en").size(), 2u);
  EXPECT_EQ(corpus_.InfoboxCount("en"), 1u);
  EXPECT_EQ(corpus_.Languages(), (std::vector<std::string>{"en", "pt"}));
  EXPECT_EQ(corpus_.TypesIn("pt"), (std::vector<std::string>{"filme"}));
  EXPECT_EQ(corpus_.ArticlesOfType("en", "film").size(), 1u);
}

TEST_F(CorpusTest, TitleLookup) {
  EXPECT_NE(corpus_.FindByTitle("en", "film one"), kInvalidArticle);
  EXPECT_EQ(corpus_.FindByTitle("en", "missing"), kInvalidArticle);
}

TEST_F(CorpusTest, SymmetrizesCrossLanguageLinks) {
  ArticleId pt = corpus_.FindByTitle("pt", "filme um");
  ASSERT_NE(pt, kInvalidArticle);
  // The pt article did not declare the link; Finalize added it.
  ArticleId en = corpus_.CrossLanguageTarget(pt, "en");
  ASSERT_NE(en, kInvalidArticle);
  EXPECT_EQ(corpus_.Get(en).title, "film one");
  EXPECT_TRUE(corpus_.SameEntity(pt, en));
  EXPECT_TRUE(corpus_.SameEntity(en, pt));
}

TEST_F(CorpusTest, SameEntityNegativeCases) {
  ArticleId film = corpus_.FindByTitle("en", "film one");
  ArticleId person = corpus_.FindByTitle("en", "person a");
  EXPECT_FALSE(corpus_.SameEntity(film, person));
  ArticleId pessoa = corpus_.FindByTitle("pt", "pessoa a");
  EXPECT_FALSE(corpus_.SameEntity(film, pessoa));
}

TEST_F(CorpusTest, DuplicateAdditionFails) {
  Article dup;
  dup.title = "film one";
  dup.language = "en";
  EXPECT_EQ(corpus_.AddArticle(dup).status().code(),
            util::StatusCode::kAlreadyExists);
}

TEST(CorpusIngestTest, IngestDumpKeepsRedirectsSkipsOtherNamespaces) {
  std::vector<DumpPage> pages = {
      {"Good", 0, false, "{{Infobox film\n| name = g\n}}"},
      {"Redirected", 0, true, "#REDIRECT [[Good]]"},
      {"Talk:Good", 1, false, "discussion"},
  };
  Corpus corpus;
  WikitextParser parser;
  auto added = corpus.IngestDump(pages, "en", parser);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 2u);  // Redirect pages are kept; Talk: is skipped.
  corpus.Finalize();
  // The redirect resolves to the real article...
  ArticleId via_redirect = corpus.FindByTitle("en", "redirected");
  ASSERT_NE(via_redirect, kInvalidArticle);
  EXPECT_EQ(corpus.Get(via_redirect).title, "good");
  // ...but FindExactTitle sees the redirect page itself.
  ArticleId exact = corpus.FindExactTitle("en", "redirected");
  ASSERT_NE(exact, kInvalidArticle);
  EXPECT_TRUE(corpus.Get(exact).IsRedirect());
  EXPECT_EQ(corpus.Get(exact).redirect_to, "good");
}

TEST(CorpusRedirectTest, CyclesTerminate) {
  Corpus corpus;
  WikitextParser parser;
  auto a = parser.ParseArticle("A", "en", "#REDIRECT [[B]]");
  auto b = parser.ParseArticle("B", "en", "#REDIRECT [[A]]");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(corpus.AddArticle(std::move(a).ValueOrDie()).ok());
  ASSERT_TRUE(corpus.AddArticle(std::move(b).ValueOrDie()).ok());
  corpus.Finalize();
  EXPECT_EQ(corpus.FindByTitle("en", "a"), kInvalidArticle);
}

TEST(ParserRedirectTest, ParsesRedirectTarget) {
  WikitextParser parser;
  auto article =
      parser.ParseArticle("USA", "en", "  #redirect [[United States|US]]\n");
  ASSERT_TRUE(article.ok());
  EXPECT_TRUE(article->IsRedirect());
  EXPECT_EQ(article->redirect_to, "united states");
  EXPECT_FALSE(article->infobox.has_value());
}

}  // namespace
}  // namespace wiki
}  // namespace wikimatch
