// Unit and property tests for the text substrate: normalization across the
// Portuguese/Vietnamese repertoire, tokenization, and the string-similarity
// library used by the COMA++-style baseline.

#include <gtest/gtest.h>

#include "text/normalize.h"
#include "text/string_similarity.h"
#include "text/tokenizer.h"

namespace wikimatch {
namespace text {
namespace {

// ------------------------------------------------------------ Normalization

TEST(NormalizeTest, AsciiLower) {
  EXPECT_EQ(ToLower("DiReCTeD By"), "directed by");
}

TEST(NormalizeTest, PortugueseLower) {
  EXPECT_EQ(ToLower("DIREÇÃO"), "direção");
  EXPECT_EQ(ToLower("Gênero"), "gênero");
  EXPECT_EQ(ToLower("CÔNJUGE"), "cônjuge");
}

TEST(NormalizeTest, VietnameseLowerIsStable) {
  // Vietnamese seed forms are already lowercase; they must pass through.
  EXPECT_EQ(ToLower("đạo diễn"), "đạo diễn");
  EXPECT_EQ(ToLower("thể loại"), "thể loại");
}

TEST(NormalizeTest, FoldDiacriticsPortuguese) {
  EXPECT_EQ(FoldDiacritics("direção"), "direcao");
  EXPECT_EQ(FoldDiacritics("gênero"), "genero");
  EXPECT_EQ(FoldDiacritics("prêmios"), "premios");
  EXPECT_EQ(FoldDiacritics("João"), "joao");
}

TEST(NormalizeTest, FoldDiacriticsVietnamese) {
  EXPECT_EQ(FoldDiacritics("đạo diễn"), "dao dien");
  EXPECT_EQ(FoldDiacritics("ngôn ngữ"), "ngon ngu");
  EXPECT_EQ(FoldDiacritics("thể loại"), "the loai");
  EXPECT_EQ(FoldDiacritics("kịch bản"), "kich ban");
  EXPECT_EQ(FoldDiacritics("giải thưởng"), "giai thuong");
}

TEST(NormalizeTest, AttributeNameNormalization) {
  EXPECT_EQ(NormalizeAttributeName("  Directed_By "), "directed by");
  EXPECT_EQ(NormalizeAttributeName("release-date"), "release date");
  EXPECT_EQ(NormalizeAttributeName("Elenco   Original"), "elenco original");
  // Diacritics are preserved in attribute names.
  EXPECT_EQ(NormalizeAttributeName("Direção"), "direção");
}

TEST(NormalizeTest, TitleNormalization) {
  EXPECT_EQ(NormalizeTitle("The_Last_Emperor"), "the last emperor");
  EXPECT_EQ(NormalizeTitle("  O Último  Imperador "), "o último imperador");
}

TEST(NormalizeTest, ValueNormalization) {
  EXPECT_EQ(NormalizeValue("160  Minutes"), "160 minutes");
}

// -------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, SplitsOnPunctuationAndSpace) {
  auto tokens = Tokenize("Bernardo Bertolucci, Italy (1987)");
  EXPECT_EQ(tokens, (std::vector<std::string>{"bernardo", "bertolucci",
                                              "italy", "1987"}));
}

TEST(TokenizerTest, NumbersAndWordsSeparate) {
  auto tokens = Tokenize("160minutes");
  EXPECT_EQ(tokens, (std::vector<std::string>{"160", "minutes"}));
}

TEST(TokenizerTest, KeepNumbersOff) {
  TokenizerOptions opts;
  opts.keep_numbers = false;
  auto tokens = Tokenize("june 4 1975", opts);
  EXPECT_EQ(tokens, (std::vector<std::string>{"june"}));
}

TEST(TokenizerTest, UnicodeWords) {
  auto tokens = Tokenize("đạo diễn: João");
  EXPECT_EQ(tokens, (std::vector<std::string>{"đạo", "diễn", "joão"}));
}

TEST(TokenizerTest, FoldDiacriticsOption) {
  TokenizerOptions opts;
  opts.fold_diacritics = true;
  auto tokens = Tokenize("direção", opts);
  EXPECT_EQ(tokens, (std::vector<std::string>{"direcao"}));
}

TEST(TokenizerTest, MinTokenLength) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  auto tokens = Tokenize("a bb ccc dddd", opts);
  EXPECT_EQ(tokens, (std::vector<std::string>{"ccc", "dddd"}));
}

TEST(TokenizerTest, EmptyInput) { EXPECT_TRUE(Tokenize("").empty()); }

TEST(CharNgramsTest, Basics) {
  auto grams = CharNgrams("abcd", 3);
  EXPECT_EQ(grams, (std::vector<std::string>{"abc", "bcd"}));
}

TEST(CharNgramsTest, ShortStringYieldsWhole) {
  auto grams = CharNgrams("ab", 3);
  EXPECT_EQ(grams, (std::vector<std::string>{"ab"}));
}

TEST(CharNgramsTest, UnicodeGranularity) {
  auto grams = CharNgrams("ção", 2);
  EXPECT_EQ(grams, (std::vector<std::string>{"çã", "ão"}));
}

// ------------------------------------------------------ String similarity

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinTest, UnicodeCountsCodePoints) {
  // editora vs editor: one trailing code point.
  EXPECT_EQ(LevenshteinDistance("editora", "editor"), 1u);
  EXPECT_EQ(LevenshteinDistance("direção", "direcao"), 2u);
}

TEST(LevenshteinTest, SimilarityNormalized) {
  EXPECT_NEAR(LevenshteinSimilarity("editora", "editor"), 1.0 - 1.0 / 7.0,
              1e-9);
  EXPECT_EQ(LevenshteinSimilarity("", ""), 1.0);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
  EXPECT_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jw = JaroWinklerSimilarity("martha", "marhta");
  EXPECT_NEAR(jw, 0.961111, 1e-5);
  EXPECT_GT(jw, JaroSimilarity("martha", "marhta"));
}

TEST(NgramTest, DiceAndJaccard) {
  EXPECT_NEAR(NgramDice("night", "nacht", 2), 0.25, 1e-9);
  EXPECT_EQ(NgramDice("same", "same", 3), 1.0);
  EXPECT_EQ(NgramJaccard("abc", "abc", 2), 1.0);
  EXPECT_EQ(NgramJaccard("abc", "xyz", 2), 0.0);
}

TEST(NgramTest, FalseCognateScoresHigh) {
  // The paper's warning: editora (publisher) vs editor are string-similar
  // but semantically different — syntactic measures cannot tell.
  EXPECT_GT(TrigramSimilarity("editora", "editor"), 0.7);
}

TEST(LcsTest, KnownValues) {
  EXPECT_EQ(LongestCommonSubstring("starring", "elenco"), 1u);
  EXPECT_EQ(LongestCommonSubstring("abcdef", "zabcy"), 3u);
  EXPECT_EQ(LongestCommonSubstring("", "x"), 0u);
  EXPECT_NEAR(LcsSimilarity("abcdef", "zabcy"), 3.0 / 5.0, 1e-9);
}

TEST(MongeElkanTest, TokenLevelMatchingBeatsWholeString) {
  // Word order and function words barely matter.
  double me = MongeElkanSimilarity("data de nascimento", "nascimento data");
  EXPECT_GT(me, 0.9);
  EXPECT_GT(me, TrigramSimilarity("data de nascimento", "nascimento data"));
}

TEST(MongeElkanTest, BoundsAndEdges) {
  EXPECT_EQ(MongeElkanSimilarity("", ""), 1.0);
  EXPECT_EQ(MongeElkanSimilarity("x", ""), 0.0);
  EXPECT_NEAR(MongeElkanSimilarity("directed by", "directed by"), 1.0,
              1e-12);
  double v = MongeElkanSimilarity("elenco original", "starring actor");
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

TEST(MongeElkanTest, Symmetric) {
  double ab = MongeElkanSimilarity("release date", "data de lançamento");
  double ba = MongeElkanSimilarity("data de lançamento", "release date");
  EXPECT_NEAR(ab, ba, 1e-12);
}

TEST(PrefixTest, CommonPrefixLength) {
  EXPECT_EQ(CommonPrefixLength("director", "direção"), 4u);
  EXPECT_EQ(CommonPrefixLength("abc", "abc"), 3u);
  EXPECT_EQ(CommonPrefixLength("", "x"), 0u);
}

// Property sweep: every similarity is symmetric, in [0,1], and 1 on
// identical strings.
using SimilarityFn = double (*)(std::string_view, std::string_view);
class SimilarityPropertyTest
    : public ::testing::TestWithParam<SimilarityFn> {};

TEST_P(SimilarityPropertyTest, SymmetricBoundedReflexive) {
  SimilarityFn fn = GetParam();
  const std::vector<std::string> samples = {
      "starring", "elenco original", "直", "đạo diễn", "direção", "a",
      "editora", "editor", "release date", ""};
  for (const auto& a : samples) {
    for (const auto& b : samples) {
      double ab = fn(a, b);
      double ba = fn(b, a);
      EXPECT_NEAR(ab, ba, 1e-12) << a << " / " << b;
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
    if (!a.empty()) EXPECT_NEAR(fn(a, a), 1.0, 1e-12) << a;
  }
}

double TrigramWrap(std::string_view a, std::string_view b) {
  return TrigramSimilarity(a, b);
}
double BigramJaccardWrap(std::string_view a, std::string_view b) {
  return NgramJaccard(a, b, 2);
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, SimilarityPropertyTest,
                         ::testing::Values(&LevenshteinSimilarity,
                                           &JaroSimilarity,
                                           &JaroWinklerSimilarity,
                                           &TrigramWrap, &BigramJaccardWrap));

}  // namespace
}  // namespace text
}  // namespace wikimatch
