// Robustness and property tests across modules:
//  * the wikitext parser must never fail on arbitrary mutated input —
//    malformed markup degrades, it does not error or crash;
//  * the dump reader must survive truncated/garbled XML;
//  * aligner behavior must be monotone in its thresholds;
//  * the full pipeline must be deterministic.

#include <gtest/gtest.h>

#include "match/aligner.h"
#include "match/pipeline.h"
#include "synth/generator.h"
#include "util/rng.h"
#include "util/utf8.h"
#include "wiki/dump_reader.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace {

const char kSeedArticle[] =
    "{{Infobox film\n| directed by = [[Bernardo Bertolucci]]\n"
    "| starring = {{ubl|[[John Lone]]|[[Joan Chen]]}}\n"
    "| release date = [[november 18]] 1987\n"
    "| notes = <!-- hidden --><ref>x</ref>value\n}}\n"
    "'''Prose''' with [[a link|anchor]].\n"
    "[[category:films]]\n[[pt:Filme]]\n";

// Mutates `s` with deletions, duplications, and byte flips.
std::string Mutate(const std::string& s, util::Rng* rng, int edits) {
  std::string out = s;
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng->NextBounded(out.size());
    switch (rng->NextBounded(4)) {
      case 0:  // delete a byte
        out.erase(pos, 1);
        break;
      case 1:  // duplicate a span
        out.insert(pos, out.substr(pos, rng->NextBounded(8) + 1));
        break;
      case 2:  // flip to a structural byte
        out[pos] = "{}[]|=<>"[rng->NextBounded(8)];
        break;
      case 3:  // flip to a random byte (may break UTF-8)
        out[pos] = static_cast<char>(rng->NextBounded(256));
        break;
    }
  }
  return out;
}

TEST(ParserFuzzTest, NeverFailsOnMutatedWikitext) {
  wiki::WikitextParser parser;
  util::Rng rng(0xF022);
  for (int round = 0; round < 500; ++round) {
    std::string mutated = Mutate(kSeedArticle, &rng, 1 + round % 12);
    auto article = parser.ParseArticle("T", "en", mutated);
    // Parsing must succeed (title and language are valid); content just
    // degrades.
    ASSERT_TRUE(article.ok()) << "round " << round;
    // Everything extracted must be structurally sane.
    if (article->infobox.has_value()) {
      for (const auto& [attr, value] : article->infobox->attributes) {
        EXPECT_FALSE(attr.empty());
        EXPECT_FALSE(value.raw.empty());
      }
    }
  }
}

TEST(ParserFuzzTest, PathologicalNesting) {
  wiki::WikitextParser parser;
  std::string deep = "{{Infobox film\n| a = ";
  for (int i = 0; i < 50; ++i) deep += "{{x|";
  deep += "core";
  for (int i = 0; i < 50; ++i) deep += "}}";
  deep += "\n}}\n";
  auto article = parser.ParseArticle("T", "en", deep);
  ASSERT_TRUE(article.ok());
}

TEST(ParserFuzzTest, HugeFlatValue) {
  wiki::WikitextParser parser;
  std::string big = "{{Infobox film\n| a = " + std::string(200000, 'x') +
                    "\n}}\n";
  auto article = parser.ParseArticle("T", "en", big);
  ASSERT_TRUE(article.ok());
  ASSERT_TRUE(article->infobox.has_value());
}

TEST(DumpFuzzTest, TruncatedXmlNeverCrashes) {
  std::string xml =
      "<mediawiki><page><title>A</title><ns>0</ns><revision>"
      "<text>{{Infobox film}}</text></revision></page></mediawiki>";
  for (size_t cut = 0; cut < xml.size(); cut += 3) {
    auto pages = wiki::ParseDump(xml.substr(0, cut));
    // Either parses a prefix or reports an error; both are acceptable.
    (void)pages;
  }
  SUCCEED();
}

TEST(DumpFuzzTest, MutatedXml) {
  std::string xml =
      "<mediawiki><page><title>A &amp; B</title><ns>0</ns><revision>"
      "<text>body</text></revision></page></mediawiki>";
  util::Rng rng(0xD09);
  for (int round = 0; round < 300; ++round) {
    auto pages = wiki::ParseDump(Mutate(xml, &rng, 1 + round % 8));
    if (pages.ok()) {
      for (const auto& page : *pages) {
        EXPECT_FALSE(page.title.empty());
      }
    }
  }
}

// ------------------------------------------------------ Aligner properties

class AlignerPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(99));
    auto g = generator.Generate();
    ASSERT_TRUE(g.ok());
    gc_ = new synth::GeneratedCorpus(std::move(g).ValueOrDie());
    pipeline_ = new match::MatchPipeline(&gc_->corpus);
    auto data = pipeline_->BuildPair("pt", "filme", "en", "film");
    ASSERT_TRUE(data.ok());
    data_ = new match::TypePairData(std::move(data).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    delete pipeline_;
    delete gc_;
    data_ = nullptr;
    pipeline_ = nullptr;
    gc_ = nullptr;
  }

  static size_t NumMatches(const match::MatcherConfig& config) {
    match::AttributeAligner aligner(config);
    auto result = aligner.Align(*data_);
    EXPECT_TRUE(result.ok());
    return result->matches.CrossLanguagePairs("pt", "en").size();
  }

  static synth::GeneratedCorpus* gc_;
  static match::MatchPipeline* pipeline_;
  static match::TypePairData* data_;
};

synth::GeneratedCorpus* AlignerPropertyTest::gc_ = nullptr;
match::MatchPipeline* AlignerPropertyTest::pipeline_ = nullptr;
match::TypePairData* AlignerPropertyTest::data_ = nullptr;

TEST_F(AlignerPropertyTest, Deterministic) {
  match::MatcherConfig config;
  match::AttributeAligner aligner(config);
  auto a = aligner.Align(*data_);
  auto b = aligner.Align(*data_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->matches.Clusters(), b->matches.Clusters());
  EXPECT_EQ(a->all_pairs.size(), b->all_pairs.size());
}

TEST_F(AlignerPropertyTest, TlsiRaisingShrinksCandidateSet) {
  // Higher TLSI strictly admits fewer queue candidates. The *match* count
  // is only loosely monotone (dropping one early absorption can enable a
  // different merge later), so it gets a slack bound.
  size_t prev_matches = SIZE_MAX;
  for (double t : {0.0, 0.3, 0.6, 0.9, 0.99}) {
    match::MatcherConfig config;
    config.t_lsi = t;
    config.use_revise_uncertain = false;  // isolate queue admission
    size_t n = NumMatches(config);
    EXPECT_LE(n, prev_matches == SIZE_MAX ? SIZE_MAX : prev_matches + 2)
        << "t_lsi " << t;
    prev_matches = n;
  }
  // Strict invariant: admitted candidates shrink with the threshold.
  match::AttributeAligner aligner{match::MatcherConfig{}};
  auto result = aligner.Align(*data_);
  ASSERT_TRUE(result.ok());
  auto admitted = [&](double t) {
    size_t count = 0;
    for (const auto& p : result->all_pairs) {
      if (p.lsi > t) ++count;
    }
    return count;
  };
  EXPECT_GE(admitted(0.1), admitted(0.5));
  EXPECT_GE(admitted(0.5), admitted(0.9));
}

TEST_F(AlignerPropertyTest, ReviseUncertainOnlyAddsMatches) {
  match::MatcherConfig with;
  match::MatcherConfig without = with;
  without.use_revise_uncertain = false;
  match::AttributeAligner a_with(with);
  match::AttributeAligner a_without(without);
  auto r_with = a_with.Align(*data_);
  auto r_without = a_without.Align(*data_);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  // Every certain match survives revision (revision never removes).
  for (const auto& [a, b] :
       r_without->matches.CrossLanguagePairs("pt", "en")) {
    EXPECT_TRUE(r_with->matches.AreMatched(a, b))
        << a.name << " / " << b.name;
  }
}

TEST_F(AlignerPropertyTest, AllScoresInRange) {
  match::AttributeAligner aligner{match::MatcherConfig{}};
  auto result = aligner.Align(*data_);
  ASSERT_TRUE(result.ok());
  for (const auto& p : result->all_pairs) {
    EXPECT_GE(p.vsim, 0.0);
    EXPECT_LE(p.vsim, 1.0 + 1e-12);
    EXPECT_GE(p.lsim, 0.0);
    EXPECT_LE(p.lsim, 1.0 + 1e-12);
    EXPECT_GE(p.lsi, 0.0);
    EXPECT_LE(p.lsi, 1.0 + 1e-12);
  }
}

TEST_F(AlignerPropertyTest, MatchedAttributesExistInSchema) {
  match::AttributeAligner aligner{match::MatcherConfig{}};
  auto result = aligner.Align(*data_);
  ASSERT_TRUE(result.ok());
  for (const auto& cluster : result->matches.Clusters()) {
    for (const auto& attr : cluster) {
      EXPECT_NE(data_->GroupIndex(attr), SIZE_MAX)
          << attr.language << ":" << attr.name;
    }
  }
}

// Generator determinism across scales (property sweep).
class GeneratorScaleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorScaleTest, PipelineIsDeterministic) {
  synth::GeneratorOptions options = synth::GeneratorOptions::Tiny(GetParam());
  synth::CorpusGenerator g1(options);
  synth::CorpusGenerator g2(options);
  auto c1 = g1.Generate();
  auto c2 = g2.Generate();
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  match::MatchPipeline p1(&c1->corpus);
  match::MatchPipeline p2(&c2->corpus);
  auto r1 = p1.Run("pt", "en");
  auto r2 = p2.Run("pt", "en");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->per_type.size(), r2->per_type.size());
  for (size_t i = 0; i < r1->per_type.size(); ++i) {
    EXPECT_EQ(r1->per_type[i].alignment.matches.Clusters(),
              r2->per_type[i].alignment.matches.Clusters());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorScaleTest,
                         ::testing::Values(1, 17, 42, 2026));

}  // namespace
}  // namespace wikimatch
