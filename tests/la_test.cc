// Unit and property tests for the linear-algebra substrate: dense matrices,
// sparse vectors, the Jacobi eigensolver, and the SVD engines behind LSI.

#include <gtest/gtest.h>

#include <cmath>

#include "la/matrix.h"
#include "la/sparse_vector.h"
#include "la/svd.h"
#include "util/rng.h"

namespace wikimatch {
namespace la {
namespace {

// ------------------------------------------------------------------ Matrix

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_EQ(m(0, 0), -2.0);
}

TEST(MatrixTest, FromRowsAndIdentity) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m(1, 0), 3.0);
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix c = a.Multiply(Matrix::Identity(3));
  EXPECT_EQ(c.MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, TransposedTwiceIsIdentity) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(a.Transposed().Transposed().MaxAbsDiff(a), 0.0);
  EXPECT_EQ(a.Transposed()(2, 1), 6.0);
}

TEST(MatrixTest, GramOfRowsSymmetric) {
  Matrix a = Matrix::FromRows({{1, 0, 2}, {0, 3, 1}});
  Matrix g = a.GramOfRows();
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g(0, 0), 5.0);
  EXPECT_EQ(g(0, 1), 2.0);
  EXPECT_EQ(g(1, 0), g(0, 1));
}

TEST(MatrixTest, RowColFrobenius) {
  Matrix a = Matrix::FromRows({{3, 4}});
  EXPECT_EQ(a.Row(0), (std::vector<double>{3, 4}));
  EXPECT_EQ(a.Col(1), (std::vector<double>{4}));
  EXPECT_NEAR(a.FrobeniusNorm(), 5.0, 1e-12);
}

TEST(DenseVectorTest, DotNormCosine) {
  std::vector<double> a = {1, 0};
  std::vector<double> b = {0, 1};
  EXPECT_EQ(Dot(a, b), 0.0);
  EXPECT_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_NEAR(CosineSimilarity({1, 1}, {2, 2}), 1.0, 1e-12);
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

// ------------------------------------------------------------ SparseVector

TEST(SparseVectorTest, AddGetNorm) {
  SparseVector v;
  EXPECT_TRUE(v.empty());
  v.Add(3, 2.0);
  v.Add(3, 1.0);
  v.Set(7, 4.0);
  EXPECT_EQ(v.Get(3), 3.0);
  EXPECT_EQ(v.Get(99), 0.0);
  EXPECT_EQ(v.NumNonZero(), 2u);
  EXPECT_NEAR(v.Norm(), 5.0, 1e-12);
  EXPECT_EQ(v.Sum(), 7.0);
}

TEST(SparseVectorTest, DotAndCosine) {
  SparseVector a;
  a.Set(1, 1.0);
  a.Set(2, 2.0);
  SparseVector b;
  b.Set(2, 3.0);
  b.Set(9, 5.0);
  EXPECT_EQ(a.Dot(b), 6.0);
  EXPECT_NEAR(a.Cosine(a), 1.0, 1e-12);
  SparseVector zero;
  EXPECT_EQ(a.Cosine(zero), 0.0);
}

TEST(SparseVectorTest, NormalizedHasUnitNorm) {
  SparseVector v;
  v.Set(0, 3.0);
  v.Set(5, 4.0);
  EXPECT_NEAR(v.Normalized().Norm(), 1.0, 1e-12);
  EXPECT_TRUE(SparseVector().Normalized().empty());
}

TEST(TermDictionaryTest, InternsAndLooksUp) {
  TermDictionary dict;
  uint32_t a = dict.GetOrAdd("alpha");
  uint32_t b = dict.GetOrAdd("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.GetOrAdd("alpha"), a);
  EXPECT_EQ(dict.Lookup("beta"), b);
  EXPECT_EQ(dict.Lookup("gamma"), TermDictionary::kNotFound);
  EXPECT_EQ(dict.TermOf(a), "alpha");
  EXPECT_EQ(dict.size(), 2u);
}

// ------------------------------------------------------------------- Eigen

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 1}});
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
}

TEST(JacobiEigenTest, KnownSymmetric) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  double x = eig->vectors(0, 0);
  double y = eig->vectors(1, 0);
  EXPECT_NEAR(std::fabs(x), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(x, y, 1e-8);
}

TEST(JacobiEigenTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(JacobiEigenSymmetric(a).ok());
}

TEST(JacobiEigenTest, ReconstructsMatrix) {
  util::Rng rng(5);
  const size_t n = 8;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.NextDouble() - 0.5;
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  // Rebuild V diag(lambda) V^T.
  Matrix vl(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < n; ++k) {
      vl(i, k) = eig->vectors(i, k) * eig->values[k];
    }
  }
  Matrix rebuilt = vl.Multiply(eig->vectors.Transposed());
  EXPECT_LT(rebuilt.MaxAbsDiff(a), 1e-8);
}

// --------------------------------------------------------------------- SVD

TEST(SvdTest, DiagonalSingularValues) {
  Matrix a = Matrix::FromRows({{3, 0, 0}, {0, 2, 0}});
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd->singular_values.size(), 2u);
  EXPECT_NEAR(svd->singular_values[0], 3.0, 1e-10);
  EXPECT_NEAR(svd->singular_values[1], 2.0, 1e-10);
}

TEST(SvdTest, ReconstructionTallAndWide) {
  util::Rng rng(17);
  for (auto [rows, cols] : {std::pair<size_t, size_t>{6, 15},
                            std::pair<size_t, size_t>{15, 6}}) {
    Matrix a(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) a(i, j) = rng.NextDouble();
    }
    auto svd = ComputeSvd(a);
    ASSERT_TRUE(svd.ok());
    EXPECT_LT(svd->Reconstruct().MaxAbsDiff(a), 1e-7)
        << rows << "x" << cols;
  }
}

TEST(SvdTest, SingularValuesSortedNonNegative) {
  util::Rng rng(23);
  Matrix a(7, 20);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = rng.NextBool(0.4) ? 1.0 : 0.0;
    }
  }
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  for (size_t k = 0; k < svd->singular_values.size(); ++k) {
    EXPECT_GE(svd->singular_values[k], 0.0);
    if (k > 0) {
      EXPECT_LE(svd->singular_values[k], svd->singular_values[k - 1]);
    }
  }
}

TEST(SvdTest, OrthonormalFactors) {
  util::Rng rng(29);
  Matrix a(5, 12);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.NextGaussian();
  }
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  Matrix utu = svd->u.Transposed().Multiply(svd->u);
  Matrix vtv = svd->v.Transposed().Multiply(svd->v);
  size_t k = svd->singular_values.size();
  EXPECT_LT(utu.MaxAbsDiff(Matrix::Identity(k)), 1e-7);
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(k)), 1e-7);
}

TEST(SvdTest, RankDeficientMatrixDropsZeroSingularValues) {
  // Rank 1: every row a multiple of the first.
  Matrix a = Matrix::FromRows({{1, 2, 3}, {2, 4, 6}, {3, 6, 9}});
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd->singular_values.size(), 1u);
  EXPECT_LT(svd->Reconstruct().MaxAbsDiff(a), 1e-8);
}

TEST(SvdTest, EmptyAndZeroMatrices) {
  auto empty = ComputeSvd(Matrix());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->singular_values.empty());
  auto zero = ComputeSvd(Matrix(3, 4, 0.0));
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->singular_values.empty());
}

TEST(TruncatedSvdTest, KeepsTopF) {
  util::Rng rng(31);
  Matrix a(8, 30);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = rng.NextBool(0.3) ? 1.0 : 0.0;
    }
  }
  auto full = ComputeSvd(a);
  auto truncated = ComputeTruncatedSvd(a, 3);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(truncated.ok());
  ASSERT_EQ(truncated->singular_values.size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(truncated->singular_values[k], full->singular_values[k],
                1e-9);
  }
  // Truncation is the best rank-3 approximation; its error is bounded by
  // the dropped singular values.
  double err = truncated->Reconstruct().MaxAbsDiff(a);
  EXPECT_LT(err, full->singular_values[3] + 1e-9);
}

TEST(TruncatedSvdTest, FZeroOrLargeGivesFull) {
  Matrix a = Matrix::FromRows({{1, 0}, {0, 2}});
  auto t0 = ComputeTruncatedSvd(a, 0);
  auto t9 = ComputeTruncatedSvd(a, 9);
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t9.ok());
  EXPECT_EQ(t0->singular_values.size(), 2u);
  EXPECT_EQ(t9->singular_values.size(), 2u);
}

TEST(SvdResultTest, ScaledRowVector) {
  Matrix a = Matrix::FromRows({{2, 0}, {0, 5}});
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  auto row0 = svd->ScaledRowVector(0);
  // Row 0's representation has magnitude equal to its row norm (2).
  EXPECT_NEAR(Norm(row0), 2.0, 1e-9);
  EXPECT_NEAR(Norm(svd->ScaledRowVector(1)), 5.0, 1e-9);
}

// Property sweep: reconstruction across shapes.
class SvdShapeTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SvdShapeTest, Reconstructs) {
  auto [rows, cols] = GetParam();
  util::Rng rng(rows * 131 + cols);
  Matrix a(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) a(i, j) = rng.NextDouble() - 0.3;
  }
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(svd->Reconstruct().MaxAbsDiff(a), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapeTest,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 1),
                      std::make_pair<size_t, size_t>(1, 9),
                      std::make_pair<size_t, size_t>(9, 1),
                      std::make_pair<size_t, size_t>(4, 4),
                      std::make_pair<size_t, size_t>(10, 40),
                      std::make_pair<size_t, size_t>(40, 10)));

}  // namespace
}  // namespace la
}  // namespace wikimatch
