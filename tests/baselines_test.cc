// Unit tests for the baseline matchers: LSI top-k, Bouma, COMA++-style, and
// the alternative correlation measures of Appendix B.

#include <gtest/gtest.h>

#include "baselines/bouma_matcher.h"
#include "baselines/coma_matcher.h"
#include "baselines/correlation_measures.h"
#include "baselines/lsi_matcher.h"
#include "match/dictionary.h"
#include "match/schema_builder.h"
#include "wiki/corpus.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace baselines {
namespace {

// Hand corpus shared by Bouma / schema-based tests: three dual film pairs
// with one attribute matching by identical value, one by cross-language
// link, and one with divergent values.
class BaselineCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wiki::WikitextParser parser;
    auto add = [&](const std::string& title, const std::string& lang,
                   const std::string& text) {
      auto article = parser.ParseArticle(title, lang, text);
      ASSERT_TRUE(article.ok());
      ASSERT_TRUE(corpus_.AddArticle(std::move(article).ValueOrDie()).ok());
    };
    add("Dir X", "en", "'''Dir X'''\n[[pt:Dir Xpt]]\n");
    add("Dir Xpt", "pt", "'''Dir Xpt'''\n[[en:Dir X]]\n");
    add("Dir Y", "en", "'''Dir Y'''\n[[pt:Dir Ypt]]\n");
    add("Dir Ypt", "pt", "'''Dir Ypt'''\n[[en:Dir Y]]\n");
    for (int i = 0; i < 3; ++i) {
      std::string n = std::to_string(i);
      std::string dir = i == 0 ? "Dir X" : "Dir Y";
      std::string dir_pt = i == 0 ? "Dir Xpt" : "Dir Ypt";
      add("Film " + n, "en",
          "{{Infobox film\n| directed by = [[" + dir +
              "]]\n| language = english\n| notes = note" + n +
              "\n}}\n[[pt:Filme " + n + "]]\n");
      add("Filme " + n, "pt",
          "{{Info filme\n| direção = [[" + dir_pt +
              "]]\n| idioma = english\n| notas = nota" + n + "\n}}\n"
              "[[en:Film " + n + "]]\n");
    }
    corpus_.Finalize();
    dictionary_.Build(corpus_);
  }

  match::TypePairData Data(bool translate = true,
                           size_t sample = 0) {
    match::SchemaBuilderOptions opts;
    opts.translate_values = translate;
    opts.max_sample_infoboxes = sample;
    auto data = match::BuildTypePairData(corpus_, dictionary_, "pt", "filme",
                                         "en", "film", opts);
    EXPECT_TRUE(data.ok());
    return std::move(data).ValueOrDie();
  }

  wiki::Corpus corpus_;
  match::TranslationDictionary dictionary_;
};

// ------------------------------------------------------------------- Bouma

TEST_F(BaselineCorpusTest, BoumaMatchesIdenticalValues) {
  BoumaMatcherConfig config;
  config.min_votes = 2;
  config.min_agreement = 0.5;
  auto result = RunBoumaMatcher(corpus_, "pt", "filme", "en", "film", config);
  ASSERT_TRUE(result.ok());
  // idioma = "english" in both languages: identical value text.
  EXPECT_TRUE(result->matches.AreMatched({"pt", "idioma"},
                                         {"en", "language"}));
}

TEST_F(BaselineCorpusTest, BoumaMatchesThroughCrossLanguageLinks) {
  auto result = RunBoumaMatcher(corpus_, "pt", "filme", "en", "film");
  ASSERT_TRUE(result.ok());
  // [[dir xpt]] / [[dir x]] land on cross-language-linked articles.
  EXPECT_TRUE(result->matches.AreMatched({"pt", "direção"},
                                         {"en", "directed by"}));
}

TEST_F(BaselineCorpusTest, BoumaMissesDivergentValues) {
  auto result = RunBoumaMatcher(corpus_, "pt", "filme", "en", "film");
  ASSERT_TRUE(result.ok());
  // notas/notes: "nota0" vs "note0" never match exactly — the paper's
  // recall ceiling.
  EXPECT_FALSE(result->matches.AreMatched({"pt", "notas"}, {"en", "notes"}));
}

TEST_F(BaselineCorpusTest, BoumaMinVotesFiltersRarePairs) {
  BoumaMatcherConfig strict;
  strict.min_votes = 99;
  auto result = RunBoumaMatcher(corpus_, "pt", "filme", "en", "film", strict);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.empty());
}

TEST_F(BaselineCorpusTest, BoumaErrorsWithoutDuals) {
  EXPECT_FALSE(RunBoumaMatcher(corpus_, "pt", "nada", "en", "film").ok());
}

// -------------------------------------------------------------------- COMA

TEST(ComaNameSimilarityTest, DiacriticsFoldedComparison) {
  // Cognates score high after diacritics folding...
  EXPECT_GT(ComaNameSimilarity("direção", "direction"), 0.6);
  // ...and so do false cognates — the failure mode the paper documents.
  EXPECT_GT(ComaNameSimilarity("editora", "editor"), 0.8);
  // Morphologically distinct names score low.
  EXPECT_LT(ComaNameSimilarity("diễn viên", "starring"), 0.35);
}

TEST_F(BaselineCorpusTest, ComaNameOnlyMatchesCognates) {
  ComaConfig config;
  config.use_name = true;
  config.use_instance = false;
  config.threshold = 0.5;
  auto result = RunComaMatcher(Data(), config);
  ASSERT_TRUE(result.ok());
  // "idioma" vs "language": low string similarity -> no match at 0.5.
  EXPECT_FALSE(result->matches.AreMatched({"pt", "idioma"},
                                          {"en", "language"}));
  // "notas" vs "notes" are string-similar.
  EXPECT_TRUE(result->matches.AreMatched({"pt", "notas"}, {"en", "notes"}));
}

TEST_F(BaselineCorpusTest, ComaInstanceMatcherUsesValues) {
  ComaConfig config;
  config.use_name = false;
  config.use_instance = true;
  config.threshold = 0.3;
  auto result = RunComaMatcher(Data(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.AreMatched({"pt", "idioma"},
                                         {"en", "language"}));
}

TEST_F(BaselineCorpusTest, ComaNameTranslationApplies) {
  ComaConfig config;
  config.use_name = true;
  config.use_instance = false;
  config.translate_names = true;
  config.threshold = 0.9;
  NameTranslations mt = {{{"pt", "idioma"}, "language"}};
  auto result = RunComaMatcher(Data(), config, mt);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.AreMatched({"pt", "idioma"},
                                         {"en", "language"}));
}

TEST_F(BaselineCorpusTest, ComaReciprocalSelectionPrunes) {
  ComaConfig reciprocal;
  reciprocal.use_instance = true;
  reciprocal.use_name = false;
  reciprocal.threshold = 0.01;
  auto strict = RunComaMatcher(Data(), reciprocal);
  reciprocal.require_reciprocal = false;
  auto loose = RunComaMatcher(Data(), reciprocal);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_LE(strict->matches.CrossLanguagePairs("pt", "en").size(),
            loose->matches.CrossLanguagePairs("pt", "en").size());
}

TEST_F(BaselineCorpusTest, ComaRequiresAMatcher) {
  ComaConfig config;
  config.use_name = false;
  config.use_instance = false;
  EXPECT_FALSE(RunComaMatcher(Data(), config).ok());
}

TEST_F(BaselineCorpusTest, ComaInstanceSimilaritySymmetricBounded) {
  auto data = Data();
  for (size_t i = 0; i < data.groups.size(); ++i) {
    for (size_t j = 0; j < data.groups.size(); ++j) {
      double ij = ComaInstanceSimilarity(data, data.groups[i],
                                         data.groups[j]);
      double ji = ComaInstanceSimilarity(data, data.groups[j],
                                         data.groups[i]);
      EXPECT_NEAR(ij, ji, 1e-12);
      EXPECT_GE(ij, 0.0);
      EXPECT_LE(ij, 1.0);
    }
  }
}

// ------------------------------------------------------------- LSI matcher

TEST_F(BaselineCorpusTest, LsiTopKGrowsWithK) {
  auto data = Data();
  LsiMatcherConfig top1;
  top1.top_k = 1;
  LsiMatcherConfig top3;
  top3.top_k = 3;
  auto r1 = RunLsiMatcher(data, top1);
  auto r3 = RunLsiMatcher(data, top3);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_LE(r1->matches.CrossLanguagePairs("pt", "en").size(),
            r3->matches.CrossLanguagePairs("pt", "en").size());
  // The ranking covers every cross-language pair.
  EXPECT_EQ(r1->ranking.size(), 9u);  // 3 pt x 3 en attributes.
}

TEST_F(BaselineCorpusTest, LsiMatcherPairsAreCrossLanguage) {
  auto result = RunLsiMatcher(Data());
  ASSERT_TRUE(result.ok());
  for (const auto& [a, b] : result->matches.CrossLanguagePairs("pt", "en")) {
    EXPECT_EQ(a.language, "pt");
    EXPECT_EQ(b.language, "en");
  }
}

// ------------------------------------------------------ Correlation ranks

TEST_F(BaselineCorpusTest, RankCandidatesCoversAllMeasures) {
  auto data = Data();
  for (auto measure :
       {CorrelationMeasure::kLsi, CorrelationMeasure::kX1,
        CorrelationMeasure::kX2, CorrelationMeasure::kX3,
        CorrelationMeasure::kRandom}) {
    auto ranking = RankCandidates(data, measure);
    ASSERT_TRUE(ranking.ok()) << CorrelationMeasureName(measure);
    EXPECT_EQ(ranking->size(), 9u);
    for (const auto& [a, b] : *ranking) {
      EXPECT_EQ(a.language, "pt");
      EXPECT_EQ(b.language, "en");
    }
  }
}

TEST_F(BaselineCorpusTest, RandomRankingDeterministicPerSeed) {
  auto data = Data();
  auto r1 = RankCandidates(data, CorrelationMeasure::kRandom, 99);
  auto r2 = RankCandidates(data, CorrelationMeasure::kRandom, 99);
  auto r3 = RankCandidates(data, CorrelationMeasure::kRandom, 100);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, *r2);
  EXPECT_NE(*r1, *r3);
}

TEST(CorrelationMeasureNameTest, AllNamed) {
  EXPECT_STREQ(CorrelationMeasureName(CorrelationMeasure::kLsi), "LSI");
  EXPECT_STREQ(CorrelationMeasureName(CorrelationMeasure::kX2), "X2");
  EXPECT_STREQ(CorrelationMeasureName(CorrelationMeasure::kRandom),
               "Random");
}

TEST(CorrelationFormulaTest, X2FavorsCoOccurrence) {
  // Hand data: attribute pair with full co-occurrence vs none.
  match::TypePairData data;
  data.lang_a = "pt";
  data.lang_b = "en";
  data.num_duals = 4;
  auto add = [&](const std::string& lang, const std::string& name,
                 std::initializer_list<uint32_t> docs) {
    match::AttributeGroup g;
    g.key = {lang, name};
    g.occurrences = static_cast<double>(docs.size());
    g.dual_docs.insert(docs.begin(), docs.end());
    data.groups.push_back(std::move(g));
  };
  add("pt", "a", {0, 1});
  add("en", "together", {0, 1});
  add("en", "apart", {2, 3});
  for (auto measure : {CorrelationMeasure::kX1, CorrelationMeasure::kX2,
                       CorrelationMeasure::kX3}) {
    auto ranking = RankCandidates(data, measure);
    ASSERT_TRUE(ranking.ok());
    EXPECT_EQ((*ranking)[0].second.name, "together")
        << CorrelationMeasureName(measure);
  }
}

}  // namespace
}  // namespace baselines
}  // namespace wikimatch
