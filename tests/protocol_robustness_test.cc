// Adversarial-input tests for the line protocol shared by the stdin loop
// and the TCP server: LineSplitter reassembly under byte-at-a-time and
// pipelined delivery, oversized-line skipping and resynchronization,
// embedded NUL bytes, partial UTF-8 sequences, and unterminated final
// lines. Whatever a hostile or broken client sends, the parser must
// answer with a protocol error or a normal response — never crash, hang,
// or desynchronize from the line framing.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>

#include "match/pipeline.h"
#include "serve/match_service.h"
#include "serve/protocol.h"
#include "store/snapshot.h"
#include "synth/generator.h"

namespace wikimatch {
namespace serve {
namespace {

using Next = LineSplitter::Next;

// One tiny service shared by the dispatch-level tests.
MatchService* GetService() {
  static MatchService* service = [] {
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny());
    auto gc = std::move(generator.Generate()).ValueOrDie();
    match::MatchPipeline pipeline(&gc.corpus);
    auto result = std::move(pipeline.Run("pt", "en")).ValueOrDie();
    store::Snapshot snapshot;
    snapshot.corpus = gc.corpus;
    snapshot.dictionary = pipeline.dictionary();
    snapshot.pipelines.emplace(store::LanguagePair("pt", "en"),
                               std::move(result));
    return MatchService::Create(std::move(snapshot)).release();
  }();
  return service;
}

// ------------------------------------------------------------ line splitter

TEST(LineSplitterTest, ReassemblesByteAtATime) {
  LineSplitter splitter;
  const std::string input = "health\n";
  std::string line;
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(splitter.Pop(&line), Next::kNeedMore);
    splitter.Append(&input[i], 1);
  }
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "health");
  EXPECT_EQ(splitter.Pop(&line), Next::kNeedMore);
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(LineSplitterTest, SplitsAPipelinedBurstAndStripsCr) {
  LineSplitter splitter;
  const std::string burst = "pairs\r\nhealth\nversion\r\npartial";
  splitter.Append(burst.data(), burst.size());
  std::string line;
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "pairs");
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "health");
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "version");
  EXPECT_EQ(splitter.Pop(&line), Next::kNeedMore);
  EXPECT_EQ(splitter.buffered(), 7u);  // "partial" awaits its newline
}

TEST(LineSplitterTest, OversizedLineIsReportedOnceAndSkipped) {
  LineSplitter splitter(/*max_line_bytes=*/8);
  const std::string input = "waytoolongforus\nhealth\n";
  splitter.Append(input.data(), input.size());
  std::string line;
  EXPECT_EQ(splitter.Pop(&line), Next::kOversized);
  // Resynchronized at the next newline: framing survives the bad line.
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "health");
}

TEST(LineSplitterTest, OversizedLineSpanningAppendsDoesNotBuffer) {
  LineSplitter splitter(/*max_line_bytes=*/8);
  std::string chunk(64, 'x');
  splitter.Append(chunk.data(), chunk.size());
  std::string line;
  EXPECT_EQ(splitter.Pop(&line), Next::kOversized);
  // While skipping to the next newline, junk must not accumulate — this
  // is what bounds memory against a client streaming an endless line.
  for (int i = 0; i < 100; ++i) {
    splitter.Append(chunk.data(), chunk.size());
    EXPECT_EQ(splitter.Pop(&line), Next::kNeedMore);
    EXPECT_EQ(splitter.buffered(), 0u);
  }
  const std::string tail = "junk\nversion\n";
  splitter.Append(tail.data(), tail.size());
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "version");
}

TEST(LineSplitterTest, FinishServesTheUnterminatedTail) {
  LineSplitter splitter;
  const std::string input = "health";
  splitter.Append(input.data(), input.size());
  std::string line;
  EXPECT_EQ(splitter.Pop(&line), Next::kNeedMore);
  ASSERT_TRUE(splitter.Finish(&line));
  EXPECT_EQ(line, "health");
}

TEST(LineSplitterTest, FinishStripsACrOnlyTail) {
  LineSplitter splitter;
  const std::string input = "health\r";
  splitter.Append(input.data(), input.size());
  std::string line;
  ASSERT_TRUE(splitter.Finish(&line));
  EXPECT_EQ(line, "health");
}

TEST(LineSplitterTest, FinishOnEmptyOrSkippedInputYieldsNothing) {
  LineSplitter empty;
  std::string line;
  EXPECT_FALSE(empty.Finish(&line));

  // An oversized line cut off by EOF is garbage, not a request.
  LineSplitter skipping(/*max_line_bytes=*/8);
  std::string chunk(64, 'x');
  skipping.Append(chunk.data(), chunk.size());
  EXPECT_EQ(skipping.Pop(&line), Next::kOversized);
  skipping.Append(chunk.data(), chunk.size());
  EXPECT_FALSE(skipping.Finish(&line));
}

// --------------------------------------------------------- request dispatch

TEST(ProtocolRobustnessTest, BlankAndQuitLines) {
  LineOutcome blank = HandleRequestLine(GetService(), "");
  EXPECT_TRUE(blank.response.empty());
  EXPECT_FALSE(blank.quit);
  EXPECT_TRUE(HandleRequestLine(GetService(), "quit").quit);
  EXPECT_TRUE(HandleRequestLine(GetService(), "exit").quit);
  EXPECT_TRUE(HandleRequestLine(GetService(), "quit\r").quit);
}

TEST(ProtocolRobustnessTest, EmbeddedNulIsAProtocolError) {
  std::string line = "health";
  line += '\0';
  line += "version";
  LineOutcome outcome = HandleRequestLine(GetService(), line);
  EXPECT_EQ(outcome.response.compare(0, 12, "err protocol"), 0)
      << outcome.response;
  EXPECT_NE(outcome.response.find("NUL"), std::string::npos)
      << outcome.response;
  EXPECT_FALSE(outcome.quit);
}

TEST(ProtocolRobustnessTest, OversizedLineIsAProtocolError) {
  // The stdin path has no LineSplitter in front of it (std::getline is
  // unbounded), so the dispatcher itself must enforce the cap.
  std::string line = "alignments pt:en " + std::string(kMaxRequestBytes, 'a');
  LineOutcome outcome = HandleRequestLine(GetService(), line);
  EXPECT_EQ(outcome.response.compare(0, 12, "err protocol"), 0)
      << outcome.response;
  EXPECT_NE(outcome.response.find("exceeds"), std::string::npos)
      << outcome.response;
}

TEST(ProtocolRobustnessTest, PartialUtf8IsAnsweredNotCrashed) {
  // A request cut mid-multibyte-sequence (e.g. a client flushed early).
  // The service may answer ok or err; it must not crash or hang.
  const std::string truncated = "attr pt:en film pt recei\xC3";
  LineOutcome outcome = HandleRequestLine(GetService(), truncated);
  EXPECT_FALSE(outcome.response.empty());
  EXPECT_EQ(outcome.response.back(), '\n');
  // Lone continuation bytes and overlong-looking prefixes too.
  for (const char* bad : {"\x80", "\xC3", "\xE2\x82", "\xF0\x9F\x92"}) {
    LineOutcome o = HandleRequestLine(GetService(),
                                      std::string("types pt:en ") + bad);
    EXPECT_FALSE(o.response.empty());
    EXPECT_EQ(o.response.back(), '\n');
  }
}

// -------------------------------------------------------------- serve loop

TEST(ProtocolRobustnessTest, ServeLoopSurvivesAdversarialStream) {
  std::string oversized(2 * kMaxRequestBytes, 'x');
  std::istringstream in("health\n" + oversized + "\nversion\nfinal");
  std::ostringstream out;
  size_t served = ServeLoop(in, out, GetService());
  // Every line gets exactly one answer: health, a protocol error for the
  // oversized line, version, and an err for the unterminated "final".
  EXPECT_EQ(served, 4u);
  std::string text = out.str();
  EXPECT_NE(text.find("healthy"), std::string::npos) << text;
  EXPECT_NE(text.find("err protocol: request line exceeds"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wikimatch "), std::string::npos) << text;
  EXPECT_NE(text.find("err expected a language pair like pt:en after "
                      "'final'"),
            std::string::npos)
      << text;
}

TEST(ProtocolRobustnessTest, ServeLoopHonorsTheStopFlag) {
  std::istringstream in("health\nversion\n");
  std::ostringstream out;
  std::atomic<bool> stop{true};  // flag raised before the first read
  size_t served = ServeLoop(in, out, GetService(), &stop);
  EXPECT_EQ(served, 0u);
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace serve
}  // namespace wikimatch
