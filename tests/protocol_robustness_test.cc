// Adversarial-input tests for the line protocol shared by the stdin loop
// and the TCP server: LineSplitter reassembly under byte-at-a-time and
// pipelined delivery, oversized-line skipping and resynchronization,
// embedded NUL bytes, partial UTF-8 sequences, and unterminated final
// lines. Whatever a hostile or broken client sends, the parser must
// answer with a protocol error or a normal response — never crash, hang,
// or desynchronize from the line framing.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>

#include "match/pipeline.h"
#include "serve/match_service.h"
#include "serve/protocol.h"
#include "store/snapshot.h"
#include "synth/generator.h"

namespace wikimatch {
namespace serve {
namespace {

using Next = LineSplitter::Next;

// One tiny service shared by the dispatch-level tests.
MatchService* GetService() {
  static MatchService* service = [] {
    synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny());
    auto gc = std::move(generator.Generate()).ValueOrDie();
    match::MatchPipeline pipeline(&gc.corpus);
    auto result = std::move(pipeline.Run("pt", "en")).ValueOrDie();
    store::Snapshot snapshot;
    snapshot.corpus = gc.corpus;
    snapshot.dictionary = pipeline.dictionary();
    snapshot.pipelines.emplace(store::LanguagePair("pt", "en"),
                               std::move(result));
    return MatchService::Create(std::move(snapshot)).release();
  }();
  return service;
}

// ------------------------------------------------------------ line splitter

TEST(LineSplitterTest, ReassemblesByteAtATime) {
  LineSplitter splitter;
  const std::string input = "health\n";
  std::string line;
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(splitter.Pop(&line), Next::kNeedMore);
    splitter.Append(&input[i], 1);
  }
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "health");
  EXPECT_EQ(splitter.Pop(&line), Next::kNeedMore);
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(LineSplitterTest, SplitsAPipelinedBurstAndStripsCr) {
  LineSplitter splitter;
  const std::string burst = "pairs\r\nhealth\nversion\r\npartial";
  splitter.Append(burst.data(), burst.size());
  std::string line;
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "pairs");
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "health");
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "version");
  EXPECT_EQ(splitter.Pop(&line), Next::kNeedMore);
  EXPECT_EQ(splitter.buffered(), 7u);  // "partial" awaits its newline
}

TEST(LineSplitterTest, OversizedLineIsReportedOnceAndSkipped) {
  LineSplitter splitter(/*max_line_bytes=*/8);
  const std::string input = "waytoolongforus\nhealth\n";
  splitter.Append(input.data(), input.size());
  std::string line;
  EXPECT_EQ(splitter.Pop(&line), Next::kOversized);
  // Resynchronized at the next newline: framing survives the bad line.
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "health");
}

TEST(LineSplitterTest, OversizedLineSpanningAppendsDoesNotBuffer) {
  LineSplitter splitter(/*max_line_bytes=*/8);
  std::string chunk(64, 'x');
  splitter.Append(chunk.data(), chunk.size());
  std::string line;
  EXPECT_EQ(splitter.Pop(&line), Next::kOversized);
  // While skipping to the next newline, junk must not accumulate — this
  // is what bounds memory against a client streaming an endless line.
  for (int i = 0; i < 100; ++i) {
    splitter.Append(chunk.data(), chunk.size());
    EXPECT_EQ(splitter.Pop(&line), Next::kNeedMore);
    EXPECT_EQ(splitter.buffered(), 0u);
  }
  const std::string tail = "junk\nversion\n";
  splitter.Append(tail.data(), tail.size());
  ASSERT_EQ(splitter.Pop(&line), Next::kLine);
  EXPECT_EQ(line, "version");
}

TEST(LineSplitterTest, FinishServesTheUnterminatedTail) {
  LineSplitter splitter;
  const std::string input = "health";
  splitter.Append(input.data(), input.size());
  std::string line;
  EXPECT_EQ(splitter.Pop(&line), Next::kNeedMore);
  ASSERT_TRUE(splitter.Finish(&line));
  EXPECT_EQ(line, "health");
}

TEST(LineSplitterTest, FinishStripsACrOnlyTail) {
  LineSplitter splitter;
  const std::string input = "health\r";
  splitter.Append(input.data(), input.size());
  std::string line;
  ASSERT_TRUE(splitter.Finish(&line));
  EXPECT_EQ(line, "health");
}

TEST(LineSplitterTest, FinishOnEmptyOrSkippedInputYieldsNothing) {
  LineSplitter empty;
  std::string line;
  EXPECT_FALSE(empty.Finish(&line));

  // An oversized line cut off by EOF is garbage, not a request.
  LineSplitter skipping(/*max_line_bytes=*/8);
  std::string chunk(64, 'x');
  skipping.Append(chunk.data(), chunk.size());
  EXPECT_EQ(skipping.Pop(&line), Next::kOversized);
  skipping.Append(chunk.data(), chunk.size());
  EXPECT_FALSE(skipping.Finish(&line));
}

// --------------------------------------------------------- request dispatch

TEST(ProtocolRobustnessTest, BlankAndQuitLines) {
  LineOutcome blank = HandleRequestLine(GetService(), "");
  EXPECT_TRUE(blank.response.empty());
  EXPECT_FALSE(blank.quit);
  EXPECT_TRUE(HandleRequestLine(GetService(), "quit").quit);
  EXPECT_TRUE(HandleRequestLine(GetService(), "exit").quit);
  EXPECT_TRUE(HandleRequestLine(GetService(), "quit\r").quit);
}

TEST(ProtocolRobustnessTest, EmbeddedNulIsAProtocolError) {
  std::string line = "health";
  line += '\0';
  line += "version";
  LineOutcome outcome = HandleRequestLine(GetService(), line);
  EXPECT_EQ(outcome.response.compare(0, 12, "err protocol"), 0)
      << outcome.response;
  EXPECT_NE(outcome.response.find("NUL"), std::string::npos)
      << outcome.response;
  EXPECT_FALSE(outcome.quit);
}

TEST(ProtocolRobustnessTest, OversizedLineIsAProtocolError) {
  // The stdin path has no LineSplitter in front of it (std::getline is
  // unbounded), so the dispatcher itself must enforce the cap.
  std::string line = "alignments pt:en " + std::string(kMaxRequestBytes, 'a');
  LineOutcome outcome = HandleRequestLine(GetService(), line);
  EXPECT_EQ(outcome.response.compare(0, 12, "err protocol"), 0)
      << outcome.response;
  EXPECT_NE(outcome.response.find("exceeds"), std::string::npos)
      << outcome.response;
}

TEST(ProtocolRobustnessTest, PartialUtf8IsAnsweredNotCrashed) {
  // A request cut mid-multibyte-sequence (e.g. a client flushed early).
  // The service may answer ok or err; it must not crash or hang.
  const std::string truncated = "attr pt:en film pt recei\xC3";
  LineOutcome outcome = HandleRequestLine(GetService(), truncated);
  EXPECT_FALSE(outcome.response.empty());
  EXPECT_EQ(outcome.response.back(), '\n');
  // Lone continuation bytes and overlong-looking prefixes too.
  for (const char* bad : {"\x80", "\xC3", "\xE2\x82", "\xF0\x9F\x92"}) {
    LineOutcome o = HandleRequestLine(GetService(),
                                      std::string("types pt:en ") + bad);
    EXPECT_FALSE(o.response.empty());
    EXPECT_EQ(o.response.back(), '\n');
  }
}

TEST(ProtocolRobustnessTest, SyncVerbsSurviveAdversarialInputs) {
  // Oversized sync request: same protocol error as any other verb.
  std::string oversized = "sync pt:en " + std::string(kMaxRequestBytes, 'f');
  LineOutcome outcome = HandleRequestLine(GetService(), oversized);
  EXPECT_EQ(outcome.response.compare(0, 12, "err protocol"), 0)
      << outcome.response;
  // NUL smuggled into a sync request.
  std::string nul = "sync-status";
  nul += '\0';
  outcome = HandleRequestLine(GetService(), nul);
  EXPECT_NE(outcome.response.find("NUL"), std::string::npos)
      << outcome.response;
  // Malformed and unterminated sync lines through the full loop: this
  // snapshot has no sync report, so the verb answers with normal errors —
  // never a crash, a hang, or a framing desync. The final line has no
  // terminator and must still be served.
  std::istringstream in(
      "sync-status\n"
      "sync pt:en\n"
      "sync zz:qq film\n"
      "sync pt:en film");
  std::ostringstream out;
  size_t served = ServeLoop(in, out, GetService());
  EXPECT_EQ(served, 4u);
  std::string text = out.str();
  EXPECT_NE(text.find("sync_generation=0 cells=0 updates=0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("err usage: sync <src>:<tgt> <type_b>"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("err no pipeline for pair zz:qq"), std::string::npos)
      << text;
  EXPECT_NE(text.find("err no sync report in snapshot"), std::string::npos)
      << text;
}

TEST(ProtocolRobustnessTest, EveryTableVerbIsDocumentedAndDispatched) {
  // `help` renders the table, so every verb must appear in it...
  std::string help = GetService()->Handle("help");
  for (const VerbSpec& spec : ProtocolVerbs()) {
    EXPECT_NE(help.find(spec.verb), std::string::npos)
        << "verb missing from help: " << spec.verb;
  }
  // ...and every table verb must reach a real handler: bare invocation may
  // earn a usage/argument err against this tiny snapshot, but never the
  // unknown-request rejection or the drift backstop.
  for (const VerbSpec& spec : ProtocolVerbs()) {
    std::string response = GetService()->Handle(spec.verb);
    EXPECT_EQ(response.find("unknown request"), std::string::npos)
        << spec.verb << " -> " << response;
    EXPECT_EQ(response.find("is not implemented"), std::string::npos)
        << spec.verb << " -> " << response;
  }
  // Garbage stays rejected by the single gate.
  EXPECT_NE(GetService()->Handle("frobnicate").find("unknown request"),
            std::string::npos);
}

// -------------------------------------------------------------- serve loop

TEST(ProtocolRobustnessTest, ServeLoopSurvivesAdversarialStream) {
  std::string oversized(2 * kMaxRequestBytes, 'x');
  std::istringstream in("health\n" + oversized + "\nversion\nfinal");
  std::ostringstream out;
  size_t served = ServeLoop(in, out, GetService());
  // Every line gets exactly one answer: health, a protocol error for the
  // oversized line, version, and an err for the unterminated "final".
  EXPECT_EQ(served, 4u);
  std::string text = out.str();
  EXPECT_NE(text.find("healthy"), std::string::npos) << text;
  EXPECT_NE(text.find("err protocol: request line exceeds"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wikimatch "), std::string::npos) << text;
  EXPECT_NE(text.find("err unknown request 'final'"), std::string::npos)
      << text;
}

TEST(ProtocolRobustnessTest, ServeLoopHonorsTheStopFlag) {
  std::istringstream in("health\nversion\n");
  std::ostringstream out;
  std::atomic<bool> stop{true};  // flag raised before the first read
  size_t served = ServeLoop(in, out, GetService(), &stop);
  EXPECT_EQ(served, 0u);
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace serve
}  // namespace wikimatch
