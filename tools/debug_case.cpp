#include <cstdio>
#include <cstdlib>
#include <map>
#include "match/aligner.h"
#include "match/pipeline.h"
#include "query/case_study.h"
#include "query/evaluator.h"
#include "synth/generator.h"

using namespace wikimatch;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::string lang = argc > 2 ? argv[2] : "pt";
  synth::CorpusGenerator gen(synth::GeneratorOptions::Paper(scale));
  auto gc = gen.Generate();
  match::MatchPipeline pipe(&gc->corpus);
  auto pres = pipe.Run(lang, "en");
  std::map<std::string, const eval::MatchSet*> am;
  for (const auto& tr : pres->per_type) am.emplace(tr.type_b, &tr.alignment.matches);
  query::QueryTranslator tr(lang, "en", pres->type_matches, am, &pipe.dictionary());
  auto queries = query::BuildCaseQueries(*gc);
  query::RelevanceOracle oracle(&*gc);
  query::QueryEvaluator src_eval(&gc->corpus, lang), hub_eval(&gc->corpus, "en");
  for (const auto& cq : queries) {
    auto sq = query::RenderSurfaceQuery(cq, *gc, lang);
    printf("Q[%s] %s\n", cq.type.c_str(), cq.description.c_str());
    if (!sq.ok()) { printf("  not expressible in %s\n", lang.c_str()); continue; }
    auto na = src_eval.Run(*sq);
    double nrel = 0; size_t ncount = 0;
    if (na.ok()) for (const auto& a : *na) { nrel += oracle.Judge(cq, lang, gc->corpus.Get(a.article).title); ncount++; }
    query::TranslationReport rep;
    auto tq = tr.Translate(*sq, &rep);
    double trel = 0; size_t tcount = 0;
    if (tq.ok()) {
      auto ta = hub_eval.Run(*tq);
      if (ta.ok()) for (const auto& a : *ta) { trel += oracle.Judge(cq, "en", gc->corpus.Get(a.article).title); tcount++; }
    }
    printf("  native: %zu answers rel=%.0f | translated: %zu answers rel=%.0f (relaxed %zu) %s\n",
           ncount, nrel, tcount, trel, rep.constraints_relaxed,
           tq.ok() ? tq->ToString().c_str() : "UNTRANSLATABLE");
  }
  return 0;
}
