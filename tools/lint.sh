#!/usr/bin/env bash
# Project lint gate (docs/ANALYSIS.md): mechanical source rules that the
# compilers cannot enforce. Runs on every tools/check.sh invocation and
# exits nonzero listing each violation as file:line: message.
#
# Rules:
#   naked-new          `new` outside an immediately-wrapping smart pointer
#                      (src/ only; tests use the leaky-fixture idiom).
#   raw-mutex          std::mutex / std::lock_guard / std::unique_lock /
#                      std::scoped_lock / std::condition_variable outside
#                      src/util/ — everything else must use the annotated
#                      util::Mutex so Clang thread-safety analysis sees it.
#   raw-thread         std::thread / std::jthread outside src/util/ and
#                      src/net/ — the shared pool (util/thread_pool.h) is
#                      the only sanctioned way to run parallel or
#                      background work, so thread counts stay bounded by
#                      the pool size (net/ owns its epoll event-loop
#                      threads). std::this_thread is fine.
#   assign-or-return   WIKIMATCH_ASSIGN_OR_RETURN as the unbraced body of
#                      if/else/for/while (the macro expands to multiple
#                      statements), or twice on one line (variable shadow).
#   guarded-by         a file declaring a util::Mutex member must annotate
#                      at least one field with WIKIMATCH_GUARDED_BY, and
#                      mutex members must be named *mu* so the
#                      `*_mu_`-adjacency convention stays greppable.
#
# Silence a deliberate exception with `// NOLINT(rule-name)` on the line.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - "$@" <<'PYEOF'
import re
import sys
from pathlib import Path

violations = []


def flag(path, lineno, rule, msg):
    violations.append(f"{path}:{lineno}: [{rule}] {msg}")


def strip_comment(line):
    # Good enough for lint: drop // comments and string literals so words
    # inside them don't trip the rules.
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//")[0]


def source_files(roots, exts=(".h", ".cc")):
    for root in roots:
        for path in sorted(Path(root).rglob("*")):
            if path.suffix in exts:
                yield path


SMART_WRAP = re.compile(r"unique_ptr<|shared_ptr<|make_unique|make_shared")
NAKED_NEW = re.compile(r"\bnew\s+[A-Za-z_:]")
RAW_SYNC = re.compile(
    r"std::(mutex|recursive_mutex|lock_guard|unique_lock|scoped_lock|"
    r"condition_variable)\b")
# Matches the thread classes but not std::this_thread (different token).
RAW_THREAD = re.compile(r"std::j?thread\b")
UNBRACED_HEAD = re.compile(r"^\s*(if|while|for)\s*\(.*\)\s*$|^\s*(else|do)\s*$")
MUTEX_MEMBER = re.compile(r"^\s*(?:mutable\s+)?(?:util::)?Mutex\s+(\w+)\s*;")

for path in source_files(["src"]):
    lines = path.read_text().splitlines()
    rel = str(path)
    in_util = rel.startswith("src/util/")
    may_spawn = in_util or rel.startswith("src/net/")
    mutex_members = []
    has_guarded_by = False
    for i, raw in enumerate(lines, 1):
        code = strip_comment(raw)
        nolint = "NOLINT" in raw

        if "WIKIMATCH_GUARDED_BY(" in raw:
            has_guarded_by = True

        if NAKED_NEW.search(code) and not nolint:
            prev = strip_comment(lines[i - 2]) if i >= 2 else ""
            if not (SMART_WRAP.search(code) or SMART_WRAP.search(prev)):
                flag(rel, i, "naked-new",
                     "raw `new` — wrap in make_unique/make_shared or an "
                     "owning smart pointer on the same or previous line")

        if not in_util and RAW_SYNC.search(code) and not nolint:
            flag(rel, i, "raw-mutex",
                 "raw std synchronization primitive — use the annotated "
                 "util::Mutex / util::MutexLock (src/util/mutex.h) so "
                 "thread-safety analysis can see the lock")

        if not may_spawn and RAW_THREAD.search(code) and not nolint:
            flag(rel, i, "raw-thread",
                 "raw std::thread — run the work on the shared pool "
                 "(util/thread_pool.h: thread_pool_for / "
                 "thread_pool_async) so the process thread count stays "
                 "bounded by the pool size")

        if code.count("WIKIMATCH_ASSIGN_OR_RETURN") >= 2 and not nolint:
            flag(rel, i, "assign-or-return",
                 "two WIKIMATCH_ASSIGN_OR_RETURN on one line — the second "
                 "shadows the first's status variable")
        if "WIKIMATCH_ASSIGN_OR_RETURN" in code and not nolint:
            prev = strip_comment(lines[i - 2]) if i >= 2 else ""
            if UNBRACED_HEAD.match(prev):
                flag(rel, i, "assign-or-return",
                     "WIKIMATCH_ASSIGN_OR_RETURN as an unbraced "
                     "if/else/for/while body — the macro expands to "
                     "multiple statements; add braces")

        m = MUTEX_MEMBER.match(code)
        if m and path.suffix == ".h":
            mutex_members.append((i, m.group(1), "NOLINT" in raw))

    for lineno, name, nolint in mutex_members:
        if nolint:
            continue
        if "mu" not in name:
            flag(rel, lineno, "guarded-by",
                 f"mutex member '{name}' not named *mu* — the naming "
                 "convention keeps GUARDED_BY fields greppable")
        if not has_guarded_by:
            flag(rel, lineno, "guarded-by",
                 f"file declares mutex member '{name}' but no field is "
                 "annotated WIKIMATCH_GUARDED_BY — annotate what the "
                 "mutex protects (util/thread_annotations.h)")

if violations:
    print(f"lint.sh: {len(violations)} violation(s):", file=sys.stderr)
    for v in violations:
        print("  " + v, file=sys.stderr)
    sys.exit(1)
print("lint.sh: clean")
PYEOF
