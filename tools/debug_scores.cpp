#include <cstdio>
#include <cstdlib>
#include <string>
#include "match/pipeline.h"
#include "match/lsi.h"
#include "synth/generator.h"
#include "eval/metrics.h"

using namespace wikimatch;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  std::string type_a = argc > 2 ? argv[2] : "filme";
  std::string type_b = argc > 3 ? argv[3] : "film";
  std::string focus = argc > 4 ? argv[4] : "";
  synth::CorpusGenerator gen(synth::GeneratorOptions::Paper(scale));
  auto g = gen.Generate();
  if (!g.ok()) { fprintf(stderr, "%s\n", g.status().ToString().c_str()); return 1; }
  match::MatchPipeline pipe(&g->corpus);
  auto data = pipe.BuildPair("pt", type_a, "en", type_b);
  if (!data.ok()) { fprintf(stderr, "%s\n", data.status().ToString().c_str()); return 1; }
  match::AttributeAligner aligner;
  auto res = aligner.Align(*data);
  printf("groups=%zu duals=%zu\n", data->groups.size(), data->num_duals);
  const auto& truth = g->ground_truth.at(g->hub_type_of.at({"en", type_b}));
  {
    auto freqs = data->Frequencies();
    auto prf = eval::WeightedPrf(res->matches, truth, freqs, "pt", "en");
    printf("weighted P=%.3f R=%.3f F=%.3f\n", prf.precision, prf.recall, prf.f1);
    for (const auto& [a, b] : res->matches.CrossLanguagePairs("pt", "en")) {
      if (!truth.AreMatched(a, b))
        printf("WRONG PAIR: %s:%s ~ %s:%s\n", a.language.c_str(), a.name.c_str(),
               b.language.c_str(), b.name.c_str());
    }
  }
  int shown = 0;
  for (const auto& p : res->all_pairs) {
    const auto& ka = data->groups[p.i].key;
    const auto& kb = data->groups[p.j].key;
    if (!focus.empty() && ka.name.find(focus) == std::string::npos &&
        kb.name.find(focus) == std::string::npos) continue;
    if (focus.empty() && shown > 60) break;
    bool gt = truth.AreMatched(ka, kb);
    bool derived = res->matches.AreMatched(ka, kb);
    printf("%-4s %-4s lsi=%.3f v=%.3f l=%.3f [%s:%s | %s:%s] occ=%.0f/%.0f\n",
           gt ? "GT" : "", derived ? "OUT" : "",
           p.lsi, p.vsim, p.lsim,
           ka.language.c_str(), ka.name.c_str(), kb.language.c_str(), kb.name.c_str(),
           data->groups[p.i].occurrences, data->groups[p.j].occurrences);
    shown++;
  }
  return 0;
}
