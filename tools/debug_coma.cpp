#include <cstdio>
#include <cstdlib>
#include "baselines/coma_matcher.h"
#include "match/pipeline.h"
#include "synth/generator.h"
#include "synth/mt_oracle.h"

using namespace wikimatch;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  std::string type_a = argc > 2 ? argv[2] : "ator";
  std::string type_b = argc > 3 ? argv[3] : "actor";
  std::string lang = argc > 4 ? argv[4] : "pt";
  synth::CorpusGenerator gen(synth::GeneratorOptions::Paper(scale));
  auto g = gen.Generate();
  match::MatchPipeline pipe(&g->corpus);
  match::SchemaBuilderOptions opts;
  opts.translate_values = true;
  opts.max_sample_infoboxes = 20;
  auto data = pipe.BuildPair(lang, type_a, "en", type_b, opts);
  if (!data.ok()) { fprintf(stderr, "%s\n", data.status().ToString().c_str()); return 1; }
  auto mt = synth::MakeMtOracle(*g);
  const auto& truth = g->ground_truth.at(g->hub_type_of.at({"en", type_b}));
  // full-data frequencies for weights
  auto full = pipe.BuildPair(lang, type_a, "en", type_b);
  auto freqs = full->Frequencies();
  // per lang_a attr: best en candidate by instance profile sim
  for (size_t i = 0; i < data->groups.size(); ++i) {
    const auto& ga = data->groups[i];
    if (ga.key.language != lang) continue;
    double best = -1; size_t bj = SIZE_MAX;
    for (size_t j = 0; j < data->groups.size(); ++j) {
      const auto& gb = data->groups[j];
      if (gb.key.language != "en") continue;
      double s = baselines::ComaInstanceSimilarity(*data, ga, gb);
      if (s > best) { best = s; bj = j; }
    }
    if (bj == SIZE_MAX) continue;
    bool correct = truth.AreMatched(ga.key, data->groups[bj].key);
    printf("%-4s w=%5.0f sim=%.3f  %-28s -> %s\n", correct ? "OK" : "MISS",
           freqs.count(ga.key) ? freqs[ga.key] : 0.0, best,
           ga.key.name.c_str(), data->groups[bj].key.name.c_str());
  }
  return 0;
}
