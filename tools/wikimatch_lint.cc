// wikimatch-lint: the project's in-tree static analyzer (src/analysis/).
//
// Replaces the old regex lint (tools/lint.sh) with a comment/string-aware
// lexer and an include-graph model of the tree: the five legacy rules
// without their regex false-negative classes, plus module-layering,
// include-cycle, and unordered-iteration determinism rules that a regex
// cannot express. Runs on any toolchain — this is the analysis stage that
// still bites on a GCC-only box. See docs/ANALYSIS.md for the catalog.
//
// Usage: wikimatch-lint [--root DIR] [--rule NAME]...
//   --root DIR   repo checkout to scan (default "."); scans DIR/src.
//   --rule NAME  run only the named rule (repeatable; default: all).
// Exit status: 0 clean, 1 violations (listed file:line: [rule] message),
// 2 usage or I/O errors.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/rules.h"
#include "analysis/source_tree.h"

int main(int argc, char** argv) {
  using wikimatch::analysis::Diagnostic;
  std::string root = ".";
  std::vector<std::string> rules;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      rules.push_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: wikimatch-lint [--root DIR] [--rule NAME]...\n");
      std::printf("rules:");
      for (const auto& r : wikimatch::analysis::RuleNames()) {
        std::printf(" %s", r.c_str());
      }
      std::printf("\n");
      return 0;
    } else {
      std::fprintf(stderr, "wikimatch-lint: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  wikimatch::analysis::SourceTree tree;
  wikimatch::util::Status status = tree.LoadFromDisk(root);
  if (!status.ok()) {
    std::fprintf(stderr, "wikimatch-lint: %s\n", status.ToString().c_str());
    return 2;
  }

  std::vector<Diagnostic> diags;
  if (rules.empty()) {
    diags = wikimatch::analysis::RunAllRules(tree);
  } else {
    for (const std::string& rule : rules) {
      std::vector<Diagnostic> one = wikimatch::analysis::RunRule(tree, rule);
      diags.insert(diags.end(), one.begin(), one.end());
    }
  }

  if (diags.empty()) {
    std::printf("wikimatch-lint: clean (%zu files)\n", tree.files().size());
    return 0;
  }
  std::fprintf(stderr, "wikimatch-lint: %zu violation(s):\n", diags.size());
  std::fputs(wikimatch::analysis::FormatDiagnostics(diags).c_str(), stderr);
  return 1;
}
