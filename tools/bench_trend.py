#!/usr/bin/env python3
"""Bench trend gate: diff the worktree BENCH_*.json against the last
committed revision and fail on headline-metric regressions.

Each bench binary regenerates its committed artifact during
tools/check.sh, so the worktree copy reflects the current code while git
history holds the numbers the previous revision shipped with. This script
compares the two and exits nonzero when a headline metric regressed by
more than the threshold (default 15%), printing every delta either way.

Headline metrics (direction = which way is better):
    BENCH_align.json      indexed_ms down, speedup up, indexed_mt_ms down,
                          mt_speedup up (the multi-threaded join runs on
                          the shared thread pool — these two catch pool
                          scheduling regressions)
    BENCH_serve.json      requests_per_sec up
    BENCH_ingest.json     delta_apply_ms down, speedup up, apply_align_ms
                          down (the dirty-unit realign rides the pool)
    BENCH_serve_net.json  requests_per_sec up, p99_ms down
    BENCH_sync.json       full_sync_ms down, resync_ms down,
                          resync_speedup up (the incremental re-sync must
                          stay well ahead of a full pass on small deltas)

Baseline resolution per file: `git show HEAD:<file>`; when the worktree
copy is byte-identical to HEAD (artifact not regenerated this run), falls
back to HEAD~1 so the comparison still spans a code change. A file with
no committed baseline is reported and skipped.

check.sh runs this warning-only (benches on shared hardware are noisy);
CI or a release gate can run it directly for a hard failure.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

# metric -> True when larger is better.
HEADLINES = {
    "BENCH_align.json": {"indexed_ms": False, "speedup": True,
                         "indexed_mt_ms": False, "mt_speedup": True},
    "BENCH_serve.json": {"requests_per_sec": True,
                         "snapshot_load_ms": False},
    "BENCH_ingest.json": {"delta_apply_ms": False, "speedup": True,
                          "apply_align_ms": False},
    "BENCH_serve_net.json": {"requests_per_sec": True, "p99_ms": False},
    "BENCH_sync.json": {"full_sync_ms": False, "resync_ms": False,
                        "resync_speedup": True},
}


def git_show(rev, path):
    """Returns the file's bytes at `rev`, or None if it doesn't exist."""
    proc = subprocess.run(
        ["git", "show", f"{rev}:{path}"], capture_output=True)
    return proc.stdout if proc.returncode == 0 else None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional regression that fails (default "
                             "0.15 = 15%%)")
    parser.add_argument("files", nargs="*", default=sorted(HEADLINES),
                        help="artifacts to check (default: all known)")
    args = parser.parse_args()

    root = Path(subprocess.run(
        ["git", "rev-parse", "--show-toplevel"], capture_output=True,
        text=True, check=True).stdout.strip())

    failures = []
    for name in args.files:
        metrics = HEADLINES.get(name)
        if metrics is None:
            print(f"bench_trend: {name}: no headline metrics registered, "
                  "skipping", file=sys.stderr)
            continue
        worktree_path = root / name
        if not worktree_path.exists():
            print(f"bench_trend: {name}: missing from worktree, skipping",
                  file=sys.stderr)
            continue
        current_bytes = worktree_path.read_bytes()
        baseline_bytes = git_show("HEAD", name)
        baseline_rev = "HEAD"
        if baseline_bytes is None:
            print(f"bench_trend: {name}: no committed baseline, skipping",
                  file=sys.stderr)
            continue
        if baseline_bytes == current_bytes:
            # Artifact not regenerated since the last commit; compare that
            # commit's numbers against its parent so a fresh checkout still
            # reports the most recent code change's trend.
            parent = git_show("HEAD~1", name)
            if parent is None:
                print(f"bench_trend: {name}: identical to HEAD and no "
                      "HEAD~1 baseline, skipping", file=sys.stderr)
                continue
            baseline_bytes, baseline_rev = parent, "HEAD~1"

        try:
            current = json.loads(current_bytes)
            baseline = json.loads(baseline_bytes)
        except json.JSONDecodeError as e:
            print(f"bench_trend: {name}: unparseable JSON ({e}), skipping",
                  file=sys.stderr)
            continue

        for metric, larger_better in metrics.items():
            if metric not in current or metric not in baseline:
                print(f"bench_trend: {name}: metric '{metric}' missing, "
                      "skipping", file=sys.stderr)
                continue
            old, new = float(baseline[metric]), float(current[metric])
            if old == 0:
                continue
            change = (new - old) / old
            regression = -change if larger_better else change
            arrow = "better" if (change > 0) == larger_better else "worse"
            if change == 0:
                arrow = "same"
            status = "FAIL" if regression > args.threshold else "ok"
            print(f"bench_trend: {name} vs {baseline_rev}: {metric} "
                  f"{old:g} -> {new:g} ({change:+.1%}, {arrow}) [{status}]")
            if regression > args.threshold:
                failures.append(f"{name}:{metric} regressed {change:+.1%} "
                                f"(threshold {args.threshold:.0%})")

    if failures:
        print("bench_trend: FAILED", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
