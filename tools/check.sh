#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): configure, build, run the full test
# suite, then run the concurrency tests under ThreadSanitizer and smoke the
# aligner bench. Pass extra CMake flags as arguments, e.g.
#   tools/check.sh -DWIKIMATCH_SANITIZE=ON
# Set WIKIMATCH_SKIP_TSAN=1 to skip the TSan stage.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . "$@"
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

# bench_align smoke: tiny corpus, asserts the indexed join reproduces the
# naive path bit-for-bit (exits nonzero on divergence).
"$BUILD_DIR"/bench/bench_align --smoke

# Bench artifacts: committed JSON snapshots of the three headline benches,
# regenerated here so the numbers in the repo root track the code. Each
# bench self-checks (bench_align asserts indexed==naive, bench_ingest
# asserts incremental==rebuild bytes) and exits nonzero on divergence.
"$BUILD_DIR"/bench/bench_align > BENCH_align.json
"$BUILD_DIR"/bench/bench_serve_throughput > BENCH_serve.json
"$BUILD_DIR"/bench/bench_ingest > BENCH_ingest.json

# TSan stage: rebuild the thread-touching tests with -fsanitize=thread and
# run them. Skipped gracefully when the toolchain lacks TSan support so the
# tier-1 gate never depends on it.
if [[ "${WIKIMATCH_SKIP_TSAN:-0}" != "1" ]]; then
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /dev/null 2>/dev/null; then
    TSAN_DIR="${TSAN_DIR:-build-tsan}"
    cmake -B "$TSAN_DIR" -S . -DWIKIMATCH_SANITIZE=thread \
      -DWIKIMATCH_BUILD_BENCHMARKS=OFF -DWIKIMATCH_BUILD_EXAMPLES=OFF
    cmake --build "$TSAN_DIR" -j --target parallel_test align_join_test \
      serve_test
    # Run the binaries directly: ctest's gtest discovery would flag every
    # deliberately-unbuilt sibling test target as <name>_NOT_BUILT.
    "$TSAN_DIR"/tests/parallel_test
    "$TSAN_DIR"/tests/align_join_test
    # serve_test includes the concurrent-reload stress (queries racing a
    # generation swap) — the serving-path race detector.
    "$TSAN_DIR"/tests/serve_test
  else
    echo "check.sh: compiler lacks -fsanitize=thread, skipping TSan stage" >&2
  fi
fi
