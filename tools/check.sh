#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): configure, build, run the full test
# suite. Pass extra CMake flags as arguments, e.g.
#   tools/check.sh -DWIKIMATCH_SANITIZE=ON
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . "$@"
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j
