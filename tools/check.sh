#!/usr/bin/env bash
# Full verification matrix (docs/ANALYSIS.md): build + tests, bench
# artifact regeneration + trend gate, the in-tree analyzer
# (wikimatch-lint), the static-analysis stages, negative compile checks
# proving the contracts actually fire, and the sanitizer matrix
# (ASan+UBSan full suite; TSan concurrency tests with the runtime
# lock-order deadlock detector compiled in).
#
# Clang-only stages (thread-safety build, clang-tidy, the thread-safety
# negative check) auto-detect the toolchain and SKIP with a note when it
# is absent — the tier-1 gate must pass on a GCC-only box. A PASS/SKIP/
# WARN/FAIL table prints at the end; any FAIL exits nonzero. The same
# table is written machine-readably to check_summary.json (CI asserts on
# it; override the path with WIKIMATCH_SUMMARY_JSON).
#
# Pass extra CMake flags as arguments, e.g.
#   tools/check.sh -DWIKIMATCH_WERROR=ON
# Toggles: WIKIMATCH_SKIP_TSAN=1, WIKIMATCH_SKIP_ASAN=1,
#          WIKIMATCH_SKIP_BENCH=1 (skips artifact regen + trend).
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

STAGE_NAMES=()
STAGE_RESULTS=()
FAILED=0

record() { # name result
  STAGE_NAMES+=("$1")
  STAGE_RESULTS+=("$2")
  if [[ "$2" == FAIL ]]; then FAILED=1; fi
  echo "check.sh: stage '$1' -> $2" >&2
}

run_stage() { # name cmd...
  local name="$1"; shift
  echo "check.sh: ==== $name ====" >&2
  if "$@"; then record "$name" PASS; else record "$name" FAIL; fi
}

have_clang() { command -v clang++ >/dev/null 2>&1; }

# ---------------------------------------------------------------- build+test
stage_build() {
  cmake -B "$BUILD_DIR" -S . "$@" && cmake --build "$BUILD_DIR" -j
}
stage_tests() {
  (cd "$BUILD_DIR" && ctest --output-on-failure -j)
}
run_stage "build (gcc/default)" stage_build "$@"
run_stage "tests (ctest)" stage_tests

# ------------------------------------------------------------- join kernels
# The similarity join dispatches between a scalar reference kernel and the
# unrolled vector kernel at runtime (WIKIMATCH_JOIN_KERNEL). Force each and
# re-run the alignment equivalence suite so both code paths — not just the
# one this machine auto-selects — prove bit-identical results.
stage_join_kernels() {
  WIKIMATCH_JOIN_KERNEL=scalar "$BUILD_DIR"/tests/align_join_test &&
  WIKIMATCH_JOIN_KERNEL=vector "$BUILD_DIR"/tests/align_join_test
}
run_stage "join kernels forced (scalar+vector equivalence)" \
  stage_join_kernels

# -------------------------------------------------------------------- bench
# bench_align --smoke asserts the indexed join reproduces the naive path
# bit-for-bit; the artifact regen makes the committed JSON track the code
# (each bench self-checks equivalence and exits nonzero on divergence).
if [[ "${WIKIMATCH_SKIP_BENCH:-0}" != "1" ]]; then
  run_stage "bench smoke" "$BUILD_DIR"/bench/bench_align --smoke
  stage_bench_artifacts() {
    "$BUILD_DIR"/bench/bench_align > BENCH_align.json &&
    "$BUILD_DIR"/bench/bench_serve_throughput > BENCH_serve.json &&
    "$BUILD_DIR"/bench/bench_ingest > BENCH_ingest.json &&
    "$BUILD_DIR"/bench/bench_serve_net > BENCH_serve_net.json &&
    "$BUILD_DIR"/bench/bench_sync > BENCH_sync.json
  }
  run_stage "bench artifacts" stage_bench_artifacts
  # Warning-only: benches on shared hardware are noisy; CI can run
  # tools/bench_trend.py directly for a hard gate.
  echo "check.sh: ==== bench trend ====" >&2
  if tools/bench_trend.py; then
    record "bench trend (>15% regression warns)" PASS
  else
    record "bench trend (>15% regression warns)" WARN
  fi
else
  record "bench smoke" SKIP
  record "bench artifacts" SKIP
  record "bench trend (>15% regression warns)" SKIP
fi

# ----------------------------------------------------------------- analyzer
# The in-tree analyzer (src/analysis/, built above as tools/wikimatch-lint)
# replaces the old regex lint: token-level rules plus the layering DAG,
# include-cycle, and unordered-iteration checks. The tree must be clean —
# every deliberate exception carries a reasoned NOLINT.
run_stage "analyzer (wikimatch-lint)" "$BUILD_DIR"/tools/wikimatch-lint \
  --root .

# --------------------------------------------------------------- clang-tidy
if command -v clang-tidy >/dev/null 2>&1 && have_clang; then
  stage_tidy() {
    local tidy_dir="${TIDY_DIR:-build-tidy}"
    cmake -B "$tidy_dir" -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DWIKIMATCH_BUILD_BENCHMARKS=OFF -DWIKIMATCH_BUILD_EXAMPLES=OFF \
      >/dev/null &&
    find src -name '*.cc' -print0 |
      xargs -0 clang-tidy -p "$tidy_dir" --quiet
  }
  run_stage "clang-tidy" stage_tidy
else
  echo "check.sh: clang-tidy/clang++ not installed, skipping tidy stage" >&2
  record "clang-tidy" SKIP
fi

# --------------------------------------------- clang thread-safety analysis
if have_clang; then
  stage_tsa_build() {
    local tsa_dir="${TSA_DIR:-build-tsa}"
    cmake -B "$tsa_dir" -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DWIKIMATCH_THREAD_SAFETY=ON \
      -DWIKIMATCH_BUILD_BENCHMARKS=OFF -DWIKIMATCH_BUILD_EXAMPLES=OFF &&
    cmake --build "$tsa_dir" -j
  }
  run_stage "thread-safety build (-Werror=thread-safety)" stage_tsa_build
else
  echo "check.sh: clang++ not installed, skipping thread-safety build" >&2
  record "thread-safety build (-Werror=thread-safety)" SKIP
fi

# -------------------------------------------------- negative compile checks
# Prove the contracts fire: each "bad" snippet must FAIL to compile while
# its "good" twin succeeds (so a pass can't come from an unrelated error).
NEG_DIR="$(mktemp -d)"
trap 'rm -rf "$NEG_DIR"' EXIT

cat > "$NEG_DIR/discard_bad.cc" <<'EOF'
#include "util/status.h"
wikimatch::util::Status Make() {
  return wikimatch::util::Status::InvalidArgument("x");
}
int main() { Make(); }
EOF
cat > "$NEG_DIR/discard_good.cc" <<'EOF'
#include "util/status.h"
wikimatch::util::Status Make() {
  return wikimatch::util::Status::InvalidArgument("x");
}
int main() { (void)Make(); }
EOF
stage_neg_discard() {
  c++ -std=c++20 -I src -Werror=unused-result -fsyntax-only \
      "$NEG_DIR/discard_good.cc" || return 1
  if c++ -std=c++20 -I src -Werror=unused-result -fsyntax-only \
      "$NEG_DIR/discard_bad.cc" 2>/dev/null; then
    echo "check.sh: discarded Status compiled — [[nodiscard]] gate broken" >&2
    return 1
  fi
  return 0
}
run_stage "negative: discarded Status must not compile" stage_neg_discard

cat > "$NEG_DIR/tsa_bad.cc" <<'EOF'
#include "util/mutex.h"
#include "util/thread_annotations.h"
struct Counter {
  wikimatch::util::Mutex mu;
  int n WIKIMATCH_GUARDED_BY(mu) = 0;
  int Read() { return n; }  // no lock held: must not compile under TSA
};
int main() { return Counter{}.Read(); }
EOF
cat > "$NEG_DIR/tsa_good.cc" <<'EOF'
#include "util/mutex.h"
#include "util/thread_annotations.h"
struct Counter {
  wikimatch::util::Mutex mu;
  int n WIKIMATCH_GUARDED_BY(mu) = 0;
  int Read() {
    wikimatch::util::MutexLock lock(mu);
    return n;
  }
};
int main() { return Counter{}.Read(); }
EOF
if have_clang; then
  stage_neg_tsa() {
    clang++ -std=c++20 -I src -Wthread-safety -Werror=thread-safety \
        -fsyntax-only "$NEG_DIR/tsa_good.cc" || return 1
    if clang++ -std=c++20 -I src -Wthread-safety -Werror=thread-safety \
        -fsyntax-only "$NEG_DIR/tsa_bad.cc" 2>/dev/null; then
      echo "check.sh: unlocked GUARDED_BY access compiled — annotation" \
           "gate broken" >&2
      return 1
    fi
    return 0
  }
  run_stage "negative: unlocked GUARDED_BY must not compile" stage_neg_tsa
else
  echo "check.sh: clang++ not installed, skipping TSA negative check" >&2
  record "negative: unlocked GUARDED_BY must not compile" SKIP
fi

# --------------------------------------------------------------- ASan+UBSan
if [[ "${WIKIMATCH_SKIP_ASAN:-0}" != "1" ]]; then
  stage_asan() {
    local asan_dir="${ASAN_DIR:-build-asan}"
    cmake -B "$asan_dir" -S . -DWIKIMATCH_SANITIZE=address,undefined \
      -DWIKIMATCH_BUILD_BENCHMARKS=OFF -DWIKIMATCH_BUILD_EXAMPLES=OFF &&
    cmake --build "$asan_dir" -j &&
    (cd "$asan_dir" &&
     UBSAN_OPTIONS=halt_on_error=1 ctest --output-on-failure -j) &&
    # Both join kernels again, now instrumented: the vector kernel's
    # 4-wide unrolled tails and the CSR offset arithmetic are exactly the
    # code ASan/UBSan exist to vet.
    UBSAN_OPTIONS=halt_on_error=1 WIKIMATCH_JOIN_KERNEL=scalar \
      "$asan_dir"/tests/align_join_test &&
    UBSAN_OPTIONS=halt_on_error=1 WIKIMATCH_JOIN_KERNEL=vector \
      "$asan_dir"/tests/align_join_test
  }
  run_stage "ASan+UBSan full suite" stage_asan
else
  record "ASan+UBSan full suite" SKIP
fi

# --------------------------------------------------------------------- TSan
# Rebuild the thread-touching tests with -fsanitize=thread and run them
# directly (ctest's gtest discovery would flag every deliberately-unbuilt
# sibling target as <name>_NOT_BUILT).
if [[ "${WIKIMATCH_SKIP_TSAN:-0}" != "1" ]]; then
  if echo 'int main(){return 0;}' |
      c++ -fsanitize=thread -x c++ - -o /dev/null 2>/dev/null; then
    stage_tsan() {
      local tsan_dir="${TSAN_DIR:-build-tsan}"
      # WIKIMATCH_DEADLOCK_DEBUG arms the lock-order cycle detector inside
      # every util::Mutex for this whole stage: any inverted acquisition
      # order in the concurrency tests aborts with both stacks, and
      # deadlock_test's death test proves the abort path end to end.
      cmake -B "$tsan_dir" -S . -DWIKIMATCH_SANITIZE=thread \
        -DWIKIMATCH_DEADLOCK_DEBUG=ON \
        -DWIKIMATCH_BUILD_BENCHMARKS=OFF -DWIKIMATCH_BUILD_EXAMPLES=OFF &&
      cmake --build "$tsan_dir" -j --target thread_pool_test parallel_test \
        align_join_test serve_test lru_cache_test net_server_test \
        protocol_robustness_test ingest_test sync_test deadlock_test &&
      "$tsan_dir"/tests/deadlock_test &&
      # thread_pool_test stresses the shared work-stealing pool itself:
      # nested For, async steal-on-wait, handle reuse after pool death,
      # and the multi-level pipeline run on an injected pool.
      "$tsan_dir"/tests/thread_pool_test &&
      "$tsan_dir"/tests/parallel_test &&
      "$tsan_dir"/tests/align_join_test &&
      # serve_test includes the concurrent-reload stress (queries racing a
      # generation swap); lru_cache_test races inserts against a
      # generation-key bump across cache shards.
      "$tsan_dir"/tests/serve_test &&
      "$tsan_dir"/tests/lru_cache_test &&
      # net_server_test drives the epoll TCP server end to end, including
      # the reload-under-live-traffic stress (the multi-threaded event
      # loops racing a generation swap with zero dropped/mixed responses).
      "$tsan_dir"/tests/net_server_test &&
      "$tsan_dir"/tests/protocol_robustness_test &&
      # ingest_test covers destroying a matcher while its pool-queued
      # reclaim task is still in flight (destructor steal path).
      "$tsan_dir"/tests/ingest_test &&
      # sync_test classifies article pairs on the shared pool at several
      # thread counts (byte-identity across counts) and runs Resync
      # concurrently with full Run results.
      "$tsan_dir"/tests/sync_test
    }
    run_stage "TSan concurrency tests" stage_tsan
  else
    echo "check.sh: compiler lacks -fsanitize=thread, skipping TSan" >&2
    record "TSan concurrency tests" SKIP
  fi
else
  record "TSan concurrency tests" SKIP
fi

# ------------------------------------------------------------------ summary
echo
echo "check.sh summary:"
for i in "${!STAGE_NAMES[@]}"; do
  printf '  %-50s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
done

# Machine-readable twin of the table above, for CI assertions
# (.github/workflows/ci.yml jq-checks that clang stages ran as PASS).
SUMMARY_JSON="${WIKIMATCH_SUMMARY_JSON:-check_summary.json}"
json_escape() { local s=$1; s=${s//\\/\\\\}; s=${s//\"/\\\"}; printf '%s' "$s"; }
{
  echo '{'
  echo '  "stages": ['
  last=$((${#STAGE_NAMES[@]} - 1))
  for i in "${!STAGE_NAMES[@]}"; do
    sep=','
    if [[ "$i" == "$last" ]]; then sep=''; fi
    printf '    {"name": "%s", "result": "%s"}%s\n' \
      "$(json_escape "${STAGE_NAMES[$i]}")" "${STAGE_RESULTS[$i]}" "$sep"
  done
  echo '  ],'
  if [[ "$FAILED" == 1 ]]; then echo '  "ok": false'; else echo '  "ok": true'; fi
  echo '}'
} > "$SUMMARY_JSON"
echo "check.sh: wrote $SUMMARY_JSON"

if [[ "$FAILED" == 1 ]]; then
  echo "check.sh: FAILED" >&2
  exit 1
fi
echo "check.sh: OK"
