// Domain-specific example: align the "film" infobox schema between
// Portuguese and English, showing the evidence behind each decision —
// value similarity, link-structure similarity, LSI correlation — and which
// matches came from the certain pass vs. the uncertain-revision pass.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "eval/table.h"
#include "match/aligner.h"
#include "match/pipeline.h"
#include "synth/generator.h"

using namespace wikimatch;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  std::printf("Generating corpus (scale %.2f)...\n", scale);
  synth::CorpusGenerator generator(synth::GeneratorOptions::Paper(scale));
  auto generated = generator.Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const synth::GeneratedCorpus& gc = generated.ValueOrDie();

  // Build the schema data for the film type pair directly.
  match::MatchPipeline pipeline(&gc.corpus);
  auto data = pipeline.BuildPair("pt", "filme", "en", "film");
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("film pair: %zu dual infoboxes, %zu attribute groups\n\n",
              data->num_duals, data->groups.size());

  // Align and show the top candidate pairs with their evidence.
  match::AttributeAligner aligner{match::MatcherConfig{}};
  auto result = aligner.Align(*data);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  eval::Table evidence(
      {"rank", "pair", "LSI", "vsim", "lsim", "matched?"});
  size_t shown = 0;
  for (const auto& p : result->all_pairs) {
    const auto& ka = data->groups[p.i].key;
    const auto& kb = data->groups[p.j].key;
    if (ka.language == kb.language) continue;  // Show cross-language only.
    if (shown >= 15) break;
    evidence.AddRow({std::to_string(shown + 1),
                     ka.language + ":" + ka.name + " / " + kb.language +
                         ":" + kb.name,
                     eval::Table::Num(p.lsi, 3), eval::Table::Num(p.vsim, 3),
                     eval::Table::Num(p.lsim, 3),
                     result->matches.AreMatched(ka, kb) ? "yes" : "no"});
    ++shown;
  }
  std::printf("Top cross-language candidates by LSI correlation:\n%s\n",
              evidence.ToString().c_str());

  // Which matches needed the ReviseUncertain pass?
  match::MatcherConfig no_revise;
  no_revise.use_revise_uncertain = false;
  match::AttributeAligner strict(no_revise);
  auto strict_result = strict.Align(*data);
  if (strict_result.ok()) {
    std::printf("Matches recovered only by ReviseUncertain:\n");
    for (const auto& [a, b] :
         result->matches.CrossLanguagePairs("pt", "en")) {
      if (!strict_result->matches.AreMatched(a, b)) {
        std::printf("  %s ~ %s\n", (a.language + ":" + a.name).c_str(),
                    (b.language + ":" + b.name).c_str());
      }
    }
  }

  // Final clusters.
  std::printf("\nDerived film matches (clusters):\n");
  for (const auto& cluster : result->matches.Clusters()) {
    std::string line;
    for (const auto& attr : cluster) {
      if (!line.empty()) line += " ~ ";
      line += attr.language + ":" + attr.name;
    }
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
