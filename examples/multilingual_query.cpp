// Case-study example (Section 5): answer a structured Portuguese query
// natively, then translate it into English through the correspondences
// WikiMatch derived, and compare answer sets — the multilingual-query
// scenario that motivates the whole system.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "match/aligner.h"
#include "match/pipeline.h"
#include "query/case_study.h"
#include "query/evaluator.h"
#include "query/translator.h"
#include "synth/generator.h"

using namespace wikimatch;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  std::printf("Generating corpus (scale %.2f)...\n", scale);
  synth::CorpusGenerator generator(synth::GeneratorOptions::Paper(scale));
  auto generated = generator.Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const synth::GeneratedCorpus& gc = generated.ValueOrDie();

  // 1. Derive correspondences with WikiMatch.
  match::MatchPipeline pipeline(&gc.corpus);
  auto pipeline_result = pipeline.Run("pt", "en");
  if (!pipeline_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 pipeline_result.status().ToString().c_str());
    return 1;
  }
  std::map<std::string, const eval::MatchSet*> attribute_matches;
  for (const auto& tr : pipeline_result->per_type) {
    attribute_matches.emplace(tr.type_b, &tr.alignment.matches);
  }
  query::QueryTranslator translator("pt", "en",
                                    pipeline_result->type_matches,
                                    attribute_matches,
                                    &pipeline.dictionary());

  // 2. Build the workload and pick the first film query.
  auto queries = query::BuildCaseQueries(gc);
  if (queries.empty()) {
    std::fprintf(stderr, "no expressible queries\n");
    return 1;
  }
  // Pick the first workload query expressible in Portuguese (attribute
  // coverage differs per language — that is the point of the case study).
  const query::CaseQuery* picked = nullptr;
  util::Result<query::CQuery> pt_query =
      util::Status::NotFound("no expressible query");
  for (const auto& candidate : queries) {
    auto rendered = query::RenderSurfaceQuery(candidate, gc, "pt");
    if (rendered.ok()) {
      picked = &candidate;
      pt_query = std::move(rendered);
      break;
    }
  }
  if (picked == nullptr) {
    std::fprintf(stderr, "no query expressible in pt\n");
    return 1;
  }
  const query::CaseQuery& cq = *picked;
  std::printf("\nWorkload query: %s\n", cq.description.c_str());
  std::printf("Portuguese c-query:  %s\n", pt_query->ToString().c_str());

  // 3. Run natively.
  query::QueryEvaluator pt_eval(&gc.corpus, "pt");
  auto pt_answers = pt_eval.Run(*pt_query);
  std::printf("\nNative answers (pt): %zu\n",
              pt_answers.ok() ? pt_answers->size() : 0);
  if (pt_answers.ok()) {
    for (size_t i = 0; i < pt_answers->size() && i < 5; ++i) {
      std::printf("  %zu. %s\n", i + 1,
                  gc.corpus.Get((*pt_answers)[i].article).title.c_str());
    }
  }

  // 4. Translate and run against English.
  query::TranslationReport report;
  auto en_query = translator.Translate(*pt_query, &report);
  if (!en_query.ok()) {
    std::fprintf(stderr, "translation failed: %s\n",
                 en_query.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTranslated c-query:  %s\n", en_query->ToString().c_str());
  std::printf("  (%zu constraints translated, %zu relaxed)\n",
              report.constraints_translated, report.constraints_relaxed);

  query::QueryEvaluator en_eval(&gc.corpus, "en");
  auto en_answers = en_eval.Run(*en_query);
  std::printf("\nTranslated answers (en): %zu\n",
              en_answers.ok() ? en_answers->size() : 0);
  query::RelevanceOracle oracle(&gc);
  if (en_answers.ok()) {
    for (size_t i = 0; i < en_answers->size() && i < 5; ++i) {
      const std::string& title =
          gc.corpus.Get((*en_answers)[i].article).title;
      std::printf("  %zu. %-40s relevance %.0f/4\n", i + 1, title.c_str(),
                  oracle.Judge(cq, "en", title));
    }
  }

  // 5. Cumulative-gain comparison over the whole workload.
  auto curves = query::RunCaseStudy(gc, queries, "pt", translator);
  if (curves.ok() && curves->size() == 2) {
    std::printf("\nCumulative gain at k=20: %s %.0f vs %s %.0f\n",
                (*curves)[0].label.c_str(), (*curves)[0].cg.back(),
                (*curves)[1].label.c_str(), (*curves)[1].cg.back());
  }
  return 0;
}
