// Ingest example: the full real-world path. Serializes per-language
// MediaWiki XML dumps to disk, reads them back with the dump reader,
// parses every page's wikitext, builds the corpus, and runs the
// cross-language type matcher — exactly what a user with downloaded
// Wikipedia dumps would do.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "match/type_matcher.h"
#include "synth/generator.h"
#include "wiki/corpus.h"
#include "wiki/dump_reader.h"
#include "wiki/wikitext_parser.h"

using namespace wikimatch;

namespace {

// Writes `content` to path; returns false on failure.
bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return written == content.size();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/wikimatch_dumps";

  // 1. Produce dump files from a generated corpus (the stand-in for
  //    downloading pages-articles dumps).
  std::printf("Generating a small corpus and writing dumps to %s ...\n",
              dir.c_str());
  synth::CorpusGenerator generator(synth::GeneratorOptions::Tiny(42));
  auto generated = generator.Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const wiki::Corpus& source = generated->corpus;

  std::string mkdir = "mkdir -p " + dir;
  if (std::system(mkdir.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  // Re-render each article as wikitext from the parsed model. (A real user
  // starts from downloaded dumps; here we reconstruct equivalent ones.)
  for (const std::string lang : {"en", "pt", "vi"}) {
    std::vector<wiki::DumpPage> pages;
    for (wiki::ArticleId id : source.ArticlesInLanguage(lang)) {
      const wiki::Article& a = source.Get(id);
      std::string text;
      if (a.infobox.has_value()) {
        text += "{{Infobox " + a.infobox->template_type;
        for (const auto& [attr, value] : a.infobox->attributes) {
          text += "\n| " + attr + " = " + value.raw;
        }
        text += "\n}}\n";
      }
      text += "'''" + a.title + "'''\n";
      for (const auto& cat : a.categories) {
        text += "[[category:" + cat + "]]\n";
      }
      for (const auto& [other, title] : a.cross_language_links) {
        text += "[[" + other + ":" + title + "]]\n";
      }
      pages.push_back(wiki::DumpPage{a.title, 0, false, std::move(text)});
    }
    std::string xml = wiki::WriteDump(pages, lang);
    std::string path = dir + "/" + lang + "wiki.xml";
    if (!WriteFile(path, xml)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("  wrote %s (%zu pages, %zu bytes)\n", path.c_str(),
                pages.size(), xml.size());
  }

  // 2. Ingest the dumps from disk — the path a downstream user runs.
  wiki::Corpus corpus;
  wiki::WikitextParser parser;
  for (const std::string lang : {"en", "pt", "vi"}) {
    std::string path = dir + "/" + lang + "wiki.xml";
    auto pages = wiki::ReadDumpFile(path);
    if (!pages.ok()) {
      std::fprintf(stderr, "read %s: %s\n", path.c_str(),
                   pages.status().ToString().c_str());
      return 1;
    }
    auto added = corpus.IngestDump(*pages, lang, parser);
    if (!added.ok()) {
      std::fprintf(stderr, "ingest %s: %s\n", path.c_str(),
                   added.status().ToString().c_str());
      return 1;
    }
    std::printf("ingested %zu %s articles (%zu with infoboxes)\n", *added,
                lang.c_str(), corpus.InfoboxCount(lang));
  }
  corpus.Finalize();

  // 3. Cross-language type matching over the re-ingested corpus.
  match::TypeMatcher matcher;
  for (const std::string lang : {"pt", "vi"}) {
    std::printf("\nEntity-type mapping %s -> en:\n", lang.c_str());
    for (const auto& tm : matcher.Match(corpus, lang, "en")) {
      std::printf("  %-24s -> %-16s (%zu votes, confidence %.2f)\n",
                  tm.type_a.c_str(), tm.type_b.c_str(), tm.votes,
                  tm.confidence);
    }
  }
  return 0;
}
