// Quickstart: generate a multilingual corpus, run WikiMatch on one language
// pair, and print the discovered alignments plus their quality against the
// ground truth.
//
// Usage: quickstart [scale]   (default scale 0.1; 1.0 = paper-sized corpus)

#include <cstdio>
#include <cstdlib>

#include "eval/metrics.h"
#include "eval/table.h"
#include "match/pipeline.h"
#include "synth/generator.h"

using namespace wikimatch;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;

  // 1. Build the corpus (stand-in for Wikipedia dumps; see DESIGN.md).
  std::printf("Generating corpus (scale %.2f)...\n", scale);
  synth::CorpusGenerator generator(synth::GeneratorOptions::Paper(scale));
  auto generated = generator.Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const synth::GeneratedCorpus& gc = generated.ValueOrDie();
  std::printf("  %zu articles, %zu pt infoboxes, %zu vi infoboxes\n",
              gc.corpus.size(), gc.corpus.InfoboxCount("pt"),
              gc.corpus.InfoboxCount("vi"));

  // 2. Run the WikiMatch pipeline for Portuguese-English.
  match::MatchPipeline pipeline(&gc.corpus);
  auto result = pipeline.Run("pt", "en");
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. Report per-type quality.
  eval::Table table({"type", "duals", "P", "R", "F"});
  std::vector<eval::Prf> rows;
  for (const auto& tr : result->per_type) {
    auto hub_it = gc.hub_type_of.find({"en", tr.type_b});
    if (hub_it == gc.hub_type_of.end()) continue;
    const eval::MatchSet& truth = gc.ground_truth.at(hub_it->second);
    eval::Prf prf = eval::WeightedPrf(tr.alignment.matches, truth,
                                      tr.frequencies, "pt", "en");
    rows.push_back(prf);
    table.AddRow({hub_it->second, std::to_string(tr.num_duals),
                  eval::Table::Num(prf.precision), eval::Table::Num(prf.recall),
                  eval::Table::Num(prf.f1)});
  }
  eval::Prf avg = eval::AveragePrf(rows);
  table.AddRow({"Avg", "", eval::Table::Num(avg.precision),
                eval::Table::Num(avg.recall), eval::Table::Num(avg.f1)});
  std::printf("\nWikiMatch Pt-En weighted scores:\n%s\n",
              table.ToString().c_str());

  // 4. Show a few discovered film alignments (compare with paper Table 1).
  const match::TypePairResult* film = result->FindByTypeB("film");
  if (film != nullptr) {
    std::printf("Sample film alignments:\n");
    int shown = 0;
    for (const auto& cluster : film->alignment.matches.Clusters()) {
      if (shown >= 8) break;
      std::string line;
      for (const auto& attr : cluster) {
        if (!line.empty()) line += " ~ ";
        line += attr.language + ":" + attr.name;
      }
      std::printf("  %s\n", line.c_str());
      ++shown;
    }
  }
  return 0;
}
