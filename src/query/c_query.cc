#include "query/c_query.h"

#include <cctype>
#include <cstdlib>

#include "text/normalize.h"
#include "util/string_util.h"

namespace wikimatch {
namespace query {

namespace {

const char* OpToString(Op op) {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kLt:
      return "<";
    case Op::kGt:
      return ">";
    case Op::kLe:
      return "<=";
    case Op::kGe:
      return ">=";
  }
  return "?";
}

// Recursive-descent parser state.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  util::Result<CQuery> Parse() {
    CQuery out;
    while (true) {
      auto part = ParseTypeQuery();
      if (!part.ok()) return part.status();
      out.parts.push_back(std::move(part).ValueOrDie());
      SkipSpace();
      if (!ConsumeWord("and")) break;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input");
    }
    if (out.parts.empty()) return Error("empty query");
    return out;
  }

 private:
  util::Status Error(const std::string& message) {
    return util::Status::ParseError(message + " at offset " +
                                    std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Consumes the keyword if present (case-insensitive, word boundary).
  bool ConsumeWord(const std::string& word) {
    SkipSpace();
    if (pos_ + word.size() > text_.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          word[i]) {
        return false;
      }
    }
    size_t end = pos_ + word.size();
    if (end < text_.size() &&
        !std::isspace(static_cast<unsigned char>(text_[end]))) {
      return false;
    }
    pos_ = end;
    return true;
  }

  // Reads text until one of the stop characters (exclusive), trimmed.
  std::string ReadUntil(const std::string& stops) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           stops.find(text_[pos_]) == std::string::npos) {
      ++pos_;
    }
    return std::string(util::StripAsciiWhitespace(
        std::string_view(text_).substr(start, pos_ - start)));
  }

  util::Result<TypeQuery> ParseTypeQuery() {
    SkipSpace();
    TypeQuery out;
    std::string name = ReadUntil("(");
    if (name.empty()) return Error("expected type name");
    out.type = text::NormalizeAttributeName(name);
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return Error("expected '('");
    }
    ++pos_;  // consume '('
    while (true) {
      auto constraint = ParseConstraint();
      if (!constraint.ok()) return constraint.status();
      out.constraints.push_back(std::move(constraint).ValueOrDie());
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != ')') {
      return Error("expected ')'");
    }
    ++pos_;
    return out;
  }

  util::Result<Constraint> ParseConstraint() {
    SkipSpace();
    Constraint out;
    std::string attrs = ReadUntil("=<>,)");
    if (attrs.empty()) return Error("expected attribute name");
    for (const auto& alt : util::Split(attrs, '|')) {
      std::string norm = text::NormalizeAttributeName(alt);
      if (!norm.empty()) out.attributes.push_back(norm);
    }
    if (out.attributes.empty()) return Error("empty attribute list");

    if (pos_ >= text_.size()) return Error("expected operator");
    char c = text_[pos_];
    if (c == '=') {
      out.op = Op::kEq;
      ++pos_;
    } else if (c == '<' || c == '>') {
      ++pos_;
      bool or_equal = pos_ < text_.size() && text_[pos_] == '=';
      if (or_equal) ++pos_;
      out.op = c == '<' ? (or_equal ? Op::kLe : Op::kLt)
                        : (or_equal ? Op::kGe : Op::kGt);
      out.is_numeric = true;
    } else {
      return Error("expected '=', '<' or '>'");
    }

    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '?') {
      if (out.op != Op::kEq) return Error("'?' requires '='");
      out.is_projection = true;
      ++pos_;
      return out;
    }
    std::string value;
    if (pos_ < text_.size() && text_[pos_] == '"') {
      ++pos_;
      value = ReadUntil("\"");
      if (pos_ >= text_.size()) return Error("unterminated string");
      ++pos_;  // closing quote
    } else {
      value = ReadUntil(",)");
    }
    if (value.empty()) return Error("expected value");
    out.value = text::NormalizeValue(value);
    char* end = nullptr;
    double num = std::strtod(out.value.c_str(), &end);
    if (end != nullptr && end != out.value.c_str() && *end == '\0') {
      out.number = num;
      out.is_numeric = true;
    } else if (out.op != Op::kEq) {
      return Error("comparison needs a numeric value");
    }
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Constraint::ToString() const {
  std::string out = util::Join(attributes, "|");
  out += OpToString(op);
  if (is_projection) {
    out += "?";
  } else if (is_numeric && value.empty()) {
    out += util::StringPrintf("%g", number);
  } else {
    out += "\"" + value + "\"";
  }
  return out;
}

std::string TypeQuery::ToString() const {
  std::vector<std::string> parts;
  for (const auto& c : constraints) parts.push_back(c.ToString());
  return type + "(" + util::Join(parts, ", ") + ")";
}

std::string CQuery::ToString() const {
  std::vector<std::string> rendered;
  for (const auto& part : parts) rendered.push_back(part.ToString());
  return util::Join(rendered, " and ");
}

util::Result<CQuery> ParseCQuery(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace query
}  // namespace wikimatch
