#include "query/case_study.h"

#include <algorithm>

#include "eval/metrics.h"
#include "query/evaluator.h"
#include "text/normalize.h"
#include "util/logging.h"

namespace wikimatch {
namespace query {

namespace {

using synth::ValueKind;

// First concept of `kind` in the model, skipping the first `skip` hits.
const synth::Concept* FindConcept(const synth::TypeModel& model,
                                  ValueKind kind, size_t skip = 0) {
  for (const auto& c : model.concepts) {
    if (c.kind != kind) continue;
    if (skip == 0) return &c;
    --skip;
  }
  return nullptr;
}

// True when `rec`'s facts satisfy one concept constraint (projections are
// always satisfiable by the entity).
bool FactSatisfies(const synth::EntityRecord& rec,
                   const ConceptConstraint& cc) {
  if (cc.is_projection) return true;
  auto fact_it = rec.facts.find(cc.concept_id);
  if (fact_it == rec.facts.end()) return false;
  const synth::Fact& fact = fact_it->second;
  if (cc.ref >= 0) {
    return fact.ref == cc.ref ||
           std::find(fact.refs.begin(), fact.refs.end(), cc.ref) !=
               fact.refs.end();
  }
  double value = 0.0;
  switch (fact.kind) {
    case ValueKind::kDate:
    case ValueKind::kYear:
      value = fact.year;
      break;
    default:
      value = static_cast<double>(fact.number);
  }
  switch (cc.op) {
    case Op::kEq:
      return value == cc.number;
    case Op::kLt:
      return value < cc.number;
    case Op::kGt:
      return value > cc.number;
    case Op::kLe:
      return value <= cc.number;
    case Op::kGe:
      return value >= cc.number;
  }
  return false;
}

}  // namespace

std::vector<CaseQuery> BuildCaseQueries(const synth::GeneratedCorpus& gc) {
  std::vector<CaseQuery> out;

  // One pattern per entry: (type, [(kind, op, number-or-popular-ref)]).
  struct Want {
    const char* type;
    const char* description;
    struct Piece {
      ValueKind kind;
      Op op;
      bool projection;
      double number;
      bool use_ref;  // equality on the domain's most popular pool entity
    };
    std::vector<Piece> pieces;
  };
  const std::vector<Want> wants = {
      {"film",
       "Long films of a given genre, with their names",
       {{ValueKind::kTerm, Op::kEq, false, 0, true},
        {ValueKind::kDuration, Op::kGt, false, 170, false},
        {ValueKind::kName, Op::kEq, true, 0, false}}},
      {"film",
       "Films with budget over 100M released since 1990",
       {{ValueKind::kMoney, Op::kGt, false, 220000000, false},
        {ValueKind::kDate, Op::kGe, false, 2000, false}}},
      {"actor",
       "Actors born before 1930",
       {{ValueKind::kDate, Op::kLt, false, 1930, false},
        {ValueKind::kName, Op::kEq, true, 0, false}}},
      {"actor",
       "Actors born in a given country before 1960, with their occupations",
       {{ValueKind::kPlace, Op::kEq, false, 0, true},
        {ValueKind::kDate, Op::kLt, false, 1960, false},
        {ValueKind::kTerm, Op::kEq, true, 0, false}}},
      {"film",
       "Long films (over 200 minutes) from a given country",
       {{ValueKind::kDuration, Op::kGt, false, 200, false},
        {ValueKind::kPlace, Op::kEq, false, 0, true}}},
      {"artist",
       "Artists of a given genre born after 1995",
       {{ValueKind::kTerm, Op::kEq, false, 0, true},
        {ValueKind::kDate, Op::kGt, false, 1995, false}}},
      {"show",
       "Shows from a given country of a given genre",
       {{ValueKind::kPlace, Op::kEq, false, 0, true},
        {ValueKind::kTerm, Op::kEq, false, 0, true}}},
      {"album",
       "Albums recorded before 1935 of a given genre",
       {{ValueKind::kDate, Op::kLt, false, 1935, false},
        {ValueKind::kTerm, Op::kEq, false, 0, true}}},
      {"book",
       "Books written before 1925 of a given genre",
       {{ValueKind::kDate, Op::kLt, false, 1925, false},
        {ValueKind::kTerm, Op::kEq, false, 0, true}}},
      {"company",
       "Companies with revenue over 100M and their headquarters",
       {{ValueKind::kMoney, Op::kGt, false, 250000000, false},
        {ValueKind::kPlace, Op::kEq, true, 0, false}}},
  };

  for (const auto& want : wants) {
    auto model_it = gc.models.find(want.type);
    if (model_it == gc.models.end()) continue;
    const synth::TypeModel& model = model_it->second;
    CaseQuery cq;
    cq.type = want.type;
    cq.description = want.description;
    bool ok = true;
    std::map<ValueKind, size_t> used;  // distinct concepts per kind
    for (const auto& piece : want.pieces) {
      const synth::Concept* concept_spec =
          FindConcept(model, piece.kind, used[piece.kind]);
      if (concept_spec == nullptr) {
        // Fall back to any concept for projections; otherwise give up on
        // this piece.
        if (piece.projection && !model.concepts.empty()) {
          concept_spec = &model.concepts.front();
        } else {
          ok = false;
          break;
        }
      } else {
        used[piece.kind]++;
      }
      ConceptConstraint cc;
      cc.concept_id = concept_spec->id;
      cc.op = piece.op;
      cc.is_projection = piece.projection;
      cc.number = piece.number;
      if (piece.use_ref) {
        // The domain's second-most-popular member: selective but
        // non-empty.
        size_t rank = concept_spec->domain_end > concept_spec->domain_begin + 1
                          ? 1u : 0u;
        cc.ref = static_cast<int>(concept_spec->domain_begin + rank);
      }
      cq.constraints.push_back(std::move(cc));
    }
    if (ok && !cq.constraints.empty()) out.push_back(std::move(cq));
  }

  // A hyperlink-join query in the spirit of the paper's Table 4 Q1
  // ("movies with an actor who is also a politician"): films whose cast
  // includes an actor born before 1945.
  auto film_it = gc.models.find("film");
  auto actor_it = gc.models.find("actor");
  if (film_it != gc.models.end() && actor_it != gc.models.end()) {
    const synth::Concept* starring = nullptr;
    for (const auto& c : film_it->second.concepts) {
      if (c.id == "starring") starring = &c;
    }
    const synth::Concept* born = FindConcept(actor_it->second,
                                             ValueKind::kDate);
    if (starring != nullptr && born != nullptr) {
      CaseQuery join;
      join.type = "film";
      join.description = "Films starring an actor born before 1945";
      ConceptConstraint name_proj;
      name_proj.concept_id = starring->id;
      name_proj.is_projection = true;
      join.constraints.push_back(name_proj);
      join.join_type = "actor";
      join.join_concept = starring->id;
      ConceptConstraint born_cc;
      born_cc.concept_id = born->id;
      born_cc.op = Op::kLt;
      born_cc.number = 1945;
      join.join_constraints.push_back(born_cc);
      out.push_back(std::move(join));
    }
  }
  return out;
}

util::Result<CQuery> RenderSurfaceQuery(const CaseQuery& cq,
                                        const synth::GeneratedCorpus& gc,
                                        const std::string& lang) {
  auto model_it = gc.models.find(cq.type);
  if (model_it == gc.models.end()) {
    return util::Status::NotFound("unknown type " + cq.type);
  }
  const synth::TypeModel& model = model_it->second;
  auto name_it = model.names.find(lang);
  if (name_it == model.names.end() ||
      (lang != gc.hub && model.dual_count.count(lang) == 0)) {
    return util::Status::NotFound("type " + cq.type + " not present in " +
                                  lang);
  }

  auto render_part = [&gc, &lang](const synth::TypeModel& part_model,
                                  const std::vector<ConceptConstraint>& ccs,
                                  TypeQuery* part) {
    for (const auto& cc : ccs) {
      const synth::Concept* concept_spec = nullptr;
      for (const auto& c : part_model.concepts) {
        if (c.id == cc.concept_id) {
          concept_spec = &c;
          break;
        }
      }
      if (concept_spec == nullptr) continue;
      auto forms_it = concept_spec->forms.find(lang);
      if (forms_it == concept_spec->forms.end() ||
          forms_it->second.empty()) {
        continue;  // Not expressible in this language.
      }
      Constraint constraint;
      for (const auto& form : forms_it->second) {
        constraint.attributes.push_back(text::NormalizeAttributeName(form));
      }
      constraint.op = cc.op;
      constraint.is_projection = cc.is_projection;
      if (!cc.is_projection) {
        if (cc.ref >= 0) {
          const synth::SupportEntity* pool_entity = nullptr;
          switch (concept_spec->kind) {
            case ValueKind::kPlace:
              pool_entity = &gc.supports.places[static_cast<size_t>(cc.ref)];
              break;
            case ValueKind::kTerm:
              pool_entity = &gc.supports.terms[static_cast<size_t>(cc.ref)];
              break;
            default:
              pool_entity =
                  &gc.supports.entities[static_cast<size_t>(cc.ref)];
          }
          auto title_it = pool_entity->titles.find(lang);
          if (title_it == pool_entity->titles.end()) continue;
          constraint.value = text::NormalizeValue(title_it->second);
        } else {
          constraint.number = cc.number;
          constraint.is_numeric = true;
        }
      }
      part->constraints.push_back(std::move(constraint));
    }
  };

  TypeQuery part;
  part.type = text::NormalizeAttributeName(name_it->second);
  render_part(model, cq.constraints, &part);
  if (part.constraints.empty()) {
    return util::Status::NotFound("query not expressible in " + lang);
  }
  CQuery out;
  out.parts.push_back(std::move(part));

  // Join part.
  if (!cq.join_type.empty()) {
    auto join_model_it = gc.models.find(cq.join_type);
    if (join_model_it != gc.models.end()) {
      const synth::TypeModel& join_model = join_model_it->second;
      auto join_name_it = join_model.names.find(lang);
      bool present = join_name_it != join_model.names.end() &&
                     (lang == gc.hub ||
                      join_model.dual_count.count(lang) > 0);
      if (present) {
        TypeQuery join_part;
        join_part.type = text::NormalizeAttributeName(join_name_it->second);
        render_part(join_model, cq.join_constraints, &join_part);
        if (!join_part.constraints.empty()) {
          out.parts.push_back(std::move(join_part));
        }
      }
    }
  }
  return out;
}

RelevanceOracle::RelevanceOracle(const synth::GeneratedCorpus* gc)
    : gc_(gc) {
  for (size_t i = 0; i < gc_->entities.size(); ++i) {
    for (const auto& [lang, title] : gc_->entities[i].titles) {
      index_.emplace(std::make_pair(lang, title), i);
    }
  }
}

double RelevanceOracle::Judge(const CaseQuery& cq, const std::string& lang,
                              const std::string& article_title) const {
  auto it = index_.find({lang, article_title});
  if (it == index_.end()) return 0.0;
  const synth::EntityRecord& rec = gc_->entities[it->second];
  if (rec.type != cq.type) return 0.0;

  size_t total = 0;
  size_t satisfied = 0;
  for (const auto& cc : cq.constraints) {
    ++total;
    if (FactSatisfies(rec, cc)) ++satisfied;
  }
  // Join part: the entity must reference (through the crossref concept) a
  // join_type entity satisfying every join constraint.
  if (!cq.join_type.empty()) {
    ++total;
    auto fact_it = rec.facts.find(cq.join_concept);
    if (fact_it != rec.facts.end() &&
        !fact_it->second.crossref_type.empty()) {
      bool any = false;
      for (int ref : fact_it->second.refs) {
        const synth::EntityRecord& target =
            gc_->entities[static_cast<size_t>(ref)];
        bool all = true;
        for (const auto& jc : cq.join_constraints) {
          if (!FactSatisfies(target, jc)) {
            all = false;
            break;
          }
        }
        if (all) {
          any = true;
          break;
        }
      }
      if (any) ++satisfied;
    }
  }
  if (total == 0) return 0.0;
  // Judges score harshly: an answer violating one requested constraint is
  // marginal (1), and anything worse is irrelevant (0).
  size_t misses = total - satisfied;
  if (misses == 0) return 4.0;
  return misses == 1 ? 1.0 : 0.0;
}

util::Result<std::vector<CaseStudyCurve>> RunCaseStudy(
    const synth::GeneratedCorpus& gc, const std::vector<CaseQuery>& queries,
    const std::string& source_lang, const QueryTranslator& translator,
    size_t top_k) {
  RelevanceOracle oracle(&gc);
  QueryEvaluator source_eval(&gc.corpus, source_lang);
  QueryEvaluator hub_eval(&gc.corpus, gc.hub);
  EvaluatorOptions eval_options;
  eval_options.top_k = top_k;

  std::vector<double> native_gain(top_k, 0.0);
  std::vector<double> translated_gain(top_k, 0.0);

  for (const auto& cq : queries) {
    auto surface = RenderSurfaceQuery(cq, gc, source_lang);
    if (!surface.ok()) continue;  // Not expressible: contributes nothing.

    // Native run.
    auto native = source_eval.Run(*surface, eval_options);
    if (native.ok()) {
      for (size_t k = 0; k < native->size() && k < top_k; ++k) {
        const std::string& title =
            gc.corpus.Get((*native)[k].article).title;
        native_gain[k] += oracle.Judge(cq, source_lang, title);
      }
    }

    // Translated run.
    auto translated_query = translator.Translate(*surface);
    if (!translated_query.ok()) continue;
    auto translated = hub_eval.Run(*translated_query, eval_options);
    if (translated.ok()) {
      for (size_t k = 0; k < translated->size() && k < top_k; ++k) {
        const std::string& title =
            gc.corpus.Get((*translated)[k].article).title;
        translated_gain[k] += oracle.Judge(cq, gc.hub, title);
      }
    }
  }

  std::vector<CaseStudyCurve> out(2);
  std::string pretty = source_lang;
  pretty[0] = static_cast<char>(std::toupper(pretty[0]));
  out[0].label = pretty;
  out[0].cg = eval::CumulativeGain(native_gain);
  out[1].label = pretty + "->En";
  out[1].cg = eval::CumulativeGain(translated_gain);
  return out;
}

}  // namespace query
}  // namespace wikimatch
