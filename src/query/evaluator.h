// c-query evaluation over a Corpus (the WikiQuery substrate of Section 5).
//
// Single-type parts scan the type's infoboxes; multi-type conjunctions join
// through hyperlinks: an answer for the primary (first) part must link to —
// or be linked from — an article satisfying each secondary part.

#ifndef WIKIMATCH_QUERY_EVALUATOR_H_
#define WIKIMATCH_QUERY_EVALUATOR_H_

#include <string>
#include <vector>

#include "query/c_query.h"
#include "util/result.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace query {

/// \brief One ranked answer.
struct Answer {
  wiki::ArticleId article = wiki::kInvalidArticle;
  /// Number of constraints the article satisfied (ranking key).
  double score = 0.0;
  /// Projected values, in constraint order across the primary part.
  std::vector<std::string> projections;
};

/// \brief Evaluation options.
struct EvaluatorOptions {
  /// Maximum answers returned (the case study presents the top 20).
  size_t top_k = 20;
};

/// \brief Evaluates c-queries against one language's infoboxes.
class QueryEvaluator {
 public:
  QueryEvaluator(const wiki::Corpus* corpus, std::string language);

  /// \brief Runs `q`; answers are articles of the first part's type,
  /// ranked by score (descending), deterministically tie-broken by id.
  ///
  /// Returns OK with an empty list when nothing matches; NotFound when the
  /// queried type has no infoboxes at all.
  util::Result<std::vector<Answer>> Run(const CQuery& q,
                                        const EvaluatorOptions& options
                                        = {}) const;

  /// \brief True iff `box` satisfies `constraint` (any attribute
  /// alternative, equality on normalized text/anchor containment, numeric
  /// comparison on the first number in the value).
  static bool Satisfies(const wiki::Infobox& box, const Constraint& c);

 private:
  const wiki::Corpus* corpus_;
  std::string language_;
};

}  // namespace query
}  // namespace wikimatch

#endif  // WIKIMATCH_QUERY_EVALUATOR_H_
