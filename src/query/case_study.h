// The Section 5 case study: a workload of concept-level queries (analogues
// of the paper's Table 4), rendered into per-language surface c-queries,
// run natively and translated-into-the-hub, and scored by cumulative gain
// against a deterministic relevance oracle (the stand-in for the paper's
// two human judges — see DESIGN.md).
//
// The workload includes a hyperlink-join query (films starring actors
// who ...), answerable because the generator links film entities to
// actor-type entities (GeneratorOptions::crossrefs).

#ifndef WIKIMATCH_QUERY_CASE_STUDY_H_
#define WIKIMATCH_QUERY_CASE_STUDY_H_

#include <map>
#include <string>
#include <vector>

#include "query/c_query.h"
#include "query/translator.h"
#include "synth/generator.h"
#include "util/result.h"

namespace wikimatch {
namespace query {

/// \brief One constraint at the concept level (language-independent).
struct ConceptConstraint {
  std::string concept_id;
  Op op = Op::kEq;
  bool is_projection = false;
  /// For numeric constraints.
  double number = 0.0;
  /// For link-valued equality: index into the matching support pool.
  int ref = -1;
};

/// \brief One case-study query, written against concepts of one type,
/// optionally joined (through hyperlinks) to a second type.
struct CaseQuery {
  std::string description;
  std::string type;  ///< hub type id of the primary part
  std::vector<ConceptConstraint> constraints;
  /// Optional join: answers must link to an entity of `join_type`
  /// satisfying `join_constraints`, through the primary type's
  /// `join_concept` (a cross-type reference, e.g. film "starring").
  std::string join_type;
  std::string join_concept;
  std::vector<ConceptConstraint> join_constraints;
};

/// \brief Builds the 10-query workload against the generated corpus,
/// selecting concepts by value kind so every query is expressible.
std::vector<CaseQuery> BuildCaseQueries(const synth::GeneratedCorpus& gc);

/// \brief Renders a concept query into `lang`'s surface c-query, using all
/// synonym forms as attribute alternations (the paper's a|b syntax).
/// Constraints whose concept has no surface form in `lang` are dropped —
/// the author of a query in that language cannot write them. Returns
/// NotFound when the type itself does not exist in `lang`.
util::Result<CQuery> RenderSurfaceQuery(const CaseQuery& cq,
                                        const synth::GeneratedCorpus& gc,
                                        const std::string& lang);

/// \brief Deterministic relevance oracle: judges an answer article on a
/// 0..4 scale by how many of the query's semantic constraints the
/// underlying entity's facts satisfy.
class RelevanceOracle {
 public:
  explicit RelevanceOracle(const synth::GeneratedCorpus* gc);

  double Judge(const CaseQuery& cq, const std::string& lang,
               const std::string& article_title) const;

 private:
  const synth::GeneratedCorpus* gc_;
  // (lang, title) -> entity index
  std::map<std::pair<std::string, std::string>, size_t> index_;
};

/// \brief One CG curve of Figure 4 (e.g. "Pt" or "Pt->En").
struct CaseStudyCurve {
  std::string label;
  /// cg[k-1] = cumulative gain of the top-k answers summed over queries.
  std::vector<double> cg;
};

/// \brief Runs the workload for one source language: native curve plus the
/// translated-to-hub curve.
///
/// `translator` must translate source_lang -> hub queries (built from the
/// WikiMatch pipeline output).
util::Result<std::vector<CaseStudyCurve>> RunCaseStudy(
    const synth::GeneratedCorpus& gc, const std::vector<CaseQuery>& queries,
    const std::string& source_lang, const QueryTranslator& translator,
    size_t top_k = 20);

}  // namespace query
}  // namespace wikimatch

#endif  // WIKIMATCH_QUERY_CASE_STUDY_H_
