#include "query/translator.h"

namespace wikimatch {
namespace query {

QueryTranslator::QueryTranslator(
    std::string source_lang, std::string target_lang,
    std::vector<match::TypeMatch> type_matches,
    std::map<std::string, const eval::MatchSet*> attribute_matches,
    const match::TranslationDictionary* dictionary)
    : source_lang_(std::move(source_lang)),
      target_lang_(std::move(target_lang)),
      attribute_matches_(std::move(attribute_matches)),
      dictionary_(dictionary) {
  for (const auto& tm : type_matches) {
    type_map_.emplace(tm.type_a, tm.type_b);
  }
}

util::Result<CQuery> QueryTranslator::Translate(
    const CQuery& q, TranslationReport* report) const {
  TranslationReport local_report;
  CQuery out;
  for (const auto& part : q.parts) {
    auto type_it = type_map_.find(part.type);
    if (type_it == type_map_.end()) {
      local_report.parts_dropped++;
      continue;
    }
    TypeQuery translated;
    translated.type = type_it->second;

    const eval::MatchSet* matches = nullptr;
    auto am_it = attribute_matches_.find(type_it->second);
    if (am_it != attribute_matches_.end()) matches = am_it->second;

    for (const auto& c : part.constraints) {
      local_report.constraints_total++;
      Constraint tc = c;
      tc.attributes.clear();
      for (const auto& attr : c.attributes) {
        if (matches == nullptr) break;
        for (const auto& target : matches->CorrespondentsOf(
                 eval::AttrKey{source_lang_, attr}, target_lang_)) {
          tc.attributes.push_back(target.name);
        }
      }
      if (tc.attributes.empty()) {
        // No correspondence: relax (drop) the constraint.
        local_report.constraints_relaxed++;
        continue;
      }
      // Translate string constants through the title dictionary.
      if (!tc.is_projection && !tc.value.empty() && dictionary_ != nullptr) {
        tc.value = dictionary_->TranslateOrKeep(source_lang_, tc.value,
                                                target_lang_);
      }
      local_report.constraints_translated++;
      translated.constraints.push_back(std::move(tc));
    }
    if (translated.constraints.empty() &&
        !(&part == &q.parts[0])) {
      // Fully relaxed secondary part: drop it.
      local_report.parts_dropped++;
      continue;
    }
    // A fully relaxed *primary* part stays as a bare type scan — WikiQuery
    // still returns answers for relaxed queries, they are just rarely
    // relevant (Section 5).
    out.parts.push_back(std::move(translated));
  }
  if (report != nullptr) *report = local_report;
  if (out.parts.empty()) {
    return util::Status::NotFound("query untranslatable: every part dropped");
  }
  return out;
}

}  // namespace query
}  // namespace wikimatch
