// Query translation via discovered correspondences (Section 5): rewrite a
// c-query from a source language into the target language using (1) the
// type matches from TypeMatcher, (2) the per-type attribute MatchSets
// derived by WikiMatch, and (3) the title dictionary for constants. A
// constraint whose attribute has no correspondence is *relaxed* (dropped),
// exactly as WikiQuery does.

#ifndef WIKIMATCH_QUERY_TRANSLATOR_H_
#define WIKIMATCH_QUERY_TRANSLATOR_H_

#include <map>
#include <string>

#include "eval/match_set.h"
#include "match/dictionary.h"
#include "match/type_matcher.h"
#include "query/c_query.h"
#include "util/result.h"

namespace wikimatch {
namespace query {

/// \brief Statistics about one translation.
struct TranslationReport {
  size_t constraints_total = 0;
  size_t constraints_translated = 0;
  size_t constraints_relaxed = 0;
  size_t parts_dropped = 0;  ///< type queries with no type mapping
};

/// \brief Translates c-queries between languages using match output.
class QueryTranslator {
 public:
  /// \param type_matches mapping of source types to target types.
  /// \param attribute_matches per *target-language* type name: the derived
  ///        attribute MatchSet for the pair.
  /// \param dictionary title dictionary for translating constants.
  QueryTranslator(std::string source_lang, std::string target_lang,
                  std::vector<match::TypeMatch> type_matches,
                  std::map<std::string, const eval::MatchSet*>
                      attribute_matches,
                  const match::TranslationDictionary* dictionary);

  /// \brief Translates `q`, relaxing untranslatable constraints. Returns
  /// NotFound when no part of the query could be translated at all.
  util::Result<CQuery> Translate(const CQuery& q,
                                 TranslationReport* report = nullptr) const;

 private:
  std::string source_lang_;
  std::string target_lang_;
  std::map<std::string, std::string> type_map_;  // source type -> target
  std::map<std::string, const eval::MatchSet*> attribute_matches_;
  const match::TranslationDictionary* dictionary_;
};

}  // namespace query
}  // namespace wikimatch

#endif  // WIKIMATCH_QUERY_TRANSLATOR_H_
