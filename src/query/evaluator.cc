#include "query/evaluator.h"

#include <algorithm>
#include <cstdlib>
#include <optional>

#include "text/normalize.h"

namespace wikimatch {
namespace query {

namespace {

// Largest number appearing in `s`, if any. Comparisons test the largest
// number so that date values ("4 de junho de 1975") compare on the year,
// not the day.
std::optional<double> LargestNumber(const std::string& s) {
  std::optional<double> best;
  size_t i = 0;
  while (i < s.size()) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      char* end = nullptr;
      double v = std::strtod(s.c_str() + i, &end);
      if (!best.has_value() || v > *best) best = v;
      i = static_cast<size_t>(end - s.c_str());
    } else {
      ++i;
    }
  }
  return best;
}

bool ValueSatisfies(const wiki::AttributeValue& value, const Constraint& c) {
  if (c.is_projection) return true;
  if (c.op == Op::kEq) {
    std::string text = text::NormalizeValue(value.text);
    if (text.find(c.value) != std::string::npos) return true;
    for (const auto& link : value.links) {
      if (text::NormalizeValue(link.anchor).find(c.value) !=
              std::string::npos ||
          link.target.find(c.value) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
  // Numeric comparison.
  auto num = LargestNumber(value.text);
  if (!num.has_value()) return false;
  switch (c.op) {
    case Op::kLt:
      return *num < c.number;
    case Op::kGt:
      return *num > c.number;
    case Op::kLe:
      return *num <= c.number;
    case Op::kGe:
      return *num >= c.number;
    case Op::kEq:
      return false;  // handled above
  }
  return false;
}

}  // namespace

QueryEvaluator::QueryEvaluator(const wiki::Corpus* corpus,
                               std::string language)
    : corpus_(corpus), language_(std::move(language)) {}

bool QueryEvaluator::Satisfies(const wiki::Infobox& box,
                               const Constraint& c) {
  for (const auto& attr : c.attributes) {
    const wiki::AttributeValue* value = box.Find(attr);
    if (value != nullptr && ValueSatisfies(*value, c)) return true;
  }
  return false;
}

util::Result<std::vector<Answer>> QueryEvaluator::Run(
    const CQuery& q, const EvaluatorOptions& options) const {
  if (q.parts.empty()) {
    return util::Status::InvalidArgument("empty query");
  }
  const TypeQuery& primary = q.parts[0];
  const auto& candidates = corpus_->ArticlesOfType(language_, primary.type);
  if (candidates.empty()) {
    return util::Status::NotFound("no infoboxes of type " + primary.type +
                                  " in " + language_);
  }

  // Pre-evaluate secondary parts: sets of satisfying article titles.
  std::vector<std::set<std::string>> secondary_titles;
  for (size_t p = 1; p < q.parts.size(); ++p) {
    const TypeQuery& part = q.parts[p];
    std::set<std::string> titles;
    for (wiki::ArticleId id : corpus_->ArticlesOfType(language_, part.type)) {
      const wiki::Article& article = corpus_->Get(id);
      bool all = true;
      for (const auto& c : part.constraints) {
        if (!Satisfies(article.infobox.value(), c)) {
          all = false;
          break;
        }
      }
      if (all) titles.insert(article.title);
    }
    secondary_titles.push_back(std::move(titles));
  }

  std::vector<Answer> answers;
  for (wiki::ArticleId id : candidates) {
    const wiki::Article& article = corpus_->Get(id);
    const wiki::Infobox& box = article.infobox.value();
    double score = 0.0;
    bool all = true;
    std::vector<std::string> projections;
    for (const auto& c : primary.constraints) {
      if (!Satisfies(box, c)) {
        all = false;
        break;
      }
      score += 1.0;
      if (c.is_projection) {
        for (const auto& attr : c.attributes) {
          const wiki::AttributeValue* value = box.Find(attr);
          if (value != nullptr) {
            projections.push_back(value->text);
            break;
          }
        }
      }
    }
    if (!all) continue;
    // Join through hyperlinks: the answer must link to (or be linked from)
    // an article satisfying each secondary part.
    for (const auto& titles : secondary_titles) {
      bool joined = false;
      for (const auto& [attr, value] : box.attributes) {
        for (const auto& link : value.links) {
          if (titles.count(link.target) > 0) {
            joined = true;
            break;
          }
        }
        if (joined) break;
      }
      if (!joined) {
        all = false;
        break;
      }
      score += 1.0;
    }
    if (!all) continue;
    answers.push_back(Answer{id, score, std::move(projections)});
  }

  std::stable_sort(answers.begin(), answers.end(),
                   [](const Answer& x, const Answer& y) {
                     if (x.score != y.score) return x.score > y.score;
                     return x.article < y.article;
                   });
  if (answers.size() > options.top_k) answers.resize(options.top_k);
  return answers;
}

}  // namespace query
}  // namespace wikimatch
