// c-queries (Section 5 / WikiQuery [25]): structured queries over infobox
// content, e.g.
//
//   actor(born="brazil", website=?) and film(award="oscar")
//
// A c-query is a conjunction of type queries; each type query constrains
// attributes of one entity type. An attribute position may list
// alternatives separated by '|' (nascimento|data de nascimento); operators
// are =, <, >, <=, >=; the value '?' marks a projection (attribute must be
// present, its value is returned).

#ifndef WIKIMATCH_QUERY_C_QUERY_H_
#define WIKIMATCH_QUERY_C_QUERY_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace wikimatch {
namespace query {

/// \brief Comparison operator of a constraint.
enum class Op { kEq, kLt, kGt, kLe, kGe };

/// \brief One constraint: <attr alternatives> <op> <value or ?>.
struct Constraint {
  /// Attribute-name alternatives (normalized); any may satisfy.
  std::vector<std::string> attributes;
  Op op = Op::kEq;
  /// True for '=?' projections: the attribute must exist, no value test.
  bool is_projection = false;
  /// String value for equality tests (normalized).
  std::string value;
  /// Parsed numeric value for comparison tests.
  double number = 0.0;
  /// True when `op` is a numeric comparison or `value` parsed as a number.
  bool is_numeric = false;

  std::string ToString() const;
};

/// \brief Constraints on one entity type.
struct TypeQuery {
  /// Localized, normalized type name ("filme").
  std::string type;
  std::vector<Constraint> constraints;

  std::string ToString() const;
};

/// \brief A conjunctive query over one or more types.
struct CQuery {
  std::vector<TypeQuery> parts;

  std::string ToString() const;
};

/// \brief Parses the c-query syntax. Returns ParseError with a position
/// hint for malformed input.
util::Result<CQuery> ParseCQuery(const std::string& text);

}  // namespace query
}  // namespace wikimatch

#endif  // WIKIMATCH_QUERY_C_QUERY_H_
