#include "eval/table.h"

#include <algorithm>
#include <cstdio>

namespace wikimatch {
namespace eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace eval
}  // namespace wikimatch
