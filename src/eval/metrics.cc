#include "eval/metrics.h"

#include <algorithm>
#include <set>

namespace wikimatch {
namespace eval {

Prf Prf::Of(double p, double r) {
  Prf out;
  out.precision = p;
  out.recall = r;
  out.f1 = (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  return out;
}

namespace {

double FreqOf(const AttrFrequencies& freq, const AttrKey& a) {
  auto it = freq.find(a);
  return it == freq.end() ? 1.0 : it->second;
}

}  // namespace

Prf WeightedPrf(const MatchSet& derived, const MatchSet& truth,
                const AttrFrequencies& freq, const std::string& lang_l,
                const std::string& lang_lp) {
  // --- Precision over A_C: lang_l attributes with derived correspondents.
  std::set<AttrKey> ac = derived.AttributesWithCorrespondents(lang_l, lang_lp);
  double precision = 0.0;
  if (!ac.empty()) {
    double total_w = 0.0;
    for (const auto& a : ac) total_w += FreqOf(freq, a);
    for (const auto& a : ac) {
      std::set<AttrKey> c = derived.CorrespondentsOf(a, lang_lp);
      double inner_w = 0.0;
      for (const auto& b : c) inner_w += FreqOf(freq, b);
      double pr = 0.0;
      if (inner_w > 0.0) {
        for (const auto& b : c) {
          if (truth.AreMatched(a, b)) pr += FreqOf(freq, b) / inner_w;
        }
      }
      precision += FreqOf(freq, a) / total_w * pr;
    }
  }

  // --- Recall over A_G: lang_l attributes with true correspondents.
  std::set<AttrKey> ag = truth.AttributesWithCorrespondents(lang_l, lang_lp);
  double recall = 0.0;
  if (!ag.empty()) {
    double total_w = 0.0;
    for (const auto& a : ag) total_w += FreqOf(freq, a);
    for (const auto& a : ag) {
      std::set<AttrKey> cg = truth.CorrespondentsOf(a, lang_lp);
      double inner_w = 0.0;
      for (const auto& b : cg) inner_w += FreqOf(freq, b);
      double rc = 0.0;
      if (inner_w > 0.0) {
        for (const auto& b : cg) {
          if (derived.AreMatched(a, b)) rc += FreqOf(freq, b) / inner_w;
        }
      }
      recall += FreqOf(freq, a) / total_w * rc;
    }
  }
  return Prf::Of(precision, recall);
}

Prf MacroPrf(const MatchSet& derived, const MatchSet& truth,
             const std::string& lang_l, const std::string& lang_lp) {
  auto derived_pairs = derived.CrossLanguagePairs(lang_l, lang_lp);
  auto truth_pairs = truth.CrossLanguagePairs(lang_l, lang_lp);
  std::set<std::pair<AttrKey, AttrKey>> truth_set(truth_pairs.begin(),
                                                  truth_pairs.end());
  size_t correct = 0;
  for (const auto& pair : derived_pairs) correct += truth_set.count(pair);
  double p = derived_pairs.empty()
                 ? 0.0
                 : static_cast<double>(correct) / derived_pairs.size();
  double r = truth_pairs.empty()
                 ? 0.0
                 : static_cast<double>(correct) / truth_pairs.size();
  return Prf::Of(p, r);
}

Prf AveragePrf(const std::vector<Prf>& rows) {
  Prf out;
  if (rows.empty()) return out;
  for (const auto& row : rows) {
    out.precision += row.precision;
    out.recall += row.recall;
    out.f1 += row.f1;
  }
  out.precision /= static_cast<double>(rows.size());
  out.recall /= static_cast<double>(rows.size());
  out.f1 /= static_cast<double>(rows.size());
  return out;
}

double MeanAveragePrecision(
    const std::vector<std::pair<AttrKey, AttrKey>>& ranked,
    const MatchSet& truth, const std::string& lang_l) {
  // Group the ranking per lang_l attribute, preserving order.
  std::map<AttrKey, std::vector<std::pair<AttrKey, AttrKey>>> per_attr;
  for (const auto& pair : ranked) {
    if (pair.first.language == lang_l) per_attr[pair.first].push_back(pair);
  }
  double sum_ap = 0.0;
  size_t num_queries = 0;
  for (const auto& [attr, pairs] : per_attr) {
    size_t correct_seen = 0;
    double ap = 0.0;
    for (size_t rank = 0; rank < pairs.size(); ++rank) {
      if (truth.AreMatched(pairs[rank].first, pairs[rank].second)) {
        ++correct_seen;
        ap += static_cast<double>(correct_seen) /
              static_cast<double>(rank + 1);
      }
    }
    if (correct_seen == 0) continue;  // No relevant items: skip the query.
    sum_ap += ap / static_cast<double>(correct_seen);
    ++num_queries;
  }
  return num_queries == 0 ? 0.0 : sum_ap / static_cast<double>(num_queries);
}

std::vector<double> CumulativeGain(const std::vector<double>& scores) {
  std::vector<double> out(scores.size());
  double acc = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    acc += scores[i];
    out[i] = acc;
  }
  return out;
}

double SchemaOverlap(const std::vector<std::string>& schema_a,
                     const std::vector<std::string>& schema_b,
                     const std::string& lang_a, const std::string& lang_b,
                     const MatchSet& truth) {
  if (schema_a.empty() && schema_b.empty()) return 0.0;
  size_t matched_a = 0;
  for (const auto& name_a : schema_a) {
    AttrKey a{lang_a, name_a};
    for (const auto& name_b : schema_b) {
      if (truth.AreMatched(a, AttrKey{lang_b, name_b})) {
        ++matched_a;
        break;
      }
    }
  }
  size_t matched_b = 0;
  for (const auto& name_b : schema_b) {
    AttrKey b{lang_b, name_b};
    for (const auto& name_a : schema_a) {
      if (truth.AreMatched(AttrKey{lang_a, name_a}, b)) {
        ++matched_b;
        break;
      }
    }
  }
  double inter = (static_cast<double>(matched_a) + matched_b) / 2.0;
  double uni =
      static_cast<double>(schema_a.size() + schema_b.size()) - inter;
  return uni <= 0.0 ? 0.0 : inter / uni;
}

}  // namespace eval
}  // namespace wikimatch
