// Evaluation metrics from the paper.
//
//  * Weighted precision / recall / F-measure (Section 4, Equations 1-4):
//    attribute-frequency-weighted micro-averaging.
//  * Macro-averaged P/R/F (Appendix B, Table 6): distinct name pairs.
//  * Mean average precision of candidate orderings (Appendix B, Table 7).
//  * Cumulative gain for the query case study (Section 5, Figure 4).
//  * Schema overlap (Appendix A, Table 5).

#ifndef WIKIMATCH_EVAL_METRICS_H_
#define WIKIMATCH_EVAL_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "eval/match_set.h"

namespace wikimatch {
namespace eval {

/// \brief Precision / recall / F-measure triple.
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;

  /// Computes f1 from precision and recall (0 when both are 0).
  static Prf Of(double p, double r);
};

/// \brief Attribute occurrence counts |a_i|: how many infoboxes of the type
/// (in the attribute's language) contain the attribute.
using AttrFrequencies = std::map<AttrKey, double>;

/// \brief Weighted precision/recall/F of `derived` against `truth` for the
/// ordered language pair (lang_l, lang_lp), per Equations 1-4.
///
/// Precision weighs each matched attribute a_i of lang_l by its frequency
/// and, inside its correspondence set c(a_i), weighs each a'_j by frequency;
/// correct(a_i, a'_j) tests membership in `truth`. Recall does the same over
/// the ground-truth correspondents cG(a_i), testing whether each was
/// derived. Attributes missing from `freq` count with frequency 1.
Prf WeightedPrf(const MatchSet& derived, const MatchSet& truth,
                const AttrFrequencies& freq, const std::string& lang_l,
                const std::string& lang_lp);

/// \brief Macro P/R/F: counts distinct cross-language attribute-name pairs
/// (Appendix B): P = |C ∩ G| / |C|, R = |C ∩ G| / |G|.
Prf MacroPrf(const MatchSet& derived, const MatchSet& truth,
             const std::string& lang_l, const std::string& lang_lp);

/// \brief Element-wise average of a set of Prf rows (the "Avg" table rows).
Prf AveragePrf(const std::vector<Prf>& rows);

/// \brief Mean average precision of a ranked candidate-pair list
/// (Appendix B). For each lang_l attribute with at least one correct match
/// in `truth`, computes average precision over its ranked correspondents
/// and averages across attributes.
double MeanAveragePrecision(
    const std::vector<std::pair<AttrKey, AttrKey>>& ranked,
    const MatchSet& truth, const std::string& lang_l);

/// \brief Cumulative gain: prefix sums of relevance scores (Figure 4).
/// Returns CG@1..CG@k for k = scores.size().
std::vector<double> CumulativeGain(const std::vector<double>& scores);

/// \brief Schema overlap of one dual-language infobox pair (Appendix A).
///
/// `schema_a` and `schema_b` are the attribute names of the two infoboxes;
/// an attribute is in the intersection when it has a ground-truth
/// correspondent present on the other side. Overlap = |inter| / |union|
/// with |inter| = (matched_a + matched_b) / 2 and
/// |union| = |S| + |S'| - |inter|. Returns 0 for two empty schemas.
double SchemaOverlap(const std::vector<std::string>& schema_a,
                     const std::vector<std::string>& schema_b,
                     const std::string& lang_a, const std::string& lang_b,
                     const MatchSet& truth);

}  // namespace eval
}  // namespace wikimatch

#endif  // WIKIMATCH_EVAL_METRICS_H_
