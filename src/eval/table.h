// ASCII table renderer for the benchmark harnesses: fixed-width columns,
// right-aligned numerics, optional markdown-style separators.

#ifndef WIKIMATCH_EVAL_TABLE_H_
#define WIKIMATCH_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace wikimatch {
namespace eval {

/// \brief Simple row/column text table.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// \brief Appends a row; missing cells render empty, extras are dropped.
  void AddRow(std::vector<std::string> cells);

  /// \brief Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 2);

  /// \brief Renders with a header separator, columns padded to content.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eval
}  // namespace wikimatch

#endif  // WIKIMATCH_EVAL_TABLE_H_
