#include "eval/match_set.h"

namespace wikimatch {
namespace eval {

AttrKey MatchSet::Find(const AttrKey& a) const {
  auto it = parent_.find(a);
  if (it == parent_.end()) return a;
  if (it->second == a) return a;
  AttrKey root = Find(it->second);
  // Path compression; skip the no-op write so a fully compressed set (see
  // CompressPaths) can be read from several threads at once.
  if (!(it->second == root)) it->second = root;
  return root;
}

void MatchSet::Union(const AttrKey& a, const AttrKey& b) {
  if (parent_.find(a) == parent_.end()) parent_[a] = a;
  if (parent_.find(b) == parent_.end()) parent_[b] = b;
  AttrKey ra = Find(a);
  AttrKey rb = Find(b);
  if (ra == rb) return;
  // Deterministic: smaller key becomes the root.
  if (rb < ra) std::swap(ra, rb);
  parent_[rb] = ra;
}

void MatchSet::AddCluster(const std::vector<AttrKey>& attrs) {
  if (attrs.empty()) return;
  if (transitive_) {
    if (parent_.find(attrs[0]) == parent_.end()) parent_[attrs[0]] = attrs[0];
    for (size_t i = 1; i < attrs.size(); ++i) Union(attrs[0], attrs[i]);
    return;
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      AddPair(attrs[i], attrs[j]);
    }
  }
}

void MatchSet::AddPair(const AttrKey& a, const AttrKey& b) {
  if (transitive_) {
    Union(a, b);
    return;
  }
  pairs_[a].insert(b);
  pairs_[b].insert(a);
}

bool MatchSet::AreMatched(const AttrKey& a, const AttrKey& b) const {
  if (transitive_) {
    if (parent_.find(a) == parent_.end() ||
        parent_.find(b) == parent_.end()) {
      return false;
    }
    return Find(a) == Find(b);
  }
  auto it = pairs_.find(a);
  return it != pairs_.end() && it->second.count(b) > 0;
}

bool MatchSet::Contains(const AttrKey& a) const {
  if (transitive_) return parent_.find(a) != parent_.end();
  return pairs_.find(a) != pairs_.end();
}

std::set<AttrKey> MatchSet::ClusterOf(const AttrKey& a) const {
  std::set<AttrKey> out;
  if (!Contains(a)) return out;
  if (transitive_) {
    AttrKey root = Find(a);
    for (const auto& [key, p] : parent_) {
      if (Find(key) == root) out.insert(key);
    }
    return out;
  }
  out.insert(a);
  for (const auto& partner : pairs_.at(a)) out.insert(partner);
  return out;
}

std::vector<std::set<AttrKey>> MatchSet::Clusters() const {
  if (transitive_) {
    std::map<AttrKey, std::set<AttrKey>> by_root;
    for (const auto& [key, p] : parent_) by_root[Find(key)].insert(key);
    std::vector<std::set<AttrKey>> out;
    out.reserve(by_root.size());
    for (auto& [root, members] : by_root) out.push_back(std::move(members));
    return out;
  }
  // Pairwise mode: connected components of the adjacency graph.
  std::set<AttrKey> visited;
  std::vector<std::set<AttrKey>> out;
  for (const auto& [key, partners] : pairs_) {
    if (visited.count(key) > 0) continue;
    std::set<AttrKey> component;
    std::vector<AttrKey> stack = {key};
    while (!stack.empty()) {
      AttrKey cur = stack.back();
      stack.pop_back();
      if (!component.insert(cur).second) continue;
      visited.insert(cur);
      auto it = pairs_.find(cur);
      if (it == pairs_.end()) continue;
      for (const auto& next : it->second) {
        if (component.count(next) == 0) stack.push_back(next);
      }
    }
    out.push_back(std::move(component));
  }
  return out;
}

std::vector<std::pair<AttrKey, AttrKey>> MatchSet::CrossLanguagePairs(
    const std::string& lang_a, const std::string& lang_b) const {
  std::vector<std::pair<AttrKey, AttrKey>> out;
  if (transitive_) {
    for (const auto& cluster : Clusters()) {
      for (const auto& a : cluster) {
        if (a.language != lang_a) continue;
        for (const auto& b : cluster) {
          if (b.language != lang_b) continue;
          out.emplace_back(a, b);
        }
      }
    }
    return out;
  }
  for (const auto& [a, partners] : pairs_) {
    if (a.language != lang_a) continue;
    for (const auto& b : partners) {
      if (b.language == lang_b) out.emplace_back(a, b);
    }
  }
  return out;
}

std::set<AttrKey> MatchSet::AttributesWithCorrespondents(
    const std::string& lang, const std::string& other_lang) const {
  std::set<AttrKey> out;
  for (const auto& [a, b] : CrossLanguagePairs(lang, other_lang)) {
    out.insert(a);
  }
  return out;
}

std::set<AttrKey> MatchSet::CorrespondentsOf(
    const AttrKey& a, const std::string& other_lang) const {
  std::set<AttrKey> out;
  for (const auto& member : ClusterOf(a)) {
    if (member.language == other_lang && !(member == a)) out.insert(member);
  }
  return out;
}

std::vector<std::pair<AttrKey, AttrKey>> MatchSet::DirectPairs() const {
  std::vector<std::pair<AttrKey, AttrKey>> out;
  for (const auto& [a, partners] : pairs_) {
    for (const auto& b : partners) {
      if (a < b) out.emplace_back(a, b);
    }
  }
  return out;
}

void MatchSet::CompressPaths() const {
  for (const auto& [key, p] : parent_) Find(key);
}

size_t MatchSet::NumClusters() const { return Clusters().size(); }

}  // namespace eval
}  // namespace wikimatch
