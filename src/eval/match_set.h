// MatchSet: sets of attribute surface forms that mean the same thing.
// Used both for system output (the matches M derived by an aligner) and for
// ground truth G. An attribute is identified by (language, normalized name).
//
// Two modes:
//  * transitive (default) — AddPair merges clusters (WikiMatch's match
//    components m = {a1 ~ a2 ~ ...} and the concept-level ground truth);
//  * pairwise — AddPair records exactly that pair (baselines like LSI
//    top-k, Bouma, and COMA++ emit independent correspondences, and closing
//    them transitively would fabricate pairs they never claimed).

#ifndef WIKIMATCH_EVAL_MATCH_SET_H_
#define WIKIMATCH_EVAL_MATCH_SET_H_

#include <compare>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace wikimatch {
namespace eval {

/// \brief Identity of an attribute within one language's type schema.
struct AttrKey {
  std::string language;
  std::string name;

  auto operator<=>(const AttrKey&) const = default;
};

/// \brief A set of match clusters (transitive mode) or correspondences
/// (pairwise mode).
class MatchSet {
 public:
  /// \param transitive when true, AddPair/AddCluster merge overlapping
  /// clusters; when false, every added pair stands alone.
  explicit MatchSet(bool transitive = true) : transitive_(transitive) {}

  /// \brief Adds a cluster. In transitive mode, attributes already present
  /// are merged into the existing cluster; in pairwise mode every in-cluster
  /// pair is recorded.
  void AddCluster(const std::vector<AttrKey>& attrs);

  /// \brief Adds a two-element cluster / records the pair.
  void AddPair(const AttrKey& a, const AttrKey& b);

  /// \brief True iff `a` and `b` are matched (same cluster, or an added
  /// pair in pairwise mode).
  bool AreMatched(const AttrKey& a, const AttrKey& b) const;

  /// \brief True iff `a` appears in any cluster/pair.
  bool Contains(const AttrKey& a) const;

  /// \brief The cluster containing `a` (in pairwise mode: `a` plus its
  /// direct partners). Empty set when absent.
  std::set<AttrKey> ClusterOf(const AttrKey& a) const;

  /// \brief All clusters (transitive mode) or connected components of the
  /// pair graph (pairwise mode), deterministic order.
  std::vector<std::set<AttrKey>> Clusters() const;

  /// \brief All matched pairs (a, a') with a.language == `lang_a` and
  /// a'.language == `lang_b`.
  std::vector<std::pair<AttrKey, AttrKey>> CrossLanguagePairs(
      const std::string& lang_a, const std::string& lang_b) const;

  /// \brief Attributes of `lang` that have at least one correspondent in
  /// `other_lang`.
  std::set<AttrKey> AttributesWithCorrespondents(
      const std::string& lang, const std::string& other_lang) const;

  /// \brief The correspondents of `a` in `other_lang`.
  std::set<AttrKey> CorrespondentsOf(const AttrKey& a,
                                     const std::string& other_lang) const;

  /// \brief Pairwise mode: every stored pair exactly once (smaller key
  /// first), in deterministic order. Empty in transitive mode — serialize
  /// transitive sets through Clusters() instead.
  std::vector<std::pair<AttrKey, AttrKey>> DirectPairs() const;

  /// \brief Fully path-compresses the union-find so that later const
  /// lookups (Find depth 1) perform no writes to the mutable parent map.
  /// Call once before sharing a MatchSet across reader threads.
  void CompressPaths() const;

  size_t NumClusters() const;
  bool empty() const { return parent_.empty() && pairs_.empty(); }
  bool transitive() const { return transitive_; }

 private:
  // Union-find over attribute keys (transitive mode).
  AttrKey Find(const AttrKey& a) const;
  void Union(const AttrKey& a, const AttrKey& b);

  bool transitive_;
  mutable std::map<AttrKey, AttrKey> parent_;
  // Pairwise mode: adjacency.
  std::map<AttrKey, std::set<AttrKey>> pairs_;
};

}  // namespace eval
}  // namespace wikimatch

#endif  // WIKIMATCH_EVAL_MATCH_SET_H_
