// Entity-type matching across languages (Section 3.1): if infoboxes of type
// T in language L frequently cross-language-link to infoboxes of type T' in
// L', then T and T' are equivalent.

#ifndef WIKIMATCH_MATCH_TYPE_MATCHER_H_
#define WIKIMATCH_MATCH_TYPE_MATCHER_H_

#include <map>
#include <string>
#include <vector>

#include "wiki/corpus.h"

namespace wikimatch {
namespace match {

/// \brief One discovered type correspondence with its supporting evidence.
struct TypeMatch {
  std::string type_a;   ///< type in lang_a
  std::string type_b;   ///< type in lang_b
  size_t votes = 0;     ///< dual pairs supporting the mapping
  double confidence = 0.0;  ///< votes / total links from type_a
};

/// \brief Maps entity types between two languages by link voting.
class TypeMatcher {
 public:
  /// \param min_votes minimum supporting pairs for a mapping to be emitted.
  /// \param min_confidence minimum fraction of type_a's outgoing links that
  ///        must land on type_b.
  explicit TypeMatcher(size_t min_votes = 2, double min_confidence = 0.5);

  /// \brief Computes the type mapping from `lang_a` to `lang_b`.
  ///
  /// For every article of each type in lang_a with a cross-language link to
  /// a typed article in lang_b, a vote (type_a -> type_b) is cast; each
  /// type_a keeps its majority target if it passes the thresholds.
  std::vector<TypeMatch> Match(const wiki::Corpus& corpus,
                               const std::string& lang_a,
                               const std::string& lang_b) const;

 private:
  size_t min_votes_;
  double min_confidence_;
};

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_TYPE_MATCHER_H_
