#include "match/dictionary.h"

namespace wikimatch {
namespace match {

void TranslationDictionary::Build(const wiki::Corpus& corpus) {
  for (wiki::ArticleId id = 0; id < corpus.size(); ++id) {
    const wiki::Article& a = corpus.Get(id);
    for (const auto& [lang, title] : a.cross_language_links) {
      Add(a.language, a.title, lang, title);
      Add(lang, title, a.language, a.title);
    }
  }
}

void TranslationDictionary::Add(const std::string& from_lang,
                                const std::string& term,
                                const std::string& to_lang,
                                const std::string& translation) {
  entries_.emplace(std::make_tuple(from_lang, to_lang, term), translation);
}

std::optional<std::string> TranslationDictionary::Translate(
    const std::string& from_lang, const std::string& term,
    const std::string& to_lang) const {
  auto it = entries_.find(std::make_tuple(from_lang, to_lang, term));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string TranslationDictionary::TranslateOrKeep(
    const std::string& from_lang, const std::string& term,
    const std::string& to_lang) const {
  auto t = Translate(from_lang, term, to_lang);
  return t.has_value() ? *t : term;
}

}  // namespace match
}  // namespace wikimatch
