#include "match/dictionary.h"

#include <algorithm>
#include <vector>

#include "util/thread_pool.h"

namespace wikimatch {
namespace match {

void TranslationDictionary::Build(const wiki::Corpus& corpus) {
  for (wiki::ArticleId id = 0; id < corpus.size(); ++id) {
    const wiki::Article& a = corpus.Get(id);
    for (const auto& [lang, title] : a.cross_language_links) {
      Add(a.language, a.title, lang, title);
      Add(lang, title, a.language, a.title);
    }
  }
}

void TranslationDictionary::Build(const wiki::Corpus& corpus,
                                  size_t num_threads) {
  const size_t n = corpus.size();
  if (num_threads <= 1 || n < 2048) {
    Build(corpus);
    return;
  }
  // Partial maps per article range, spliced together in range order.
  // entries_.merge keeps the existing entry on key collision, and partial
  // maps from earlier ranges are merged first, so the surviving entry for
  // any key is the one from the lowest article id — exactly the
  // first-insertion-wins outcome of the serial scan.
  const size_t chunks = num_threads * 2;
  const size_t step = (n + chunks - 1) / chunks;
  std::vector<std::map<std::tuple<std::string, std::string, std::string>,
                       std::string>>
      partial(chunks);
  util::thread_pool_for(chunks, num_threads, [&](size_t c) {
    const size_t begin = c * step;
    const size_t end = std::min(n, begin + step);
    auto& out = partial[c];
    for (size_t id = begin; id < end; ++id) {
      const wiki::Article& a = corpus.Get(static_cast<wiki::ArticleId>(id));
      for (const auto& [lang, title] : a.cross_language_links) {
        out.emplace(std::make_tuple(a.language, lang, a.title), title);
        out.emplace(std::make_tuple(lang, a.language, title), a.title);
      }
    }
  });
  for (auto& p : partial) entries_.merge(p);
}

void TranslationDictionary::Add(const std::string& from_lang,
                                const std::string& term,
                                const std::string& to_lang,
                                const std::string& translation) {
  entries_.emplace(std::make_tuple(from_lang, to_lang, term), translation);
}

void TranslationDictionary::Put(const std::string& from_lang,
                                const std::string& term,
                                const std::string& to_lang,
                                const std::string& translation) {
  entries_[std::make_tuple(from_lang, to_lang, term)] = translation;
}

void TranslationDictionary::Erase(const std::string& from_lang,
                                  const std::string& term,
                                  const std::string& to_lang) {
  entries_.erase(std::make_tuple(from_lang, to_lang, term));
}

std::optional<std::string> TranslationDictionary::Translate(
    const std::string& from_lang, const std::string& term,
    const std::string& to_lang) const {
  auto it = entries_.find(std::make_tuple(from_lang, to_lang, term));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string TranslationDictionary::TranslateOrKeep(
    const std::string& from_lang, const std::string& term,
    const std::string& to_lang) const {
  auto t = Translate(from_lang, term, to_lang);
  return t.has_value() ? *t : term;
}

}  // namespace match
}  // namespace wikimatch
