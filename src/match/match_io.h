// Serialization of match output: the paper's Section 5 stores the derived
// correspondences "in a dictionary" consumed by WikiQuery. These routines
// persist MatchSets and translation dictionaries as TSV so the CLI can
// derive matches once and query many times.
//
// Formats (UTF-8, tab-separated, '#' comment lines ignored):
//
//   matches.tsv:     type_b <TAB> lang <TAB> attribute <TAB> cluster_id
//   dictionary.tsv:  from_lang <TAB> term <TAB> to_lang <TAB> translation

#ifndef WIKIMATCH_MATCH_MATCH_IO_H_
#define WIKIMATCH_MATCH_MATCH_IO_H_

#include <map>
#include <string>

#include "eval/match_set.h"
#include "match/dictionary.h"
#include "util/result.h"

namespace wikimatch {
namespace match {

/// \brief Per-type match sets keyed by the hub-side type name.
using TypeMatchSets = std::map<std::string, eval::MatchSet>;

/// \brief Serializes per-type match clusters to TSV text.
std::string WriteMatchSets(const TypeMatchSets& matches);

/// \brief Parses WriteMatchSets output. Clusters are rebuilt transitively.
/// Returns ParseError with a line number for malformed rows.
util::Result<TypeMatchSets> ReadMatchSets(const std::string& tsv);

/// \brief Saves to a file.
util::Status SaveMatchSets(const TypeMatchSets& matches,
                           const std::string& path);

/// \brief Loads from a file.
util::Result<TypeMatchSets> LoadMatchSets(const std::string& path);

/// \brief Serializes a title dictionary to TSV text.
std::string WriteDictionary(const TranslationDictionary& dictionary);

/// \brief Parses dictionary TSV into a TranslationDictionary.
util::Result<TranslationDictionary> ReadDictionary(const std::string& tsv);

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_MATCH_IO_H_
