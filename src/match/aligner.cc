#include "match/aligner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>

#include "match/similarity_join.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wikimatch {
namespace match {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Shared body of InductiveGroupingScore: `member(k)` answers whether group
// k is already matched. The public static passes MatchSet::Contains; the
// Align hot loop passes an O(1) group-index bitmap (valid because group
// keys are unique there, so key- and index-membership coincide).
template <typename Member>
double InductiveGroupingScoreImpl(const TypePairData& data,
                                  const eval::MatchSet& matches,
                                  Member&& member, size_t i, size_t j) {
  const std::string& lang_i = data.groups[i].key.language;
  const std::string& lang_j = data.groups[j].key.language;

  // C_a: matched attributes co-occurring with a in its mono-lingual schema.
  auto companions = [&](size_t idx, const std::string& lang) {
    std::vector<size_t> out;
    for (size_t k = 0; k < data.groups.size(); ++k) {
      if (k == idx || data.groups[k].key.language != lang) continue;
      if (!member(k)) continue;
      auto it = data.co_occur.find({std::min(idx, k), std::max(idx, k)});
      if (it != data.co_occur.end() && it->second > 0.0) out.push_back(k);
    }
    return out;
  };
  std::vector<size_t> ca = companions(i, lang_i);
  std::vector<size_t> cb = companions(j, lang_j);

  double sum = 0.0;
  size_t count = 0;
  for (size_t a : ca) {
    for (size_t b : cb) {
      if (!matches.AreMatched(data.groups[a].key, data.groups[b].key)) {
        continue;
      }
      sum += AttributeAligner::GroupingScore(data, i, a) *
             AttributeAligner::GroupingScore(data, j, b);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace

void AlignStats::Merge(const AlignStats& other) {
  groups += other.groups;
  pairs_total += other.pairs_total;
  pairs_generated += other.pairs_generated;
  pairs_pruned += other.pairs_pruned;
  postings_visited += other.postings_visited;
  lsi_ms += other.lsi_ms;
  feature_ms += other.feature_ms;
  order_ms += other.order_ms;
  match_ms += other.match_ms;
  total_ms += other.total_ms;
}

AttributeAligner::AttributeAligner(MatcherConfig config)
    : config_(std::move(config)) {}

double AttributeAligner::ValueSimilarity(const AttributeGroup& a,
                                         const AttributeGroup& b) {
  return a.values.Cosine(b.values);
}

double AttributeAligner::LinkSimilarity(const AttributeGroup& a,
                                        const AttributeGroup& b) {
  return a.links.Cosine(b.links);
}

double AttributeAligner::GroupingScore(const TypePairData& data, size_t i,
                                       size_t j) {
  if (i == j) return 1.0;
  double oi = data.groups[i].occurrences;
  double oj = data.groups[j].occurrences;
  if (oi <= 0.0 || oj <= 0.0) return 0.0;
  auto it = data.co_occur.find({std::min(i, j), std::max(i, j)});
  double opq = it == data.co_occur.end() ? 0.0 : it->second;
  return opq / std::min(oi, oj);
}

double AttributeAligner::InductiveGroupingScore(const TypePairData& data,
                                                const eval::MatchSet& matches,
                                                size_t i, size_t j) {
  return InductiveGroupingScoreImpl(
      data, matches,
      [&](size_t k) { return matches.Contains(data.groups[k].key); }, i, j);
}

// The retained reference feature pass: scores every pair by re-walking the
// groups' sparse vectors. Kept bit-for-bit as the equivalence baseline for
// the indexed join (tests/align_join_test.cc, bench/bench_align.cc).
std::vector<CandidatePair> AttributeAligner::NaiveCandidates(
    const TypePairData& data, const LsiCorrelation& lsi_scores) const {
  const size_t n = data.groups.size();
  std::vector<CandidatePair> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      CandidatePair p;
      p.i = i;
      p.j = j;
      p.vsim = config_.use_vsim
                   ? ValueSimilarity(data.groups[i], data.groups[j])
                   : 0.0;
      bool links_supported =
          data.groups[i].links.Sum() >=
              config_.min_link_support * data.groups[i].occurrences &&
          data.groups[j].links.Sum() >=
              config_.min_link_support * data.groups[j].occurrences;
      p.lsim = config_.use_lsim && links_supported
                   ? LinkSimilarity(data.groups[i], data.groups[j])
                   : 0.0;
      p.lsi = config_.use_lsi ? lsi_scores.Score(i, j) : 0.0;
      pairs.push_back(p);
    }
  }
  return pairs;
}

// Inverted-index feature pass: one pass over posting lists per group row,
// LSI scored row-by-row, rows sharded across worker threads and merged in
// group order (deterministic for any thread count). Unless keep_all_pairs
// forces full materialization, a pair is only emitted when its similarity
// is nonzero or the LSI ordering still needs it (lsi > t_lsi admits it to
// the queue even with zero direct evidence — such pairs can shift the
// random_order shuffle and, when t_revise_min_sim admits them, reach
// ReviseUncertain).
std::vector<CandidatePair> AttributeAligner::IndexedCandidates(
    const TypePairData& data, const LsiCorrelation& lsi_scores,
    AlignStats* stats) const {
  const size_t n = data.groups.size();
  SimilarityJoinOptions jopts;
  jopts.use_vsim = config_.use_vsim;
  jopts.use_lsim = config_.use_lsim;
  jopts.min_link_support = config_.min_link_support;
  jopts.quantize_weights = !config_.use_exact_cosine;
  SimilarityJoinIndex index(data, jopts);

  const bool need_all = config_.keep_all_pairs;
  std::vector<std::vector<CandidatePair>> rows(n);
  std::atomic<size_t> postings_visited{0};
  // Runs on the shared pool: when Align executes inside the pipeline's
  // per-pair loop (itself a pool job), this inner loop is claimed by the
  // calling worker plus whatever workers the outer level left idle —
  // borrowed, not spawned, so pair-level × row-level parallelism cannot
  // oversubscribe the box.
  util::thread_pool_for(n, config_.num_threads, [&](size_t i) {
    // Per-OS-thread accumulators; each row runs entirely on one thread
    // (a pool worker or the caller), so reuse across rows — and across
    // Align calls, since pool workers persist process-wide — is safe and
    // keeps the reset cost proportional to the row's nonzero count.
    thread_local SimilarityJoinIndex::Scratch scratch;
    thread_local std::vector<SimilarityEntry> sparse_row;
    size_t visited_before = scratch.postings_visited();
    std::vector<CandidatePair>& out = rows[i];
    if (need_all || config_.use_lsi) {
      sparse_row.clear();
      index.ForEachNonZero(i, &scratch, [&](const SimilarityEntry& e) {
        sparse_row.push_back(e);
      });
      size_t k = 0;
      for (size_t j = i + 1; j < n; ++j) {
        CandidatePair p;
        p.i = i;
        p.j = j;
        if (k < sparse_row.size() && sparse_row[k].j == j) {
          p.vsim = sparse_row[k].vsim;
          p.lsim = sparse_row[k].lsim;
          ++k;
        }
        p.lsi = config_.use_lsi ? lsi_scores.Score(i, j) : 0.0;
        if (!need_all && p.vsim == 0.0 && p.lsim == 0.0 &&
            !(config_.use_lsi && p.lsi > config_.t_lsi)) {
          continue;
        }
        out.push_back(p);
      }
    } else {
      // No LSI and no all-pairs retention: only nonzero-similarity pairs
      // can ever enter the queue, so walk just the sparse row.
      index.ForEachNonZero(i, &scratch, [&](const SimilarityEntry& e) {
        CandidatePair p;
        p.i = i;
        p.j = e.j;
        p.vsim = e.vsim;
        p.lsim = e.lsim;
        out.push_back(p);
      });
    }
    postings_visited.fetch_add(scratch.postings_visited() - visited_before,
                               std::memory_order_relaxed);
  });

  size_t total = 0;
  for (const auto& row : rows) total += row.size();
  std::vector<CandidatePair> pairs;
  pairs.reserve(total);
  for (auto& row : rows) {
    pairs.insert(pairs.end(), row.begin(), row.end());
  }
  stats->postings_visited = postings_visited.load();
  return pairs;
}

util::Result<AlignmentResult> AttributeAligner::Align(
    const TypePairData& data) const {
  Clock::time_point align_start = Clock::now();
  AlignmentResult result;
  const size_t n = data.groups.size();
  if (n == 0) return result;
  result.stats.groups = n;
  result.stats.pairs_total = n * (n - 1) / 2;

  // --- Feature computation ---------------------------------------------------
  Clock::time_point phase_start = Clock::now();
  LsiCorrelation lsi_scores;
  if (config_.use_lsi) {
    WIKIMATCH_ASSIGN_OR_RETURN(lsi_scores,
                               LsiCorrelation::Compute(data, config_.lsi));
  }
  result.stats.lsi_ms = MsSince(phase_start);

  phase_start = Clock::now();
  std::vector<CandidatePair> pairs =
      config_.use_indexed_join
          ? IndexedCandidates(data, lsi_scores, &result.stats)
          : NaiveCandidates(data, lsi_scores);
  result.stats.pairs_generated = pairs.size();
  result.stats.pairs_pruned = result.stats.pairs_total - pairs.size();
  result.stats.feature_ms = MsSince(phase_start);

  phase_start = Clock::now();
  // Order by correlation, breaking ties (frequent at small sample sizes,
  // where many LSI scores saturate) by the strongest direct evidence.
  // Candidates enter lexicographically ordered and the input index is the
  // final tie-break, which reproduces a stable sort of the 40-byte pairs
  // while moving only 20-byte keys; the gather afterwards is one linear
  // copy. The sequence is the same whether or not zero-score pairs were
  // pruned.
  {
    struct OrderKey {
      double primary;
      double strongest;
      size_t idx;
    };
    std::vector<OrderKey> keys(pairs.size());
    for (size_t k = 0; k < pairs.size(); ++k) {
      const CandidatePair& p = pairs[k];
      keys[k].primary = config_.use_lsi ? p.lsi : std::max(p.vsim, p.lsim);
      keys[k].strongest = std::max(p.vsim, p.lsim);
      keys[k].idx = k;
    }
    std::sort(keys.begin(), keys.end(),
              [](const OrderKey& x, const OrderKey& y) {
                if (x.primary != y.primary) return x.primary > y.primary;
                if (x.strongest != y.strongest) {
                  return x.strongest > y.strongest;
                }
                return x.idx < y.idx;
              });
    std::vector<CandidatePair> ordered;
    ordered.reserve(pairs.size());
    for (const OrderKey& k : keys) ordered.push_back(pairs[k.idx]);
    pairs = std::move(ordered);
  }
  if (config_.keep_all_pairs) result.all_pairs = pairs;
  result.stats.order_ms = MsSince(phase_start);
  phase_start = Clock::now();

  // --- WikiMatch single step: no queue, no constraints, no revision ----------
  if (config_.single_step) {
    for (const auto& p : pairs) {
      if (std::max(p.vsim, p.lsim) > 0.0) {
        result.matches.AddPair(data.groups[p.i].key, data.groups[p.j].key);
        result.processed_order.push_back(p);
      }
    }
    result.stats.match_ms = MsSince(phase_start);
    result.stats.total_ms = MsSince(align_start);
    return result;
  }

  // --- Build the priority queue P --------------------------------------------
  std::vector<CandidatePair> queue;
  for (const auto& p : pairs) {
    bool admitted = config_.use_lsi ? p.lsi > config_.t_lsi
                                    : std::max(p.vsim, p.lsim) > 0.0;
    if (admitted) queue.push_back(p);
  }
  if (config_.random_order) {
    util::Rng rng(config_.random_seed);
    rng.Shuffle(&queue);
  }

  // Group-index membership bitmap mirroring result.matches: the main loop
  // consults membership twice per queued pair, and Contains() is a
  // string-pair map lookup. Index- and key-membership coincide only when
  // group keys are unique (SchemaBuilder guarantees it; hand-built data
  // might not), so verify once and fall back to Contains() on duplicates.
  std::vector<uint8_t> matched(n, 0);
  bool keys_unique = true;
  {
    std::vector<const eval::AttrKey*> keys;
    keys.reserve(n);
    for (const auto& g : data.groups) keys.push_back(&g.key);
    std::sort(keys.begin(), keys.end(),
              [](const eval::AttrKey* a, const eval::AttrKey* b) {
                return *a < *b;
              });
    for (size_t k = 1; k < keys.size(); ++k) {
      if (*keys[k - 1] == *keys[k]) {
        keys_unique = false;
        break;
      }
    }
  }
  auto is_matched = [&](size_t idx, const eval::AttrKey& key,
                        const eval::MatchSet& matches) {
    return keys_unique ? matched[idx] != 0 : matches.Contains(key);
  };

  // Index-space mirror of result.matches' clusters (again only valid with
  // unique keys): the absorb constraint needs every member of one cluster,
  // and MatchSet::ClusterOf scans its whole string-keyed parent map and
  // materializes a std::set per call. Here it is a member-list walk with
  // integer LSI lookups. Order does not matter — the constraint is a
  // conjunction over all members.
  std::vector<uint32_t> uf(n);
  std::vector<std::vector<uint32_t>> uf_members(n);
  if (keys_unique) {
    for (uint32_t k = 0; k < static_cast<uint32_t>(n); ++k) {
      uf[k] = k;
      uf_members[k].push_back(k);
    }
  }
  auto uf_find = [&](uint32_t x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  };
  auto uf_unite = [&](uint32_t a, uint32_t b) {
    a = uf_find(a);
    b = uf_find(b);
    if (a == b) return;
    if (uf_members[a].size() < uf_members[b].size()) std::swap(a, b);
    uf[b] = a;
    uf_members[a].insert(uf_members[a].end(), uf_members[b].begin(),
                         uf_members[b].end());
    uf_members[b].clear();
    uf_members[b].shrink_to_fit();
  };

  // --- IntegrateMatches (Algorithm 2) -----------------------------------------
  auto integrate = [&](const CandidatePair& p, eval::MatchSet* matches) {
    const eval::AttrKey& ka = data.groups[p.i].key;
    const eval::AttrKey& kb = data.groups[p.j].key;
    bool has_a = is_matched(p.i, ka, *matches);
    bool has_b = is_matched(p.j, kb, *matches);
    if (!has_a && !has_b) {
      matches->AddPair(ka, kb);
      matched[p.i] = matched[p.j] = 1;
      if (keys_unique) {
        uf_unite(static_cast<uint32_t>(p.i), static_cast<uint32_t>(p.j));
      }
      return true;
    }
    if (has_a && has_b) return false;  // Both already matched: ignore.
    // Exactly one side is in an existing match m_j: absorb the other if it
    // correlates positively with every member of m_j.
    const eval::AttrKey& present = has_a ? ka : kb;
    size_t newcomer_idx = has_a ? p.j : p.i;
    if (config_.use_integrate_constraint && config_.use_lsi) {
      if (keys_unique) {
        size_t present_idx = has_a ? p.i : p.j;
        uint32_t root = uf_find(static_cast<uint32_t>(present_idx));
        for (uint32_t mi : uf_members[root]) {
          if (lsi_scores.Score(mi, newcomer_idx) <= config_.t_lsi) {
            return false;
          }
        }
      } else {
        for (const eval::AttrKey& member : matches->ClusterOf(present)) {
          size_t mi = data.GroupIndex(member);
          if (mi == SIZE_MAX) continue;
          if (lsi_scores.Score(mi, newcomer_idx) <= config_.t_lsi) {
            return false;
          }
        }
      }
    }
    matches->AddPair(ka, kb);
    matched[p.i] = matched[p.j] = 1;
    if (keys_unique) {
      uf_unite(static_cast<uint32_t>(p.i), static_cast<uint32_t>(p.j));
    }
    return true;
  };

  // --- Main loop (Algorithm 1) -------------------------------------------------
  std::vector<CandidatePair> uncertain;
  for (const auto& p : queue) {
    double strongest = std::max(p.vsim, p.lsim);
    if (strongest > config_.t_sim) {
      if (integrate(p, &result.matches)) result.processed_order.push_back(p);
    } else {
      uncertain.push_back(p);
    }
  }

  // --- ReviseUncertain (Section 3.4) -------------------------------------------
  if (config_.use_revise_uncertain && !uncertain.empty()) {
    std::vector<std::pair<double, CandidatePair>> revised;
    for (const auto& p : uncertain) {
      if (std::max(p.vsim, p.lsim) < config_.t_revise_min_sim) continue;
      double eg =
          keys_unique
              ? InductiveGroupingScoreImpl(
                    data, result.matches,
                    [&](size_t k) { return matched[k] != 0; }, p.i, p.j)
              : InductiveGroupingScore(data, result.matches, p.i, p.j);
      bool eligible = config_.use_inductive_grouping
                          ? eg > config_.t_inductive
                          : true;
      if (eligible) revised.emplace_back(eg, p);
    }
    // Process revived candidates in LSI order (the algorithm's ordering
    // signal), breaking ties by the inductive grouping score — eg decides
    // *admission*, correlation decides *priority*.
    std::stable_sort(revised.begin(), revised.end(),
                     [](const auto& x, const auto& y) {
                       if (x.second.lsi != y.second.lsi) {
                         return x.second.lsi > y.second.lsi;
                       }
                       return x.first > y.first;
                     });
    for (const auto& [eg, p] : revised) {
      if (integrate(p, &result.matches)) result.processed_order.push_back(p);
    }
  }

  result.stats.match_ms = MsSince(phase_start);
  result.stats.total_ms = MsSince(align_start);
  return result;
}

}  // namespace match
}  // namespace wikimatch
