#include "match/aligner.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace wikimatch {
namespace match {

AttributeAligner::AttributeAligner(MatcherConfig config)
    : config_(std::move(config)) {}

double AttributeAligner::ValueSimilarity(const AttributeGroup& a,
                                         const AttributeGroup& b) {
  return a.values.Cosine(b.values);
}

double AttributeAligner::LinkSimilarity(const AttributeGroup& a,
                                        const AttributeGroup& b) {
  return a.links.Cosine(b.links);
}

double AttributeAligner::GroupingScore(const TypePairData& data, size_t i,
                                       size_t j) {
  if (i == j) return 1.0;
  double oi = data.groups[i].occurrences;
  double oj = data.groups[j].occurrences;
  if (oi <= 0.0 || oj <= 0.0) return 0.0;
  auto it = data.co_occur.find({std::min(i, j), std::max(i, j)});
  double opq = it == data.co_occur.end() ? 0.0 : it->second;
  return opq / std::min(oi, oj);
}

double AttributeAligner::InductiveGroupingScore(const TypePairData& data,
                                                const eval::MatchSet& matches,
                                                size_t i, size_t j) {
  const std::string& lang_i = data.groups[i].key.language;
  const std::string& lang_j = data.groups[j].key.language;

  // C_a: matched attributes co-occurring with a in its mono-lingual schema.
  auto companions = [&](size_t idx, const std::string& lang) {
    std::vector<size_t> out;
    for (size_t k = 0; k < data.groups.size(); ++k) {
      if (k == idx || data.groups[k].key.language != lang) continue;
      if (!matches.Contains(data.groups[k].key)) continue;
      auto it = data.co_occur.find({std::min(idx, k), std::max(idx, k)});
      if (it != data.co_occur.end() && it->second > 0.0) out.push_back(k);
    }
    return out;
  };
  std::vector<size_t> ca = companions(i, lang_i);
  std::vector<size_t> cb = companions(j, lang_j);

  double sum = 0.0;
  size_t count = 0;
  for (size_t a : ca) {
    for (size_t b : cb) {
      if (!matches.AreMatched(data.groups[a].key, data.groups[b].key)) {
        continue;
      }
      sum += GroupingScore(data, i, a) * GroupingScore(data, j, b);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

util::Result<AlignmentResult> AttributeAligner::Align(
    const TypePairData& data) const {
  AlignmentResult result;
  const size_t n = data.groups.size();
  if (n == 0) return result;

  // --- Feature computation ---------------------------------------------------
  LsiCorrelation lsi_scores;
  if (config_.use_lsi) {
    WIKIMATCH_ASSIGN_OR_RETURN(lsi_scores,
                               LsiCorrelation::Compute(data, config_.lsi));
  }

  std::vector<CandidatePair> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      CandidatePair p;
      p.i = i;
      p.j = j;
      p.vsim = config_.use_vsim
                   ? ValueSimilarity(data.groups[i], data.groups[j])
                   : 0.0;
      bool links_supported =
          data.groups[i].links.Sum() >=
              config_.min_link_support * data.groups[i].occurrences &&
          data.groups[j].links.Sum() >=
              config_.min_link_support * data.groups[j].occurrences;
      p.lsim = config_.use_lsim && links_supported
                   ? LinkSimilarity(data.groups[i], data.groups[j])
                   : 0.0;
      p.lsi = config_.use_lsi ? lsi_scores.Score(i, j) : 0.0;
      pairs.push_back(p);
    }
  }

  auto order_key = [&](const CandidatePair& p) {
    return config_.use_lsi ? p.lsi : std::max(p.vsim, p.lsim);
  };
  // Order by correlation, breaking ties (frequent at small sample sizes,
  // where many LSI scores saturate) by the strongest direct evidence.
  std::stable_sort(pairs.begin(), pairs.end(),
                   [&](const CandidatePair& x, const CandidatePair& y) {
                     double kx = order_key(x);
                     double ky = order_key(y);
                     if (kx != ky) return kx > ky;
                     return std::max(x.vsim, x.lsim) >
                            std::max(y.vsim, y.lsim);
                   });
  result.all_pairs = pairs;

  // --- WikiMatch single step: no queue, no constraints, no revision ----------
  if (config_.single_step) {
    for (const auto& p : pairs) {
      if (std::max(p.vsim, p.lsim) > 0.0) {
        result.matches.AddPair(data.groups[p.i].key, data.groups[p.j].key);
        result.processed_order.push_back(p);
      }
    }
    return result;
  }

  // --- Build the priority queue P --------------------------------------------
  std::vector<CandidatePair> queue;
  for (const auto& p : pairs) {
    bool admitted = config_.use_lsi ? p.lsi > config_.t_lsi
                                    : std::max(p.vsim, p.lsim) > 0.0;
    if (admitted) queue.push_back(p);
  }
  if (config_.random_order) {
    util::Rng rng(config_.random_seed);
    rng.Shuffle(&queue);
  }

  // --- IntegrateMatches (Algorithm 2) -----------------------------------------
  auto integrate = [&](const CandidatePair& p, eval::MatchSet* matches) {
    const eval::AttrKey& ka = data.groups[p.i].key;
    const eval::AttrKey& kb = data.groups[p.j].key;
    bool has_a = matches->Contains(ka);
    bool has_b = matches->Contains(kb);
    if (!has_a && !has_b) {
      matches->AddPair(ka, kb);
      return true;
    }
    if (has_a && has_b) return false;  // Both already matched: ignore.
    // Exactly one side is in an existing match m_j: absorb the other if it
    // correlates positively with every member of m_j.
    const eval::AttrKey& present = has_a ? ka : kb;
    size_t newcomer_idx = has_a ? p.j : p.i;
    if (config_.use_integrate_constraint && config_.use_lsi) {
      for (const eval::AttrKey& member : matches->ClusterOf(present)) {
        size_t mi = data.GroupIndex(member);
        if (mi == SIZE_MAX) continue;
        if (lsi_scores.Score(mi, newcomer_idx) <= config_.t_lsi) {
          return false;
        }
      }
    }
    matches->AddPair(ka, kb);
    return true;
  };

  // --- Main loop (Algorithm 1) -------------------------------------------------
  std::vector<CandidatePair> uncertain;
  for (const auto& p : queue) {
    double strongest = std::max(p.vsim, p.lsim);
    if (strongest > config_.t_sim) {
      if (integrate(p, &result.matches)) result.processed_order.push_back(p);
    } else {
      uncertain.push_back(p);
    }
  }

  // --- ReviseUncertain (Section 3.4) -------------------------------------------
  if (config_.use_revise_uncertain && !uncertain.empty()) {
    std::vector<std::pair<double, CandidatePair>> revised;
    for (const auto& p : uncertain) {
      if (std::max(p.vsim, p.lsim) < config_.t_revise_min_sim) continue;
      double eg = InductiveGroupingScore(data, result.matches, p.i, p.j);
      bool eligible = config_.use_inductive_grouping
                          ? eg > config_.t_inductive
                          : true;
      if (eligible) revised.emplace_back(eg, p);
    }
    // Process revived candidates in LSI order (the algorithm's ordering
    // signal), breaking ties by the inductive grouping score — eg decides
    // *admission*, correlation decides *priority*.
    std::stable_sort(revised.begin(), revised.end(),
                     [](const auto& x, const auto& y) {
                       if (x.second.lsi != y.second.lsi) {
                         return x.second.lsi > y.second.lsi;
                       }
                       return x.first > y.first;
                     });
    for (const auto& [eg, p] : revised) {
      if (integrate(p, &result.matches)) result.processed_order.push_back(p);
    }
  }

  return result;
}

}  // namespace match
}  // namespace wikimatch
