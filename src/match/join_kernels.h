// Runtime-dispatched accumulation kernels for the similarity join's
// structure-of-arrays posting layout (docs/PERFORMANCE.md).
//
// A kernel scatters one row term's weight against a CSR posting range:
//
//   dot[group[k]] += w * weight[k]        for k in [0, n)
//
// Group ids within one range are strictly increasing (each group
// contributes at most one posting per term), so every update in a range
// targets a distinct slot — the adds are independent and the 4-wide
// unrolled form is bit-identical to the sequential loop. Across ranges the
// caller iterates the row's own terms in ascending term-id order, which is
// exactly the order SparseVector::Dot visits shared terms; the whole
// accumulation therefore reproduces the naive pairwise cosine bit for bit.
//
// Two kernels exist:
//   * kScalar — the reference loop, with the seen/touched sparse-row
//     bookkeeping the original join used (branchy, output sorted at the
//     end). Kept as the equivalence baseline.
//   * kVector — branch-free unrolled accumulation with no per-posting
//     bookkeeping; nonzero partners are recovered by a dense sweep of the
//     row's tail, which visits ascending j directly. Default.
//
// Selection: WIKIMATCH_JOIN_KERNEL=scalar|vector in the environment (read
// once per process), overridable per test or bench via
// SetJoinKernelForTest. tools/check.sh runs the align equivalence suite
// under both values, plain and sanitized, so kernel divergence fails the
// matrix instead of silently changing scores.

#ifndef WIKIMATCH_MATCH_JOIN_KERNELS_H_
#define WIKIMATCH_MATCH_JOIN_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace wikimatch {
namespace match {

enum class JoinKernel {
  kScalar,
  kVector,
};

/// \brief The kernel new SimilarityJoinIndex instances will use: the
/// test/bench override if set, else $WIKIMATCH_JOIN_KERNEL, else kVector.
JoinKernel ActiveJoinKernel();

/// \brief Forces the kernel for subsequently built indexes (kernels are
/// captured at index construction). Pass nullptr to clear the override and
/// fall back to the environment/default.
void SetJoinKernelForTest(const JoinKernel* kernel);

/// \brief Display name ("scalar" / "vector").
const char* JoinKernelName(JoinKernel kernel);

namespace kernels {

/// \brief dot[groups[k]] += w * weights[k], 4-wide unrolled. All group ids
/// in the range are distinct, so the unroll is bit-identical to the
/// sequential loop.
void AccumulateF64(const uint32_t* groups, const double* weights, size_t n,
                   double w, double* dot);

/// \brief Quantized variant: weights were rounded to fp32 at build; the
/// products and the accumulator stay double.
void AccumulateF32(const uint32_t* groups, const float* weights, size_t n,
                   double w, double* dot);

}  // namespace kernels

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_JOIN_KERNELS_H_
