#include "match/serialize.h"

namespace wikimatch {
namespace match {
namespace {

void EncodeAttrKey(const eval::AttrKey& key, util::BinaryWriter* w) {
  w->PutString(key.language);
  w->PutString(key.name);
}

util::Result<eval::AttrKey> DecodeAttrKey(util::BinaryReader* r) {
  eval::AttrKey key;
  WIKIMATCH_ASSIGN_OR_RETURN(key.language, r->ReadString());
  WIKIMATCH_ASSIGN_OR_RETURN(key.name, r->ReadString());
  return key;
}

void EncodeCandidatePair(const CandidatePair& pair, util::BinaryWriter* w) {
  w->PutU64(pair.i);
  w->PutU64(pair.j);
  w->PutDouble(pair.vsim);
  w->PutDouble(pair.lsim);
  w->PutDouble(pair.lsi);
}

util::Result<CandidatePair> DecodeCandidatePair(util::BinaryReader* r) {
  CandidatePair pair;
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t i, r->ReadU64());
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t j, r->ReadU64());
  pair.i = i;
  pair.j = j;
  WIKIMATCH_ASSIGN_OR_RETURN(pair.vsim, r->ReadDouble());
  WIKIMATCH_ASSIGN_OR_RETURN(pair.lsim, r->ReadDouble());
  WIKIMATCH_ASSIGN_OR_RETURN(pair.lsi, r->ReadDouble());
  return pair;
}

void EncodeFrequencies(const eval::AttrFrequencies& freq,
                       util::BinaryWriter* w) {
  w->PutU64(freq.size());
  for (const auto& [key, count] : freq) {
    EncodeAttrKey(key, w);
    w->PutDouble(count);
  }
}

util::Result<eval::AttrFrequencies> DecodeFrequencies(
    util::BinaryReader* r) {
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t size, r->ReadU64());
  eval::AttrFrequencies freq;
  for (uint64_t i = 0; i < size; ++i) {
    auto key = DecodeAttrKey(r);
    if (!key.ok()) return key.status();
    WIKIMATCH_ASSIGN_OR_RETURN(double count, r->ReadDouble());
    freq.emplace(std::move(key).ValueOrDie(), count);
  }
  return freq;
}

void EncodePipelineStats(const PipelineStats& stats, util::BinaryWriter* w) {
  // Wall times are written as zero: snapshots must stay byte-identical for
  // the same inputs regardless of machine or thread count, so only the
  // deterministic join counters are persisted.
  w->PutDouble(0.0);
  w->PutDouble(0.0);
  w->PutDouble(0.0);
  w->PutU64(stats.type_pairs);
  w->PutU64(stats.align.groups);
  w->PutU64(stats.align.pairs_total);
  w->PutU64(stats.align.pairs_generated);
  w->PutU64(stats.align.pairs_pruned);
  w->PutU64(stats.align.postings_visited);
  w->PutDouble(0.0);
  w->PutDouble(0.0);
  w->PutDouble(0.0);
  w->PutDouble(0.0);
  w->PutDouble(0.0);
}

util::Result<PipelineStats> DecodePipelineStats(util::BinaryReader* r) {
  PipelineStats stats;
  WIKIMATCH_ASSIGN_OR_RETURN(stats.type_match_ms, r->ReadDouble());
  WIKIMATCH_ASSIGN_OR_RETURN(stats.schema_ms, r->ReadDouble());
  WIKIMATCH_ASSIGN_OR_RETURN(stats.total_ms, r->ReadDouble());
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t type_pairs, r->ReadU64());
  stats.type_pairs = type_pairs;
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t groups, r->ReadU64());
  stats.align.groups = groups;
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t pairs_total, r->ReadU64());
  stats.align.pairs_total = pairs_total;
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t pairs_generated, r->ReadU64());
  stats.align.pairs_generated = pairs_generated;
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t pairs_pruned, r->ReadU64());
  stats.align.pairs_pruned = pairs_pruned;
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t postings_visited, r->ReadU64());
  stats.align.postings_visited = postings_visited;
  WIKIMATCH_ASSIGN_OR_RETURN(stats.align.lsi_ms, r->ReadDouble());
  WIKIMATCH_ASSIGN_OR_RETURN(stats.align.feature_ms, r->ReadDouble());
  WIKIMATCH_ASSIGN_OR_RETURN(stats.align.order_ms, r->ReadDouble());
  WIKIMATCH_ASSIGN_OR_RETURN(stats.align.match_ms, r->ReadDouble());
  WIKIMATCH_ASSIGN_OR_RETURN(stats.align.total_ms, r->ReadDouble());
  return stats;
}

util::Result<TypePairResult> DecodeTypePairResult(util::BinaryReader* r) {
  TypePairResult result;
  WIKIMATCH_ASSIGN_OR_RETURN(result.type_a, r->ReadString());
  WIKIMATCH_ASSIGN_OR_RETURN(result.type_b, r->ReadString());
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t num_duals, r->ReadU64());
  result.num_duals = num_duals;
  auto alignment = DecodeAlignmentResult(r);
  if (!alignment.ok()) return alignment.status();
  result.alignment = std::move(alignment).ValueOrDie();
  auto frequencies = DecodeFrequencies(r);
  if (!frequencies.ok()) return frequencies.status();
  result.frequencies = std::move(frequencies).ValueOrDie();
  return result;
}

}  // namespace

void EncodeDictionary(const TranslationDictionary& dictionary,
                      util::BinaryWriter* w) {
  w->PutU64(dictionary.entries().size());
  for (const auto& [key, translation] : dictionary.entries()) {
    const auto& [from_lang, to_lang, term] = key;
    w->PutString(from_lang);
    w->PutString(to_lang);
    w->PutString(term);
    w->PutString(translation);
  }
}

util::Result<TranslationDictionary> DecodeDictionary(
    util::BinaryReader* r) {
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t size, r->ReadU64());
  TranslationDictionary dictionary;
  for (uint64_t i = 0; i < size; ++i) {
    WIKIMATCH_ASSIGN_OR_RETURN(std::string from_lang, r->ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(std::string to_lang, r->ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(std::string term, r->ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(std::string translation, r->ReadString());
    dictionary.Add(from_lang, term, to_lang, translation);
  }
  return dictionary;
}

void EncodeMatchSet(const eval::MatchSet& matches, util::BinaryWriter* w) {
  w->PutU8(matches.transitive() ? 1 : 0);
  if (matches.transitive()) {
    auto clusters = matches.Clusters();
    w->PutU64(clusters.size());
    for (const auto& cluster : clusters) {
      w->PutU64(cluster.size());
      for (const auto& key : cluster) EncodeAttrKey(key, w);
    }
  } else {
    auto pairs = matches.DirectPairs();
    w->PutU64(pairs.size());
    for (const auto& [a, b] : pairs) {
      EncodeAttrKey(a, w);
      EncodeAttrKey(b, w);
    }
  }
}

util::Result<eval::MatchSet> DecodeMatchSet(util::BinaryReader* r) {
  WIKIMATCH_ASSIGN_OR_RETURN(uint8_t transitive, r->ReadU8());
  eval::MatchSet matches(transitive != 0);
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t count, r->ReadU64());
  if (transitive != 0) {
    for (uint64_t i = 0; i < count; ++i) {
      WIKIMATCH_ASSIGN_OR_RETURN(uint64_t cluster_size, r->ReadU64());
      std::vector<eval::AttrKey> cluster;
      cluster.reserve(cluster_size);
      for (uint64_t j = 0; j < cluster_size; ++j) {
        auto key = DecodeAttrKey(r);
        if (!key.ok()) return key.status();
        cluster.push_back(std::move(key).ValueOrDie());
      }
      matches.AddCluster(cluster);
    }
  } else {
    for (uint64_t i = 0; i < count; ++i) {
      auto a = DecodeAttrKey(r);
      if (!a.ok()) return a.status();
      auto b = DecodeAttrKey(r);
      if (!b.ok()) return b.status();
      matches.AddPair(a.ValueOrDie(), b.ValueOrDie());
    }
  }
  return matches;
}

void EncodeAlignmentResult(const AlignmentResult& alignment,
                           util::BinaryWriter* w) {
  EncodeMatchSet(alignment.matches, w);
  w->PutU64(alignment.processed_order.size());
  for (const auto& pair : alignment.processed_order) {
    EncodeCandidatePair(pair, w);
  }
  w->PutU64(alignment.all_pairs.size());
  for (const auto& pair : alignment.all_pairs) EncodeCandidatePair(pair, w);
}

util::Result<AlignmentResult> DecodeAlignmentResult(util::BinaryReader* r) {
  AlignmentResult alignment;
  auto matches = DecodeMatchSet(r);
  if (!matches.ok()) return matches.status();
  alignment.matches = std::move(matches).ValueOrDie();
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t num_processed, r->ReadU64());
  alignment.processed_order.reserve(num_processed);
  for (uint64_t i = 0; i < num_processed; ++i) {
    auto pair = DecodeCandidatePair(r);
    if (!pair.ok()) return pair.status();
    alignment.processed_order.push_back(pair.ValueOrDie());
  }
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t num_all, r->ReadU64());
  alignment.all_pairs.reserve(num_all);
  for (uint64_t i = 0; i < num_all; ++i) {
    auto pair = DecodeCandidatePair(r);
    if (!pair.ok()) return pair.status();
    alignment.all_pairs.push_back(pair.ValueOrDie());
  }
  return alignment;
}

void EncodePipelineResult(const PipelineResult& result,
                          util::BinaryWriter* w) {
  w->PutU64(result.type_matches.size());
  for (const auto& tm : result.type_matches) {
    w->PutString(tm.type_a);
    w->PutString(tm.type_b);
    w->PutU64(tm.votes);
    w->PutDouble(tm.confidence);
  }
  w->PutU64(result.per_type.size());
  for (const auto& tr : result.per_type) {
    w->PutString(tr.type_a);
    w->PutString(tr.type_b);
    w->PutU64(tr.num_duals);
    EncodeAlignmentResult(tr.alignment, w);
    EncodeFrequencies(tr.frequencies, w);
  }
  // Appended after the v1 payload so snapshots written before stats existed
  // still decode (the reader checks AtEnd before reading them).
  EncodePipelineStats(result.stats, w);
  // Second append: per-unit join counters, so an incremental rebuild that
  // reuses units loaded from a snapshot can re-aggregate the exact stats a
  // from-scratch run would report. Readers that predate this block stop
  // after the aggregate stats and ignore the trailing bytes.
  w->PutU64(result.per_type.size());
  for (const auto& tr : result.per_type) {
    const AlignStats& s = tr.alignment.stats;
    w->PutU64(s.groups);
    w->PutU64(s.pairs_total);
    w->PutU64(s.pairs_generated);
    w->PutU64(s.pairs_pruned);
    w->PutU64(s.postings_visited);
  }
}

util::Result<PipelineResult> DecodePipelineResult(util::BinaryReader* r) {
  PipelineResult result;
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t num_types, r->ReadU64());
  result.type_matches.reserve(num_types);
  for (uint64_t i = 0; i < num_types; ++i) {
    TypeMatch tm;
    WIKIMATCH_ASSIGN_OR_RETURN(tm.type_a, r->ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(tm.type_b, r->ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(uint64_t votes, r->ReadU64());
    tm.votes = votes;
    WIKIMATCH_ASSIGN_OR_RETURN(tm.confidence, r->ReadDouble());
    result.type_matches.push_back(std::move(tm));
  }
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t num_pairs, r->ReadU64());
  result.per_type.reserve(num_pairs);
  for (uint64_t i = 0; i < num_pairs; ++i) {
    auto tr = DecodeTypePairResult(r);
    if (!tr.ok()) return tr.status();
    result.per_type.push_back(std::move(tr).ValueOrDie());
  }
  // Everything past here is the appended stats region: optional, and — to
  // keep the append back-compatible in both directions — a payload that
  // ends partway through it decodes as "stats absent" rather than erroring.
  // Transport corruption is still caught by the section CRC upstream.
  if (!r->AtEnd()) {
    auto stats = DecodePipelineStats(r);
    if (!stats.ok()) {
      if (stats.status().code() == util::StatusCode::kOutOfRange) {
        return result;
      }
      return stats.status();
    }
    result.stats = std::move(stats).ValueOrDie();
  }
  if (!r->AtEnd()) {
    auto count = r->ReadU64();
    if (!count.ok() || count.ValueOrDie() != result.per_type.size()) {
      return result;
    }
    std::vector<AlignStats> per_unit(result.per_type.size());
    for (auto& s : per_unit) {
      size_t* fields[] = {&s.groups, &s.pairs_total, &s.pairs_generated,
                          &s.pairs_pruned, &s.postings_visited};
      for (size_t* field : fields) {
        auto v = r->ReadU64();
        if (!v.ok()) return result;  // truncated inside the append: absent
        *field = static_cast<size_t>(v.ValueOrDie());
      }
    }
    for (size_t i = 0; i < per_unit.size(); ++i) {
      result.per_type[i].alignment.stats = per_unit[i];
    }
  }
  return result;
}

}  // namespace match
}  // namespace wikimatch
