// LSI attribute correlation (Section 3.2).
//
// Rows of the occurrence matrix are attribute groups, columns are
// dual-language infoboxes; M(i,j) = 1 when attribute i appears in dual
// infobox j. A rank-f truncated SVD maps each attribute to a
// language-independent concept vector (row of U_f scaled by the singular
// values). The paper's three-case score:
//
//   cross-language pair:             cosine(v_i, v_j)
//   same-language, co-occurring:     0        (unlikely synonyms)
//   same-language, non-co-occurring: 1 - cosine(v_i, v_j)

#ifndef WIKIMATCH_MATCH_LSI_H_
#define WIKIMATCH_MATCH_LSI_H_

#include <vector>

#include "match/schema_builder.h"
#include "util/result.h"

namespace wikimatch {
namespace match {

/// \brief Options for the LSI correlation.
struct LsiOptions {
  /// Truncation rank f; 0 chooses clamp(num_groups / 3, 4, 64).
  size_t rank = 0;
  /// Same-language pairs are declared non-synonyms (score 0) when their
  /// co-occurrence count exceeds this fraction of the rarer attribute's
  /// occurrences. The paper's rule is "co-occur => 0"; the tolerance
  /// absorbs noise (misplaced values) in large corpora.
  double co_occur_tolerance = 0.02;
};

/// \brief Precomputed LSI correlation scores for one TypePairData.
class LsiCorrelation {
 public:
  /// Constructs an empty correlation (every score 0); use Compute().
  LsiCorrelation() = default;

  /// \brief Runs the truncated SVD and caches attribute vectors.
  static util::Result<LsiCorrelation> Compute(const TypePairData& data,
                                              const LsiOptions& options = {});

  /// \brief The paper's LSI score for groups i and j (indexes into
  /// data.groups). Symmetric; clamped to [0, 1].
  double Score(size_t i, size_t j) const;

  /// \brief Raw cosine of the reduced attribute vectors (pre-rule).
  double RawCosine(size_t i, size_t j) const;

  /// \brief Effective truncation rank used.
  size_t rank() const { return rank_; }

 private:

  std::vector<std::vector<double>> reduced_;  // per-group scaled vector
  std::vector<bool> is_lang_a_;
  std::vector<std::vector<bool>> co_occurs_;  // same-language zero rule
  size_t rank_ = 0;
};

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_LSI_H_
