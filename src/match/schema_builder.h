// SchemaBuilder: turns the corpus into the per-type-pair data structures
// the aligner consumes — attribute groups (AG in Algorithm 1) with their
// value vectors (translated into the second language, Section 3.2), link
// structure sets, occurrence statistics, and the dual-language infobox
// membership needed for the LSI occurrence matrix and grouping scores.

#ifndef WIKIMATCH_MATCH_SCHEMA_BUILDER_H_
#define WIKIMATCH_MATCH_SCHEMA_BUILDER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "eval/match_set.h"
#include "eval/metrics.h"
#include "la/sparse_vector.h"
#include "match/dictionary.h"
#include "util/result.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace match {

/// \brief One attribute group: all occurrences of one attribute name in one
/// language, values and links pooled across the type's infoboxes.
struct AttributeGroup {
  eval::AttrKey key;
  /// Value vector: raw term frequencies over value components (tokens and
  /// link anchor texts), with lang_a components translated into lang_b via
  /// the dictionary where possible.
  la::SparseVector values;
  /// Link structure: frequencies over canonicalized link targets (targets
  /// whose landing articles are joined by a cross-language link share one
  /// canonical id).
  la::SparseVector links;
  /// Number of infoboxes (of this type, this language) containing the
  /// attribute — the |a_i| weight of the evaluation metrics.
  double occurrences = 0.0;
  /// Indexes of the dual-language infoboxes whose `key.language` side
  /// contains the attribute (rows of the LSI occurrence matrix).
  std::set<uint32_t> dual_docs;
};

/// \brief Everything the aligner needs for one type pair.
struct TypePairData {
  std::string lang_a;  ///< e.g. "pt"
  std::string lang_b;  ///< e.g. "en"
  std::string type_a;  ///< localized type name in lang_a
  std::string type_b;  ///< localized type name in lang_b
  std::vector<AttributeGroup> groups;  ///< both languages, lang_a first
  /// Number of dual-language infoboxes (columns of the occurrence matrix).
  size_t num_duals = 0;
  /// Mono-language co-occurrence counts for the grouping score g:
  /// co_occur[{i, j}] = number of infoboxes containing both groups i and j
  /// (only meaningful when i and j share a language). Keys have i < j.
  std::map<std::pair<size_t, size_t>, double> co_occur;
  /// Shared term space of the value vectors (ids -> component strings).
  la::TermDictionary value_terms;

  /// \brief Index of the group with `key`, or SIZE_MAX.
  size_t GroupIndex(const eval::AttrKey& key) const;

  /// \brief |a_i| weights for the evaluation metrics.
  eval::AttrFrequencies Frequencies() const;
};

/// \brief Options for schema building.
struct SchemaBuilderOptions {
  /// Translate lang_a value components into lang_b via the dictionary
  /// before vector construction (the paper's v_t_a). Disabled by ablations
  /// and by baselines that must not use the dictionary.
  bool translate_values = true;
  /// Drop attributes occurring in fewer than this many infoboxes.
  size_t min_occurrences = 1;
  /// Use only the first N dual infoboxes (0 = all). Models tools that
  /// match from a bounded instance sample rather than the full corpus
  /// (the COMA++ baseline).
  size_t max_sample_infoboxes = 0;
};

/// \brief Builds TypePairData for the infoboxes of (lang_a, type_a) that
/// are cross-language-linked to infoboxes of (lang_b, type_b).
///
/// Returns NotFound when no dual pair exists.
util::Result<TypePairData> BuildTypePairData(
    const wiki::Corpus& corpus, const TranslationDictionary& dictionary,
    const std::string& lang_a, const std::string& type_a,
    const std::string& lang_b, const std::string& type_b,
    const SchemaBuilderOptions& options = {});

/// \brief Decomposes an attribute value into vector components: word and
/// number tokens of the plain text plus each link's full anchor text
/// (normalized). Exposed for tests.
std::vector<std::string> ValueComponents(const wiki::AttributeValue& value);

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_SCHEMA_BUILDER_H_
