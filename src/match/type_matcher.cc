#include "match/type_matcher.h"

#include <algorithm>

namespace wikimatch {
namespace match {

TypeMatcher::TypeMatcher(size_t min_votes, double min_confidence)
    : min_votes_(min_votes), min_confidence_(min_confidence) {}

std::vector<TypeMatch> TypeMatcher::Match(const wiki::Corpus& corpus,
                                          const std::string& lang_a,
                                          const std::string& lang_b) const {
  // votes[type_a][type_b] = count of dual pairs.
  std::map<std::string, std::map<std::string, size_t>> votes;
  std::map<std::string, size_t> totals;

  for (const auto& type_a : corpus.TypesIn(lang_a)) {
    for (wiki::ArticleId id : corpus.ArticlesOfType(lang_a, type_a)) {
      wiki::ArticleId other = corpus.CrossLanguageTarget(id, lang_b);
      if (other == wiki::kInvalidArticle) continue;
      const wiki::Article& b = corpus.Get(other);
      if (!b.infobox.has_value() || b.entity_type.empty()) continue;
      votes[type_a][b.entity_type]++;
      totals[type_a]++;
    }
  }

  std::vector<TypeMatch> out;
  for (const auto& [type_a, targets] : votes) {
    auto best = std::max_element(
        targets.begin(), targets.end(),
        [](const auto& x, const auto& y) { return x.second < y.second; });
    if (best == targets.end()) continue;
    TypeMatch m;
    m.type_a = type_a;
    m.type_b = best->first;
    m.votes = best->second;
    m.confidence =
        static_cast<double>(m.votes) / static_cast<double>(totals[type_a]);
    if (m.votes >= min_votes_ && m.confidence >= min_confidence_) {
      out.push_back(std::move(m));
    }
  }
  // Most-supported mappings first.
  std::sort(out.begin(), out.end(), [](const TypeMatch& x, const TypeMatch& y) {
    return x.votes > y.votes;
  });
  return out;
}

}  // namespace match
}  // namespace wikimatch
