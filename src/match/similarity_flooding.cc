#include "match/similarity_flooding.h"

#include <algorithm>
#include <cmath>

#include "match/aligner.h"
#include "match/lsi.h"

namespace wikimatch {
namespace match {

util::Result<FloodingResult> RunSimilarityFlooding(
    const TypePairData& data, const FloodingConfig& config) {
  FloodingResult out;

  std::vector<size_t> side_a;
  std::vector<size_t> side_b;
  for (size_t i = 0; i < data.groups.size(); ++i) {
    (data.groups[i].key.language == data.lang_a ? side_a : side_b)
        .push_back(i);
  }
  if (side_a.empty() || side_b.empty()) return out;

  LsiCorrelation lsi;
  if (config.lsi_blend > 0.0) {
    WIKIMATCH_ASSIGN_OR_RETURN(lsi, LsiCorrelation::Compute(data, config.lsi));
  }

  // Node space: all cross-language pairs.
  struct Node {
    size_t i;  // lang_a group
    size_t j;  // lang_b group
  };
  std::vector<Node> nodes;
  std::vector<double> sigma0;
  std::map<std::pair<size_t, size_t>, size_t> node_index;
  for (size_t i : side_a) {
    for (size_t j : side_b) {
      double feature = std::max(
          AttributeAligner::ValueSimilarity(data.groups[i], data.groups[j]),
          AttributeAligner::LinkSimilarity(data.groups[i], data.groups[j]));
      double initial = feature;
      if (config.lsi_blend > 0.0) {
        initial = (1.0 - config.lsi_blend) * feature +
                  config.lsi_blend * lsi.Score(i, j);
      }
      node_index[{i, j}] = nodes.size();
      nodes.push_back({i, j});
      sigma0.push_back(initial);
    }
  }

  // Propagation edges from co-occurrence: (a,b) -> (a',b') when a~a' and
  // b~b' co-occur on their respective sides. Weight g(a,a') * g(b,b'),
  // out-normalized per source node.
  struct Edge {
    size_t from;
    size_t to;
    double weight;
  };
  std::vector<Edge> edges;
  {
    // Neighbor lists per side from the co-occurrence table.
    std::map<size_t, std::vector<std::pair<size_t, double>>> neighbors;
    for (const auto& [key, count] : data.co_occur) {
      if (count <= 0.0) continue;
      double g = AttributeAligner::GroupingScore(data, key.first, key.second);
      if (g <= 0.0) continue;
      neighbors[key.first].emplace_back(key.second, g);
      neighbors[key.second].emplace_back(key.first, g);
    }
    std::vector<double> out_weight(nodes.size(), 0.0);
    for (size_t n = 0; n < nodes.size(); ++n) {
      auto na = neighbors.find(nodes[n].i);
      auto nb = neighbors.find(nodes[n].j);
      if (na == neighbors.end() || nb == neighbors.end()) continue;
      for (const auto& [a2, ga] : na->second) {
        if (data.groups[a2].key.language != data.lang_a) continue;
        for (const auto& [b2, gb] : nb->second) {
          if (data.groups[b2].key.language != data.lang_b) continue;
          auto it = node_index.find({a2, b2});
          if (it == node_index.end()) continue;
          double w = ga * gb;
          edges.push_back({n, it->second, w});
          out_weight[n] += w;
        }
      }
    }
    // Out-normalize.
    for (auto& e : edges) {
      if (out_weight[e.from] > 0.0) e.weight /= out_weight[e.from];
    }
  }

  // Fixpoint iteration.
  std::vector<double> sigma = sigma0;
  std::vector<double> next(nodes.size());
  int iter = 0;
  for (; iter < config.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (const auto& e : edges) {
      next[e.to] += e.weight * sigma[e.from];
    }
    double max_val = 0.0;
    for (size_t n = 0; n < nodes.size(); ++n) {
      next[n] = sigma0[n] + config.propagation_weight * next[n];
      max_val = std::max(max_val, next[n]);
    }
    if (max_val > 0.0) {
      for (auto& v : next) v /= max_val;
    }
    double delta = 0.0;
    for (size_t n = 0; n < nodes.size(); ++n) {
      delta = std::max(delta, std::fabs(next[n] - sigma[n]));
    }
    sigma.swap(next);
    if (delta < config.tolerance) {
      ++iter;
      break;
    }
  }
  out.iterations = iter;

  // Report converged similarities.
  out.pairs.reserve(nodes.size());
  out.similarity = sigma;
  for (const auto& node : nodes) {
    out.pairs.emplace_back(data.groups[node.i].key, data.groups[node.j].key);
  }

  // Selection: threshold + optional mutual-best filtering.
  std::map<size_t, double> best_of;
  for (size_t n = 0; n < nodes.size(); ++n) {
    best_of[nodes[n].i] = std::max(best_of[nodes[n].i], sigma[n]);
    best_of[nodes[n].j] = std::max(best_of[nodes[n].j], sigma[n]);
  }
  for (size_t n = 0; n < nodes.size(); ++n) {
    if (sigma[n] < config.select_threshold) continue;
    if (config.reciprocal &&
        (sigma[n] < best_of[nodes[n].i] || sigma[n] < best_of[nodes[n].j])) {
      continue;
    }
    out.matches.AddPair(data.groups[nodes[n].i].key,
                        data.groups[nodes[n].j].key);
  }
  return out;
}

}  // namespace match
}  // namespace wikimatch
