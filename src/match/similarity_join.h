// Sparse similarity join for the aligner feature stage (Section 3.2).
//
// The naive feature pass scores every cross-product pair of attribute
// groups by re-walking both groups' map-backed sparse vectors — an
// O(n² · k) scan that recomputes norms, sums, and link-support flags for
// every pair. SimilarityJoinIndex builds, once per TypePairData:
//
//   * an inverted index term-id -> postings of (group, weight) for the
//     value vectors and for the link-structure vectors (the latter only
//     over groups that clear the link-support floor), and
//   * per-group caches of the vector norms, link sums, and support flags,
//
// so that all nonzero vsim/lsim dot products of one group row are
// accumulated in a single pass over the row's posting ranges. Pairs whose
// value *and* link similarity are exactly zero are never emitted.
//
// Memory layout (docs/PERFORMANCE.md): postings live in structure-of-
// arrays form — one contiguous uint32 group-id array and a parallel weight
// array per index, addressed through a CSR-style offset table (no
// per-term vectors, no pointer chasing). Link targets are corpus-level
// canonical ids and sparse, so they are remapped through a sorted dense id
// table instead of a hash map. Row accumulation runs through a
// runtime-dispatched kernel (match/join_kernels.h): the scalar reference
// kernel or the default unrolled vector kernel, forced either way with
// WIKIMATCH_JOIN_KERNEL=scalar|vector.
//
// Equivalence guarantee: with exact weights (quantize_weights = false, the
// default) every emitted cosine is bit-identical to SparseVector::Cosine
// under either kernel — contributions are added in ascending term-id order
// (the same order Dot() visits shared terms; group ids within one term
// range are distinct, so the kernel's unroll reorders nothing), and the
// final division uses the same norm product. tests/align_join_test.cc
// asserts this end to end and across kernels. With quantize_weights the
// postings and norms are rounded to fp32 (accumulation stays double) —
// an opt-in approximation whose precision impact bench_align measures.
//
// Thread safety: a built index is immutable; concurrent callers pass their
// own Scratch, so row accumulation parallelizes by group row with no
// shared mutable state.

#ifndef WIKIMATCH_MATCH_SIMILARITY_JOIN_H_
#define WIKIMATCH_MATCH_SIMILARITY_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "match/join_kernels.h"
#include "match/schema_builder.h"

namespace wikimatch {
namespace match {

/// \brief Feature switches mirrored from MatcherConfig (kept separate so
/// the join does not depend on the aligner header).
struct SimilarityJoinOptions {
  bool use_vsim = true;
  bool use_lsim = true;
  /// Link-structure support floor (MatcherConfig::min_link_support).
  double min_link_support = 0.05;
  /// Store posting weights and norms rounded to fp32 instead of the exact
  /// doubles (MatcherConfig::use_exact_cosine = false). Halves the weight
  /// array and trades bit-exactness for throughput; scores stay within
  /// fp32 rounding of the exact values.
  bool quantize_weights = false;
};

/// \brief One nonzero similarity entry of a group row.
struct SimilarityEntry {
  uint32_t j = 0;  ///< partner group index (always > the row index)
  double vsim = 0.0;
  double lsim = 0.0;
};

/// \brief Inverted-index join over one TypePairData's attribute groups.
class SimilarityJoinIndex {
 public:
  /// \brief Per-thread accumulation state. Reusable across rows and across
  /// ForEachNonZero calls; grows to the largest group count seen.
  class Scratch {
   public:
    size_t postings_visited() const { return postings_visited_; }

   private:
    friend class SimilarityJoinIndex;
    void Prepare(size_t n);

    std::vector<double> vdot_;
    std::vector<double> ldot_;
    std::vector<uint8_t> seen_;       // scalar kernel only
    std::vector<uint32_t> touched_;   // scalar kernel only
    size_t postings_visited_ = 0;
  };

  SimilarityJoinIndex(const TypePairData& data,
                      const SimilarityJoinOptions& options);

  /// \brief Emits every pair (i, j), j > i, whose vsim or lsim is nonzero,
  /// in ascending j order. With exact weights, `emit(entry)` similarities
  /// are bit-identical to the pairwise SparseVector::Cosine values the
  /// naive path computes — under either kernel.
  ///
  /// `emit` is a template callback (not std::function): the call inlines
  /// into the row loop with no type-erased indirect call per emitted pair.
  template <typename Emit>
  void ForEachNonZero(size_t i, Scratch* scratch, Emit&& emit) const {
    scratch->Prepare(num_groups_);
    AccumulateRow(i, scratch);
    const double vnorm_i = value_norm_[i];
    const double lnorm_i = link_norm_[i];
    double* vdot = scratch->vdot_.data();
    double* ldot = scratch->ldot_.data();
    if (kernel_ == JoinKernel::kScalar) {
      // Sparse emission: only slots the accumulation marked, in sorted
      // (ascending j) order.
      std::sort(scratch->touched_.begin(), scratch->touched_.end());
      for (uint32_t j : scratch->touched_) {
        SimilarityEntry entry;
        entry.j = j;
        const double vd = vdot[j];
        const double ld = ldot[j];
        // Same expression shape as SparseVector::Cosine (dot / (na * nb)),
        // so the result matches the naive pairwise evaluation bit for bit.
        if (vd != 0.0) entry.vsim = vd / (vnorm_i * value_norm_[j]);
        if (ld != 0.0) entry.lsim = ld / (lnorm_i * link_norm_[j]);
        vdot[j] = 0.0;
        ldot[j] = 0.0;
        scratch->seen_[j] = 0;
        if (entry.vsim != 0.0 || entry.lsim != 0.0) emit(entry);
      }
    } else {
      // Dense sweep of the row's tail: ascending j by construction, no
      // sort, no per-posting bookkeeping in the accumulation. Touched
      // slots are exactly the nonzero ones plus exact-cancellation zeros,
      // which the scalar path filters out too — the emitted sequence is
      // identical.
      const uint32_t n = static_cast<uint32_t>(num_groups_);
      for (uint32_t j = static_cast<uint32_t>(i) + 1; j < n; ++j) {
        const double vd = vdot[j];
        const double ld = ldot[j];
        if (vd == 0.0 && ld == 0.0) continue;
        SimilarityEntry entry;
        entry.j = j;
        if (vd != 0.0) entry.vsim = vd / (vnorm_i * value_norm_[j]);
        if (ld != 0.0) entry.lsim = ld / (lnorm_i * link_norm_[j]);
        vdot[j] = 0.0;
        ldot[j] = 0.0;
        if (entry.vsim != 0.0 || entry.lsim != 0.0) emit(entry);
      }
    }
  }

  /// \brief Cached link-support flag of group `i` (links.Sum() clears
  /// min_link_support · occurrences).
  bool link_supported(size_t i) const { return link_supported_[i] != 0; }

  /// \brief Total posting entries across both indexes.
  size_t num_postings() const { return num_postings_; }

  size_t num_groups() const { return num_groups_; }

  /// \brief Kernel captured at construction (ActiveJoinKernel() then).
  JoinKernel kernel() const { return kernel_; }

  bool quantized() const { return options_.quantize_weights; }

 private:
  /// One CSR-addressed structure-of-arrays posting index: for term t the
  /// postings occupy [offsets[t], offsets[t+1]) of the parallel group-id /
  /// weight arrays; group ids are strictly increasing within a range.
  struct PostingIndex {
    std::vector<uint64_t> offsets;
    std::vector<uint32_t> groups;
    std::vector<double> weights;      // exact mode
    std::vector<float> weights_f32;   // quantized mode

    size_t num_terms() const {
      return offsets.empty() ? 0 : offsets.size() - 1;
    }
  };

  /// Accumulates row `i`'s dot products into the scratch arrays via the
  /// active kernel (defined in the .cc; kernel- and quantization-aware).
  void AccumulateRow(size_t i, Scratch* scratch) const;

  const TypePairData* data_;
  SimilarityJoinOptions options_;
  JoinKernel kernel_ = JoinKernel::kVector;
  size_t num_groups_ = 0;
  size_t num_postings_ = 0;

  // Value postings are dense in the shared value-term space (offsets
  // indexed by term id directly). Link postings are keyed by corpus-level
  // canonical target ids, which are sparse: link_ids_ holds the sorted
  // distinct ids and offsets are indexed by the dense remapped position.
  PostingIndex value_index_;
  PostingIndex link_index_;
  std::vector<uint32_t> link_ids_;

  std::vector<double> value_norm_;
  std::vector<double> link_norm_;
  std::vector<uint8_t> link_supported_;
};

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_SIMILARITY_JOIN_H_
