// Sparse similarity join for the aligner feature stage (Section 3.2).
//
// The naive feature pass scores every cross-product pair of attribute
// groups by re-walking both groups' map-backed sparse vectors — an
// O(n² · k) scan that recomputes norms, sums, and link-support flags for
// every pair. SimilarityJoinIndex builds, once per TypePairData:
//
//   * an inverted index term-id -> posting list of (group, weight) for the
//     value vectors and for the link-structure vectors (the latter only
//     over groups that clear the link-support floor), and
//   * per-group caches of the vector norms, link sums, and support flags,
//
// so that all nonzero vsim/lsim dot products of one group row are
// accumulated in a single pass over the row's posting lists. Pairs whose
// value *and* link similarity are exactly zero are never visited.
//
// Equivalence guarantee: for every pair the accumulated cosine is
// bit-identical to SparseVector::Cosine — contributions are added in
// ascending term-id order (the same order Dot() visits shared terms, and
// IEEE multiplication is commutative), and the final division uses the
// same norm product. tests/align_join_test.cc asserts this end to end.
//
// Thread safety: a built index is immutable; concurrent callers pass their
// own Scratch, so row accumulation parallelizes by group row with no
// shared mutable state.

#ifndef WIKIMATCH_MATCH_SIMILARITY_JOIN_H_
#define WIKIMATCH_MATCH_SIMILARITY_JOIN_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "match/schema_builder.h"

namespace wikimatch {
namespace match {

/// \brief Feature switches mirrored from MatcherConfig (kept separate so
/// the join does not depend on the aligner header).
struct SimilarityJoinOptions {
  bool use_vsim = true;
  bool use_lsim = true;
  /// Link-structure support floor (MatcherConfig::min_link_support).
  double min_link_support = 0.05;
};

/// \brief One nonzero similarity entry of a group row.
struct SimilarityEntry {
  uint32_t j = 0;  ///< partner group index (always > the row index)
  double vsim = 0.0;
  double lsim = 0.0;
};

/// \brief Inverted-index join over one TypePairData's attribute groups.
class SimilarityJoinIndex {
 public:
  /// \brief Per-thread accumulation state. Reusable across rows and across
  /// ForEachNonZero calls; grows to the largest group count seen.
  class Scratch {
   public:
    size_t postings_visited() const { return postings_visited_; }

   private:
    friend class SimilarityJoinIndex;
    void Prepare(size_t n);

    std::vector<double> vdot_;
    std::vector<double> ldot_;
    std::vector<uint8_t> seen_;
    std::vector<uint32_t> touched_;
    size_t postings_visited_ = 0;
  };

  SimilarityJoinIndex(const TypePairData& data,
                      const SimilarityJoinOptions& options);

  /// \brief Emits every pair (i, j), j > i, whose vsim or lsim is nonzero,
  /// in ascending j order. `emit(entry)` similarities are bit-identical to
  /// the pairwise SparseVector::Cosine values the naive path computes.
  void ForEachNonZero(
      size_t i, Scratch* scratch,
      const std::function<void(const SimilarityEntry&)>& emit) const;

  /// \brief Cached link-support flag of group `i` (links.Sum() clears
  /// min_link_support · occurrences).
  bool link_supported(size_t i) const { return link_supported_[i] != 0; }

  /// \brief Total posting-list entries across both indexes.
  size_t num_postings() const { return num_postings_; }

  size_t num_groups() const { return num_groups_; }

 private:
  struct Posting {
    uint32_t group;
    double weight;
  };
  using PostingList = std::vector<Posting>;

  const TypePairData* data_;
  SimilarityJoinOptions options_;
  size_t num_groups_ = 0;
  size_t num_postings_ = 0;

  // Value postings are dense in the shared value-term space; link postings
  // are keyed by corpus-level canonical target ids, which are sparse.
  std::vector<PostingList> value_postings_;
  std::unordered_map<uint32_t, PostingList> link_postings_;

  std::vector<double> value_norm_;
  std::vector<double> link_norm_;
  std::vector<uint8_t> link_supported_;
};

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_SIMILARITY_JOIN_H_
