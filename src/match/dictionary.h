// Automatically-derived translation dictionary (Section 3.2).
//
// For each article A in language L with a cross-language link to article A'
// in L', the dictionary learns title(A) -> title(A'). No external resource
// is used — this is the paper's replacement for bilingual dictionaries and
// machine translation.

#ifndef WIKIMATCH_MATCH_DICTIONARY_H_
#define WIKIMATCH_MATCH_DICTIONARY_H_

#include <map>
#include <optional>
#include <string>

#include "wiki/corpus.h"

namespace wikimatch {
namespace match {

/// \brief Title-level translation dictionary built from cross-language links.
class TranslationDictionary {
 public:
  TranslationDictionary() = default;

  /// \brief Scans the corpus and records every (L title -> L' title) pair
  /// implied by a cross-language link, in both directions.
  ///
  /// Call after Corpus::Finalize() so links are symmetrized.
  void Build(const wiki::Corpus& corpus);

  /// \brief Like Build(corpus), but scans article ranges on up to
  /// `num_threads` workers and splices the partial maps together in range
  /// order. First insertion wins in both paths, so the result is identical
  /// to the single-threaded build at any thread count.
  void Build(const wiki::Corpus& corpus, size_t num_threads);

  /// \brief Adds one entry (used by tests and by the COMA++ baseline's
  /// synthetic-MT configuration).
  void Add(const std::string& from_lang, const std::string& term,
           const std::string& to_lang, const std::string& translation);

  /// \brief Inserts or overwrites one entry (incremental maintenance).
  /// Unlike Add, an existing entry for the key is replaced.
  void Put(const std::string& from_lang, const std::string& term,
           const std::string& to_lang, const std::string& translation);

  /// \brief Removes the entry for the key, if present.
  void Erase(const std::string& from_lang, const std::string& term,
             const std::string& to_lang);

  /// \brief Translation of `term` (normalized title form) from `from_lang`
  /// to `to_lang`, or nullopt when unknown.
  std::optional<std::string> Translate(const std::string& from_lang,
                                       const std::string& term,
                                       const std::string& to_lang) const;

  /// \brief Translates when possible, otherwise returns `term` unchanged —
  /// the construction of the translated value vector v_t_a.
  std::string TranslateOrKeep(const std::string& from_lang,
                              const std::string& term,
                              const std::string& to_lang) const;

  /// \brief Total number of directed entries.
  size_t size() const { return entries_.size(); }

  /// \brief All entries: (from_lang, to_lang, term) -> translation.
  const std::map<std::tuple<std::string, std::string, std::string>,
                 std::string>&
  entries() const {
    return entries_;
  }

 private:
  // (from_lang, to_lang, term) -> translation
  std::map<std::tuple<std::string, std::string, std::string>, std::string>
      entries_;
};

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_DICTIONARY_H_
