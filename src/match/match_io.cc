#include "match/match_io.h"

#include <cstdio>
#include <map>

#include "util/string_util.h"

namespace wikimatch {
namespace match {

std::string WriteMatchSets(const TypeMatchSets& matches) {
  std::string out = "# type\tlang\tattribute\tcluster_id\n";
  for (const auto& [type_b, match_set] : matches) {
    size_t cluster_id = 0;
    for (const auto& cluster : match_set.Clusters()) {
      for (const auto& attr : cluster) {
        out += type_b + "\t" + attr.language + "\t" + attr.name + "\t" +
               std::to_string(cluster_id) + "\n";
      }
      ++cluster_id;
    }
  }
  return out;
}

util::Result<TypeMatchSets> ReadMatchSets(const std::string& tsv) {
  TypeMatchSets out;
  // (type, cluster_id) -> members
  std::map<std::pair<std::string, std::string>, std::vector<eval::AttrKey>>
      clusters;
  size_t line_no = 0;
  for (const auto& line : util::Split(tsv, '\n')) {
    ++line_no;
    std::string_view trimmed = util::StripAsciiWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fields = util::Split(trimmed, '\t');
    if (fields.size() != 4) {
      return util::Status::ParseError("matches TSV line " +
                                      std::to_string(line_no) +
                                      ": expected 4 fields");
    }
    clusters[{fields[0], fields[3]}].push_back(
        eval::AttrKey{fields[1], fields[2]});
  }
  for (const auto& [key, members] : clusters) {
    out[key.first].AddCluster(members);
  }
  return out;
}

namespace {

util::Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return util::Status::IoError("cannot open " + path);
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    return util::Status::IoError("short write to " + path);
  }
  return util::Status::OK();
}

util::Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return util::Status::IoError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string buf(static_cast<size_t>(size), '\0');
  size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) {
    return util::Status::IoError("short read on " + path);
  }
  return buf;
}

}  // namespace

util::Status SaveMatchSets(const TypeMatchSets& matches,
                           const std::string& path) {
  return WriteFile(path, WriteMatchSets(matches));
}

util::Result<TypeMatchSets> LoadMatchSets(const std::string& path) {
  WIKIMATCH_ASSIGN_OR_RETURN(std::string content, ReadFile(path));
  return ReadMatchSets(content);
}

std::string WriteDictionary(const TranslationDictionary& dictionary) {
  std::string out = "# from_lang\tterm\tto_lang\ttranslation\n";
  for (const auto& [key, translation] : dictionary.entries()) {
    const auto& [from_lang, to_lang, term] = key;
    out += from_lang + "\t" + term + "\t" + to_lang + "\t" + translation +
           "\n";
  }
  return out;
}

util::Result<TranslationDictionary> ReadDictionary(const std::string& tsv) {
  TranslationDictionary out;
  size_t line_no = 0;
  for (const auto& line : util::Split(tsv, '\n')) {
    ++line_no;
    std::string_view trimmed = util::StripAsciiWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fields = util::Split(trimmed, '\t');
    if (fields.size() != 4) {
      return util::Status::ParseError("dictionary TSV line " +
                                      std::to_string(line_no) +
                                      ": expected 4 fields");
    }
    out.Add(fields[0], fields[1], fields[2], fields[3]);
  }
  return out;
}

}  // namespace match
}  // namespace wikimatch
