// Similarity flooding (Melnik, Garcia-Molina, Rahm — ICDE 2002), the
// fixed-point matching strategy the paper names as future work
// (Section 7). Adapted to flat infobox schemas: the propagation graph is
// induced by mono-language co-occurrence instead of schema structure.
//
// Nodes of the pairwise connectivity graph are cross-language attribute
// pairs (a, b). Two nodes (a, b) and (a', b') are neighbors when a
// co-occurs with a' in lang_a infoboxes AND b co-occurs with b' in lang_b
// infoboxes; the edge weight is the product of the grouping scores
// g(a, a') * g(b, b'), out-normalized. Each iteration floods similarity:
//
//   sigma_{i+1}(n) = sigma_0(n) + sum_{m in N(n)} w(m, n) * sigma_i(m)
//
// followed by normalization to [0, 1]; iteration stops when the vector
// moves less than `tolerance` or after `max_iterations`. Initial
// similarities sigma_0 come from the same features WikiMatch uses
// (max(vsim, lsim), optionally blended with LSI).

#ifndef WIKIMATCH_MATCH_SIMILARITY_FLOODING_H_
#define WIKIMATCH_MATCH_SIMILARITY_FLOODING_H_

#include <vector>

#include "eval/match_set.h"
#include "match/lsi.h"
#include "match/schema_builder.h"
#include "util/result.h"

namespace wikimatch {
namespace match {

/// \brief Flooding parameters.
struct FloodingConfig {
  /// Weight of the flooded mass relative to the initial similarity
  /// (the "basic" fixpoint formula keeps sigma_0 at weight 1).
  double propagation_weight = 1.0;
  int max_iterations = 64;
  double tolerance = 1e-4;
  /// Blend LSI correlation into the initial similarity:
  /// sigma_0 = (1 - lsi_blend) * max(vsim, lsim) + lsi_blend * LSI.
  double lsi_blend = 0.3;
  /// Selection threshold on the converged, normalized similarity.
  double select_threshold = 0.55;
  /// Keep only pairs that are mutual best candidates (stable-marriage-like
  /// filtering, as in the original paper's selection step).
  bool reciprocal = true;
  LsiOptions lsi;
};

/// \brief Flooding output.
struct FloodingResult {
  /// Selected correspondences (pairwise — flooding does not build synonym
  /// components).
  eval::MatchSet matches{/*transitive=*/false};
  /// Converged similarity for every cross-language pair, aligned with
  /// `pairs`.
  std::vector<std::pair<eval::AttrKey, eval::AttrKey>> pairs;
  std::vector<double> similarity;
  int iterations = 0;
};

/// \brief Runs similarity flooding over one type pair.
util::Result<FloodingResult> RunSimilarityFlooding(
    const TypePairData& data, const FloodingConfig& config = {});

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_SIMILARITY_FLOODING_H_
