// Binary serialization of match output for the snapshot store: the
// translation dictionary, MatchSets, and full PipelineResults (type
// matches, per-type alignments with their scored candidate orders, and
// attribute frequencies). Together with wiki/serialize.h this is everything
// a serving process needs to answer lookups and translated queries without
// re-running the matcher.

#ifndef WIKIMATCH_MATCH_SERIALIZE_H_
#define WIKIMATCH_MATCH_SERIALIZE_H_

#include "eval/metrics.h"
#include "match/dictionary.h"
#include "match/pipeline.h"
#include "util/binary_io.h"
#include "util/result.h"

namespace wikimatch {
namespace match {

void EncodeDictionary(const TranslationDictionary& dictionary,
                      util::BinaryWriter* writer);
util::Result<TranslationDictionary> DecodeDictionary(
    util::BinaryReader* reader);

/// Transitive sets travel as clusters, pairwise sets as their exact pairs —
/// both modes round-trip without fabricating correspondences.
void EncodeMatchSet(const eval::MatchSet& matches,
                    util::BinaryWriter* writer);
util::Result<eval::MatchSet> DecodeMatchSet(util::BinaryReader* reader);

void EncodeAlignmentResult(const AlignmentResult& alignment,
                           util::BinaryWriter* writer);
util::Result<AlignmentResult> DecodeAlignmentResult(
    util::BinaryReader* reader);

void EncodePipelineResult(const PipelineResult& result,
                          util::BinaryWriter* writer);
util::Result<PipelineResult> DecodePipelineResult(
    util::BinaryReader* reader);

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_SERIALIZE_H_
