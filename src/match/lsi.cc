#include "match/lsi.h"

#include <algorithm>
#include <cmath>

#include "la/matrix.h"
#include "la/svd.h"

namespace wikimatch {
namespace match {

util::Result<LsiCorrelation> LsiCorrelation::Compute(
    const TypePairData& data, const LsiOptions& options) {
  const size_t n = data.groups.size();
  LsiCorrelation out;
  out.is_lang_a_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.is_lang_a_[i] = data.groups[i].key.language == data.lang_a;
  }

  // Same-language co-occurrence flags (the zero rule).
  out.co_occurs_.assign(n, std::vector<bool>(n, false));
  for (const auto& [key, count] : data.co_occur) {
    size_t i = key.first;
    size_t j = key.second;
    double floor = options.co_occur_tolerance *
                   std::min(data.groups[i].occurrences,
                            data.groups[j].occurrences);
    if (count > std::max(floor, 0.0)) {
      out.co_occurs_[i][j] = true;
      out.co_occurs_[j][i] = true;
    }
  }

  if (n == 0 || data.num_duals == 0) {
    out.rank_ = 0;
    return out;
  }

  // Binary occurrence matrix: attributes x dual infoboxes.
  la::Matrix m(n, data.num_duals);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t doc : data.groups[i].dual_docs) m(i, doc) = 1.0;
  }

  size_t rank = options.rank;
  if (rank == 0) rank = std::clamp<size_t>(n / 3, 4, 64);
  WIKIMATCH_ASSIGN_OR_RETURN(la::SvdResult svd,
                             la::ComputeTruncatedSvd(m, rank));
  out.rank_ = svd.singular_values.size();

  out.reduced_.resize(n);
  for (size_t i = 0; i < n; ++i) out.reduced_[i] = svd.ScaledRowVector(i);
  return out;
}

double LsiCorrelation::RawCosine(size_t i, size_t j) const {
  if (i >= reduced_.size() || j >= reduced_.size()) return 0.0;
  if (reduced_[i].empty() || reduced_[j].empty()) return 0.0;
  return la::CosineSimilarity(reduced_[i], reduced_[j]);
}

double LsiCorrelation::Score(size_t i, size_t j) const {
  if (i == j) return 1.0;
  bool same_language = is_lang_a_[i] == is_lang_a_[j];
  if (!same_language) {
    return std::clamp(RawCosine(i, j), 0.0, 1.0);
  }
  if (co_occurs_[i][j]) return 0.0;
  return std::clamp(1.0 - RawCosine(i, j), 0.0, 1.0);
}

}  // namespace match
}  // namespace wikimatch
