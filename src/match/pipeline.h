// End-to-end WikiMatch pipeline: type matching -> schema building ->
// attribute alignment, for every type shared by a language pair.

#ifndef WIKIMATCH_MATCH_PIPELINE_H_
#define WIKIMATCH_MATCH_PIPELINE_H_

#include <string>
#include <vector>

#include "match/aligner.h"
#include "match/dictionary.h"
#include "match/schema_builder.h"
#include "match/type_matcher.h"
#include "util/result.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace match {

/// \brief The pipeline's default matcher config: identical to the paper
/// defaults except that the full O(n²) scored-pair list is not retained
/// (MatcherConfig::keep_all_pairs) — evaluation drivers that need it for
/// MAP/threshold studies call AttributeAligner directly.
inline MatcherConfig DefaultPipelineMatcherConfig() {
  MatcherConfig config;
  config.keep_all_pairs = false;
  return config;
}

/// \brief Pipeline configuration.
struct PipelineOptions {
  MatcherConfig matcher = DefaultPipelineMatcherConfig();
  SchemaBuilderOptions schema;
  /// Type-matching thresholds (Section 3.1).
  size_t type_min_votes = 2;
  double type_min_confidence = 0.5;
  /// Worker threads for per-type alignment (type pairs are independent);
  /// 1 = sequential. Results are deterministic regardless of this value.
  /// Intra-pair parallelism (the feature join of one large type pair) is
  /// controlled separately by matcher.num_threads.
  size_t num_threads = 1;
};

/// \brief Per-phase wall times and work counters of one pipeline run.
/// Alignment counters are exact sums over type pairs; the per-phase times
/// are summed across (possibly concurrent) workers, so with num_threads >
/// 1 they measure aggregate work, not elapsed wall clock — total_ms is the
/// run's true elapsed time.
struct PipelineStats {
  double type_match_ms = 0.0;  ///< cross-language entity-type matching
  double schema_ms = 0.0;      ///< BuildTypePairData across type pairs
  double total_ms = 0.0;       ///< whole Run() wall clock
  size_t type_pairs = 0;       ///< aligned type pairs
  AlignStats align;            ///< aggregated AttributeAligner stats

  /// \brief One-line key=value rendering (CLI stderr, serve stats verb).
  std::string ToString() const;
};

/// \brief Alignment output for one matched type pair.
struct TypePairResult {
  std::string type_a;  ///< localized type in lang_a
  std::string type_b;  ///< localized type in lang_b
  size_t num_duals = 0;
  AlignmentResult alignment;
  eval::AttrFrequencies frequencies;
};

/// \brief Output of a full pipeline run over one language pair.
struct PipelineResult {
  std::vector<TypeMatch> type_matches;
  std::vector<TypePairResult> per_type;
  /// Execution stats of the run that produced this result (persisted in
  /// snapshots so the serve `stats` verb can report build-time figures).
  PipelineStats stats;

  /// \brief The result for localized type `type_b` (hub side), or nullptr.
  const TypePairResult* FindByTypeB(const std::string& type_b) const;
};

/// \brief Runs WikiMatch over a finalized corpus.
class MatchPipeline {
 public:
  /// Builds the translation dictionary from the corpus once; reusable
  /// across Run() calls with different configs (threshold sweeps).
  explicit MatchPipeline(const wiki::Corpus* corpus);

  /// \brief Aligns every type shared by (lang_a, lang_b).
  util::Result<PipelineResult> Run(const std::string& lang_a,
                                   const std::string& lang_b,
                                   const PipelineOptions& options = {}) const;

  /// \brief Builds the TypePairData for one type pair (for callers that
  /// sweep matcher configs without rebuilding schemas).
  util::Result<TypePairData> BuildPair(const std::string& lang_a,
                                       const std::string& type_a,
                                       const std::string& lang_b,
                                       const std::string& type_b,
                                       const SchemaBuilderOptions& options
                                       = {}) const;

  const TranslationDictionary& dictionary() const { return dictionary_; }
  const wiki::Corpus& corpus() const { return *corpus_; }

 private:
  const wiki::Corpus* corpus_;
  TranslationDictionary dictionary_;
};

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_PIPELINE_H_
