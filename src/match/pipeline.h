// End-to-end WikiMatch pipeline: type matching -> schema building ->
// attribute alignment, for every type shared by a language pair.

#ifndef WIKIMATCH_MATCH_PIPELINE_H_
#define WIKIMATCH_MATCH_PIPELINE_H_

#include <string>
#include <vector>

#include "match/aligner.h"
#include "match/dictionary.h"
#include "match/schema_builder.h"
#include "match/type_matcher.h"
#include "util/result.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace match {

/// \brief Pipeline configuration.
struct PipelineOptions {
  MatcherConfig matcher;
  SchemaBuilderOptions schema;
  /// Type-matching thresholds (Section 3.1).
  size_t type_min_votes = 2;
  double type_min_confidence = 0.5;
  /// Worker threads for per-type alignment (type pairs are independent);
  /// 1 = sequential. Results are deterministic regardless of this value.
  size_t num_threads = 1;
};

/// \brief Alignment output for one matched type pair.
struct TypePairResult {
  std::string type_a;  ///< localized type in lang_a
  std::string type_b;  ///< localized type in lang_b
  size_t num_duals = 0;
  AlignmentResult alignment;
  eval::AttrFrequencies frequencies;
};

/// \brief Output of a full pipeline run over one language pair.
struct PipelineResult {
  std::vector<TypeMatch> type_matches;
  std::vector<TypePairResult> per_type;

  /// \brief The result for localized type `type_b` (hub side), or nullptr.
  const TypePairResult* FindByTypeB(const std::string& type_b) const;
};

/// \brief Runs WikiMatch over a finalized corpus.
class MatchPipeline {
 public:
  /// Builds the translation dictionary from the corpus once; reusable
  /// across Run() calls with different configs (threshold sweeps).
  explicit MatchPipeline(const wiki::Corpus* corpus);

  /// \brief Aligns every type shared by (lang_a, lang_b).
  util::Result<PipelineResult> Run(const std::string& lang_a,
                                   const std::string& lang_b,
                                   const PipelineOptions& options = {}) const;

  /// \brief Builds the TypePairData for one type pair (for callers that
  /// sweep matcher configs without rebuilding schemas).
  util::Result<TypePairData> BuildPair(const std::string& lang_a,
                                       const std::string& type_a,
                                       const std::string& lang_b,
                                       const std::string& type_b,
                                       const SchemaBuilderOptions& options
                                       = {}) const;

  const TranslationDictionary& dictionary() const { return dictionary_; }
  const wiki::Corpus& corpus() const { return *corpus_; }

 private:
  const wiki::Corpus* corpus_;
  TranslationDictionary dictionary_;
};

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_PIPELINE_H_
