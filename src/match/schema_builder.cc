#include "match/schema_builder.h"

#include <algorithm>

#include "text/normalize.h"
#include "text/tokenizer.h"

namespace wikimatch {
namespace match {

size_t TypePairData::GroupIndex(const eval::AttrKey& key) const {
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].key == key) return i;
  }
  return SIZE_MAX;
}

eval::AttrFrequencies TypePairData::Frequencies() const {
  eval::AttrFrequencies freq;
  for (const auto& g : groups) freq[g.key] = g.occurrences;
  return freq;
}

std::vector<std::string> ValueComponents(const wiki::AttributeValue& value) {
  std::vector<std::string> out;
  for (const auto& token : text::Tokenize(value.text)) out.push_back(token);
  for (const auto& link : value.links) {
    std::string anchor = text::NormalizeValue(link.anchor);
    if (!anchor.empty()) out.push_back(anchor);
  }
  return out;
}

namespace {

// Canonical id of a link target: articles joined by a cross-language link
// share one id. We canonicalize to the lexicographically-smallest
// (language, title) among the target and its cross-language partners, so
// the canonical form is direction-independent.
std::string CanonicalLinkTarget(const wiki::Corpus& corpus,
                                const std::string& lang,
                                const std::string& target) {
  wiki::ArticleId id = corpus.FindByTitle(lang, target);
  if (id == wiki::kInvalidArticle) return lang + "\x1f" + target;
  const wiki::Article& article = corpus.Get(id);
  std::string best = article.language + "\x1f" + article.title;
  for (const auto& [other_lang, other_title] : article.cross_language_links) {
    std::string candidate = other_lang + "\x1f" + other_title;
    if (candidate < best) best = candidate;
  }
  return best;
}

struct BuildSide {
  std::string lang;
  std::string type;
};

}  // namespace

util::Result<TypePairData> BuildTypePairData(
    const wiki::Corpus& corpus, const TranslationDictionary& dictionary,
    const std::string& lang_a, const std::string& type_a,
    const std::string& lang_b, const std::string& type_b,
    const SchemaBuilderOptions& options) {
  TypePairData data;
  data.lang_a = lang_a;
  data.lang_b = lang_b;
  data.type_a = type_a;
  data.type_b = type_b;

  // Collect the dual pairs: lang_a infoboxes of type_a linked to lang_b
  // infoboxes of type_b.
  std::vector<std::pair<wiki::ArticleId, wiki::ArticleId>> duals;
  for (wiki::ArticleId id : corpus.ArticlesOfType(lang_a, type_a)) {
    wiki::ArticleId other = corpus.CrossLanguageTarget(id, lang_b);
    if (other == wiki::kInvalidArticle) continue;
    const wiki::Article& b = corpus.Get(other);
    if (!b.infobox.has_value() || b.entity_type != type_b) continue;
    duals.emplace_back(id, other);
  }
  if (duals.empty()) {
    return util::Status::NotFound("no dual-language infoboxes for " + lang_a +
                                  ":" + type_a + " / " + lang_b + ":" +
                                  type_b);
  }
  if (options.max_sample_infoboxes > 0 &&
      duals.size() > options.max_sample_infoboxes) {
    duals.resize(options.max_sample_infoboxes);
  }
  data.num_duals = duals.size();

  la::TermDictionary& value_terms = data.value_terms;
  la::TermDictionary link_terms;
  std::map<eval::AttrKey, size_t> group_index;

  auto group_of = [&](const eval::AttrKey& key) -> AttributeGroup& {
    auto it = group_index.find(key);
    if (it == group_index.end()) {
      it = group_index.emplace(key, data.groups.size()).first;
      AttributeGroup g;
      g.key = key;
      data.groups.push_back(std::move(g));
    }
    return data.groups[it->second];
  };

  // Per-infobox attribute sets, kept for mono-language co-occurrence.
  std::vector<std::vector<size_t>> infobox_groups;

  for (uint32_t dual = 0; dual < duals.size(); ++dual) {
    for (int side = 0; side < 2; ++side) {
      wiki::ArticleId id = side == 0 ? duals[dual].first : duals[dual].second;
      const std::string& lang = side == 0 ? lang_a : lang_b;
      const wiki::Article& article = corpus.Get(id);
      const wiki::Infobox& box = article.infobox.value();

      std::set<std::string> seen_attrs;
      std::vector<size_t> present;
      for (const auto& [attr, value] : box.attributes) {
        eval::AttrKey key{lang, attr};
        AttributeGroup& group = group_of(key);
        size_t gi = group_index[key];
        if (seen_attrs.insert(attr).second) {
          group.occurrences += 1.0;
          group.dual_docs.insert(dual);
          present.push_back(gi);
        }
        // Value components, translated into lang_b when on the lang_a side.
        for (std::string component : ValueComponents(value)) {
          if (options.translate_values && lang == lang_a &&
              lang_a != lang_b) {
            component =
                dictionary.TranslateOrKeep(lang_a, component, lang_b);
          }
          group.values.Add(value_terms.GetOrAdd(component), 1.0);
        }
        // Link structure: canonicalized targets.
        for (const auto& link : value.links) {
          std::string canon = CanonicalLinkTarget(corpus, lang, link.target);
          group.links.Add(link_terms.GetOrAdd(canon), 1.0);
        }
      }
      // Mono-language co-occurrence counts.
      std::sort(present.begin(), present.end());
      for (size_t i = 0; i < present.size(); ++i) {
        for (size_t j = i + 1; j < present.size(); ++j) {
          data.co_occur[{present[i], present[j]}] += 1.0;
        }
      }
      infobox_groups.push_back(std::move(present));
    }
  }

  // Drop attributes under the occurrence floor.
  if (options.min_occurrences > 1) {
    std::vector<AttributeGroup> kept;
    std::vector<size_t> remap(data.groups.size(), SIZE_MAX);
    for (size_t i = 0; i < data.groups.size(); ++i) {
      if (data.groups[i].occurrences >=
          static_cast<double>(options.min_occurrences)) {
        remap[i] = kept.size();
        kept.push_back(std::move(data.groups[i]));
      }
    }
    std::map<std::pair<size_t, size_t>, double> new_co;
    for (const auto& [key, count] : data.co_occur) {
      size_t i = remap[key.first];
      size_t j = remap[key.second];
      if (i == SIZE_MAX || j == SIZE_MAX) continue;
      new_co[{std::min(i, j), std::max(i, j)}] = count;
    }
    data.groups = std::move(kept);
    data.co_occur = std::move(new_co);
  }

  // Deterministic group order: lang_a groups first, then lang_b, each by
  // name; remap co-occurrence keys accordingly.
  std::vector<size_t> order(data.groups.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    const eval::AttrKey& kx = data.groups[x].key;
    const eval::AttrKey& ky = data.groups[y].key;
    bool ax = kx.language == lang_a;
    bool ay = ky.language == lang_a;
    if (ax != ay) return ax;
    return kx.name < ky.name;
  });
  std::vector<size_t> inverse(order.size());
  for (size_t pos = 0; pos < order.size(); ++pos) inverse[order[pos]] = pos;
  std::vector<AttributeGroup> sorted;
  sorted.reserve(order.size());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    sorted.push_back(std::move(data.groups[order[pos]]));
  }
  data.groups = std::move(sorted);
  std::map<std::pair<size_t, size_t>, double> remapped_co;
  for (const auto& [key, count] : data.co_occur) {
    size_t i = inverse[key.first];
    size_t j = inverse[key.second];
    remapped_co[{std::min(i, j), std::max(i, j)}] = count;
  }
  data.co_occur = std::move(remapped_co);

  return data;
}

}  // namespace match
}  // namespace wikimatch
