#include "match/similarity_join.h"

#include <algorithm>

namespace wikimatch {
namespace match {

void SimilarityJoinIndex::Scratch::Prepare(size_t n) {
  if (vdot_.size() < n) {
    vdot_.resize(n, 0.0);
    ldot_.resize(n, 0.0);
    seen_.resize(n, 0);
  }
  touched_.clear();
}

SimilarityJoinIndex::SimilarityJoinIndex(const TypePairData& data,
                                         const SimilarityJoinOptions& options)
    : data_(&data), options_(options), num_groups_(data.groups.size()) {
  value_norm_.resize(num_groups_, 0.0);
  link_norm_.resize(num_groups_, 0.0);
  link_supported_.resize(num_groups_, 0);
  if (options_.use_vsim) value_postings_.resize(data.value_terms.size());

  for (size_t i = 0; i < num_groups_; ++i) {
    const AttributeGroup& g = data.groups[i];
    value_norm_[i] = g.values.Norm();
    link_norm_[i] = g.links.Norm();
    link_supported_[i] =
        g.links.Sum() >= options_.min_link_support * g.occurrences ? 1 : 0;
    if (options_.use_vsim) {
      for (const auto& [id, w] : g.values.entries()) {
        // Ids come from data.value_terms, so they are < size(); guard
        // anyway for hand-built TypePairData in tests.
        if (id >= value_postings_.size()) value_postings_.resize(id + 1);
        value_postings_[id].push_back({static_cast<uint32_t>(i), w});
        ++num_postings_;
      }
    }
    if (options_.use_lsim && link_supported_[i]) {
      for (const auto& [id, w] : g.links.entries()) {
        link_postings_[id].push_back({static_cast<uint32_t>(i), w});
        ++num_postings_;
      }
    }
  }
}

void SimilarityJoinIndex::ForEachNonZero(
    size_t i, Scratch* scratch,
    const std::function<void(const SimilarityEntry&)>& emit) const {
  scratch->Prepare(num_groups_);
  const AttributeGroup& g = data_->groups[i];

  // Accumulates w_i · w_j for every posting partner j > i of one feature.
  // The outer iteration follows the group's own std::map (ascending term
  // id), so for a fixed pair the additions happen in exactly the order
  // SparseVector::Dot visits the shared terms.
  auto accumulate = [&](const la::SparseVector& vec, auto lookup,
                        std::vector<double>* dot) {
    for (const auto& [id, w] : vec.entries()) {
      const PostingList* postings = lookup(id);
      if (postings == nullptr) continue;
      // Postings are appended in ascending group order; skip to j > i.
      auto first = std::upper_bound(
          postings->begin(), postings->end(), static_cast<uint32_t>(i),
          [](uint32_t value, const Posting& p) { return value < p.group; });
      for (auto it = first; it != postings->end(); ++it) {
        if (!scratch->seen_[it->group]) {
          scratch->seen_[it->group] = 1;
          scratch->touched_.push_back(it->group);
        }
        (*dot)[it->group] += w * it->weight;
        ++scratch->postings_visited_;
      }
    }
  };

  if (options_.use_vsim) {
    accumulate(g.values,
               [&](uint32_t id) -> const PostingList* {
                 return id < value_postings_.size() ? &value_postings_[id]
                                                    : nullptr;
               },
               &scratch->vdot_);
  }
  if (options_.use_lsim && link_supported_[i]) {
    accumulate(g.links,
               [&](uint32_t id) -> const PostingList* {
                 auto it = link_postings_.find(id);
                 return it == link_postings_.end() ? nullptr : &it->second;
               },
               &scratch->ldot_);
  }

  std::sort(scratch->touched_.begin(), scratch->touched_.end());
  for (uint32_t j : scratch->touched_) {
    SimilarityEntry entry;
    entry.j = j;
    double vdot = scratch->vdot_[j];
    double ldot = scratch->ldot_[j];
    // Same expression shape as SparseVector::Cosine (dot / (na * nb)), so
    // the result is bit-identical to the naive pairwise evaluation.
    if (vdot != 0.0) entry.vsim = vdot / (value_norm_[i] * value_norm_[j]);
    if (ldot != 0.0) entry.lsim = ldot / (link_norm_[i] * link_norm_[j]);
    scratch->vdot_[j] = 0.0;
    scratch->ldot_[j] = 0.0;
    scratch->seen_[j] = 0;
    if (entry.vsim != 0.0 || entry.lsim != 0.0) emit(entry);
  }
}

}  // namespace match
}  // namespace wikimatch
