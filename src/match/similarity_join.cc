#include "match/similarity_join.h"

#include <algorithm>
#include <cmath>

namespace wikimatch {
namespace match {
namespace {

// fp32-rounded weight, widened back to double (quantized mode).
inline double Quantize(double w) {
  return static_cast<double>(static_cast<float>(w));
}

// Norm recomputed from fp32-rounded weights (quantized mode): the exact
// mode reuses SparseVector::Norm() so its bytes stay pinned to the naive
// path.
double QuantizedNorm(const la::SparseVector& vec) {
  double sum = 0.0;
  for (const auto& [id, w] : vec.entries()) {
    const double q = Quantize(w);
    sum += q * q;
  }
  return std::sqrt(sum);
}

}  // namespace

void SimilarityJoinIndex::Scratch::Prepare(size_t n) {
  if (vdot_.size() < n) {
    vdot_.resize(n, 0.0);
    ldot_.resize(n, 0.0);
    seen_.resize(n, 0);
  }
  touched_.clear();
}

SimilarityJoinIndex::SimilarityJoinIndex(const TypePairData& data,
                                         const SimilarityJoinOptions& options)
    : data_(&data),
      options_(options),
      kernel_(ActiveJoinKernel()),
      num_groups_(data.groups.size()) {
  value_norm_.resize(num_groups_, 0.0);
  link_norm_.resize(num_groups_, 0.0);
  link_supported_.resize(num_groups_, 0);

  // Pass 0: norms, support flags, and the term-space extents.
  size_t num_value_terms = options_.use_vsim ? data.value_terms.size() : 0;
  for (size_t i = 0; i < num_groups_; ++i) {
    const AttributeGroup& g = data.groups[i];
    value_norm_[i] = options_.quantize_weights ? QuantizedNorm(g.values)
                                               : g.values.Norm();
    link_norm_[i] = options_.quantize_weights ? QuantizedNorm(g.links)
                                              : g.links.Norm();
    link_supported_[i] =
        g.links.Sum() >= options_.min_link_support * g.occurrences ? 1 : 0;
    if (options_.use_vsim) {
      for (const auto& [id, w] : g.values.entries()) {
        // Ids come from data.value_terms, so they are < size(); track the
        // extent anyway for hand-built TypePairData in tests.
        if (id >= num_value_terms) num_value_terms = id + 1;
      }
    }
    if (options_.use_lsim && link_supported_[i]) {
      for (const auto& [id, w] : g.links.entries()) {
        link_ids_.push_back(id);
      }
    }
  }
  std::sort(link_ids_.begin(), link_ids_.end());
  link_ids_.erase(std::unique(link_ids_.begin(), link_ids_.end()),
                  link_ids_.end());

  // Pass 1: postings per term -> CSR offsets (exclusive prefix sum).
  auto count_into = [](std::vector<uint64_t>* offsets, size_t term) {
    ++(*offsets)[term + 1];
  };
  value_index_.offsets.assign(num_value_terms + 1, 0);
  link_index_.offsets.assign(link_ids_.size() + 1, 0);
  for (size_t i = 0; i < num_groups_; ++i) {
    const AttributeGroup& g = data.groups[i];
    if (options_.use_vsim) {
      for (const auto& [id, w] : g.values.entries()) {
        count_into(&value_index_.offsets, id);
      }
    }
    if (options_.use_lsim && link_supported_[i]) {
      for (const auto& [id, w] : g.links.entries()) {
        size_t dense = static_cast<size_t>(
            std::lower_bound(link_ids_.begin(), link_ids_.end(), id) -
            link_ids_.begin());
        count_into(&link_index_.offsets, dense);
      }
    }
  }
  for (size_t t = 1; t < value_index_.offsets.size(); ++t) {
    value_index_.offsets[t] += value_index_.offsets[t - 1];
  }
  for (size_t t = 1; t < link_index_.offsets.size(); ++t) {
    link_index_.offsets[t] += link_index_.offsets[t - 1];
  }

  // Pass 2: fill the parallel group/weight arrays. Groups are visited in
  // ascending order, so ids within each term range come out sorted — the
  // invariant the skip-to-j>i binary search and the kernels rely on.
  const size_t value_total = value_index_.offsets.back();
  const size_t link_total =
      link_index_.offsets.empty() ? 0 : link_index_.offsets.back();
  value_index_.groups.resize(value_total);
  link_index_.groups.resize(link_total);
  if (options_.quantize_weights) {
    value_index_.weights_f32.resize(value_total);
    link_index_.weights_f32.resize(link_total);
  } else {
    value_index_.weights.resize(value_total);
    link_index_.weights.resize(link_total);
  }
  std::vector<uint64_t> value_cursor(value_index_.offsets.begin(),
                                     value_index_.offsets.end() - 1);
  std::vector<uint64_t> link_cursor(
      link_index_.offsets.empty()
          ? std::vector<uint64_t>()
          : std::vector<uint64_t>(link_index_.offsets.begin(),
                                  link_index_.offsets.end() - 1));
  auto place = [&](PostingIndex* index, std::vector<uint64_t>* cursor,
                   size_t term, uint32_t group, double w) {
    const uint64_t at = (*cursor)[term]++;
    index->groups[at] = group;
    if (options_.quantize_weights) {
      index->weights_f32[at] = static_cast<float>(w);
    } else {
      index->weights[at] = w;
    }
  };
  for (size_t i = 0; i < num_groups_; ++i) {
    const AttributeGroup& g = data.groups[i];
    if (options_.use_vsim) {
      for (const auto& [id, w] : g.values.entries()) {
        place(&value_index_, &value_cursor, id, static_cast<uint32_t>(i), w);
      }
    }
    if (options_.use_lsim && link_supported_[i]) {
      for (const auto& [id, w] : g.links.entries()) {
        size_t dense = static_cast<size_t>(
            std::lower_bound(link_ids_.begin(), link_ids_.end(), id) -
            link_ids_.begin());
        place(&link_index_, &link_cursor, dense, static_cast<uint32_t>(i),
              w);
      }
    }
  }
  num_postings_ = value_total + link_total;
}

void SimilarityJoinIndex::AccumulateRow(size_t i, Scratch* scratch) const {
  const AttributeGroup& g = data_->groups[i];
  const bool scalar = kernel_ == JoinKernel::kScalar;
  const bool quantized = options_.quantize_weights;
  const uint32_t row = static_cast<uint32_t>(i);

  // Accumulates w_i · w_j for every posting partner j > i of one term
  // range. The outer iteration follows the group's own std::map (ascending
  // term id), so for a fixed pair the additions happen in exactly the
  // order SparseVector::Dot visits the shared terms; within a range all
  // group ids are distinct, so the vector kernel's unroll cannot reorder
  // additions to the same accumulator slot.
  auto accumulate_range = [&](const PostingIndex& index, size_t term,
                              double w, double* dot) {
    const uint64_t begin = index.offsets[term];
    const uint64_t end = index.offsets[term + 1];
    const uint32_t* groups = index.groups.data();
    // Postings are in ascending group order; skip to j > i.
    const uint32_t* first =
        std::upper_bound(groups + begin, groups + end, row);
    const size_t at = static_cast<size_t>(first - groups);
    const size_t len = static_cast<size_t>(end) - at;
    if (len == 0) return;
    scratch->postings_visited_ += len;
    if (scalar) {
      // Reference kernel: the original branchy loop with sparse-row
      // bookkeeping (seen/touched), emitted later in sorted order.
      if (quantized) {
        const float* weights = index.weights_f32.data();
        for (size_t k = at; k < at + len; ++k) {
          const uint32_t j = groups[k];
          if (!scratch->seen_[j]) {
            scratch->seen_[j] = 1;
            scratch->touched_.push_back(j);
          }
          dot[j] += w * static_cast<double>(weights[k]);
        }
      } else {
        const double* weights = index.weights.data();
        for (size_t k = at; k < at + len; ++k) {
          const uint32_t j = groups[k];
          if (!scratch->seen_[j]) {
            scratch->seen_[j] = 1;
            scratch->touched_.push_back(j);
          }
          dot[j] += w * weights[k];
        }
      }
    } else if (quantized) {
      kernels::AccumulateF32(groups + at, index.weights_f32.data() + at,
                             len, w, dot);
    } else {
      kernels::AccumulateF64(groups + at, index.weights.data() + at, len, w,
                             dot);
    }
  };

  if (options_.use_vsim) {
    const size_t num_terms = value_index_.num_terms();
    for (const auto& [id, w] : g.values.entries()) {
      if (id >= num_terms) continue;
      accumulate_range(value_index_, id,
                       quantized ? Quantize(w) : w, scratch->vdot_.data());
    }
  }
  if (options_.use_lsim && link_supported_[i]) {
    for (const auto& [id, w] : g.links.entries()) {
      auto it = std::lower_bound(link_ids_.begin(), link_ids_.end(), id);
      if (it == link_ids_.end() || *it != id) continue;
      const size_t dense = static_cast<size_t>(it - link_ids_.begin());
      accumulate_range(link_index_, dense,
                       quantized ? Quantize(w) : w, scratch->ldot_.data());
    }
  }
}

}  // namespace match
}  // namespace wikimatch
