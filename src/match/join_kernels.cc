#include "match/join_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace wikimatch {
namespace match {
namespace {

// -1 = no override; otherwise a JoinKernel value. Relaxed atomics: tests
// set the override before building indexes on other threads.
std::atomic<int> g_override{-1};

JoinKernel FromEnvironment() {
  const char* env = std::getenv("WIKIMATCH_JOIN_KERNEL");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return JoinKernel::kScalar;
  }
  // "vector", unset, or unrecognized: the default kernel.
  return JoinKernel::kVector;
}

}  // namespace

JoinKernel ActiveJoinKernel() {
  int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<JoinKernel>(forced);
  // The environment cannot change mid-process in any supported setup, but
  // benches re-read it per index build anyway; the call is two loads.
  static const JoinKernel from_env = FromEnvironment();
  return from_env;
}

void SetJoinKernelForTest(const JoinKernel* kernel) {
  g_override.store(kernel == nullptr ? -1 : static_cast<int>(*kernel),
                   std::memory_order_relaxed);
}

const char* JoinKernelName(JoinKernel kernel) {
  return kernel == JoinKernel::kScalar ? "scalar" : "vector";
}

namespace kernels {

void AccumulateF64(const uint32_t* groups, const double* weights, size_t n,
                   double w, double* dot) {
  size_t k = 0;
  // The four adds per iteration hit four distinct slots (group ids are
  // strictly increasing within a posting range), so they retire
  // independently; GCC and Clang keep the products in vector registers and
  // the scatter as four parallel read-modify-writes.
  for (; k + 4 <= n; k += 4) {
    const double p0 = w * weights[k];
    const double p1 = w * weights[k + 1];
    const double p2 = w * weights[k + 2];
    const double p3 = w * weights[k + 3];
    dot[groups[k]] += p0;
    dot[groups[k + 1]] += p1;
    dot[groups[k + 2]] += p2;
    dot[groups[k + 3]] += p3;
  }
  for (; k < n; ++k) dot[groups[k]] += w * weights[k];
}

void AccumulateF32(const uint32_t* groups, const float* weights, size_t n,
                   double w, double* dot) {
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const double p0 = w * static_cast<double>(weights[k]);
    const double p1 = w * static_cast<double>(weights[k + 1]);
    const double p2 = w * static_cast<double>(weights[k + 2]);
    const double p3 = w * static_cast<double>(weights[k + 3]);
    dot[groups[k]] += p0;
    dot[groups[k + 1]] += p1;
    dot[groups[k + 2]] += p2;
    dot[groups[k + 3]] += p3;
  }
  for (; k < n; ++k) dot[groups[k]] += w * static_cast<double>(weights[k]);
}

}  // namespace kernels

}  // namespace match
}  // namespace wikimatch
