// AttributeAlignment (Algorithm 1), IntegrateMatches (Algorithm 2), and
// ReviseUncertain (Section 3.4) — the WikiMatch core.
//
// Candidate pairs are ordered by LSI correlation; a pair whose value or
// link similarity clears Tsim is a *certain* candidate and is integrated
// under pairwise-correlation constraints; the rest are buffered as
// uncertain and revisited with the inductive grouping score once the
// certain matches are known. MatcherConfig exposes every ablation switch
// the paper evaluates (Table 3 / Figure 3).

#ifndef WIKIMATCH_MATCH_ALIGNER_H_
#define WIKIMATCH_MATCH_ALIGNER_H_

#include <cstddef>
#include <vector>

#include "eval/match_set.h"
#include "match/lsi.h"
#include "match/schema_builder.h"
#include "util/result.h"

namespace wikimatch {
namespace match {

/// \brief Full matcher configuration, thresholds plus ablation switches.
struct MatcherConfig {
  /// Certain-candidate threshold on max(vsim, lsim) (paper default 0.6).
  double t_sim = 0.6;
  /// Candidate-admission and integration-constraint threshold on LSI
  /// correlation (paper default 0.1).
  double t_lsi = 0.1;
  /// Admission threshold on the inductive grouping score for revising
  /// uncertain matches.
  double t_inductive = 0.20;
  /// Uncertain pairs must still show a trace of value or link agreement to
  /// be revised — the step targets pairs whose similarity is *lower than
  /// Tsim*, not pairs with no evidence at all.
  double t_revise_min_sim = 0.05;
  /// Link-structure support floor: an attribute whose values carry fewer
  /// links than this fraction of its occurrences contributes lsim = 0.
  /// Guards against sparse, accidentally-placed links (a handful of stray
  /// wikilinks under a numeric attribute would otherwise produce a high
  /// cosine against link-rich attributes with small target domains).
  double min_link_support = 0.05;
  LsiOptions lsi;

  // --- Ablation switches (Section 4.2) --------------------------------------
  /// WikiMatch-vsim: ignore value similarity.
  bool use_vsim = true;
  /// WikiMatch-lsim: ignore link-structure similarity.
  bool use_lsim = true;
  /// WikiMatch-LSI: order candidates by max(vsim, lsim) instead of LSI and
  /// drop the correlation constraints.
  bool use_lsi = true;
  /// WikiMatch-IntegrateMatches: skip the pairwise-correlation constraint
  /// when absorbing an attribute into an existing match.
  bool use_integrate_constraint = true;
  /// WikiMatch-ReviseUncertain: skip the uncertain-revision step.
  bool use_revise_uncertain = true;
  /// WikiMatch - inductive grouping: revise every uncertain pair instead of
  /// only the inductively-supported subset.
  bool use_inductive_grouping = true;
  /// WikiMatch random: process candidates in random order.
  bool random_order = false;
  /// WikiMatch single step: accept every pair with positive vsim or lsim
  /// directly (no queue, no constraints, no revision).
  bool single_step = false;
  /// Seed for random_order.
  uint64_t random_seed = 0x5EED;

  // --- Execution switches (docs/PERFORMANCE.md) -----------------------------
  /// Score pair features through the inverted-index sparse similarity join
  /// instead of the O(n²) all-pairs cosine loop. Output is bit-identical;
  /// the naive path is retained for equivalence tests and benchmarks.
  bool use_indexed_join = true;
  /// Keep the join's similarity scores bit-identical to
  /// SparseVector::Cosine (the default). When false, the join stores
  /// posting weights and norms rounded to fp32 (half the memory traffic;
  /// accumulation stays double) — scores move by at most fp32 rounding,
  /// which bench_align measures against the exact path. Result-affecting,
  /// so it is part of the snapshot OptionsFingerprint.
  bool use_exact_cosine = true;
  /// Retain AlignmentResult::all_pairs (the full O(n²) scored list needed
  /// by MAP and threshold studies). The pipeline turns this off by default:
  /// large schemas otherwise balloon memory and snapshot size, and the
  /// indexed join can then skip materializing zero-similarity pairs whose
  /// LSI correlation is below t_lsi.
  bool keep_all_pairs = true;
  /// Worker threads for the feature join and LSI scoring *within* one
  /// Align() call (1 or 0 = sequential). Results are identical for any
  /// value: rows are sharded by group and merged in group order.
  size_t num_threads = 1;
};

/// \brief Counters and per-phase wall times of one Align() call.
struct AlignStats {
  size_t groups = 0;           ///< attribute groups (both languages)
  size_t pairs_total = 0;      ///< n·(n−1)/2 candidate universe
  size_t pairs_generated = 0;  ///< pairs actually materialized
  size_t pairs_pruned = 0;     ///< pairs_total − pairs_generated
  size_t postings_visited = 0; ///< posting-list entries touched by the join
  double lsi_ms = 0.0;         ///< truncated SVD + correlation cache
  double feature_ms = 0.0;     ///< similarity join + candidate assembly
  double order_ms = 0.0;       ///< candidate ordering sort
  double match_ms = 0.0;       ///< queue, IntegrateMatches, ReviseUncertain
  double total_ms = 0.0;

  /// \brief Accumulates another run's counters and times into this one.
  void Merge(const AlignStats& other);
};

/// \brief One scored candidate pair.
struct CandidatePair {
  size_t i = 0;  ///< group indexes into TypePairData::groups
  size_t j = 0;
  double vsim = 0.0;
  double lsim = 0.0;
  double lsi = 0.0;
};

/// \brief Output of the aligner.
struct AlignmentResult {
  /// The derived matches M (clusters spanning both languages).
  eval::MatchSet matches;
  /// Every scored pair (for MAP and threshold studies), in the order the
  /// algorithm processed them.
  std::vector<CandidatePair> processed_order;
  /// All pairs with their scores regardless of admission, sorted by the
  /// ordering criterion (LSI by default). Empty unless
  /// MatcherConfig::keep_all_pairs is set.
  std::vector<CandidatePair> all_pairs;
  /// Execution counters and timings (not part of the algorithm's output;
  /// never serialized per alignment — the pipeline aggregates them).
  AlignStats stats;
};

/// \brief The WikiMatch attribute aligner.
class AttributeAligner {
 public:
  explicit AttributeAligner(MatcherConfig config = {});

  /// \brief Runs AttributeAlignment over one type pair.
  util::Result<AlignmentResult> Align(const TypePairData& data) const;

  /// \brief Similarity features for one pair of groups: cosine of value
  /// vectors (vsim) and of link-structure vectors (lsim).
  static double ValueSimilarity(const AttributeGroup& a,
                                const AttributeGroup& b);
  static double LinkSimilarity(const AttributeGroup& a,
                               const AttributeGroup& b);

  /// \brief Mono-language grouping score g(ap, aq) = Opq / min(Op, Oq).
  static double GroupingScore(const TypePairData& data, size_t i, size_t j);

  /// \brief Inductive grouping score eg(a, a') of an uncertain pair given
  /// the current matches (Section 3.4).
  static double InductiveGroupingScore(const TypePairData& data,
                                       const eval::MatchSet& matches,
                                       size_t i, size_t j);

 private:
  /// Reference all-pairs feature pass (use_indexed_join = false).
  std::vector<CandidatePair> NaiveCandidates(
      const TypePairData& data, const LsiCorrelation& lsi_scores) const;

  /// Inverted-index feature pass; fills join counters into `stats`.
  std::vector<CandidatePair> IndexedCandidates(
      const TypePairData& data, const LsiCorrelation& lsi_scores,
      AlignStats* stats) const;

  MatcherConfig config_;
};

}  // namespace match
}  // namespace wikimatch

#endif  // WIKIMATCH_MATCH_ALIGNER_H_
