#include "match/pipeline.h"

#include <optional>

#include "util/logging.h"
#include "util/parallel.h"

namespace wikimatch {
namespace match {

const TypePairResult* PipelineResult::FindByTypeB(
    const std::string& type_b) const {
  for (const auto& r : per_type) {
    if (r.type_b == type_b) return &r;
  }
  return nullptr;
}

MatchPipeline::MatchPipeline(const wiki::Corpus* corpus) : corpus_(corpus) {
  dictionary_.Build(*corpus_);
}

util::Result<TypePairData> MatchPipeline::BuildPair(
    const std::string& lang_a, const std::string& type_a,
    const std::string& lang_b, const std::string& type_b,
    const SchemaBuilderOptions& options) const {
  return BuildTypePairData(*corpus_, dictionary_, lang_a, type_a, lang_b,
                           type_b, options);
}

util::Result<PipelineResult> MatchPipeline::Run(
    const std::string& lang_a, const std::string& lang_b,
    const PipelineOptions& options) const {
  PipelineResult out;
  TypeMatcher type_matcher(options.type_min_votes,
                           options.type_min_confidence);
  out.type_matches = type_matcher.Match(*corpus_, lang_a, lang_b);

  AttributeAligner aligner(options.matcher);
  // Type pairs are independent: build and align each into its own slot so
  // parallel execution keeps deterministic output order.
  std::vector<std::optional<TypePairResult>> slots(out.type_matches.size());
  std::vector<util::Status> errors(out.type_matches.size());
  util::ParallelFor(
      out.type_matches.size(), options.num_threads, [&](size_t i) {
        const TypeMatch& tm = out.type_matches[i];
        auto data = BuildPair(lang_a, tm.type_a, lang_b, tm.type_b,
                              options.schema);
        if (!data.ok()) {
          WIKIMATCH_LOG(Warning)
              << "skipping type pair " << tm.type_a << "/" << tm.type_b
              << ": " << data.status().ToString();
          return;
        }
        TypePairResult result;
        result.type_a = tm.type_a;
        result.type_b = tm.type_b;
        result.num_duals = data->num_duals;
        result.frequencies = data->Frequencies();
        auto alignment = aligner.Align(data.ValueOrDie());
        if (!alignment.ok()) {
          errors[i] = alignment.status();
          return;
        }
        result.alignment = std::move(alignment).ValueOrDie();
        slots[i] = std::move(result);
      });
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!errors[i].ok()) return errors[i];
    if (slots[i].has_value()) {
      out.per_type.push_back(std::move(*slots[i]));
    }
  }
  return out;
}

}  // namespace match
}  // namespace wikimatch
