#include "match/pipeline.h"

#include <chrono>
#include <optional>
#include <sstream>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace wikimatch {
namespace match {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

std::string PipelineStats::ToString() const {
  std::ostringstream os;
  os << "type_pairs=" << type_pairs << " groups=" << align.groups
     << " pairs_total=" << align.pairs_total
     << " pairs_generated=" << align.pairs_generated
     << " pairs_pruned=" << align.pairs_pruned
     << " postings_visited=" << align.postings_visited
     << " type_match_ms=" << type_match_ms << " schema_ms=" << schema_ms
     << " lsi_ms=" << align.lsi_ms << " feature_ms=" << align.feature_ms
     << " order_ms=" << align.order_ms << " match_ms=" << align.match_ms
     << " align_ms=" << align.total_ms << " total_ms=" << total_ms;
  return os.str();
}

const TypePairResult* PipelineResult::FindByTypeB(
    const std::string& type_b) const {
  for (const auto& r : per_type) {
    if (r.type_b == type_b) return &r;
  }
  return nullptr;
}

MatchPipeline::MatchPipeline(const wiki::Corpus* corpus) : corpus_(corpus) {
  dictionary_.Build(*corpus_);
}

util::Result<TypePairData> MatchPipeline::BuildPair(
    const std::string& lang_a, const std::string& type_a,
    const std::string& lang_b, const std::string& type_b,
    const SchemaBuilderOptions& options) const {
  return BuildTypePairData(*corpus_, dictionary_, lang_a, type_a, lang_b,
                           type_b, options);
}

util::Result<PipelineResult> MatchPipeline::Run(
    const std::string& lang_a, const std::string& lang_b,
    const PipelineOptions& options) const {
  Clock::time_point run_start = Clock::now();
  PipelineResult out;
  TypeMatcher type_matcher(options.type_min_votes,
                           options.type_min_confidence);
  out.type_matches = type_matcher.Match(*corpus_, lang_a, lang_b);
  out.stats.type_match_ms = MsSince(run_start);

  AttributeAligner aligner(options.matcher);
  // Type pairs are independent: build and align each into its own slot so
  // parallel execution keeps deterministic output order. Per-slot timings
  // are summed after the join (workers never touch shared stats). This
  // loop runs on the shared pool, as do the aligner's loops inside it —
  // the nested parallelism borrows from one worker budget instead of
  // multiplying threads (util/thread_pool.h).
  std::vector<std::optional<TypePairResult>> slots(out.type_matches.size());
  std::vector<util::Status> errors(out.type_matches.size());
  std::vector<double> schema_ms(out.type_matches.size(), 0.0);
  util::thread_pool_for(
      out.type_matches.size(), options.num_threads, [&](size_t i) {
        const TypeMatch& tm = out.type_matches[i];
        Clock::time_point build_start = Clock::now();
        auto data = BuildPair(lang_a, tm.type_a, lang_b, tm.type_b,
                              options.schema);
        schema_ms[i] = MsSince(build_start);
        if (!data.ok()) {
          WIKIMATCH_LOG(Warning)
              << "skipping type pair " << tm.type_a << "/" << tm.type_b
              << ": " << data.status().ToString();
          return;
        }
        TypePairResult result;
        result.type_a = tm.type_a;
        result.type_b = tm.type_b;
        result.num_duals = data->num_duals;
        result.frequencies = data->Frequencies();
        auto alignment = aligner.Align(data.ValueOrDie());
        if (!alignment.ok()) {
          errors[i] = alignment.status();
          return;
        }
        result.alignment = std::move(alignment).ValueOrDie();
        slots[i] = std::move(result);
      });
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!errors[i].ok()) return errors[i];
    out.stats.schema_ms += schema_ms[i];
    if (slots[i].has_value()) {
      ++out.stats.type_pairs;
      out.stats.align.Merge(slots[i]->alignment.stats);
      out.per_type.push_back(std::move(*slots[i]));
    }
  }
  out.stats.total_ms = MsSince(run_start);
  return out;
}

}  // namespace match
}  // namespace wikimatch
