// In-memory model of the source tree for wikimatch-lint: every .h/.cc
// under src/ lexed (analysis/lexer.h), tagged with its module (the first
// directory under src/), and cross-linked through the project include
// graph. Rules (analysis/rules.h) run over this model; tests build
// synthetic trees with AddFile, the CLI loads the real one from disk.

#ifndef WIKIMATCH_ANALYSIS_SOURCE_TREE_H_
#define WIKIMATCH_ANALYSIS_SOURCE_TREE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lexer.h"
#include "util/status.h"

namespace wikimatch {
namespace analysis {

struct SourceFile {
  std::string path;    ///< repo-relative, '/'-separated: "src/util/mutex.h"
  std::string module;  ///< "util" for src/util/...; "" outside src/<dir>/
  LexedSource lex;
};

/// \brief The analyzed file set, ordered by path (iteration over the tree
/// is deterministic by construction — the analyzer obeys its own rule).
class SourceTree {
 public:
  /// \brief Adds (or replaces) a file. `path` should be repo-relative.
  void AddFile(std::string path, std::string_view content);

  /// \brief Loads every *.h / *.cc under `root`/src. `root` is the repo
  /// checkout; paths are stored relative to it.
  util::Status LoadFromDisk(const std::string& root);

  const std::map<std::string, SourceFile>& files() const { return files_; }

  /// \brief Resolves a quoted include target ("util/mutex.h") to the tree
  /// file it names, or nullptr for system/external headers.
  const SourceFile* Resolve(const std::string& include_path) const;

 private:
  std::map<std::string, SourceFile> files_;
};

/// \brief Module of a repo-relative path: "src/util/mutex.h" -> "util";
/// returns "" for paths not of the form src/<module>/...
std::string ModuleOf(const std::string& path);

}  // namespace analysis
}  // namespace wikimatch

#endif  // WIKIMATCH_ANALYSIS_SOURCE_TREE_H_
