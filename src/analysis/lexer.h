// Comment- and string-aware C++ lexer for wikimatch-lint.
//
// The analyzer's rules work on a token stream instead of raw lines, so a
// `std::mutex` split across lines, a `new` inside a block comment, or a
// NOLINT marker in a trailing comment are all handled exactly — the false
// positive/negative classes the old regex lint (tools/lint.sh) could not
// close. This is not a full C++ lexer: it only separates code from
// comments, string/char literals (including raw strings), and preprocessor
// directives, which is all the rules need.

#ifndef WIKIMATCH_ANALYSIS_LEXER_H_
#define WIKIMATCH_ANALYSIS_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace wikimatch {
namespace analysis {

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< numeric literal (coarse: pp-number)
  kString,      ///< string literal, contents dropped
  kChar,        ///< character literal, contents dropped
  kPunct,       ///< operator/punctuator; `::` and `->` kept multi-char
};

struct Token {
  TokenKind kind;
  std::string text;  ///< identifier/number/punct spelling; literals: ""
  int line = 0;      ///< 1-based source line of the token's first char
};

/// \brief One `#include` directive.
struct Include {
  int line = 0;
  std::string path;  ///< target as written, without the delimiters
  bool angled = false;
};

/// \brief Lexed view of one translation unit.
struct LexedSource {
  std::vector<std::string> raw_lines;
  /// Raw lines with comment text and literal contents blanked to spaces
  /// (delimiters kept), so substring scans cannot match inside either.
  std::vector<std::string> clean_lines;
  /// All tokens outside comments, literals kept as empty-content tokens.
  /// Preprocessor directives contribute no tokens (see `includes`).
  std::vector<Token> tokens;
  std::vector<Include> includes;
  /// line -> rule names silenced by `// NOLINT(rule,...)`; an empty set
  /// means a bare NOLINT silencing every rule on that line. Block comments
  /// register on the line the comment starts.
  std::map<int, std::set<std::string>> nolint;

  /// \brief True if `rule` is silenced on `line`.
  bool Silenced(int line, const std::string& rule) const;
};

/// \brief Lexes `content`; never fails (unterminated constructs are closed
/// at end of input).
LexedSource Lex(std::string_view content);

}  // namespace analysis
}  // namespace wikimatch

#endif  // WIKIMATCH_ANALYSIS_LEXER_H_
