#include "analysis/rules.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace wikimatch {
namespace analysis {

namespace {

using Tokens = std::vector<Token>;

bool IsId(const Token& t, const std::string& s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}
bool IsPunct(const Token& t, const std::string& s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}

// ------------------------------------------------------------- naked-new

bool HasSmartWrap(const std::string& clean_line) {
  return clean_line.find("unique_ptr<") != std::string::npos ||
         clean_line.find("shared_ptr<") != std::string::npos ||
         clean_line.find("make_unique") != std::string::npos ||
         clean_line.find("make_shared") != std::string::npos;
}

void RunNakedNew(const SourceTree& tree, std::vector<Diagnostic>* out) {
  for (const auto& [path, file] : tree.files()) {
    const Tokens& toks = file.lex.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!IsId(toks[i], "new")) continue;
      const Token& next = toks[i + 1];
      bool allocates =
          next.kind == TokenKind::kIdentifier || IsPunct(next, "::");
      if (!allocates) continue;
      if (i > 0 && IsId(toks[i - 1], "operator")) continue;
      int line = toks[i].line;
      if (file.lex.Silenced(line, "naked-new")) continue;
      size_t idx = static_cast<size_t>(line - 1);
      bool wrapped =
          (idx < file.lex.clean_lines.size() &&
           HasSmartWrap(file.lex.clean_lines[idx])) ||
          (idx >= 1 && HasSmartWrap(file.lex.clean_lines[idx - 1]));
      if (wrapped) continue;
      out->push_back({path, line, "naked-new",
                      "raw `new` — wrap in make_unique/make_shared or an "
                      "owning smart pointer on the same or previous line"});
    }
  }
}

// ------------------------------------------- raw-mutex / raw-thread

const std::set<std::string>& RawSyncTypes() {
  static const std::set<std::string> kTypes = {
      "mutex",       "recursive_mutex",          "timed_mutex",
      "shared_mutex", "recursive_timed_mutex",   "lock_guard",
      "unique_lock", "scoped_lock",              "shared_lock",
      "condition_variable", "condition_variable_any"};
  return kTypes;
}

void RunStdBan(const SourceTree& tree, const std::string& rule,
               const std::set<std::string>& banned,
               const std::set<std::string>& exempt_modules,
               const std::string& message, std::vector<Diagnostic>* out) {
  for (const auto& [path, file] : tree.files()) {
    if (exempt_modules.count(file.module) > 0) continue;
    const Tokens& toks = file.lex.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!IsId(toks[i], "std") || !IsPunct(toks[i + 1], "::")) continue;
      if (banned.count(toks[i + 2].text) == 0 ||
          toks[i + 2].kind != TokenKind::kIdentifier) {
        continue;
      }
      int line = toks[i].line;
      if (file.lex.Silenced(line, rule) ||
          file.lex.Silenced(toks[i + 2].line, rule)) {
        continue;
      }
      out->push_back({path, line, rule,
                      "std::" + toks[i + 2].text + " — " + message});
    }
  }
}

// ------------------------------------------------------ assign-or-return

constexpr char kAssignMacro[] = "WIKIMATCH_ASSIGN_OR_RETURN";

// Index of the token matching the `(` at `open`, or toks.size().
size_t MatchParen(const Tokens& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "(")) ++depth;
    if (IsPunct(toks[i], ")") && --depth == 0) return i;
  }
  return toks.size();
}

void RunAssignOrReturn(const SourceTree& tree, std::vector<Diagnostic>* out) {
  for (const auto& [path, file] : tree.files()) {
    const Tokens& toks = file.lex.tokens;

    // Two expansions on one line: the second shadows the first's internal
    // status variable.
    std::map<int, int> per_line;
    for (const Token& t : toks) {
      if (IsId(t, kAssignMacro)) ++per_line[t.line];
    }
    for (const auto& [line, count] : per_line) {
      if (count < 2 || file.lex.Silenced(line, "assign-or-return")) continue;
      out->push_back({path, line, "assign-or-return",
                      "two WIKIMATCH_ASSIGN_OR_RETURN on one line — the "
                      "second shadows the first's status variable"});
    }

    // The macro as the unbraced body of a control statement: it expands to
    // multiple statements, so only the first is governed by the condition.
    // Token-level, so the same-line form `if (x) WIKIMATCH_ASSIGN...` the
    // old regex missed is caught too.
    for (size_t i = 0; i < toks.size(); ++i) {
      size_t body = toks.size();
      if ((IsId(toks[i], "if") || IsId(toks[i], "while") ||
           IsId(toks[i], "for")) &&
          i + 1 < toks.size() && IsPunct(toks[i + 1], "(")) {
        size_t close = MatchParen(toks, i + 1);
        if (close + 1 < toks.size()) body = close + 1;
      } else if (IsId(toks[i], "else") || IsId(toks[i], "do")) {
        if (i + 1 < toks.size()) body = i + 1;
      }
      if (body >= toks.size() || !IsId(toks[body], kAssignMacro)) continue;
      int line = toks[body].line;
      if (file.lex.Silenced(line, "assign-or-return")) continue;
      out->push_back({path, line, "assign-or-return",
                      "WIKIMATCH_ASSIGN_OR_RETURN as an unbraced "
                      "if/else/for/while body — the macro expands to "
                      "multiple statements; add braces"});
    }
  }
}

// ----------------------------------------------------------- guarded-by

void RunGuardedBy(const SourceTree& tree, std::vector<Diagnostic>* out) {
  for (const auto& [path, file] : tree.files()) {
    if (path.size() < 2 || path.substr(path.size() - 2) != ".h") continue;
    const Tokens& toks = file.lex.tokens;
    bool has_guarded_by = false;
    for (const Token& t : toks) {
      if (IsId(t, "WIKIMATCH_GUARDED_BY")) has_guarded_by = true;
    }
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!IsId(toks[i], "Mutex")) continue;
      // Accept bare `Mutex` and `util::Mutex`; any other qualification is
      // a different type.
      if (i >= 2 && IsPunct(toks[i - 1], "::") && !IsId(toks[i - 2], "util")) {
        continue;
      }
      if (toks[i + 1].kind != TokenKind::kIdentifier ||
          !IsPunct(toks[i + 2], ";")) {
        continue;
      }
      const std::string& name = toks[i + 1].text;
      int line = toks[i + 1].line;
      if (file.lex.Silenced(line, "guarded-by")) continue;
      if (name.find("mu") == std::string::npos) {
        out->push_back({path, line, "guarded-by",
                        "mutex member '" + name + "' not named *mu* — the "
                        "naming convention keeps GUARDED_BY fields "
                        "greppable"});
      }
      if (!has_guarded_by) {
        out->push_back({path, line, "guarded-by",
                        "file declares mutex member '" + name + "' but no "
                        "field is annotated WIKIMATCH_GUARDED_BY — annotate "
                        "what the mutex protects "
                        "(util/thread_annotations.h)"});
      }
    }
  }
}

// ------------------------------------------------------------- layering

void RunLayering(const SourceTree& tree, std::vector<Diagnostic>* out) {
  const auto& dag = LayeringDag();

  // The declared graph must itself be a DAG — otherwise a "fix" could
  // legalize a cycle. Kahn's algorithm over the declared edges.
  {
    for (const auto& [m, deps] : dag) {
      for (const auto& d : deps) {
        if (dag.count(d) == 0) {
          out->push_back({"<layering-dag>", 0, "layering",
                          "declared DAG edge '" + m + "' -> '" + d +
                              "' names an undeclared module"});
        }
      }
    }
    std::vector<std::string> ready;
    std::map<std::string, int> pending;
    for (const auto& [m, deps] : dag) {
      pending[m] = static_cast<int>(deps.size());
      if (deps.empty()) ready.push_back(m);
    }
    size_t resolved = 0;
    while (!ready.empty()) {
      std::string m = ready.back();
      ready.pop_back();
      ++resolved;
      for (const auto& [n, deps] : dag) {
        if (deps.count(m) > 0 && --pending[n] == 0) ready.push_back(n);
      }
    }
    if (resolved != dag.size()) {
      out->push_back({"<layering-dag>", 0, "layering",
                      "declared module DAG contains a cycle — fix "
                      "LayeringDag() in src/analysis/rules.cc"});
      return;
    }
  }

  for (const auto& [path, file] : tree.files()) {
    if (file.module.empty()) continue;
    auto allowed_it = dag.find(file.module);
    for (const Include& inc : file.lex.includes) {
      if (inc.angled) continue;
      const SourceFile* target = tree.Resolve(inc.path);
      if (target == nullptr || target->module.empty()) continue;
      if (target->module == file.module) continue;
      if (file.lex.Silenced(inc.line, "layering")) continue;
      if (allowed_it == dag.end()) {
        out->push_back({path, inc.line, "layering",
                        "module '" + file.module + "' is not in the "
                        "declared layering DAG — add it to LayeringDag() "
                        "(src/analysis/rules.cc) with its allowed "
                        "dependencies"});
        break;  // one report per undeclared module's file is enough
      }
      if (allowed_it->second.count(target->module) == 0) {
        out->push_back({path, inc.line, "layering",
                        "include of \"" + inc.path + "\" crosses the "
                        "layering DAG: module '" + file.module + "' may "
                        "not depend on '" + target->module + "' (declared "
                        "DAG: docs/ANALYSIS.md)"});
      }
    }
  }
}

// -------------------------------------------------------- include-cycle

void RunIncludeCycle(const SourceTree& tree, std::vector<Diagnostic>* out) {
  // DFS with three colors over the project include graph; every back edge
  // is one cycle report, anchored at the include that closes it.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;

  std::function<void(const SourceFile&)> visit = [&](const SourceFile& f) {
    color[f.path] = 1;
    stack.push_back(f.path);
    for (const Include& inc : f.lex.includes) {
      if (inc.angled) continue;
      const SourceFile* target = tree.Resolve(inc.path);
      if (target == nullptr) continue;
      int c = color[target->path];
      if (c == 1) {
        auto it = std::find(stack.begin(), stack.end(), target->path);
        std::ostringstream cycle;
        for (; it != stack.end(); ++it) cycle << *it << " -> ";
        cycle << target->path;
        if (!f.lex.Silenced(inc.line, "include-cycle")) {
          out->push_back({f.path, inc.line, "include-cycle",
                          "include cycle: " + cycle.str()});
        }
      } else if (c == 0) {
        visit(*target);
      }
    }
    stack.pop_back();
    color[f.path] = 2;
  };

  for (const auto& [path, file] : tree.files()) {
    if (color[path] == 0) visit(file);
  }
}

// ------------------------------------------------------- unordered-iter

const std::set<std::string>& UnorderedTypes() {
  static const std::set<std::string> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kTypes;
}

struct UnorderedDecls {
  std::set<std::string> names;    ///< variables/members of unordered type
  std::set<std::string> aliases;  ///< `using X = std::unordered_...`
};

// Index just past the `>` closing the template argument list opened at
// `open` (which must point at `<`), or toks.size().
size_t SkipTemplateArgs(const Tokens& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "<")) ++depth;
    if (IsPunct(toks[i], ">") && --depth == 0) return i + 1;
  }
  return toks.size();
}

bool IsDeclTerminator(const Token& t) {
  return IsPunct(t, ";") || IsPunct(t, "=") || IsPunct(t, "{") ||
         IsPunct(t, ",") || IsPunct(t, ")");
}

// Records `name` declared at toks[i..] after a type ending at `i`
// (exclusive): skips cv/ref/pointer tokens, requires an identifier NOT
// followed by `(` (that would be a function returning the type).
void RecordDeclaredName(const Tokens& toks, size_t i, UnorderedDecls* decls) {
  while (i < toks.size() &&
         (IsPunct(toks[i], "&") || IsPunct(toks[i], "*") ||
          IsId(toks[i], "const"))) {
    ++i;
  }
  if (i + 1 >= toks.size()) return;
  if (toks[i].kind != TokenKind::kIdentifier) return;
  if (!IsDeclTerminator(toks[i + 1])) return;
  decls->names.insert(toks[i].text);
}

UnorderedDecls CollectUnorderedDecls(const SourceFile& file) {
  UnorderedDecls decls;
  const Tokens& toks = file.lex.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsId(toks[i], "std") || !IsPunct(toks[i + 1], "::")) continue;
    if (toks[i + 2].kind != TokenKind::kIdentifier ||
        UnorderedTypes().count(toks[i + 2].text) == 0) {
      continue;
    }
    // `using X = std::unordered_map<...>` declares alias X.
    if (i >= 3 && IsPunct(toks[i - 1], "=") &&
        toks[i - 2].kind == TokenKind::kIdentifier && i >= 4 &&
        IsId(toks[i - 3], "using")) {
      decls.aliases.insert(toks[i - 2].text);
      continue;
    }
    if (i + 3 >= toks.size() || !IsPunct(toks[i + 3], "<")) continue;
    RecordDeclaredName(toks, SkipTemplateArgs(toks, i + 3), &decls);
  }
  return decls;
}

// Transitive project includes of `file`, memoized across the rule run.
void ReachableFiles(const SourceTree& tree, const SourceFile& file,
                    std::map<std::string, std::set<std::string>>* memo,
                    std::set<std::string>* visiting,
                    std::set<std::string>* out_paths) {
  auto it = memo->find(file.path);
  if (it != memo->end()) {
    out_paths->insert(it->second.begin(), it->second.end());
    return;
  }
  if (visiting->count(file.path) > 0) return;  // include cycle: bail
  visiting->insert(file.path);
  std::set<std::string> reach;
  for (const Include& inc : file.lex.includes) {
    if (inc.angled) continue;
    const SourceFile* target = tree.Resolve(inc.path);
    if (target == nullptr) continue;
    reach.insert(target->path);
    ReachableFiles(tree, *target, memo, visiting, &reach);
  }
  visiting->erase(file.path);
  (*memo)[file.path] = reach;
  out_paths->insert(reach.begin(), reach.end());
}

void RunUnorderedIter(const SourceTree& tree, std::vector<Diagnostic>* out) {
  // Phase 1: per-file declarations of unordered-typed names and aliases.
  std::map<std::string, UnorderedDecls> per_file;
  for (const auto& [path, file] : tree.files()) {
    per_file[path] = CollectUnorderedDecls(file);
  }

  std::map<std::string, std::set<std::string>> reach_memo;
  for (const auto& [path, file] : tree.files()) {
    // Effective name set: own declarations plus every transitively
    // included header's (members declared in a .h are iterated from .cc).
    UnorderedDecls eff = per_file[path];
    std::set<std::string> reachable;
    std::set<std::string> visiting;
    ReachableFiles(tree, file, &reach_memo, &visiting, &reachable);
    for (const std::string& dep : reachable) {
      const UnorderedDecls& d = per_file[dep];
      eff.names.insert(d.names.begin(), d.names.end());
      eff.aliases.insert(d.aliases.begin(), d.aliases.end());
    }

    const Tokens& toks = file.lex.tokens;

    // Alias-typed declarations add their names: `FdMap conns;`.
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier ||
          eff.aliases.count(toks[i].text) == 0) {
        continue;
      }
      RecordDeclaredName(toks, i + 1, &eff);
    }

    auto flag = [&](int line, const std::string& what) {
      if (file.lex.Silenced(line, "unordered-iter")) return;
      out->push_back({path, line, "unordered-iter",
                      what + " — hash-table iteration order is "
                      "nondeterministic and must not feed output "
                      "(byte-identical contract, docs/ANALYSIS.md); use an "
                      "ordered container, sort first, or justify with "
                      "NOLINT(unordered-iter)"});
    };

    // Range-for over an unordered container.
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!IsId(toks[i], "for") || !IsPunct(toks[i + 1], "(")) continue;
      size_t close = MatchParen(toks, i + 1);
      if (close >= toks.size()) continue;
      // A classic for statement has a top-level `;` in its header (which
      // can also precede a ternary `:`); only a header with a top-level
      // `:` and no top-level `;` is a range-for.
      size_t colon = 0;
      bool has_semi = false;
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")")) --depth;
        if (depth == 1 && IsPunct(toks[j], ";")) has_semi = true;
        if (depth == 1 && IsPunct(toks[j], ":") && colon == 0) colon = j;
      }
      if (colon == 0 || has_semi) continue;
      size_t first = colon + 1;
      size_t last = close - 1;
      if (first > last) continue;
      // Iterating a freshly named unordered temporary.
      bool direct_type = false;
      for (size_t j = first; j <= last; ++j) {
        if (toks[j].kind == TokenKind::kIdentifier &&
            UnorderedTypes().count(toks[j].text) > 0) {
          direct_type = true;
        }
      }
      if (direct_type) {
        flag(toks[first].line, "range-for over an unordered container");
        continue;
      }
      // Strip a fully parenthesized range expression.
      while (first < last && IsPunct(toks[first], "(") &&
             MatchParen(toks, first) == last) {
        ++first;
        --last;
      }
      const Token& base = toks[last];
      if (base.kind != TokenKind::kIdentifier ||
          eff.names.count(base.text) == 0) {
        continue;
      }
      // The container must be the expression's base: alone, or reached
      // via member access / dereference — not an argument of a call
      // (which may well return an ordered view).
      bool is_base =
          first == last ||
          (last >= 1 &&
           (IsPunct(toks[last - 1], ".") || IsPunct(toks[last - 1], "->") ||
            IsPunct(toks[last - 1], "*") || IsPunct(toks[last - 1], "&") ||
            IsPunct(toks[last - 1], "::")));
      if (is_base) {
        flag(base.line, "range-for over unordered container '" + base.text +
                            "'");
      }
    }

    // begin()-family calls on an unordered container: ordered traversal
    // (or "first element") of a hash table.
    static const std::set<std::string> kBeginNames = {"begin", "cbegin",
                                                      "rbegin", "crbegin"};
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier ||
          eff.names.count(toks[i].text) == 0) {
        continue;
      }
      if (!IsPunct(toks[i + 1], ".") && !IsPunct(toks[i + 1], "->")) continue;
      if (toks[i + 2].kind != TokenKind::kIdentifier ||
          kBeginNames.count(toks[i + 2].text) == 0) {
        continue;
      }
      if (!IsPunct(toks[i + 3], "(")) continue;
      flag(toks[i].line, "iterator traversal of unordered container '" +
                             toks[i].text + "' via " + toks[i + 2].text +
                             "()");
    }
  }
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kNames = {
      "naked-new",      "raw-mutex", "raw-thread",
      "assign-or-return", "guarded-by", "layering",
      "include-cycle",  "unordered-iter"};
  return kNames;
}

const std::map<std::string, std::set<std::string>>& LayeringDag() {
  // The declared architecture, lowest layer first; docs/ANALYSIS.md
  // renders the same graph as a chain. An edge here is PERMISSION to
  // include, not a requirement. Keep this the single source of truth —
  // the rule checks the graph is acyclic before using it.
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"util", {}},
      {"text", {"util"}},
      {"eval", {"util"}},
      {"la", {"util", "text"}},
      {"wiki", {"util", "text"}},
      {"analysis", {"util"}},
      {"match", {"util", "text", "eval", "la", "wiki"}},
      {"baselines", {"util", "text", "eval", "la", "wiki", "match"}},
      {"sync", {"util", "text", "eval", "wiki", "match"}},
      {"store", {"util", "text", "wiki", "match", "sync"}},
      {"ingest", {"util", "text", "wiki", "match", "store"}},
      {"synth", {"util", "text", "eval", "wiki", "match", "ingest", "sync"}},
      {"query", {"util", "text", "eval", "wiki", "match", "synth"}},
      {"serve", {"util", "text", "wiki", "match", "store", "query"}},
      {"net", {"util", "serve"}},
      {"cli", {"util", "text", "eval", "la", "wiki", "match", "baselines",
               "sync", "store", "ingest", "synth", "query", "serve", "net",
               "analysis"}},
  };
  return kDag;
}

std::vector<Diagnostic> RunRule(const SourceTree& tree,
                                const std::string& rule) {
  std::vector<Diagnostic> out;
  if (rule == "naked-new") {
    RunNakedNew(tree, &out);
  } else if (rule == "raw-mutex") {
    RunStdBan(tree, rule, RawSyncTypes(), {"util"},
              "use the annotated util::Mutex / util::MutexLock / "
              "util::CondVar (src/util/mutex.h) so thread-safety analysis "
              "can see the lock",
              &out);
  } else if (rule == "raw-thread") {
    RunStdBan(tree, rule, {"thread", "jthread"}, {"util", "net"},
              "run the work on the shared pool (util/thread_pool.h: "
              "thread_pool_for / thread_pool_async) so the process thread "
              "count stays bounded by the pool size",
              &out);
  } else if (rule == "assign-or-return") {
    RunAssignOrReturn(tree, &out);
  } else if (rule == "guarded-by") {
    RunGuardedBy(tree, &out);
  } else if (rule == "layering") {
    RunLayering(tree, &out);
  } else if (rule == "include-cycle") {
    RunIncludeCycle(tree, &out);
  } else if (rule == "unordered-iter") {
    RunUnorderedIter(tree, &out);
  } else {
    out.push_back({"<analyzer>", 0, "internal",
                   "unknown rule '" + rule + "' — known rules: " +
                       [] {
                         std::string all;
                         for (const auto& r : RuleNames()) {
                           if (!all.empty()) all += ", ";
                           all += r;
                         }
                         return all;
                       }()});
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Diagnostic> RunAllRules(const SourceTree& tree) {
  std::vector<Diagnostic> all;
  for (const std::string& rule : RuleNames()) {
    std::vector<Diagnostic> one = RunRule(tree, rule);
    all.insert(all.end(), one.begin(), one.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
        << "\n";
  }
  return out.str();
}

}  // namespace analysis
}  // namespace wikimatch
