// wikimatch-lint rule catalog (docs/ANALYSIS.md has the narrative form).
//
// Token-level reimplementations of the five legacy tools/lint.sh rules —
// without the regex false-negative classes (multi-line declarations,
// `std :: mutex` spacing, `condition_variable_any`, same-line unbraced
// control bodies) — plus three rules a regex cannot express at all:
//
//   layering         every cross-module include must be an edge of the
//                    declared module DAG (LayeringDag()); the DAG itself
//                    is checked acyclic.
//   include-cycle    the file-level include graph must be a DAG (header
//                    guards make cycles compile; they are still banned).
//   unordered-iter   no range-for / begin() iteration over
//                    std::unordered_map|set — hash-order feeding output
//                    breaks the byte-identical contract. Sites whose
//                    order provably cannot reach output carry
//                    NOLINT(unordered-iter) with a reason.
//
// Every rule honors `// NOLINT` / `// NOLINT(rule-name)` on the line.

#ifndef WIKIMATCH_ANALYSIS_RULES_H_
#define WIKIMATCH_ANALYSIS_RULES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/source_tree.h"

namespace wikimatch {
namespace analysis {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
  bool operator==(const Diagnostic& o) const {
    return file == o.file && line == o.line && rule == o.rule &&
           message == o.message;
  }
};

/// \brief All rule names, in catalog order.
const std::vector<std::string>& RuleNames();

/// \brief The declared module-layering DAG: module -> modules it may
/// include. A module absent from this map may not be included at all and
/// flags its own files (add new modules here deliberately).
const std::map<std::string, std::set<std::string>>& LayeringDag();

/// \brief Runs one rule by name over the tree; unknown names return an
/// internal diagnostic rather than silently passing.
std::vector<Diagnostic> RunRule(const SourceTree& tree,
                                const std::string& rule);

/// \brief Runs the full catalog; diagnostics come back sorted.
std::vector<Diagnostic> RunAllRules(const SourceTree& tree);

/// \brief `file:line: [rule] message` lines, one per diagnostic.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diags);

}  // namespace analysis
}  // namespace wikimatch

#endif  // WIKIMATCH_ANALYSIS_RULES_H_
