#include "analysis/lexer.h"

#include <cctype>

namespace wikimatch {
namespace analysis {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// String-literal prefixes whose identifier token should fold into the
// literal instead of being emitted (L"x", u8"x", R"(x)", u8R"(x)", ...).
bool IsStringPrefix(const std::string& id) {
  return id == "L" || id == "u" || id == "U" || id == "u8" || id == "R" ||
         id == "LR" || id == "uR" || id == "UR" || id == "u8R";
}

bool IsRawPrefix(const std::string& id) {
  return !id.empty() && id.back() == 'R';
}

// Parses NOLINT markers out of one comment chunk and registers them on
// `line`. Bare NOLINT (no parenthesized list) silences every rule, encoded
// as the empty set; a bare marker overrides any rule list on the same line.
void RegisterNolint(const std::string& comment, int line,
                    std::map<int, std::set<std::string>>* nolint) {
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    size_t after = pos + 6;
    if (after < comment.size() && comment[after] == '(') {
      size_t close = comment.find(')', after);
      std::string list = close == std::string::npos
                             ? comment.substr(after + 1)
                             : comment.substr(after + 1, close - after - 1);
      auto it = nolint->find(line);
      if (it == nolint->end() || !it->second.empty()) {  // a bare marker wins
        std::set<std::string>& rules = (*nolint)[line];
        std::string cur;
        for (char c : list + ",") {
          if (c == ',') {
            if (!cur.empty()) rules.insert(cur);
            cur.clear();
          } else if (c != ' ' && c != '\t') {
            cur += c;
          }
        }
      }
      pos = close == std::string::npos ? comment.size() : close;
    } else {
      (*nolint)[line].clear();  // bare NOLINT: silence all rules
      pos = after;
    }
  }
}

class Lexer {
 public:
  explicit Lexer(std::string_view content) : src_(content) {
    std::string cur;
    for (char c : src_) {
      if (c == '\n') {
        out_.raw_lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    out_.raw_lines.push_back(cur);
    out_.clean_lines = out_.raw_lines;
  }

  LexedSource Run() {
    while (!AtEnd()) {
      char c = Cur();
      if (c == '\n') {
        if (in_directive_ && !LineEndsWithBackslash()) in_directive_ = false;
        line_has_code_ = false;
        Advance();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        Advance();
        continue;
      }
      if (c == '/' && Peek() == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek() == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && !line_has_code_ && !in_directive_) {
        LexDirective();
        continue;
      }
      line_has_code_ = true;
      if (c == '"') {
        LexString(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        LexCharLiteral();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifier();
        continue;
      }
      if (IsDigit(c)) {
        LexNumber();
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Cur() const { return src_[pos_]; }
  char Peek(size_t n = 1) const {
    return pos_ + n < src_.size() ? src_[pos_ + n] : '\0';
  }

  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 0;
    } else {
      ++col_;
    }
    ++pos_;
  }

  // Blanks the current character in the clean view (comments and literal
  // contents must not be visible to substring scans).
  void BlankAndAdvance() {
    if (Cur() != '\n' && line_ - 1 < out_.clean_lines.size() &&
        col_ < out_.clean_lines[line_ - 1].size()) {
      out_.clean_lines[line_ - 1][col_] = ' ';
    }
    Advance();
  }

  bool LineEndsWithBackslash() const {
    // Called when Cur() == '\n': directive continues if the last
    // non-carriage-return char before the newline is a backslash.
    size_t i = pos_;
    while (i > 0 && src_[i - 1] == '\r') --i;
    return i > 0 && src_[i - 1] == '\\';
  }

  void Emit(TokenKind kind, std::string text, int line) {
    if (in_directive_) return;  // directives contribute no tokens
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void LexLineComment() {
    int start_line = static_cast<int>(line_);
    std::string text;
    while (!AtEnd() && Cur() != '\n') {
      text += Cur();
      BlankAndAdvance();
    }
    RegisterNolint(text, start_line, &out_.nolint);
  }

  void LexBlockComment() {
    BlankAndAdvance();  // '/'
    BlankAndAdvance();  // '*'
    std::string chunk;
    int chunk_line = static_cast<int>(line_);
    while (!AtEnd()) {
      if (Cur() == '*' && Peek() == '/') {
        BlankAndAdvance();
        BlankAndAdvance();
        break;
      }
      if (Cur() == '\n') {
        RegisterNolint(chunk, chunk_line, &out_.nolint);
        chunk.clear();
        Advance();
        chunk_line = static_cast<int>(line_);
        continue;
      }
      chunk += Cur();
      BlankAndAdvance();
    }
    RegisterNolint(chunk, chunk_line, &out_.nolint);
  }

  void LexDirective() {
    in_directive_ = true;
    line_has_code_ = true;
    Advance();  // '#'
    while (!AtEnd() && (Cur() == ' ' || Cur() == '\t')) Advance();
    std::string word;
    while (!AtEnd() && IsIdentChar(Cur())) {
      word += Cur();
      Advance();
    }
    if (word != "include") return;  // body consumed by the main loop
    while (!AtEnd() && (Cur() == ' ' || Cur() == '\t')) Advance();
    if (AtEnd()) return;
    Include inc;
    inc.line = static_cast<int>(line_);
    char open = Cur();
    char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0') return;  // macro-computed include: ignore
    inc.angled = open == '<';
    Advance();
    while (!AtEnd() && Cur() != close && Cur() != '\n') {
      inc.path += Cur();
      Advance();
    }
    if (!AtEnd() && Cur() == close) Advance();
    out_.includes.push_back(std::move(inc));
  }

  void LexString(bool raw) {
    int start_line = static_cast<int>(line_);
    Advance();  // opening quote (kept in the clean view)
    if (raw) {
      std::string delim;
      while (!AtEnd() && Cur() != '(') {
        delim += Cur();
        BlankAndAdvance();
      }
      if (!AtEnd()) BlankAndAdvance();  // '('
      const std::string closer = ")" + delim;
      while (!AtEnd()) {
        if (Cur() == '"' && pos_ >= closer.size() &&
            src_.substr(pos_ - closer.size(), closer.size()) == closer) {
          Advance();  // closing quote
          break;
        }
        BlankAndAdvance();
      }
    } else {
      ConsumeQuotedBody('"');
    }
    Emit(TokenKind::kString, "", start_line);
  }

  void LexCharLiteral() {
    int start_line = static_cast<int>(line_);
    Advance();  // opening quote
    ConsumeQuotedBody('\'');
    Emit(TokenKind::kChar, "", start_line);
  }

  // Consumes a non-raw literal body up to (and including) the closing
  // quote, honoring backslash escapes; gives up at end of line so an
  // unterminated literal cannot swallow the rest of the file.
  void ConsumeQuotedBody(char quote) {
    while (!AtEnd() && Cur() != '\n') {
      if (Cur() == quote) {
        Advance();
        return;
      }
      if (Cur() == '\\') {
        BlankAndAdvance();  // backslash
        if (!AtEnd() && Cur() != '\n') BlankAndAdvance();  // escaped char
      } else {
        BlankAndAdvance();
      }
    }
  }

  void LexIdentifier() {
    int start_line = static_cast<int>(line_);
    std::string id;
    while (!AtEnd() && IsIdentChar(Cur())) {
      id += Cur();
      Advance();
    }
    if (!AtEnd() && Cur() == '"' && IsStringPrefix(id)) {
      LexString(IsRawPrefix(id));
      return;
    }
    Emit(TokenKind::kIdentifier, std::move(id), start_line);
  }

  void LexNumber() {
    int start_line = static_cast<int>(line_);
    std::string num;
    while (!AtEnd()) {
      char c = Cur();
      if (IsIdentChar(c) || c == '.') {
        num += c;
        Advance();
        // exponent signs keep the pp-number going: 1e-5, 0x1p+3
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && !AtEnd() &&
            (Cur() == '+' || Cur() == '-') && num.size() > 1) {
          num += Cur();
          Advance();
        }
      } else if (c == '\'' && IsIdentChar(Peek())) {
        Advance();  // digit separator: 1'000'000
      } else {
        break;
      }
    }
    Emit(TokenKind::kNumber, std::move(num), start_line);
  }

  void LexPunct() {
    int start_line = static_cast<int>(line_);
    char c = Cur();
    if ((c == ':' && Peek() == ':') || (c == '-' && Peek() == '>')) {
      std::string two{c, Peek()};
      Advance();
      Advance();
      Emit(TokenKind::kPunct, std::move(two), start_line);
      return;
    }
    Advance();
    Emit(TokenKind::kPunct, std::string(1, c), start_line);
  }

  std::string_view src_;
  LexedSource out_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 0;
  bool line_has_code_ = false;
  bool in_directive_ = false;
};

}  // namespace

bool LexedSource::Silenced(int line, const std::string& rule) const {
  auto it = nolint.find(line);
  if (it == nolint.end()) return false;
  return it->second.empty() || it->second.count(rule) > 0;
}

LexedSource Lex(std::string_view content) { return Lexer(content).Run(); }

}  // namespace analysis
}  // namespace wikimatch
