#include "analysis/source_tree.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace wikimatch {
namespace analysis {

namespace fs = std::filesystem;

std::string ModuleOf(const std::string& path) {
  constexpr std::string_view kPrefix = "src/";
  if (path.rfind(kPrefix, 0) != 0) return "";
  size_t slash = path.find('/', kPrefix.size());
  if (slash == std::string::npos) return "";  // file directly under src/
  return path.substr(kPrefix.size(), slash - kPrefix.size());
}

void SourceTree::AddFile(std::string path, std::string_view content) {
  SourceFile file;
  file.path = path;
  file.module = ModuleOf(path);
  file.lex = Lex(content);
  files_[std::move(path)] = std::move(file);
}

util::Status SourceTree::LoadFromDisk(const std::string& root) {
  fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return util::Status::InvalidArgument("no src/ directory under " + root);
  }
  std::vector<fs::path> paths;
  for (fs::recursive_directory_iterator it(src, ec), end; it != end;
       it.increment(ec)) {
    if (ec) return util::Status::Internal("walking " + src.string() + ": " +
                                          ec.message());
    if (!it->is_regular_file()) continue;
    std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") paths.push_back(it->path());
  }
  // Directory iteration order is filesystem-dependent; sort so diagnostics
  // and include-cycle walks are identical on every box.
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return util::Status::IoError("cannot read " + p.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    AddFile(fs::relative(p, root).generic_string(), buf.str());
  }
  return util::Status::OK();
}

const SourceFile* SourceTree::Resolve(const std::string& include_path) const {
  auto it = files_.find("src/" + include_path);
  return it == files_.end() ? nullptr : &it->second;
}

}  // namespace analysis
}  // namespace wikimatch
