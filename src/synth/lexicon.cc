#include "synth/lexicon.h"

#include <array>

#include "util/string_util.h"

namespace wikimatch {
namespace synth {

namespace {

// --- English syllable inventory -------------------------------------------
const char* kEnOnsets[] = {"b",  "br", "c",  "cl", "d",  "dr", "f", "fl",
                           "g",  "gr", "h",  "l",  "m",  "n",  "p", "pl",
                           "pr", "r",  "s",  "sh", "sl", "st", "t", "th",
                           "tr", "v",  "w"};
const char* kEnNuclei[] = {"a", "e", "i", "o", "u", "ea", "ee", "ai", "ou"};
const char* kEnCodas[] = {"",  "n",  "r",  "t",  "l",  "s",  "m",
                          "nd", "st", "ck", "ng", "rd", "th", ""};
const char* kEnSuffixes[] = {"tion", "ment", "ing", "er", "ness", "ship",
                             "age",  "ance", "ure", "ist", "",     ""};

// --- Romance (Portuguese-like) --------------------------------------------
const char* kPtOnsets[] = {"b",  "br", "c",  "ch", "d",  "f",  "fr", "g",
                           "j",  "l",  "lh", "m",  "n",  "nh", "p",  "pr",
                           "qu", "r",  "s",  "t",  "tr", "v",  "z"};
const char* kPtNuclei[] = {"a", "e", "i", "o", "u", "ã", "é", "ê", "ó", "ei",
                           "ou", "ão"};
const char* kPtCodas[] = {"", "", "", "s", "r", "l", "m", "n"};
const char* kPtSuffixes[] = {"ção", "dade", "mento", "eiro", "agem", "ista",
                             "ura", "ência", "or",   "",     ""};

// --- Vietnamese -------------------------------------------------------------
const char* kViOnsets[] = {"b",  "c",  "ch", "d",  "đ",  "g",  "gi", "h",
                           "kh", "l",  "m",  "n",  "ng", "nh", "ph", "qu",
                           "s",  "t",  "th", "tr", "v",  "x"};
const char* kViNuclei[] = {"a", "à", "á", "ả", "ã", "ạ", "ă", "â", "e", "è",
                           "é", "ẹ", "ê", "ề", "ế", "i", "ì", "í", "ị", "o",
                           "ò", "ó", "ọ", "ô", "ồ", "ố", "ơ", "ờ", "ớ", "u",
                           "ù", "ú", "ụ", "ư", "ừ", "ứ", "y", "ỳ", "ý"};
const char* kViCodas[] = {"",  "n", "ng", "nh", "m", "c",
                          "t", "p", "i",  "o",  "u", ""};

template <size_t N>
const char* Pick(util::Rng* rng, const char* const (&arr)[N]) {
  return arr[rng->NextBounded(N)];
}

std::string MakeEnglishWord(util::Rng* rng) {
  size_t syllables = 1 + rng->NextBounded(2);
  std::string w;
  for (size_t i = 0; i < syllables; ++i) {
    w += Pick(rng, kEnOnsets);
    w += Pick(rng, kEnNuclei);
    w += Pick(rng, kEnCodas);
  }
  if (rng->NextBool(0.4)) w += Pick(rng, kEnSuffixes);
  return w;
}

std::string MakeRomanceWord(util::Rng* rng) {
  size_t syllables = 1 + rng->NextBounded(2);
  std::string w;
  for (size_t i = 0; i < syllables; ++i) {
    w += Pick(rng, kPtOnsets);
    w += Pick(rng, kPtNuclei);
    w += Pick(rng, kPtCodas);
  }
  if (rng->NextBool(0.5)) w += Pick(rng, kPtSuffixes);
  return w;
}

std::string MakeVietnameseWord(util::Rng* rng) {
  size_t syllables = 1 + rng->NextBounded(2);
  std::string w;
  for (size_t i = 0; i < syllables; ++i) {
    if (i > 0) w += " ";
    w += Pick(rng, kViOnsets);
    w += Pick(rng, kViNuclei);
    w += Pick(rng, kViCodas);
  }
  return w;
}

// Uppercases the first ASCII letter (sufficient: generated names start
// ASCII).
std::string Capitalize(std::string s) {
  if (!s.empty() && s[0] >= 'a' && s[0] <= 'z') {
    s[0] = static_cast<char>(s[0] - 'a' + 'A');
  }
  return s;
}

}  // namespace

WordGenerator::WordGenerator(Morphology morphology)
    : morphology_(morphology) {}

std::string WordGenerator::MakeWord(util::Rng* rng) const {
  switch (morphology_) {
    case Morphology::kEnglish:
      return MakeEnglishWord(rng);
    case Morphology::kRomance:
      return MakeRomanceWord(rng);
    case Morphology::kVietnamese:
      return MakeVietnameseWord(rng);
  }
  return {};
}

std::string WordGenerator::MakePhrase(util::Rng* rng, size_t words) const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < words; ++i) parts.push_back(MakeWord(rng));
  return util::Join(parts, " ");
}

std::string WordGenerator::Cognate(const std::string& english,
                                   util::Rng* rng) const {
  // Keep the root (strip a known English suffix when present), then attach
  // a Romance ending. The result is string-similar to the English form but
  // not identical — the situation where syntactic matchers half-work.
  std::string root = english;
  static const std::array<std::pair<const char*, const char*>, 7> kMap = {{
      {"tion", "ção"},
      {"ment", "mento"},
      {"ity", "idade"},
      {"er", "or"},
      {"ing", "agem"},
      {"ness", "eza"},
      {"age", "agem"},
  }};
  for (const auto& [en_suf, pt_suf] : kMap) {
    if (util::EndsWith(root, en_suf)) {
      root = root.substr(0, root.size() - std::string(en_suf).size());
      return root + pt_suf;
    }
  }
  // No mapped suffix: append a short Romance vowel ending.
  const char* endings[] = {"o", "a", "e", "ia", "ista"};
  return root + endings[rng->NextBounded(5)];
}

std::string WordGenerator::MakeProperName(util::Rng* rng,
                                          size_t words) const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < words; ++i) {
    parts.push_back(Capitalize(MakeWord(rng)));
  }
  return util::Join(parts, " ");
}

const std::vector<SeedConcept>& FilmSeedConcepts() {
  static const std::vector<SeedConcept> kConcepts = {
      {"directed_by",
       "entity",
       {{"en", {"directed by"}}, {"pt", {"direção"}}, {"vi", {"đạo diễn"}}}},
      {"produced_by",
       "entity",
       {{"en", {"produced by"}}, {"pt", {"produção"}}, {"vi", {"sản xuất"}}}},
      {"written_by",
       "entity",
       {{"en", {"written by"}}, {"pt", {"roteiro"}}, {"vi", {"kịch bản"}}}},
      {"starring",
       "entity_list",
       {{"en", {"starring"}},
        {"pt", {"elenco original", "elenco"}},
        {"vi", {"diễn viên"}}}},
      {"music_by",
       "entity",
       {{"en", {"music by"}}, {"pt", {"música"}}, {"vi", {"âm nhạc"}}}},
      {"editing_by",
       "entity",
       {{"en", {"editing by"}}, {"pt", {"edição"}}, {"vi", {"dựng phim"}}}},
      {"distributed_by",
       "entity",
       {{"en", {"distributed by"}},
        {"pt", {"distribuição"}},
        {"vi", {"phát hành bởi"}}}},
      {"studio",
       "entity",
       {{"en", {"studio"}}, {"pt", {"estúdio"}}, {"vi", {"hãng sản xuất"}}}},
      {"release_date",
       "date",
       {{"en", {"release date", "released"}},
        {"pt", {"lançamento"}},
        {"vi", {"ngày phát hành"}}}},
      {"running_time",
       "duration",
       {{"en", {"running time"}}, {"pt", {"duração"}}, {"vi", {"thời lượng"}}}},
      {"country",
       "place",
       {{"en", {"country"}}, {"pt", {"país"}}, {"vi", {"quốc gia"}}}},
      {"language",
       "term",
       {{"en", {"language"}},
        {"pt", {"idioma original", "idioma"}},
        {"vi", {"ngôn ngữ"}}}},
      {"budget",
       "money",
       {{"en", {"budget"}}, {"pt", {"orçamento"}}, {"vi", {"kinh phí"}}}},
      {"gross_revenue",
       "money",
       {{"en", {"gross revenue", "gross"}},
        {"pt", {"receita"}},
        {"vi", {"doanh thu", "thu nhập"}}}},
      {"genre",
       "term",
       {{"en", {"genre"}}, {"pt", {"gênero"}}, {"vi", {"thể loại"}}}},
      {"story_by",
       "entity",
       {{"en", {"story by"}}, {"pt", {"história"}}, {"vi", {"cốt truyện"}}}},
      {"awards",
       "text",
       {{"en", {"awards"}}, {"pt", {"prêmios"}}, {"vi", {"giải thưởng"}}}},
      {"title",
       "name",
       {{"en", {"name"}}, {"pt", {"nome", "título"}}, {"vi", {"tên"}}}},
  };
  return kConcepts;
}

const std::vector<SeedConcept>& ActorSeedConcepts() {
  static const std::vector<SeedConcept> kConcepts = {
      {"born",
       "date",
       {{"en", {"born"}},
        {"pt", {"nascimento", "data de nascimento"}},
        {"vi", {"sinh", "ngày sinh"}}}},
      {"birth_place",
       "place",
       {{"en", {"birthplace"}},
        {"pt", {"local de nascimento", "país de nascimento"}},
        {"vi", {"nơi sinh"}}}},
      {"died",
       "date",
       {{"en", {"died"}},
        {"pt", {"falecimento", "morte"}},
        {"vi", {"mất", "ngày mất"}}}},
      {"other_names",
       "name",
       {{"en", {"other names"}},
        {"pt", {"outros nomes"}},
        {"vi", {"tên khác"}}}},
      {"occupation",
       "term",
       {{"en", {"occupation"}},
        {"pt", {"ocupação"}},
        {"vi", {"vai trò", "công việc"}}}},
      {"spouse",
       "entity",
       {{"en", {"spouse"}},
        {"pt", {"cônjuge"}},
        {"vi", {"chồng", "vợ"}}}},
      {"years_active",
       "text",
       {{"en", {"years active"}},
        {"pt", {"anos em atividade"}},
        {"vi", {"năm hoạt động"}}}},
      {"website",
       "text",
       {{"en", {"website"}}, {"pt", {"página oficial"}}, {"vi", {"trang web"}}}},
      {"nationality",
       "place",
       {{"en", {"nationality"}},
        {"pt", {"nacionalidade"}},
        {"vi", {"quốc tịch"}}}},
      {"notable_works",
       "entity_list",
       {{"en", {"notable works"}},
        {"pt", {"trabalhos notáveis"}},
        {"vi", {"tác phẩm"}}}},
      {"name",
       "name",
       {{"en", {"name"}}, {"pt", {"nome"}}, {"vi", {"tên"}}}},
      {"genre_field",
       "term",
       {{"en", {"genre"}}, {"pt", {"gênero"}}, {"vi", {"thể loại"}}}},
  };
  return kConcepts;
}

const std::map<std::string, std::map<std::string, std::string>>&
SeedTypeNames() {
  static const std::map<std::string, std::map<std::string, std::string>>
      kNames = {
          {"film", {{"en", "film"}, {"pt", "filme"}, {"vi", "phim"}}},
          {"show",
           {{"en", "television"}, {"pt", "programa de tv"}, {"vi", "chương trình"}}},
          {"actor", {{"en", "actor"}, {"pt", "ator"}, {"vi", "diễn viên"}}},
          {"artist",
           {{"en", "musical artist"}, {"pt", "música artista"}, {"vi", "nghệ sĩ"}}},
          {"channel", {{"en", "tv channel"}, {"pt", "canal de televisão"}}},
          {"company", {{"en", "company"}, {"pt", "empresa"}}},
          {"comics character",
           {{"en", "comics character"}, {"pt", "personagem de quadrinhos"}}},
          {"album", {{"en", "album"}, {"pt", "álbum"}}},
          {"adult actor", {{"en", "adult biography"}, {"pt", "ator adulto"}}},
          {"book", {{"en", "book"}, {"pt", "livro"}}},
          {"episode",
           {{"en", "television episode"}, {"pt", "episódio de televisão"}}},
          {"writer", {{"en", "writer"}, {"pt", "escritor"}}},
          {"comics", {{"en", "comic book"}, {"pt", "banda desenhada"}}},
          {"fictional character",
           {{"en", "character"}, {"pt", "personagem fictícia"}}},
      };
  return kNames;
}

}  // namespace synth
}  // namespace wikimatch
