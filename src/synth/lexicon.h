// Lexicon synthesis: pseudo-words with per-language morphology.
//
// The corpus generator needs attribute names, entity titles, and value
// words in English, Portuguese, and Vietnamese. English and Portuguese
// surface forms may share roots (cognates — and occasionally *false*
// cognates, the paper's editora/editor trap), while Vietnamese forms are
// morphologically disjoint (tone-marked syllables). This module synthesizes
// such words deterministically from an Rng, and also carries a seed lexicon
// of real attribute names from the paper (direção ~ directed by ~ đạo diễn)
// so generated corpora read like the paper's tables.

#ifndef WIKIMATCH_SYNTH_LEXICON_H_
#define WIKIMATCH_SYNTH_LEXICON_H_

#include <map>
#include <string>
#include <vector>

#include "util/rng.h"

namespace wikimatch {
namespace synth {

/// \brief Morphology family of a language.
enum class Morphology {
  kEnglish,
  kRomance,     // Portuguese-like: Latin roots, ção/dade/eiro endings
  kVietnamese,  // tone-marked monosyllables
};

/// \brief Generates pseudo-words of a given morphology.
class WordGenerator {
 public:
  explicit WordGenerator(Morphology morphology);

  /// \brief One fresh word (2-4 syllables; Vietnamese: 1-2 tone-marked
  /// syllables).
  std::string MakeWord(util::Rng* rng) const;

  /// \brief A short phrase of `words` words.
  std::string MakePhrase(util::Rng* rng, size_t words) const;

  /// \brief Romance-only: derives a cognate of an English word (shared
  /// root, Romance ending), e.g. "production" -> "produção".
  std::string Cognate(const std::string& english, util::Rng* rng) const;

  /// \brief A capitalized proper-noun-like name of `words` words.
  std::string MakeProperName(util::Rng* rng, size_t words) const;

  Morphology morphology() const { return morphology_; }

 private:
  Morphology morphology_;
};

/// \brief One concept's real-world surface forms from the paper's examples.
struct SeedConcept {
  /// Stable concept id, e.g. "directed_by".
  std::string id;
  /// Value kind tag understood by the generator ("entity", "entity_list",
  /// "date", "year", "number", "duration", "money", "place", "text",
  /// "name", "term").
  std::string kind;
  /// Surface forms per language; first form is the dominant one.
  std::map<std::string, std::vector<std::string>> forms;
};

/// \brief Seed concepts for the "film" type (paper Figure 1 / Table 1).
const std::vector<SeedConcept>& FilmSeedConcepts();

/// \brief Seed concepts for the "actor" type (paper Figure 2 / Table 1).
const std::vector<SeedConcept>& ActorSeedConcepts();

/// \brief Localized infobox type names for seeded types, e.g.
/// film -> {en: "film", pt: "filme", vi: "phim"}.
const std::map<std::string, std::map<std::string, std::string>>&
SeedTypeNames();

}  // namespace synth
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNTH_LEXICON_H_
