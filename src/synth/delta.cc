#include "synth/delta.h"

#include <map>
#include <set>
#include <utility>

#include "text/normalize.h"
#include "util/rng.h"

namespace wikimatch {
namespace synth {
namespace {

using TitleKey = std::pair<std::string, std::string>;

struct DualPair {
  wiki::ArticleId id_a;
  wiki::ArticleId id_b;
  std::string type_a;  // localized lang_a type
};

}  // namespace

util::Result<ingest::DeltaBatch> MakeDeltaBatch(const wiki::Corpus& corpus,
                                                const DeltaSpec& spec) {
  if (spec.lang_a == spec.lang_b) {
    return util::Status::InvalidArgument(
        "delta spec needs two distinct languages");
  }
  std::vector<std::string> types =
      spec.types_b.empty() ? corpus.TypesIn(spec.lang_b) : spec.types_b;
  std::vector<DualPair> duals;
  for (const std::string& type_b : types) {
    for (wiki::ArticleId id_b : corpus.ArticlesOfType(spec.lang_b, type_b)) {
      wiki::ArticleId id_a = corpus.CrossLanguageTarget(id_b, spec.lang_a);
      if (id_a == wiki::kInvalidArticle) continue;
      const wiki::Article& a = corpus.Get(id_a);
      if (!a.infobox.has_value()) continue;
      duals.push_back({id_a, id_b, a.entity_type});
    }
  }
  if (duals.empty()) {
    return util::Status::NotFound("no dual pairs for " + spec.lang_a + ":" +
                                  spec.lang_b + " in the requested types");
  }

  util::Rng rng(spec.seed);
  std::map<TitleKey, wiki::Article> upserts;
  auto stage = [&](const wiki::Article& original) -> wiki::Article& {
    TitleKey key{original.language, original.title};
    auto it = upserts.find(key);
    if (it == upserts.end()) it = upserts.emplace(key, original).first;
    return it->second;
  };

  ingest::DeltaBatch batch;

  // Template-wide attribute renames on the lang_a side.
  for (size_t k = 0; k < spec.attribute_renames; ++k) {
    const DualPair& dual = duals[rng.NextBounded(duals.size())];
    const wiki::Infobox& box = *corpus.Get(dual.id_a).infobox;
    if (box.attributes.empty()) continue;
    const std::string old_name =
        box.attributes[rng.NextBounded(box.attributes.size())].first;
    const std::string new_name = text::NormalizeAttributeName(
        old_name + " alt" + std::to_string(k + 1));
    for (wiki::ArticleId id :
         corpus.ArticlesOfType(spec.lang_a, dual.type_a)) {
      const wiki::Article& member = corpus.Get(id);
      bool has = false;
      for (const auto& [name, value] : member.infobox->attributes) {
        (void)value;
        if (name == old_name) has = true;
      }
      if (!has) continue;
      wiki::Article& staged = stage(member);
      for (auto& [name, value] : staged.infobox->attributes) {
        (void)value;
        if (name == old_name) name = new_name;
      }
    }
  }

  // Single-article value edits, alternating sides of the pair.
  for (size_t k = 0; k < spec.value_edits; ++k) {
    const DualPair& dual = duals[rng.NextBounded(duals.size())];
    wiki::ArticleId id = k % 2 == 0 ? dual.id_a : dual.id_b;
    wiki::Article& staged = stage(corpus.Get(id));
    auto& attributes = staged.infobox->attributes;
    if (attributes.empty()) continue;
    wiki::AttributeValue& value =
        attributes[rng.NextBounded(attributes.size())].second;
    const std::string token = " rev" + std::to_string(k + 1);
    value.text += token;
    value.raw += token;
  }

  // New dual pairs cloned from a donor under fresh titles.
  for (size_t k = 0; k < spec.new_articles; ++k) {
    const DualPair& donor = duals[rng.NextBounded(duals.size())];
    const wiki::Article& donor_a = corpus.Get(donor.id_a);
    const wiki::Article& donor_b = corpus.Get(donor.id_b);
    const std::string suffix = " variant " + std::to_string(k + 1);
    wiki::Article clone_a = donor_a;
    wiki::Article clone_b = donor_b;
    clone_a.title = text::NormalizeTitle(donor_a.title + suffix);
    clone_b.title = text::NormalizeTitle(donor_b.title + suffix);
    if (corpus.FindExactTitle(clone_a.language, clone_a.title) !=
            wiki::kInvalidArticle ||
        corpus.FindExactTitle(clone_b.language, clone_b.title) !=
            wiki::kInvalidArticle) {
      continue;  // freak title collision: skip rather than loop
    }
    clone_a.cross_language_links = {{spec.lang_b, clone_b.title}};
    clone_b.cross_language_links = {{spec.lang_a, clone_a.title}};
    clone_a.redirect_to.clear();
    clone_b.redirect_to.clear();
    batch.added.push_back(std::move(clone_a));
    batch.added.push_back(std::move(clone_b));
  }

  // Deletions of lang_a dual articles (skipping anything already edited,
  // which would make the batch self-contradictory).
  std::set<TitleKey> removed;
  for (size_t k = 0; k < spec.removals; ++k) {
    for (size_t attempt = 0; attempt < duals.size(); ++attempt) {
      const DualPair& dual = duals[rng.NextBounded(duals.size())];
      const wiki::Article& a = corpus.Get(dual.id_a);
      TitleKey key{a.language, a.title};
      if (upserts.count(key) > 0 || removed.count(key) > 0) continue;
      removed.insert(key);
      break;
    }
  }

  for (auto& [key, article] : upserts) {
    (void)key;
    batch.updated.push_back(std::move(article));
  }
  batch.removed.assign(removed.begin(), removed.end());
  return batch;
}

}  // namespace synth
}  // namespace wikimatch
