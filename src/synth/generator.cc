#include "synth/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "text/normalize.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace synth {

namespace {

// Tracks used titles per language and disambiguates collisions.
class TitleRegistry {
 public:
  // Returns a normalized, unique form of `raw` in `lang`.
  std::string Claim(const std::string& lang, const std::string& raw) {
    std::string base = text::NormalizeTitle(raw);
    if (base.empty()) base = "untitled";
    std::string candidate = base;
    int n = 2;
    while (!used_[lang].insert(candidate).second) {
      candidate = base + " (" + std::to_string(n++) + ")";
    }
    return candidate;
  }

 private:
  std::map<std::string, std::set<std::string>> used_;
};

std::string AcronymOf(const std::string& name) {
  std::string out;
  bool word_start = true;
  for (char c : name) {
    if (c == ' ') {
      word_start = true;
    } else {
      if (word_start) out.push_back(c);
      word_start = false;
    }
  }
  return out;
}

// Localized infobox template head per language.
std::string TemplateHead(const std::string& lang) {
  if (lang == "pt") return "Info ";
  if (lang == "vi") return "Hộp thông tin ";
  return "Infobox ";
}

}  // namespace

GeneratorOptions GeneratorOptions::Paper(double scale) {
  GeneratorOptions o;
  o.scale = scale;
  struct Row {
    const char* name;
    size_t pt;
    size_t vi;
    double overlap_pt;
    double overlap_vi;
    size_t concepts;
  };
  // Dual-infobox counts sum to the paper's 8,898 (Pt-En) and 659 (Vn-En);
  // overlap targets are Table 5.
  static const Row kRows[] = {
      {"film", 3000, 400, 0.36, 0.87, 18},
      {"show", 800, 120, 0.45, 0.75, 16},
      {"actor", 1200, 80, 0.42, 0.46, 14},
      {"artist", 900, 59, 0.52, 0.67, 16},
      {"channel", 150, 0, 0.15, 0.0, 14},
      {"company", 500, 0, 0.31, 0.0, 15},
      {"comics character", 300, 0, 0.59, 0.0, 14},
      {"album", 1000, 0, 0.52, 0.0, 15},
      {"adult actor", 120, 0, 0.47, 0.0, 13},
      {"book", 400, 0, 0.38, 0.0, 15},
      {"episode", 250, 0, 0.31, 0.0, 13},
      {"writer", 150, 0, 0.63, 0.0, 14},
      {"comics", 80, 0, 0.47, 0.0, 13},
      {"fictional character", 48, 0, 0.32, 0.0, 14},
  };
  for (const Row& row : kRows) {
    TypeModelConfig cfg;
    cfg.type_name = row.name;
    cfg.num_concepts = row.concepts;
    cfg.dual_count["pt"] = row.pt;
    cfg.overlap["pt"] = row.overlap_pt;
    if (row.vi > 0) {
      cfg.dual_count["vi"] = row.vi;
      cfg.overlap["vi"] = row.overlap_vi;
    }
    o.types.push_back(std::move(cfg));
  }
  return o;
}

GeneratorOptions GeneratorOptions::Tiny(uint64_t seed) {
  GeneratorOptions o;
  o.seed = seed;
  o.scale = 1.0;
  o.num_places = 12;
  o.num_terms = 16;
  TypeModelConfig film;
  film.type_name = "film";
  film.num_concepts = 10;
  film.dual_count["pt"] = 60;
  film.dual_count["vi"] = 30;
  film.overlap["pt"] = 0.45;
  film.overlap["vi"] = 0.80;
  o.types.push_back(film);
  TypeModelConfig actor;
  actor.type_name = "actor";
  actor.num_concepts = 10;
  actor.dual_count["pt"] = 50;
  actor.overlap["pt"] = 0.42;
  o.types.push_back(actor);
  return o;
}

CorpusGenerator::CorpusGenerator(GeneratorOptions options)
    : options_(std::move(options)) {}

util::Result<GeneratedCorpus> CorpusGenerator::Generate() {
  util::Rng rng(options_.seed);
  GeneratedCorpus out;
  out.hub = options_.hub;

  WordGenerator en_gen(Morphology::kEnglish);
  WordGenerator pt_gen(Morphology::kRomance);
  WordGenerator vi_gen(Morphology::kVietnamese);
  auto gen_for = [&](const std::string& lang) -> const WordGenerator& {
    if (lang == "pt") return pt_gen;
    if (lang == "vi") return vi_gen;
    return en_gen;
  };

  // All languages in play.
  std::set<std::string> lang_set = {options_.hub};
  for (const auto& cfg : options_.types) {
    for (const auto& [lang, n] : cfg.dual_count) lang_set.insert(lang);
  }
  std::vector<std::string> langs(lang_set.begin(), lang_set.end());

  // --- 1. Type models (with scaled dual counts) -----------------------------
  size_t total_dual = 0;
  for (TypeModelConfig cfg : options_.types) {
    for (auto& [lang, n] : cfg.dual_count) {
      n = std::max<size_t>(
          8, static_cast<size_t>(std::llround(static_cast<double>(n) *
                                              options_.scale)));
      total_dual += n;
    }
    util::Rng model_rng = rng.Fork(std::hash<std::string>{}(cfg.type_name));
    WIKIMATCH_ASSIGN_OR_RETURN(TypeModel model,
                               BuildTypeModel(cfg, options_.hub, &model_rng));
    out.models.emplace(model.id, std::move(model));
  }

  // --- 2. Support pools ------------------------------------------------------
  TitleRegistry titles;
  util::Rng pool_rng = rng.Fork(1);

  size_t num_persons = std::max<size_t>(
      60, static_cast<size_t>(static_cast<double>(total_dual) *
                              options_.persons_per_entity));
  for (size_t i = 0; i < num_persons; ++i) {
    SupportEntity person;
    std::string name = en_gen.MakeProperName(&pool_rng, 2);
    // Persons keep one Latin-script name across languages (as on Wikipedia).
    bool translated = pool_rng.NextBool(0.12);
    for (const auto& lang : langs) {
      std::string local = name;
      if (translated && lang == "pt") {
        local = pt_gen.MakeProperName(&pool_rng, 2);
      }
      person.titles[lang] = titles.Claim(lang, local);
    }
    if (pool_rng.NextBool(0.2)) {
      // Alias: initial + surname ("a. belluci").
      std::string norm = text::NormalizeTitle(name);
      size_t space = norm.find(' ');
      if (space != std::string::npos) {
        std::string alias = norm.substr(0, 1) + "." + norm.substr(space);
        for (const auto& lang : langs) person.aliases[lang] = alias;
      }
    }
    out.supports.entities.push_back(std::move(person));
  }

  for (size_t i = 0; i < options_.num_places; ++i) {
    SupportEntity place;
    std::string en_name = en_gen.MakeProperName(&pool_rng, 1 + pool_rng.NextBounded(2));
    for (const auto& lang : langs) {
      std::string local;
      if (lang == options_.hub) {
        local = en_name;
      } else if (lang == "pt") {
        local = pool_rng.NextBool(0.6) ? pt_gen.Cognate(en_name, &pool_rng)
                                       : pt_gen.MakeProperName(&pool_rng, 1);
      } else {
        local = gen_for(lang).MakeProperName(&pool_rng, 1 + pool_rng.NextBounded(2));
      }
      place.titles[lang] = titles.Claim(lang, local);
    }
    if (pool_rng.NextBool(0.3)) {
      // "usa"-style acronym anchor variant in the hub language.
      std::string acro = AcronymOf(place.titles[options_.hub]);
      if (acro.size() >= 2) place.aliases[options_.hub] = acro;
    }
    out.supports.places.push_back(std::move(place));
  }

  for (size_t i = 0; i < options_.num_terms; ++i) {
    SupportEntity term;
    std::string en_name = en_gen.MakeWord(&pool_rng);
    for (const auto& lang : langs) {
      std::string local;
      if (lang == options_.hub) {
        local = en_name;
      } else if (lang == "pt") {
        local = pool_rng.NextBool(0.5) ? pt_gen.Cognate(en_name, &pool_rng)
                                       : pt_gen.MakeWord(&pool_rng);
      } else {
        local = gen_for(lang).MakeWord(&pool_rng);
      }
      term.titles[lang] = titles.Claim(lang, local);
    }
    out.supports.terms.push_back(std::move(term));
  }

  // Day and year pages (the targets of linked dates).
  for (int month = 1; month <= 12; ++month) {
    for (int day = 1; day <= 28; ++day) {
      SupportEntity page;
      for (const auto& lang : langs) {
        std::string title;
        if (lang == "pt") {
          title = std::to_string(day) + " de " + MonthName(month, lang);
        } else if (lang == "vi") {
          title = std::to_string(day) + " tháng " + std::to_string(month);
        } else {
          title = MonthName(month, lang) + " " + std::to_string(day);
        }
        page.titles[lang] = titles.Claim(lang, title);
      }
      out.supports.day_pages.push_back(std::move(page));
    }
  }
  for (int year = SupportPools::kFirstYear; year <= SupportPools::kLastYear;
       ++year) {
    SupportEntity page;
    for (const auto& lang : langs) {
      page.titles[lang] = titles.Claim(lang, std::to_string(year));
    }
    out.supports.year_pages.push_back(std::move(page));
  }

  // Assign per-cpt value domains now that pools are sized.
  for (auto& [type_id, model] : out.models) {
    util::Rng dom_rng = rng.Fork(0x0D0D ^ std::hash<std::string>{}(type_id));
    // Entity-valued concepts of one type share a person neighborhood (the
    // same directors star in and produce films), so their domains overlap
    // heavily — the source of high-similarity *wrong* pairs that the
    // LSI-ordered processing has to get right.
    size_t entity_pool = out.supports.entities.size();
    size_t type_span = std::min(entity_pool, std::max<size_t>(60, entity_pool / 12));
    size_t type_base =
        entity_pool > type_span
            ? dom_rng.NextBounded(entity_pool - type_span + 1)
            : 0;
    for (auto& cpt : model.concepts) {
      size_t pool_size = 0;
      size_t want = 0;
      switch (cpt.kind) {
        case ValueKind::kEntity:
        case ValueKind::kEntityList: {
          size_t span = std::max<size_t>(10, type_span * 7 / 10);
          // Small offsets keep the Zipf heads of sibling concepts aligned:
          // the type's most popular people dominate *every* entity-valued
          // attribute, as on real Wikipedia.
          size_t offset = dom_rng.NextBounded(std::max<size_t>(1, type_span / 16));
          cpt.domain_begin = std::min(type_base + offset, entity_pool - 1);
          cpt.domain_end = std::min(entity_pool, cpt.domain_begin + span);
          continue;
        }
        case ValueKind::kTerm:
          pool_size = out.supports.terms.size();
          want = std::min<size_t>(pool_size, 4 + dom_rng.NextBounded(7));
          break;
        case ValueKind::kPlace:
          pool_size = out.supports.places.size();
          want = std::min<size_t>(pool_size, 10 + dom_rng.NextBounded(20));
          break;
        case ValueKind::kDate:
          // Composite dates draw their place component from the whole
          // places pool, shared by every date attribute of the type — this
          // is what makes born/died-style pairs confusable.
          pool_size = out.supports.places.size();
          want = pool_size;
          break;
        default:
          continue;
      }
      if (want == 0) want = pool_size;
      cpt.domain_begin =
          pool_size > want ? dom_rng.NextBounded(pool_size - want + 1) : 0;
      cpt.domain_end = cpt.domain_begin + want;
    }
  }

  // --- 3. Support articles ---------------------------------------------------
  wiki::WikitextParser parser;
  auto add_article = [&](const std::string& lang, const std::string& title,
                         const std::string& wikitext) -> util::Status {
    auto parsed = parser.ParseArticle(title, lang, wikitext);
    if (!parsed.ok()) return parsed.status();
    auto id = out.corpus.AddArticle(std::move(parsed).ValueOrDie());
    return id.ok() ? util::Status::OK() : id.status();
  };

  auto support_wikitext = [&](const SupportEntity& e,
                              const std::string& lang) {
    std::string body =
        "'''" + e.titles.at(lang) + "''' is a reference article.\n";
    for (const auto& [other, title] : e.titles) {
      if (other != lang) body += "[[" + other + ":" + title + "]]\n";
    }
    return body;
  };
  util::Rng coverage_rng = rng.Fork(0xC0F);
  for (auto* pool :
       {&out.supports.entities, &out.supports.places, &out.supports.terms,
        &out.supports.day_pages, &out.supports.year_pages}) {
    for (auto& e : *pool) {
      for (const auto& lang : langs) {
        // Under-represented wikis are missing many pages; links to them
        // stay red and their titles never enter the dictionary.
        auto cov_it = options_.support_coverage.find(lang);
        double coverage =
            lang == options_.hub || cov_it == options_.support_coverage.end()
                ? 1.0
                : cov_it->second;
        if (!coverage_rng.NextBool(coverage)) continue;
        WIKIMATCH_RETURN_NOT_OK(
            add_article(lang, e.titles.at(lang), support_wikitext(e, lang)));
        // Aliases become redirect pages (when their title is free), so
        // links may target the alias and resolve through the redirect.
        auto alias_it = e.aliases.find(lang);
        if (alias_it != e.aliases.end()) {
          std::string claimed = titles.Claim(lang, alias_it->second);
          if (claimed == text::NormalizeTitle(alias_it->second)) {
            WIKIMATCH_RETURN_NOT_OK(add_article(
                lang, claimed,
                "#REDIRECT [[" + e.titles.at(lang) + "]]\n"));
            e.alias_is_page[lang] = true;
          }
        }
      }
    }
  }

  // --- 4. Entities and infobox articles --------------------------------------
  // Crossref targets (e.g. actor for film.starring) must be generated
  // before their sources so the source's refs have a populated registry.
  std::vector<std::string> type_order;
  {
    std::set<std::string> targets;
    std::set<std::string> sources;
    for (const auto& [key, target] : options_.crossrefs) {
      sources.insert(key.first);
      targets.insert(target);
    }
    auto rank = [&](const std::string& id) {
      if (targets.count(id) > 0) return 0;
      if (sources.count(id) > 0) return 2;
      return 1;
    };
    for (const auto& [type_id, model] : out.models) {
      type_order.push_back(type_id);
    }
    std::stable_sort(type_order.begin(), type_order.end(),
                     [&](const std::string& x, const std::string& y) {
                       return rank(x) < rank(y);
                     });
  }
  for (const std::string& type_id : type_order) {
    TypeModel& model = out.models.at(type_id);
    util::Rng type_rng = rng.Fork(0xE0 ^ std::hash<std::string>{}(type_id));
    for (const auto& [pair_lang, n_dual] : model.dual_count) {
      size_t n_extra = static_cast<size_t>(
          std::llround(static_cast<double>(n_dual) * options_.p_hub_only_extra));
      for (size_t e = 0; e < n_dual + n_extra; ++e) {
        bool hub_only = e >= n_dual;
        EntityRecord rec;
        rec.type = type_id;
        rec.pair_lang = hub_only ? "" : pair_lang;

        // Titles.
        std::string hub_title = en_gen.MakeProperName(&type_rng, 2 + type_rng.NextBounded(2));
        rec.titles[options_.hub] = titles.Claim(options_.hub, hub_title);
        if (!hub_only) {
          std::string local_title;
          if (type_rng.NextBool(options_.p_same_title)) {
            local_title = hub_title;
          } else if (pair_lang == "pt") {
            local_title = pt_gen.MakeProperName(&type_rng, 2);
          } else {
            local_title =
                gen_for(pair_lang).MakeProperName(&type_rng, 2);
          }
          rec.titles[pair_lang] = titles.Claim(pair_lang, local_title);
        }

        // Facts: one per cpt the model knows.
        for (const auto& cpt : model.concepts) {
          rec.facts[cpt.id] = DrawFact(cpt.kind, cpt.domain_begin,
                                           cpt.domain_end, en_gen,
                                           &type_rng);
          // Cross-type references point at generated entities of the
          // target type within this language pair.
          auto cross_it = options_.crossrefs.find({type_id, cpt.id});
          if (cross_it != options_.crossrefs.end()) {
            auto reg_it = out.entities_by_type_pair.find(
                {cross_it->second, pair_lang});
            if (reg_it != out.entities_by_type_pair.end() &&
                !reg_it->second.empty()) {
              Fact& fact = rec.facts[cpt.id];
              fact.crossref_type = cross_it->second;
              fact.ref = -1;
              size_t count = std::max<size_t>(1, fact.refs.size());
              fact.refs.clear();
              for (size_t k = 0; k < count; ++k) {
                // Store *global* entity indexes so consumers (rendering,
                // relevance oracle) need no registry context.
                fact.refs.push_back(static_cast<int>(
                    reg_it->second[type_rng.NextZipf(
                        reg_it->second.size(), 1.0)]));
              }
            }
          }
        }

        // Shared inclusion draws: with probability schema_correlation a
        // language side reuses this draw instead of an independent one,
        // correlating attribute presence across the dual pair.
        std::map<std::string, double> shared_draw;
        for (const auto& cpt : model.concepts) {
          shared_draw[cpt.id] = type_rng.NextDouble();
        }

        // Emit articles.
        std::vector<std::string> article_langs = {options_.hub};
        if (!hub_only) article_langs.push_back(pair_lang);
        for (const auto& lang : article_langs) {
          // Schema sampling. `traces` parallels `attrs`: traces[k] is the
          // semantic record of attrs[k]'s value (synced through the
          // misplacement swap below).
          std::vector<std::pair<std::string, std::string>> attrs;
          std::vector<CellTrace> traces;
          for (const auto& cpt : model.concepts) {
            auto form_it = cpt.forms.find(lang);
            if (form_it == cpt.forms.end()) continue;
            double p = 0.0;
            if (lang == options_.hub) {
              auto it = cpt.hub_prob.find(pair_lang);
              p = it != cpt.hub_prob.end() ? it->second
                                               : cpt.base_freq;
            } else {
              auto it = cpt.include_prob.find(lang);
              p = it != cpt.include_prob.end() ? it->second : 0.0;
            }
            double draw = type_rng.NextBool(options_.schema_correlation)
                              ? shared_draw[cpt.id]
                              : type_rng.NextDouble();
            if (draw >= p) continue;
            const auto& forms = form_it->second;
            size_t pick = 0;
            if (forms.size() > 1 && !type_rng.NextBool(0.75)) {
              pick = 1 + type_rng.NextBounded(forms.size() - 1);
            }
            // Non-hub sides sometimes report a divergent fact (different
            // credited person, different figure) — the paper's pervasive
            // cross-language value inconsistencies.
            Fact fact = rec.facts.at(cpt.id);
            if (fact.crossref_type.empty() && lang != options_.hub &&
                type_rng.NextBool(options_.p_fact_divergence)) {
              fact = DrawFact(cpt.kind, cpt.domain_begin, cpt.domain_end,
                              en_gen, &type_rng);
            }
            std::string value;
            CellTrace cell;
            cell.concept_id = cpt.id;
            if (!fact.crossref_type.empty()) {
              // Links to generated entities of the target type.
              std::vector<std::string> parts;
              for (int ref : fact.refs) {
                if (!parts.empty() &&
                    type_rng.NextBool(0.25)) {
                  continue;  // Lists are rarely complete on both sides.
                }
                const EntityRecord& target =
                    out.entities[static_cast<size_t>(ref)];
                auto title_it = target.titles.find(lang);
                const std::string& title = title_it != target.titles.end()
                                               ? title_it->second
                                               : target.titles.at(options_.hub);
                parts.push_back(
                    type_rng.NextBool(options_.noise.p_link_drop)
                        ? title
                        : "[[" + title + "]]");
                cell.trace.refs.emplace_back(
                    RenderTrace::RefPool::kGenerated, ref);
              }
              value = util::Join(parts, ", ");
              if (value.empty()) continue;
            } else {
              value = RenderValue(fact, lang, out.supports, options_.noise,
                                  gen_for(lang), &type_rng, &cell.trace);
            }
            attrs.emplace_back(forms[pick], value);
            traces.push_back(std::move(cell));
          }
          // Misplacement noise: swap two values. The traces move with the
          // values but keep their attribute's concept id (CellTrace docs).
          if (attrs.size() >= 2 && type_rng.NextBool(options_.p_misplace)) {
            size_t i = type_rng.NextBounded(attrs.size());
            size_t j = type_rng.NextBounded(attrs.size());
            if (i != j) {
              std::swap(attrs[i].second, attrs[j].second);
              std::swap(traces[i].trace, traces[j].trace);
            }
          }
          // try_emplace: on a duplicate normalized name keep the first
          // cell, matching Infobox::Find and the engine's dedup.
          for (size_t k = 0; k < attrs.size(); ++k) {
            rec.cells[lang].try_emplace(
                text::NormalizeAttributeName(attrs[k].first),
                std::move(traces[k]));
          }

          // Wikitext.
          std::string body = "{{" + TemplateHead(lang) + model.names.at(lang);
          for (const auto& [attr, value] : attrs) {
            body += "\n| " + attr + " = " + value;
          }
          body += "\n}}\n\n'''" + rec.titles.at(lang) +
                  "''' is an article of type " + model.names.at(lang) + ".\n";
          body += "[[category:" + model.names.at(lang) + "]]\n";
          for (const auto& [other, title] : rec.titles) {
            if (other != lang) body += "[[" + other + ":" + title + "]]\n";
          }
          WIKIMATCH_RETURN_NOT_OK(
              add_article(lang, rec.titles.at(lang), body));
        }
        if (!hub_only) {
          out.entities_by_type_pair[{type_id, pair_lang}].push_back(
              out.entities.size());
        }
        out.entities.push_back(std::move(rec));
      }
    }
  }

  out.corpus.Finalize();

  // --- 5. Ground truth + type-name map ---------------------------------------
  for (const auto& [type_id, model] : out.models) {
    eval::MatchSet& truth = out.ground_truth[type_id];
    for (const auto& cpt : model.concepts) {
      std::vector<eval::AttrKey> cluster;
      for (const auto& [lang, forms] : cpt.forms) {
        for (const auto& form : forms) {
          cluster.push_back(
              eval::AttrKey{lang, text::NormalizeAttributeName(form)});
        }
      }
      truth.AddCluster(cluster);
    }
    for (const auto& [lang, name] : model.names) {
      out.hub_type_of[{lang, text::NormalizeAttributeName(name)}] = type_id;
    }
  }

  WIKIMATCH_LOG(Info) << "generated corpus: " << out.corpus.size()
                      << " articles, " << out.entities.size() << " entities";
  return out;
}

}  // namespace synth
}  // namespace wikimatch
