#include "synth/sync_oracle.h"

#include <set>
#include <utility>

#include "text/normalize.h"

namespace wikimatch {
namespace synth {

using sync::CellClass;
using sync::CellVerdict;
using sync::Classify;
using sync::Evidence;
using sync::SyncReport;
using sync::SyncScope;

namespace {

constexpr CellClass kScoredClasses[] = {CellClass::kInSync, CellClass::kStale,
                                        CellClass::kMissing,
                                        CellClass::kConflict};

}  // namespace

double SyncScore::micro_precision() const {
  uint64_t tp = 0;
  uint64_t total = 0;
  for (const auto& [cls, s] : per_class) {
    tp += s.true_positive;
    total += s.engine_total;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(tp) / static_cast<double>(total);
}

double SyncScore::micro_recall() const {
  uint64_t tp = 0;
  uint64_t total = 0;
  for (const auto& [cls, s] : per_class) {
    tp += s.true_positive;
    total += s.oracle_total;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(tp) / static_cast<double>(total);
}

SyncOracle::SyncOracle(const synth::GeneratedCorpus* gc) : gc_(gc) {
  for (const synth::EntityRecord& ent : gc_->entities) {
    if (ent.pair_lang.empty()) continue;  // hub-only: nothing to synchronize
    const synth::TypeModel& model = gc_->models.at(ent.type);
    std::map<std::string, const synth::Concept*> concept_of;
    for (const synth::Concept& cpt : model.concepts) {
      concept_of[cpt.id] = &cpt;
    }

    static const std::map<std::string, synth::CellTrace> kNoCells;
    auto cells_of = [&](const std::string& lang)
        -> const std::map<std::string, synth::CellTrace>& {
      auto it = ent.cells.find(lang);
      return it != ent.cells.end() ? it->second : kNoCells;
    };
    const auto& pair_cells = cells_of(ent.pair_lang);
    const auto& hub_cells = cells_of(gc_->hub);
    const std::string& pair_title = ent.titles.at(ent.pair_lang);

    // Hub cells by concept (concepts are emitted at most once per article;
    // the trace's concept names the *attribute*, surviving misplacement).
    std::map<std::string, std::pair<const std::string*,
                                    const synth::CellTrace*>>
        hub_by_concept;
    for (const auto& [attr, cell] : hub_cells) {
      hub_by_concept.try_emplace(cell.concept_id,
                                 std::make_pair(&attr, &cell));
    }
    std::set<std::string> pair_concepts;
    for (const auto& [attr, cell] : pair_cells) {
      pair_concepts.insert(cell.concept_id);
    }

    // Forward: every pair-edition cell whose concept exists in the hub
    // schema (otherwise the alignment has no correspondent and the engine
    // skips the cell — so does the oracle).
    for (const auto& [attr, cell] : pair_cells) {
      auto cpt_it = concept_of.find(cell.concept_id);
      if (cpt_it == concept_of.end() ||
          cpt_it->second->forms.find(gc_->hub) == cpt_it->second->forms.end()) {
        continue;
      }
      CellKey key{ent.pair_lang, pair_title, attr};
      auto hub_it = hub_by_concept.find(cell.concept_id);
      if (hub_it == hub_by_concept.end()) {
        labels_.emplace(key, CellClass::kMissing);
        continue;
      }
      Evidence a = FromCell(cell, ent, ent.pair_lang, attr);
      Evidence b = FromCell(*hub_it->second.second, ent, gc_->hub,
                            *hub_it->second.first);
      labels_.emplace(key, Classify(a, b));
    }

    // Reverse: hub cells whose concept the pair schema expresses but the
    // pair article omitted.
    for (const auto& [attr, cell] : hub_cells) {
      auto cpt_it = concept_of.find(cell.concept_id);
      if (cpt_it == concept_of.end() ||
          cpt_it->second->forms.find(ent.pair_lang) ==
              cpt_it->second->forms.end()) {
        continue;
      }
      if (pair_concepts.count(cell.concept_id) > 0) continue;
      labels_.emplace(CellKey{ent.pair_lang, pair_title, "\x01" + attr},
                      CellClass::kMissing);
    }
  }
}

SyncOracle::CellKey SyncOracle::KeyOf(const CellVerdict& v) {
  return v.pair_attr.empty()
             ? CellKey{v.pair_lang, v.pair_title, "\x01" + v.hub_attr}
             : CellKey{v.pair_lang, v.pair_title, v.pair_attr};
}

std::string SyncOracle::RefTitle(synth::RenderTrace::RefPool pool,
                                 int idx) const {
  const std::map<std::string, std::string>* titles = nullptr;
  size_t i = static_cast<size_t>(idx);
  switch (pool) {
    case synth::RenderTrace::RefPool::kEntity:
      if (i < gc_->supports.entities.size()) {
        titles = &gc_->supports.entities[i].titles;
      }
      break;
    case synth::RenderTrace::RefPool::kPlace:
      if (i < gc_->supports.places.size()) {
        titles = &gc_->supports.places[i].titles;
      }
      break;
    case synth::RenderTrace::RefPool::kTerm:
      if (i < gc_->supports.terms.size()) {
        titles = &gc_->supports.terms[i].titles;
      }
      break;
    case synth::RenderTrace::RefPool::kGenerated:
      if (i < gc_->entities.size()) titles = &gc_->entities[i].titles;
      break;
  }
  if (titles == nullptr) return "";
  auto it = titles->find(gc_->hub);
  return it != titles->end() ? it->second : "";
}

Evidence SyncOracle::FromCell(const synth::CellTrace& cell,
                              const synth::EntityRecord& entity,
                              const std::string& lang,
                              const std::string& attr) const {
  Evidence ev;
  for (const auto& [pool, idx] : cell.trace.refs) {
    std::string title = RefTitle(pool, idx);
    if (!title.empty()) ev.refs.insert(std::move(title));
  }
  ev.numbers.insert(cell.trace.numbers.begin(), cell.trace.numbers.end());
  // The string-equality fallback compares rendered text, so the oracle
  // reads it from the parsed corpus exactly as the engine does.
  wiki::ArticleId id =
      gc_->corpus.FindByTitle(lang, entity.titles.at(lang));
  if (id != wiki::kInvalidArticle) {
    const wiki::Article& article = gc_->corpus.Get(id);
    if (article.infobox.has_value()) {
      const wiki::AttributeValue* value = article.infobox->Find(attr);
      if (value != nullptr) ev.normalized = text::NormalizeValue(value->text);
    }
  }
  return ev;
}

SyncScore SyncOracle::Score(const SyncReport& report) const {
  SyncScore score;
  for (CellClass cls : kScoredClasses) score.per_class[cls];
  for (const auto& [key, cls] : labels_) {
    if (cls == CellClass::kUnverifiable) {
      ++score.oracle_unverifiable;
    } else {
      ++score.per_class[cls].oracle_total;
    }
  }
  for (const CellVerdict& v : report.cells) {
    if (v.cls == CellClass::kUnverifiable) {
      ++score.engine_unverifiable;
      continue;
    }
    ClassScore& s = score.per_class[v.cls];
    ++s.engine_total;
    auto it = labels_.find(KeyOf(v));
    if (it != labels_.end() && it->second == v.cls) ++s.true_positive;
  }
  return score;
}

std::vector<SyncScope> SyncOracle::ScopesFromGroundTruth(
    const synth::GeneratedCorpus& gc) {
  std::vector<SyncScope> scopes;
  for (const auto& [type_id, model] : gc.models) {
    for (const auto& [pair_lang, n_dual] : model.dual_count) {
      if (pair_lang == gc.hub || n_dual == 0) continue;
      auto a_it = model.names.find(pair_lang);
      auto b_it = model.names.find(gc.hub);
      if (a_it == model.names.end() || b_it == model.names.end()) continue;
      scopes.push_back(
          SyncScope{pair_lang, gc.hub,
                    text::NormalizeAttributeName(a_it->second),
                    text::NormalizeAttributeName(b_it->second),
                    &gc.ground_truth.at(type_id)});
    }
  }
  return scopes;
}

}  // namespace synth
}  // namespace wikimatch
