// Synthetic machine-translation oracle: the stand-in for Google Translator
// in the COMA++ N+G configuration (paper Appendix C).
//
// The paper's observation is that MT produces *literal* translations that
// miss Wikipedia's conventionalized attribute names ("diễn viên" -> "actor"
// rather than "starring"). The oracle reproduces that behaviour: with
// probability p_conventional it returns the concept's dominant hub-language
// form (a lucky hit); otherwise it returns a literal translation — for
// cognate languages a word sharing the hub form's root (string-similar but
// not equal), for morphologically-distinct languages an unrelated word.

#ifndef WIKIMATCH_SYNTH_MT_ORACLE_H_
#define WIKIMATCH_SYNTH_MT_ORACLE_H_

#include <map>
#include <string>

#include "synth/generator.h"

namespace wikimatch {
namespace synth {

/// \brief Oracle tuning.
struct MtOracleOptions {
  /// Probability the oracle emits the conventional infobox attribute name.
  double p_conventional = 0.30;
  /// Probability a *literal* translation still shares the hub form's root
  /// (Romance languages), vs. an unrelated word (Vietnamese).
  double p_related_romance = 0.70;
  double p_related_other = 0.20;
  uint64_t seed = 0x6007;
};

/// \brief Builds attribute-name translations into the hub language for
/// every non-hub surface form in the generated corpus.
///
/// Keys are (language, normalized attribute name); values are hub-language
/// names. Deterministic in the options seed.
std::map<std::pair<std::string, std::string>, std::string> MakeMtOracle(
    const GeneratedCorpus& corpus, const MtOracleOptions& options = {});

}  // namespace synth
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNTH_MT_ORACLE_H_
