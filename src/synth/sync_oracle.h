// Deterministic sync oracle over the generator's concept model.
//
// The generator records, per emitted infobox cell, exactly what the cell
// claims after noise (synth::CellTrace). The oracle replays the SyncEngine's
// walk over those records: for every dual entity it pairs cells by concept
// id and labels the pair with the SAME Classify() the engine uses — so
// precision/recall of an engine report against the oracle measures evidence
// *extraction* fidelity (parsing, canonicalization, red-link translation),
// not a second opinion about what "stale" means. See docs/SYNC.md.

#ifndef WIKIMATCH_SYNTH_SYNC_ORACLE_H_
#define WIKIMATCH_SYNTH_SYNC_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "sync/sync_engine.h"
#include "synth/generator.h"

namespace wikimatch {
namespace synth {

/// \brief Precision/recall tallies of one cell class.
struct ClassScore {
  uint64_t true_positive = 0;
  uint64_t engine_total = 0;  ///< engine rows claiming this class
  uint64_t oracle_total = 0;  ///< oracle labels of this class

  double precision() const {
    return engine_total == 0 ? 1.0
                             : static_cast<double>(true_positive) /
                                   static_cast<double>(engine_total);
  }
  double recall() const {
    return oracle_total == 0 ? 1.0
                             : static_cast<double>(true_positive) /
                                   static_cast<double>(oracle_total);
  }
};

/// \brief Engine-vs-oracle agreement over the four scored classes
/// (kUnverifiable rows/labels are tallied but not scored: "no comparable
/// evidence" is a property both sides agree free text has by design).
struct SyncScore {
  std::map<sync::CellClass, ClassScore> per_class;
  uint64_t engine_unverifiable = 0;
  uint64_t oracle_unverifiable = 0;

  double micro_precision() const;
  double micro_recall() const;
};

/// \brief Labels every aligned cell pair of a generated corpus.
class SyncOracle {
 public:
  /// Borrows `gc`, which must outlive the oracle.
  explicit SyncOracle(const synth::GeneratedCorpus* gc);

  /// \brief Scores an engine report against the oracle labels. Rows are
  /// matched by (pair language, pair title, attribute); engine rows the
  /// oracle never labeled count against precision, oracle labels no engine
  /// row matched count against recall.
  SyncScore Score(const sync::SyncReport& report) const;

  size_t num_labels() const { return labels_.size(); }

  /// \brief Ground-truth scopes (one per dual language of every type),
  /// borrowing the concept-level alignment from `gc.ground_truth` — feed
  /// these to SyncEngine::Run to measure classification in isolation from
  /// alignment quality.
  static std::vector<sync::SyncScope> ScopesFromGroundTruth(
      const synth::GeneratedCorpus& gc);

 private:
  /// (pair_lang, pair_title, attr token). Forward rows use the pair-side
  /// attribute; reverse kMissing rows (attribute absent from the pair
  /// edition) use "\x01" + hub attribute, which cannot collide with a
  /// normalized name.
  using CellKey = std::tuple<std::string, std::string, std::string>;

  static CellKey KeyOf(const sync::CellVerdict& v);
  std::string RefTitle(synth::RenderTrace::RefPool pool, int idx) const;
  sync::Evidence FromCell(const synth::CellTrace& cell,
                    const synth::EntityRecord& entity, const std::string& lang,
                    const std::string& attr) const;

  const synth::GeneratedCorpus* gc_;
  std::map<CellKey, sync::CellClass> labels_;
};

}  // namespace synth
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNTH_SYNC_ORACLE_H_
