// Support entities: the articles that infobox values link to — persons,
// organizations, places, and terms (genres, occupations, languages). Their
// cross-language titles are the raw material of the automatically-derived
// translation dictionary (Section 3.2 of the paper), and their per-language
// article pairs give lsim its cross-language link equivalence.

#ifndef WIKIMATCH_SYNTH_SUPPORT_POOL_H_
#define WIKIMATCH_SYNTH_SUPPORT_POOL_H_

#include <map>
#include <string>
#include <vector>

namespace wikimatch {
namespace synth {

/// \brief One support entity with per-language titles and optional aliases.
struct SupportEntity {
  /// Normalized title per language. Persons usually share one Latin-script
  /// name across languages; places and terms are translated.
  std::map<std::string, std::string> titles;
  /// Optional per-language alias used as anchor-text variant
  /// ("united states" vs "usa").
  std::map<std::string, std::string> aliases;
  /// Languages in which the alias exists as a *redirect page*, so links
  /// may target the alias directly and resolve through the redirect.
  std::map<std::string, bool> alias_is_page;
};

/// \brief The value domains.
struct SupportPools {
  std::vector<SupportEntity> entities;  ///< persons / organizations
  std::vector<SupportEntity> places;    ///< countries / cities
  std::vector<SupportEntity> terms;     ///< genres / occupations / languages
  /// Day-of-year pages ("december 18" / "18 de dezembro" / "18 tháng 12"),
  /// indexed by (month - 1) * 28 + (day - 1). Dates in infobox values link
  /// to these — the paper's dictionary translates dates exactly because
  /// such pages exist and are cross-language linked.
  std::vector<SupportEntity> day_pages;
  /// Year pages ("1903"), indexed by year - kFirstYear.
  std::vector<SupportEntity> year_pages;

  static constexpr int kFirstYear = 1900;
  static constexpr int kLastYear = 2015;

  /// \brief Index helpers; return SIZE_MAX when out of range.
  size_t DayPageIndex(int month, int day) const {
    if (month < 1 || month > 12 || day < 1 || day > 28) return SIZE_MAX;
    size_t idx = static_cast<size_t>((month - 1) * 28 + (day - 1));
    return idx < day_pages.size() ? idx : SIZE_MAX;
  }
  size_t YearPageIndex(int year) const {
    if (year < kFirstYear || year > kLastYear) return SIZE_MAX;
    size_t idx = static_cast<size_t>(year - kFirstYear);
    return idx < year_pages.size() ? idx : SIZE_MAX;
  }
};

}  // namespace synth
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNTH_SUPPORT_POOL_H_
