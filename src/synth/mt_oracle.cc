#include "synth/mt_oracle.h"

#include "text/normalize.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace wikimatch {
namespace synth {

namespace {

// A "literal" English rendering sharing the root of `hub_form`: first word,
// with a derivational suffix swapped in.
std::string RelatedLiteral(const std::string& hub_form, util::Rng* rng) {
  std::string root = hub_form;
  size_t space = root.find(' ');
  if (space != std::string::npos) root = root.substr(0, space);
  // Strip a common suffix to bare the root.
  for (const char* suffix : {"tion", "ment", "ing", "ed", "er"}) {
    if (util::EndsWith(root, suffix) &&
        root.size() > std::string(suffix).size() + 2) {
      root = root.substr(0, root.size() - std::string(suffix).size());
      break;
    }
  }
  const char* endings[] = {"ion", "ment", "ing", "ness", "or", ""};
  return root + endings[rng->NextBounded(6)];
}

}  // namespace

std::map<std::pair<std::string, std::string>, std::string> MakeMtOracle(
    const GeneratedCorpus& corpus, const MtOracleOptions& options) {
  std::map<std::pair<std::string, std::string>, std::string> out;
  util::Rng rng(options.seed);
  WordGenerator en_gen(Morphology::kEnglish);

  for (const auto& [type_id, model] : corpus.models) {
    for (const auto& concept_spec : model.concepts) {
      auto hub_it = concept_spec.forms.find(corpus.hub);
      if (hub_it == concept_spec.forms.end() || hub_it->second.empty()) {
        continue;
      }
      const std::string hub_dominant =
          text::NormalizeAttributeName(hub_it->second[0]);
      for (const auto& [lang, forms] : concept_spec.forms) {
        if (lang == corpus.hub) continue;
        double p_related = lang == "pt" ? options.p_related_romance
                                        : options.p_related_other;
        for (const auto& form : forms) {
          std::string key_name = text::NormalizeAttributeName(form);
          auto key = std::make_pair(lang, key_name);
          if (out.count(key) > 0) continue;  // Same form in two concepts.
          std::string translation;
          if (rng.NextBool(options.p_conventional)) {
            translation = hub_dominant;  // Lucky: the conventional name.
          } else if (rng.NextBool(p_related)) {
            translation = RelatedLiteral(hub_dominant, &rng);
          } else {
            translation = en_gen.MakePhrase(&rng, 1);  // Unrelated literal.
          }
          out.emplace(std::move(key), std::move(translation));
        }
      }
    }
  }
  return out;
}

}  // namespace synth
}  // namespace wikimatch
