// Fact -> wikitext value rendering, per language.
//
// A Fact is the language-independent truth about one concept of one entity
// (the director IS person #17; the running time IS 160). Rendering turns it
// into the wikitext that appears in that language's infobox — with the
// heterogeneity the paper documents: language-specific date formats,
// translated link targets, anchor-text variants, dropped links, and numeric
// noise.

#ifndef WIKIMATCH_SYNTH_VALUE_RENDER_H_
#define WIKIMATCH_SYNTH_VALUE_RENDER_H_

#include <string>
#include <vector>

#include "synth/concept_model.h"
#include "synth/support_pool.h"
#include "util/rng.h"

namespace wikimatch {
namespace synth {

/// \brief Language-independent value of one concept for one entity.
struct Fact {
  ValueKind kind = ValueKind::kText;
  int64_t number = 0;            ///< kNumber / kDuration / kMoney
  int year = 0;                  ///< kDate / kYear
  int month = 1;                 ///< kDate
  int day = 1;                   ///< kDate
  int ref = -1;                  ///< kEntity / kPlace / kTerm: pool index
  std::vector<int> refs;         ///< kEntityList: pool indexes
  std::string text;              ///< kText / kName: hub-language content
  bool name_shared = false;      ///< kName: alias shared across languages
  /// Non-empty for cross-type references: `refs` index the generated
  /// entities of this type within the same language pair (film "starring"
  /// pointing at actor-type entities), not the support pool. Rendered by
  /// the generator, which owns the entity registry.
  std::string crossref_type;
};

/// \brief Noise knobs for rendering (subset of GeneratorOptions).
struct RenderNoise {
  double p_link_drop = 0.40;      ///< emit anchor text without [[...]]
  double p_anchor_variant = 0.18; ///< use the alias as anchor
  double p_value_noise = 0.15;    ///< perturb numbers/dates in one language
  double p_template_wrap = 0.20;  ///< wrap lists in {{ubl|...}}
};

/// \brief Post-noise semantic content of one rendered value: what the
/// emitted wikitext actually claims, after perturbation, list-item drops,
/// and magnitude truncation. The sync oracle (src/sync/oracle.h) labels
/// cross-edition cell pairs from these instead of re-parsing wikitext, so
/// its labels are exact by construction. Purely an out-parameter: filling
/// it consumes no RNG draws and cannot change generated corpora.
struct RenderTrace {
  /// Which registry a reference index points into. kGenerated refs index
  /// GeneratedCorpus::entities (cross-type values, filled by the
  /// generator); the others index the SupportPools vectors.
  enum class RefPool : uint8_t { kEntity, kPlace, kTerm, kGenerated };
  /// Link-valued content that survived list-item drops. A dropped *link*
  /// still counts — the anchor text names the entity; losing it is an
  /// extraction failure the oracle is meant to expose, not truth.
  std::vector<std::pair<RefPool, int>> refs;
  /// Numeric content as shown: dates contribute {day, month, year}, money
  /// the truncated magnitude ("44 milhões" -> 44000000), durations and
  /// counts the perturbed figure. Day/year page links are date
  /// representation, never refs.
  std::vector<int64_t> numbers;
};

/// \brief Renders `fact` as the wikitext value for `lang`.
///
/// `word_gen` must produce words in `lang`'s morphology (used by kText and
/// unshared kName renderings). When `trace` is non-null it receives the
/// post-noise semantics of the returned value (see RenderTrace).
std::string RenderValue(const Fact& fact, const std::string& lang,
                        const SupportPools& pools, const RenderNoise& noise,
                        const WordGenerator& word_gen, util::Rng* rng,
                        RenderTrace* trace = nullptr);

/// \brief Draws a Fact for a concept `kind` whose link-valued domain is
/// [domain_begin, domain_end) of the matching pool.
Fact DrawFact(ValueKind kind, size_t domain_begin, size_t domain_end,
              const WordGenerator& hub_gen, util::Rng* rng);

/// \brief Localized month name ("june" / "junho"); Vietnamese uses numeric
/// months so returns the number as text.
std::string MonthName(int month, const std::string& lang);

}  // namespace synth
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNTH_VALUE_RENDER_H_
