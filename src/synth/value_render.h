// Fact -> wikitext value rendering, per language.
//
// A Fact is the language-independent truth about one concept of one entity
// (the director IS person #17; the running time IS 160). Rendering turns it
// into the wikitext that appears in that language's infobox — with the
// heterogeneity the paper documents: language-specific date formats,
// translated link targets, anchor-text variants, dropped links, and numeric
// noise.

#ifndef WIKIMATCH_SYNTH_VALUE_RENDER_H_
#define WIKIMATCH_SYNTH_VALUE_RENDER_H_

#include <string>
#include <vector>

#include "synth/concept_model.h"
#include "synth/support_pool.h"
#include "util/rng.h"

namespace wikimatch {
namespace synth {

/// \brief Language-independent value of one concept for one entity.
struct Fact {
  ValueKind kind = ValueKind::kText;
  int64_t number = 0;            ///< kNumber / kDuration / kMoney
  int year = 0;                  ///< kDate / kYear
  int month = 1;                 ///< kDate
  int day = 1;                   ///< kDate
  int ref = -1;                  ///< kEntity / kPlace / kTerm: pool index
  std::vector<int> refs;         ///< kEntityList: pool indexes
  std::string text;              ///< kText / kName: hub-language content
  bool name_shared = false;      ///< kName: alias shared across languages
  /// Non-empty for cross-type references: `refs` index the generated
  /// entities of this type within the same language pair (film "starring"
  /// pointing at actor-type entities), not the support pool. Rendered by
  /// the generator, which owns the entity registry.
  std::string crossref_type;
};

/// \brief Noise knobs for rendering (subset of GeneratorOptions).
struct RenderNoise {
  double p_link_drop = 0.40;      ///< emit anchor text without [[...]]
  double p_anchor_variant = 0.18; ///< use the alias as anchor
  double p_value_noise = 0.15;    ///< perturb numbers/dates in one language
  double p_template_wrap = 0.20;  ///< wrap lists in {{ubl|...}}
};

/// \brief Renders `fact` as the wikitext value for `lang`.
///
/// `word_gen` must produce words in `lang`'s morphology (used by kText and
/// unshared kName renderings).
std::string RenderValue(const Fact& fact, const std::string& lang,
                        const SupportPools& pools, const RenderNoise& noise,
                        const WordGenerator& word_gen, util::Rng* rng);

/// \brief Draws a Fact for a concept `kind` whose link-valued domain is
/// [domain_begin, domain_end) of the matching pool.
Fact DrawFact(ValueKind kind, size_t domain_begin, size_t domain_end,
              const WordGenerator& hub_gen, util::Rng* rng);

/// \brief Localized month name ("june" / "junho"); Vietnamese uses numeric
/// months so returns the number as text.
std::string MonthName(int month, const std::string& lang);

}  // namespace synth
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNTH_VALUE_RENDER_H_
