#include "synth/value_render.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace wikimatch {
namespace synth {

namespace {

const char* kEnMonths[] = {"january", "february", "march",     "april",
                           "may",     "june",     "july",      "august",
                           "september", "october", "november", "december"};
const char* kPtMonths[] = {"janeiro", "fevereiro", "março",    "abril",
                           "maio",    "junho",     "julho",    "agosto",
                           "setembro", "outubro",  "novembro", "dezembro"};

const SupportEntity& PoolFor(const Fact& fact, const SupportPools& pools,
                             int ref) {
  switch (fact.kind) {
    case ValueKind::kPlace:
      return pools.places[static_cast<size_t>(ref)];
    case ValueKind::kTerm:
      return pools.terms[static_cast<size_t>(ref)];
    default:
      return pools.entities[static_cast<size_t>(ref)];
  }
}

// Title of a support entity in `lang`, falling back to any available title.
const std::string& TitleIn(const SupportEntity& e, const std::string& lang) {
  auto it = e.titles.find(lang);
  if (it != e.titles.end()) return it->second;
  assert(!e.titles.empty());
  return e.titles.begin()->second;
}

std::string RenderLink(const SupportEntity& e, const std::string& lang,
                       const RenderNoise& noise, util::Rng* rng) {
  const std::string& title = TitleIn(e, lang);
  std::string anchor = title;
  bool via_alias = false;
  auto alias_it = e.aliases.find(lang);
  if (alias_it != e.aliases.end() && rng->NextBool(noise.p_anchor_variant)) {
    anchor = alias_it->second;
    via_alias = true;
  }
  if (rng->NextBool(noise.p_link_drop)) return anchor;
  // Editors often link the alias directly when it is a redirect page.
  if (via_alias && rng->NextBool(0.5)) {
    auto page_it = e.alias_is_page.find(lang);
    if (page_it != e.alias_is_page.end() && page_it->second) {
      return "[[" + anchor + "]]";
    }
  }
  if (anchor == title) return "[[" + title + "]]";
  return "[[" + title + "|" + anchor + "]]";
}

int64_t MaybePerturb(int64_t value, const RenderNoise& noise,
                     util::Rng* rng) {
  if (!rng->NextBool(noise.p_value_noise)) return value;
  // Small relative perturbation, at least 1.
  int64_t delta = std::max<int64_t>(1, value / 32);
  return value + rng->NextInt(-delta, delta);
}

}  // namespace

std::string MonthName(int month, const std::string& lang) {
  month = std::clamp(month, 1, 12);
  if (lang == "pt") return kPtMonths[month - 1];
  if (lang == "vi") return std::to_string(month);
  return kEnMonths[month - 1];
}

Fact DrawFact(ValueKind kind, size_t domain_begin, size_t domain_end,
              const WordGenerator& hub_gen, util::Rng* rng) {
  Fact fact;
  fact.kind = kind;
  auto draw_ref = [&]() -> int {
    if (domain_end <= domain_begin) return 0;
    // Zipf over the domain: popular directors direct many films.
    uint64_t offset = rng->NextZipf(domain_end - domain_begin, 1.0);
    return static_cast<int>(domain_begin + offset);
  };
  switch (kind) {
    case ValueKind::kDate:
      fact.year = static_cast<int>(rng->NextInt(1900, 2010));
      fact.month = static_cast<int>(rng->NextInt(1, 12));
      fact.day = static_cast<int>(rng->NextInt(1, 28));
      // Real date attributes are composite ("born = December 18 1950,
      // Ireland"): most carry an associated place. This is what makes
      // born/died-style pairs share values and links — the paper's
      // canonical high-similarity wrong pair.
      if (domain_end > domain_begin) fact.ref = draw_ref();
      break;
    case ValueKind::kYear:
      fact.year = static_cast<int>(rng->NextInt(1900, 2010));
      break;
    case ValueKind::kNumber:
      fact.number = rng->NextInt(1, 1000);
      break;
    case ValueKind::kDuration:
      fact.number = rng->NextInt(60, 240);
      break;
    case ValueKind::kMoney:
      fact.number = rng->NextInt(1, 300) * 1000000;
      break;
    case ValueKind::kEntity:
    case ValueKind::kPlace:
    case ValueKind::kTerm:
      fact.ref = draw_ref();
      break;
    case ValueKind::kEntityList: {
      size_t count = 2 + rng->NextBounded(3);
      for (size_t i = 0; i < count; ++i) {
        int ref = draw_ref();
        if (std::find(fact.refs.begin(), fact.refs.end(), ref) ==
            fact.refs.end()) {
          fact.refs.push_back(ref);
        }
      }
      break;
    }
    case ValueKind::kText:
      fact.text = hub_gen.MakePhrase(rng, 2 + rng->NextBounded(3));
      // Most free-text infobox values embed a language-independent token —
      // a year span ("1980–present"), a URL, a count. Model it as a number
      // carried by the fact and rendered on both sides.
      if (rng->NextBool(0.35)) fact.number = rng->NextInt(1900, 2015);
      break;
    case ValueKind::kName:
      fact.text = hub_gen.MakeProperName(rng, 2);
      fact.name_shared = rng->NextBool(0.2);
      break;
  }
  return fact;
}

std::string RenderValue(const Fact& fact, const std::string& lang,
                        const SupportPools& pools, const RenderNoise& noise,
                        const WordGenerator& word_gen, util::Rng* rng,
                        RenderTrace* trace) {
  // Trace recording is write-only bookkeeping: every rng draw below happens
  // unconditionally of `trace`, so instrumented and plain renderings are
  // byte-identical.
  auto trace_number = [&](int64_t n) {
    if (trace != nullptr) trace->numbers.push_back(n);
  };
  auto trace_ref = [&](RenderTrace::RefPool pool, int ref) {
    if (trace != nullptr) trace->refs.emplace_back(pool, ref);
  };
  switch (fact.kind) {
    case ValueKind::kDate: {
      int day = fact.day;
      if (rng->NextBool(noise.p_value_noise)) {
        day = std::clamp(day + static_cast<int>(rng->NextInt(-2, 2)), 1, 28);
      }
      trace_number(day);
      trace_number(fact.month);
      trace_number(fact.year);
      // Day-month part, linked to the day page when one exists (Wikipedia
      // infoboxes conventionally link dates; the cross-language links of
      // those pages are what lets the dictionary translate dates).
      std::string day_month;
      if (lang == "pt") {
        day_month = std::to_string(day) + " de " + MonthName(fact.month, lang);
      } else if (lang == "vi") {
        day_month = std::to_string(day) + " tháng " + std::to_string(fact.month);
      } else {
        day_month = MonthName(fact.month, lang) + " " + std::to_string(day);
      }
      size_t day_idx = pools.DayPageIndex(fact.month, day);
      if (day_idx != SIZE_MAX && rng->NextBool(0.5) &&
          !rng->NextBool(noise.p_link_drop)) {
        day_month = "[[" + pools.day_pages[day_idx].titles.at(lang) + "|" +
                    day_month + "]]";
      }
      std::string year = std::to_string(fact.year);
      size_t year_idx = pools.YearPageIndex(fact.year);
      if (year_idx != SIZE_MAX && rng->NextBool(0.3) &&
          !rng->NextBool(noise.p_link_drop)) {
        year = "[[" + pools.year_pages[year_idx].titles.at(lang) + "]]";
      }
      std::string date;
      if (lang == "pt") {
        date = day_month + " de " + year;
      } else if (lang == "vi") {
        date = day_month + " năm " + year;
      } else {
        date = day_month + " " + year;
      }
      // Composite date: append the associated place on ~60% of renderings
      // (each side decides independently — another source of divergence).
      if (fact.ref >= 0 && rng->NextBool(0.6)) {
        date += ", " + RenderLink(pools.places[static_cast<size_t>(fact.ref)],
                                  lang, noise, rng);
        trace_ref(RenderTrace::RefPool::kPlace, fact.ref);
      }
      return date;
    }
    case ValueKind::kYear:
      trace_number(fact.year);
      return std::to_string(fact.year);
    case ValueKind::kNumber: {
      int64_t shown = MaybePerturb(fact.number, noise, rng);
      trace_number(shown);
      return std::to_string(shown);
    }
    case ValueKind::kDuration: {
      const char* unit = lang == "pt" ? "minutos"
                         : lang == "vi" ? "phút"
                                        : "minutes";
      int64_t shown = MaybePerturb(fact.number, noise, rng);
      trace_number(shown);
      return std::to_string(shown) + " " + unit;
    }
    case ValueKind::kMoney: {
      int64_t amount = MaybePerturb(fact.number, noise, rng);
      // Language-specific magnitude rendering: the same budget reads
      // "US$ 44000000" in English and "US$ 44 milhões" in Portuguese /
      // "44 triệu USD" in Vietnamese — the tokens no longer coincide.
      if (lang == "pt" && amount >= 1000000) {
        trace_number(amount / 1000000 * 1000000);
        return "US$ " + std::to_string(amount / 1000000) + " milhões";
      }
      if (lang == "vi" && amount >= 1000000) {
        trace_number(amount / 1000000 * 1000000);
        return std::to_string(amount / 1000000) + " triệu USD";
      }
      trace_number(amount);
      return "US$ " + std::to_string(amount);
    }
    case ValueKind::kEntity:
      trace_ref(RenderTrace::RefPool::kEntity, fact.ref);
      return RenderLink(PoolFor(fact, pools, fact.ref), lang, noise, rng);
    case ValueKind::kPlace:
      trace_ref(RenderTrace::RefPool::kPlace, fact.ref);
      return RenderLink(PoolFor(fact, pools, fact.ref), lang, noise, rng);
    case ValueKind::kTerm:
      trace_ref(RenderTrace::RefPool::kTerm, fact.ref);
      return RenderLink(PoolFor(fact, pools, fact.ref), lang, noise, rng);
    case ValueKind::kEntityList: {
      std::vector<std::string> parts;
      for (int ref : fact.refs) {
        // Lists are rarely complete in both languages: each member may be
        // omitted on a given side (but never all of them).
        if (!parts.empty() && rng->NextBool(0.25)) continue;
        parts.push_back(
            RenderLink(pools.entities[static_cast<size_t>(ref)], lang, noise,
                       rng));
        trace_ref(RenderTrace::RefPool::kEntity, ref);
      }
      if (rng->NextBool(noise.p_template_wrap)) {
        return "{{ubl|" + util::Join(parts, "|") + "}}";
      }
      return util::Join(parts, ", ");
    }
    case ValueKind::kText: {
      // Free text is language-specific, but often carries one shared
      // language-independent token (year span, URL, count).
      std::string text = word_gen.MakePhrase(rng, 2 + rng->NextBounded(3));
      if (fact.number > 0) {
        trace_number(fact.number);
        text += " " + std::to_string(fact.number);
      }
      return text;
    }
    case ValueKind::kName: {
      if (fact.name_shared) return fact.text;
      // Aliases of the same person usually share a component (the surname).
      std::string surname = fact.text;
      size_t space = surname.rfind(' ');
      if (space != std::string::npos) surname = surname.substr(space + 1);
      return word_gen.MakeProperName(rng, 1) + " " + surname;
    }
  }
  return {};
}

}  // namespace synth
}  // namespace wikimatch
