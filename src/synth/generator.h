// Corpus generator: produces a multilingual Wikipedia-like corpus with
// infoboxes, hyperlinks, and cross-language links, plus the concept-level
// ground truth — the stand-in for the paper's Wikipedia dumps and human
// labeling (see DESIGN.md section 1 for the substitution argument).
//
// Articles are emitted as real wikitext and run through WikitextParser, so
// the entire ingest path is exercised, not just the data model.

#ifndef WIKIMATCH_SYNTH_GENERATOR_H_
#define WIKIMATCH_SYNTH_GENERATOR_H_

#include <map>
#include <string>
#include <vector>

#include "eval/match_set.h"
#include "synth/concept_model.h"
#include "synth/support_pool.h"
#include "synth/value_render.h"
#include "util/result.h"
#include "util/rng.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace synth {

/// \brief Semantic trace of one emitted infobox cell.
struct CellTrace {
  /// Concept id of the *attribute name* the cell sits under. When
  /// misplacement noise swaps two values, the trace travels with the value
  /// while the concept stays with the attribute — exactly what a reader of
  /// the article sees.
  std::string concept_id;
  /// Post-noise semantics of the value actually rendered there.
  RenderTrace trace;
};

/// \brief One generated dual-language (or hub-only) entity.
struct EntityRecord {
  /// Hub type id ("film").
  std::string type;
  /// The non-hub language this entity's pair belongs to; empty for
  /// hub-only extras.
  std::string pair_lang;
  /// Normalized article titles per language.
  std::map<std::string, std::string> titles;
  /// Concept id -> fact.
  std::map<std::string, Fact> facts;
  /// language -> normalized attribute form -> trace of the emitted cell.
  /// Only attributes the language's article actually included appear; this
  /// is the sync oracle's exact record of what each edition claims.
  std::map<std::string, std::map<std::string, CellTrace>> cells;
};

/// \brief Everything the experiments need.
struct GeneratedCorpus {
  wiki::Corpus corpus;
  /// Hub language code.
  std::string hub;
  /// Type models by hub type id.
  std::map<std::string, TypeModel> models;
  /// Ground truth per hub type id: clusters of synonymous attribute surface
  /// forms across all languages.
  std::map<std::string, eval::MatchSet> ground_truth;
  /// All generated entities (for the query case-study relevance oracle).
  std::vector<EntityRecord> entities;
  /// Indexes into `entities` per (type, pair language) — the ref space of
  /// cross-type facts (Fact::crossref_type).
  std::map<std::pair<std::string, std::string>, std::vector<size_t>>
      entities_by_type_pair;
  SupportPools supports;
  /// (language, localized type name) -> hub type id.
  std::map<std::pair<std::string, std::string>, std::string> hub_type_of;
};

/// \brief Generator configuration.
struct GeneratorOptions {
  uint64_t seed = 20111030;
  /// Multiplies every per-type entity count (0.05 for quick tests, 1.0 for
  /// the paper-sized corpus).
  double scale = 1.0;
  std::string hub = "en";
  std::vector<TypeModelConfig> types;

  RenderNoise noise;
  /// Probability that a dual entity keeps an identical title across
  /// languages (films often do).
  double p_same_title = 0.35;
  /// Probability that one included attribute's value is misplaced under a
  /// different included attribute (the paper's Sakamoto example).
  double p_misplace = 0.02;
  /// Extra hub-only entities, as a fraction of each type's dual count —
  /// they give the hub corpus the larger coverage the case study relies on.
  double p_hub_only_extra = 0.3;
  /// Cross-language schema correlation: probability that the two sides of a
  /// dual pair decide a concept's inclusion from a *shared* random draw
  /// instead of independent ones. Real dual infoboxes correlate strongly
  /// (editors translate each other's infoboxes); this is the co-occurrence
  /// signal LSI exploits.
  double schema_correlation = 0.45;
  /// Probability that the non-hub side of a dual pair reports an
  /// independently-drawn fact for a concept (the paper's pervasive value
  /// inconsistencies: different running times, different people credited).
  double p_fact_divergence = 0.25;
  /// Support-pool sizing: persons per dual entity.
  double persons_per_entity = 1.2;
  /// Fraction of support entities (persons/places/terms/dates) that have an
  /// article in a given non-hub language. Under-represented wikis lack many
  /// pages (red links) — this thins the translation dictionary, weakens
  /// lsim's cross-language link equivalence, and breaks query-constant
  /// translation for that language. Missing languages default to 1.0.
  std::map<std::string, double> support_coverage = {{"pt", 0.92},
                                                    {"vi", 0.55}};
  size_t num_places = 40;
  size_t num_terms = 60;
  /// Cross-type references: (source type, concept id) -> target type. The
  /// concept's values become links to generated entities of the target
  /// type within the same language pair — what makes the paper's join
  /// queries ("films starring actors who ...") answerable. Target types
  /// are generated before source types.
  std::map<std::pair<std::string, std::string>, std::string> crossrefs = {
      {{"film", "starring"}, "actor"}};

  /// \brief The paper's dataset: 14 Pt-En types (8,898 infoboxes) and 4
  /// Vn-En types (659), overlaps per Table 5.
  static GeneratorOptions Paper(double scale = 1.0);

  /// \brief A two-type miniature for unit tests.
  static GeneratorOptions Tiny(uint64_t seed = 7);
};

/// \brief Deterministic corpus generator.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(GeneratorOptions options);

  /// \brief Builds the full corpus + ground truth. Deterministic in
  /// options.seed.
  util::Result<GeneratedCorpus> Generate();

 private:
  GeneratorOptions options_;
};

}  // namespace synth
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNTH_GENERATOR_H_
