// Controlled delta-batch generator: the edit-stream counterpart of
// CorpusGenerator. Given an already-generated (or any finalized) corpus, it
// emits a deterministic ingest::DeltaBatch exercising the edit kinds real
// wikis produce between dumps — template-wide attribute renames, value
// edits, new dual articles, and deletions — restricted to chosen entity
// types so tests and bench_ingest can dirty a known subset of type pairs.

#ifndef WIKIMATCH_SYNTH_DELTA_H_
#define WIKIMATCH_SYNTH_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ingest/delta.h"
#include "util/result.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace synth {

/// \brief What to mutate. All randomness flows through `seed`.
struct DeltaSpec {
  uint64_t seed = 20230411;
  /// The language pair whose dual articles are edited (lang_b is the hub).
  std::string lang_a = "pt";
  std::string lang_b = "en";
  /// Hub-side entity types eligible for edits; empty = every type with at
  /// least one dual pair in (lang_a, lang_b).
  std::vector<std::string> types_b;
  /// Template-wide renames: one attribute of one eligible type renamed in
  /// every lang_a article of that type (how template parameter renames
  /// land in practice).
  size_t attribute_renames = 0;
  /// Single-article value edits (a token appended to one attribute value,
  /// alternating sides of the dual pair).
  size_t value_edits = 0;
  /// New dual pairs cloned from existing ones under fresh titles.
  size_t new_articles = 0;
  /// lang_a-side articles of dual pairs deleted (the hub side survives).
  size_t removals = 0;
};

/// \brief Builds the batch. NotFound when no eligible dual pair exists;
/// InvalidArgument when both languages are equal.
util::Result<ingest::DeltaBatch> MakeDeltaBatch(const wiki::Corpus& corpus,
                                                const DeltaSpec& spec);

}  // namespace synth
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNTH_DELTA_H_
