// Concept model: the semantic layer behind the synthetic corpus.
//
// Each entity type (film, actor, ...) owns a set of language-independent
// concepts. A concept has a value kind, one or more surface forms per
// language (synonyms -> intra-language synonymy and one-to-many matches),
// and a per-language inclusion probability calibrated so that generated
// dual-language infobox pairs hit the paper's measured attribute-overlap
// targets (Table 5). The concept -> surface-form mapping *is* the ground
// truth used by the evaluation.

#ifndef WIKIMATCH_SYNTH_CONCEPT_MODEL_H_
#define WIKIMATCH_SYNTH_CONCEPT_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "synth/lexicon.h"
#include "util/result.h"
#include "util/rng.h"

namespace wikimatch {
namespace synth {

/// \brief What kind of value a concept carries.
enum class ValueKind {
  kDate,        // full date, language-specific rendering
  kYear,        // bare year
  kNumber,      // plain number
  kDuration,    // number + unit word (minutes/minutos/phút)
  kMoney,       // currency amount
  kEntity,      // link to one support entity (person/org)
  kEntityList,  // links to 2..4 support entities
  kPlace,       // link to a place (country) with translated titles
  kTerm,        // link to a term article (genre/occupation/language)
  kText,        // free per-language text, untranslated
  kName,        // a name/alias of the entity itself
};

/// \brief Parses the seed-lexicon kind tag ("entity", "date", ...).
util::Result<ValueKind> ValueKindFromString(const std::string& s);

/// \brief One concept of a type.
struct Concept {
  /// Stable id, unique within the type (e.g. "directed_by").
  std::string id;
  ValueKind kind = ValueKind::kText;
  /// Surface forms per language; forms[0] is dominant. A language missing
  /// from the map does not express the concept at all.
  std::map<std::string, std::vector<std::string>> forms;
  /// Probability that an infobox in the given non-hub language includes
  /// this concept (after calibration).
  std::map<std::string, double> include_prob;
  /// Hub-side inclusion probability, per pair: entities are generated per
  /// (hub, lang) pair, so the hub infoboxes of different pairs may be
  /// calibrated independently. Keyed by the non-hub language.
  std::map<std::string, double> hub_prob;
  /// Base frequency class in [0,1] before calibration.
  double base_freq = 0.5;
  /// For kEntity/kEntityList/kTerm: index range of the concept's value
  /// domain within the corresponding support pool, [domain_begin,
  /// domain_end).
  size_t domain_begin = 0;
  size_t domain_end = 0;
};

/// \brief The model of one entity type.
struct TypeModel {
  /// Hub-language name used as the type's key ("film").
  std::string id;
  /// Localized infobox template type names, per language.
  std::map<std::string, std::string> names;
  std::vector<Concept> concepts;
  /// Non-hub languages in which this type exists, with the number of
  /// dual-language infobox pairs to generate per language.
  std::map<std::string, size_t> dual_count;
};

/// \brief Configuration for BuildTypeModel.
struct TypeModelConfig {
  std::string type_name;
  /// Concepts to synthesize when no seed lexicon exists for the type; when
  /// a seed exists it contributes its concepts first and synthesis tops up
  /// to this number.
  size_t num_concepts = 16;
  /// Non-hub language -> number of dual infobox pairs.
  std::map<std::string, size_t> dual_count;
  /// Non-hub language -> target cross-language attribute overlap (0..1).
  std::map<std::string, double> overlap;
  /// Probability that a concept gets a second synonym form in a language.
  double p_second_form = 0.25;
  /// Fraction of synthesized concepts made exclusive to a single language.
  double p_exclusive = 0.12;
  /// Probability that a synthesized Pt form is a cognate of the En form.
  double cognate_rate = 0.45;
  /// Probability that a synthesized Pt form is a *false* cognate: derived
  /// from a different concept's En form (the editora/editor trap).
  double false_cognate_rate = 0.06;
};

/// \brief Builds a calibrated TypeModel.
///
/// `hub` is the pivot language ("en"). Concepts for seeded types ("film",
/// "actor") start from the paper's real attribute names; remaining concepts
/// are synthesized with the requested morphologies. Inclusion probabilities
/// are calibrated per language pair by bisection so the expected pairwise
/// schema overlap matches `config.overlap`.
util::Result<TypeModel> BuildTypeModel(const TypeModelConfig& config,
                                       const std::string& hub,
                                       util::Rng* rng);

/// \brief Expected schema overlap of a (hub, lang) infobox pair under the
/// model's inclusion probabilities (the quantity calibration targets).
double ExpectedOverlap(const TypeModel& model, const std::string& hub,
                       const std::string& lang);

}  // namespace synth
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNTH_CONCEPT_MODEL_H_
