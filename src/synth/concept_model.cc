#include "synth/concept_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace wikimatch {
namespace synth {

util::Result<ValueKind> ValueKindFromString(const std::string& s) {
  if (s == "date") return ValueKind::kDate;
  if (s == "year") return ValueKind::kYear;
  if (s == "number") return ValueKind::kNumber;
  if (s == "duration") return ValueKind::kDuration;
  if (s == "money") return ValueKind::kMoney;
  if (s == "entity") return ValueKind::kEntity;
  if (s == "entity_list") return ValueKind::kEntityList;
  if (s == "place") return ValueKind::kPlace;
  if (s == "term") return ValueKind::kTerm;
  if (s == "text") return ValueKind::kText;
  if (s == "name") return ValueKind::kName;
  return util::Status::InvalidArgument("unknown value kind: " + s);
}

namespace {

// Frequency classes for how often a concept appears in infoboxes of its
// type: a few core attributes, a body of common ones, a tail of rare ones.
double DrawBaseFrequency(util::Rng* rng) {
  double roll = rng->NextDouble();
  if (roll < 0.35) return 0.90;   // core
  if (roll < 0.65) return 0.60;   // common
  if (roll < 0.85) return 0.30;   // occasional
  if (roll < 0.96) return 0.08;   // infrequent
  return 0.004;                   // rare (paper: < 0.5% of infoboxes)
}

ValueKind DrawSynthesizedKind(util::Rng* rng) {
  double roll = rng->NextDouble();
  if (roll < 0.18) return ValueKind::kEntity;
  if (roll < 0.26) return ValueKind::kEntityList;
  if (roll < 0.36) return ValueKind::kDate;
  if (roll < 0.41) return ValueKind::kYear;
  if (roll < 0.48) return ValueKind::kPlace;
  if (roll < 0.58) return ValueKind::kTerm;
  if (roll < 0.64) return ValueKind::kNumber;
  if (roll < 0.70) return ValueKind::kMoney;
  if (roll < 0.74) return ValueKind::kDuration;
  if (roll < 0.93) return ValueKind::kText;
  return ValueKind::kName;
}

}  // namespace

double ExpectedOverlap(const TypeModel& model, const std::string& hub,
                       const std::string& lang) {
  (void)hub;
  double inter = 0.0;
  double uni = 0.0;
  for (const auto& c : model.concepts) {
    auto ith = c.hub_prob.find(lang);
    auto itl = c.include_prob.find(lang);
    double ph = ith == c.hub_prob.end() ? 0.0 : ith->second;
    double pl = itl == c.include_prob.end() ? 0.0 : itl->second;
    inter += ph * pl;
    uni += ph + pl - ph * pl;
  }
  return uni <= 0.0 ? 0.0 : inter / uni;
}

util::Result<TypeModel> BuildTypeModel(const TypeModelConfig& config,
                                       const std::string& hub,
                                       util::Rng* rng) {
  if (config.dual_count.empty()) {
    return util::Status::InvalidArgument("type needs at least one language");
  }
  TypeModel model;
  model.id = config.type_name;
  model.dual_count = config.dual_count;

  // All languages of this type: hub + non-hub ones.
  std::vector<std::string> langs = {hub};
  for (const auto& [lang, n] : config.dual_count) langs.push_back(lang);

  // --- Type names -----------------------------------------------------------
  WordGenerator en_gen(Morphology::kEnglish);
  WordGenerator pt_gen(Morphology::kRomance);
  WordGenerator vi_gen(Morphology::kVietnamese);
  auto gen_for = [&](const std::string& lang) -> WordGenerator& {
    if (lang == "pt") return pt_gen;
    if (lang == "vi") return vi_gen;
    return en_gen;
  };

  const auto& seed_names = SeedTypeNames();
  auto seed_name_it = seed_names.find(config.type_name);
  for (const auto& lang : langs) {
    if (seed_name_it != seed_names.end()) {
      auto it = seed_name_it->second.find(lang);
      if (it != seed_name_it->second.end()) {
        model.names[lang] = it->second;
        continue;
      }
    }
    if (lang == hub) {
      model.names[lang] = config.type_name;
    } else if (lang == "pt") {
      model.names[lang] = pt_gen.Cognate(config.type_name, rng);
    } else {
      model.names[lang] = gen_for(lang).MakeWord(rng);
    }
  }

  // --- Seeded concepts ------------------------------------------------------
  const std::vector<SeedConcept>* seeds = nullptr;
  if (config.type_name == "film") {
    seeds = &FilmSeedConcepts();
  } else if (config.type_name == "actor" || config.type_name == "adult actor") {
    seeds = &ActorSeedConcepts();
  }
  if (seeds != nullptr) {
    for (const auto& seed : *seeds) {
      Concept c;
      c.id = seed.id;
      WIKIMATCH_ASSIGN_OR_RETURN(c.kind, ValueKindFromString(seed.kind));
      for (const auto& lang : langs) {
        auto it = seed.forms.find(lang);
        if (it != seed.forms.end()) c.forms[lang] = it->second;
      }
      c.base_freq = DrawBaseFrequency(rng);
      // Seeded core attributes should actually show up.
      c.base_freq = std::max(c.base_freq, 0.3);
      model.concepts.push_back(std::move(c));
    }
  }

  // --- Synthesized concepts -------------------------------------------------
  while (model.concepts.size() < config.num_concepts) {
    Concept c;
    c.id = config.type_name + "_c" + std::to_string(model.concepts.size());
    c.kind = DrawSynthesizedKind(rng);
    c.base_freq = DrawBaseFrequency(rng);

    bool exclusive = rng->NextBool(config.p_exclusive);
    std::string exclusive_lang;
    if (exclusive) {
      exclusive_lang = langs[rng->NextBounded(langs.size())];
    }

    // English form first; other languages derive from it.
    size_t en_words = 1 + rng->NextBounded(2);
    std::string en_form = en_gen.MakePhrase(rng, en_words);
    for (const auto& lang : langs) {
      if (exclusive && lang != exclusive_lang) continue;
      std::vector<std::string> forms;
      if (lang == hub) {
        forms.push_back(en_form);
        if (rng->NextBool(config.p_second_form)) {
          forms.push_back(en_gen.MakePhrase(rng, 1 + rng->NextBounded(2)));
        }
      } else if (lang == "pt") {
        double roll = rng->NextDouble();
        if (roll < config.false_cognate_rate && !model.concepts.empty()) {
          // False cognate: derive from a *different* concept's En form so
          // the string-similar pair is semantically wrong.
          const Concept& other =
              model.concepts[rng->NextBounded(model.concepts.size())];
          auto oth = other.forms.find(hub);
          std::string base = oth != other.forms.end() && !oth->second.empty()
                                 ? oth->second[0]
                                 : en_form;
          forms.push_back(pt_gen.Cognate(base, rng));
        } else if (roll < config.false_cognate_rate + config.cognate_rate) {
          forms.push_back(pt_gen.Cognate(en_form, rng));
        } else {
          forms.push_back(pt_gen.MakePhrase(rng, 1 + rng->NextBounded(2)));
        }
        if (rng->NextBool(config.p_second_form)) {
          forms.push_back(pt_gen.MakePhrase(rng, 1 + rng->NextBounded(2)));
        }
      } else {
        forms.push_back(gen_for(lang).MakePhrase(rng, 1));
        if (rng->NextBool(config.p_second_form)) {
          forms.push_back(gen_for(lang).MakePhrase(rng, 1));
        }
      }
      c.forms[lang] = std::move(forms);
    }
    if (c.forms.empty()) continue;  // Exclusive to a language not in scope.
    model.concepts.push_back(std::move(c));
  }

  // --- Overlap-driven expression dropout --------------------------------------
  // Low cross-language overlap on real Wikipedia comes mostly from
  // *language-exclusive* attributes (each community maintains its own
  // template fields), not from every shared attribute being rare. Before
  // calibrating inclusion probabilities, drop each concept's expression in
  // a non-hub language with a probability that grows as the pair's target
  // overlap falls, keeping a protected core of shared concepts.
  for (const auto& [lang, n] : config.dual_count) {
    auto target_it = config.overlap.find(lang);
    double target = target_it == config.overlap.end() ? 0.5
                                                      : target_it->second;
    double dropout = std::max(0.0, 0.6 * (1.0 - 1.25 * target));
    if (dropout <= 0.0) continue;
    size_t shared = 0;
    for (const auto& c : model.concepts) {
      if (c.forms.count(hub) > 0 && c.forms.count(lang) > 0) ++shared;
    }
    constexpr size_t kMinShared = 5;
    for (auto& c : model.concepts) {
      if (shared <= kMinShared) break;
      if (c.forms.count(hub) == 0 || c.forms.count(lang) == 0) continue;
      if (rng->NextBool(dropout)) {
        c.forms.erase(lang);
        --shared;
      }
    }
  }

  // --- Calibration per (hub, lang) pair --------------------------------------
  // Entities (and therefore hub-side infoboxes) are generated per pair, so
  // each pair calibrates independently: scale both sides' shared-concept
  // probabilities by a common factor s (capped at 1) until the expected
  // overlap matches the target. Overlap is monotone in s, so bisection
  // converges.
  for (const auto& [lang, n] : config.dual_count) {
    auto target_it = config.overlap.find(lang);
    double target = target_it == config.overlap.end() ? 0.5
                                                      : target_it->second;
    auto trial = [&](double s) {
      double inter = 0.0;
      double uni = 0.0;
      for (const auto& c : model.concepts) {
        bool in_hub = c.forms.count(hub) > 0;
        bool in_lang = c.forms.count(lang) > 0;
        double ph = in_hub ? c.base_freq : 0.0;
        double pl = in_lang ? c.base_freq : 0.0;
        if (in_hub && in_lang) {
          ph = std::min(1.0, ph * s);
          pl = std::min(1.0, pl * s);
        }
        inter += ph * pl;
        uni += ph + pl - ph * pl;
      }
      return uni <= 0.0 ? 0.0 : inter / uni;
    };
    // Shared attributes must stay reasonably frequent — overlap below what
    // s_min yields is carried by the exclusive-attribute mass above.
    double lo = 0.55;
    double hi = 400.0;
    for (int iter = 0; iter < 64; ++iter) {
      double mid = 0.5 * (lo + hi);
      if (trial(mid) < target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    double s = 0.5 * (lo + hi);
    for (auto& c : model.concepts) {
      bool in_hub = c.forms.count(hub) > 0;
      bool in_lang = c.forms.count(lang) > 0;
      bool shared = in_hub && in_lang;
      if (in_hub) {
        c.hub_prob[lang] =
            shared ? std::min(1.0, c.base_freq * s) : c.base_freq;
      }
      if (in_lang) {
        c.include_prob[lang] =
            shared ? std::min(1.0, c.base_freq * s) : c.base_freq;
      }
    }
  }

  return model;
}

}  // namespace synth
}  // namespace wikimatch
