// Delta batches: the unit of incremental ingest. A DeltaBatch is a set of
// added, updated, and removed articles relative to an existing finalized
// corpus — the shape of a Wikipedia edit stream between two dump dates.
// ApplyDeltaToCorpus materializes the post-delta corpus deterministically:
// surviving articles keep their relative order (updates replace in place),
// removed articles are dropped, added articles append in batch order, and
// Finalize() re-runs. Both the incremental matcher and a from-scratch
// rebuild consume this exact corpus, which is what makes bit-identical
// equivalence between the two paths a meaningful invariant.

#ifndef WIKIMATCH_INGEST_DELTA_H_
#define WIKIMATCH_INGEST_DELTA_H_

#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "wiki/article.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace ingest {

/// \brief A set of article-level changes against a base corpus.
///
/// Keys are (language, normalized title). Validation is strict: added
/// articles must not exist in the base, updated and removed articles must,
/// and no key may appear twice across the three lists — a malformed feed
/// fails loudly instead of silently diverging from a rebuild.
struct DeltaBatch {
  std::vector<wiki::Article> added;
  std::vector<wiki::Article> updated;
  /// (language, normalized title) of articles to drop.
  std::vector<std::pair<std::string, std::string>> removed;

  size_t size() const { return added.size() + updated.size() + removed.size(); }
  bool empty() const { return size() == 0; }
};

/// \brief Checks the batch against `base` (see DeltaBatch). Returns
/// InvalidArgument describing the first violation.
util::Status ValidateDeltaBatch(const wiki::Corpus& base,
                                const DeltaBatch& batch);

/// \brief Builds the finalized post-delta corpus (see file comment).
/// `num_threads` only parallelizes the base-corpus copy; the result is
/// identical at any thread count.
util::Result<wiki::Corpus> ApplyDeltaToCorpus(const wiki::Corpus& base,
                                              const DeltaBatch& batch,
                                              size_t num_threads = 1);

/// \brief Undo record filled by ApplyDeltaInPlace: the pre-images and
/// Finalize mutations needed to restore the corpus byte-identically, and
/// the raw material incremental change tracking reads (which records the
/// batch really touched, and how Finalize rippled beyond them).
struct DeltaUndo {
  /// Pre-images of updated articles, at their (stable) ids.
  std::vector<std::pair<wiki::ArticleId, wiki::Article>> replaced;
  /// Removed articles at the ids they occupied before the batch.
  std::vector<std::pair<wiki::ArticleId, wiki::Article>> removed;
  /// Number of articles appended at the tail.
  size_t added_count = 0;
  /// Record mutations Finalize performed (post-batch id space).
  wiki::FinalizeReport finalize;
};

/// \brief Applies `batch` to `corpus` in place: validate, replace updated
/// records, erase removed ones (compacting ids), append added ones, and
/// re-Finalize. Produces exactly the corpus ApplyDeltaToCorpus builds, for
/// a batch-sized cost plus one Finalize pass instead of a full copy. On
/// success `undo` holds everything RevertDelta needs; on error the corpus
/// is untouched (validation is the only failure point).
util::Status ApplyDeltaInPlace(wiki::Corpus* corpus, const DeltaBatch& batch,
                               DeltaUndo* undo);

/// \brief Exact inverse of ApplyDeltaInPlace: restores the pre-batch
/// corpus byte-identically (same records, same ids, re-finalized).
void RevertDelta(wiki::Corpus* corpus, DeltaUndo undo);

/// \brief True iff two articles carry identical field values — equivalent
/// to comparing their serialized records, but allocation-free. Compares
/// every Article member, a superset of the fields the snapshot encoding
/// writes, so it can never report "equal" for records a rebuild would see
/// as different. This is the change test incremental ingest uses.
bool ArticlesEqual(const wiki::Article& a, const wiki::Article& b);

}  // namespace ingest
}  // namespace wikimatch

#endif  // WIKIMATCH_INGEST_DELTA_H_
