#include "ingest/delta.h"

#include <map>

namespace wikimatch {
namespace ingest {
namespace {

using Key = std::pair<std::string, std::string>;

Key KeyOf(const wiki::Article& article) {
  return {article.language, article.title};
}

std::string Describe(const Key& key) { return key.first + ":" + key.second; }

}  // namespace

bool ArticlesEqual(const wiki::Article& a, const wiki::Article& b) {
  if (a.title != b.title || a.language != b.language ||
      a.entity_type != b.entity_type || a.redirect_to != b.redirect_to ||
      a.infobox.has_value() != b.infobox.has_value() ||
      a.categories != b.categories ||
      a.cross_language_links != b.cross_language_links) {
    return false;
  }
  if (!a.infobox.has_value()) return true;
  const wiki::Infobox& ia = *a.infobox;
  const wiki::Infobox& ib = *b.infobox;
  if (ia.template_type != ib.template_type ||
      ia.template_name != ib.template_name ||
      ia.attributes.size() != ib.attributes.size()) {
    return false;
  }
  for (size_t i = 0; i < ia.attributes.size(); ++i) {
    const auto& [name_a, value_a] = ia.attributes[i];
    const auto& [name_b, value_b] = ib.attributes[i];
    if (name_a != name_b || value_a.raw != value_b.raw ||
        value_a.text != value_b.text || value_a.links != value_b.links) {
      return false;
    }
  }
  return true;
}

util::Status ValidateDeltaBatch(const wiki::Corpus& base,
                                const DeltaBatch& batch) {
  std::map<Key, const char*> seen;
  auto claim = [&](const Key& key, const char* list) -> util::Status {
    auto [it, inserted] = seen.emplace(key, list);
    if (!inserted) {
      return util::Status::InvalidArgument(
          "delta batch mentions " + Describe(key) + " twice (" + it->second +
          " and " + list + ")");
    }
    return util::Status::OK();
  };
  for (const auto& article : batch.added) {
    if (article.language.empty() || article.title.empty()) {
      return util::Status::InvalidArgument(
          "added article with empty language or title");
    }
    WIKIMATCH_RETURN_NOT_OK(claim(KeyOf(article), "added"));
    if (base.FindExactTitle(article.language, article.title) !=
        wiki::kInvalidArticle) {
      return util::Status::InvalidArgument(
          "added article " + Describe(KeyOf(article)) +
          " already exists in the base corpus");
    }
  }
  for (const auto& article : batch.updated) {
    WIKIMATCH_RETURN_NOT_OK(claim(KeyOf(article), "updated"));
    if (base.FindExactTitle(article.language, article.title) ==
        wiki::kInvalidArticle) {
      return util::Status::InvalidArgument(
          "updated article " + Describe(KeyOf(article)) +
          " does not exist in the base corpus");
    }
  }
  for (const auto& key : batch.removed) {
    WIKIMATCH_RETURN_NOT_OK(claim(key, "removed"));
    if (base.FindExactTitle(key.first, key.second) == wiki::kInvalidArticle) {
      return util::Status::InvalidArgument(
          "removed article " + Describe(key) +
          " does not exist in the base corpus");
    }
  }
  return util::Status::OK();
}

util::Result<wiki::Corpus> ApplyDeltaToCorpus(const wiki::Corpus& base,
                                              const DeltaBatch& batch,
                                              size_t num_threads) {
  WIKIMATCH_RETURN_NOT_OK(ValidateDeltaBatch(base, batch));
  // Copy-and-patch: far cheaper than re-adding every article, because the
  // title and language indexes are copied structurally instead of being
  // rebuilt entry by entry. Updated records replace in place (validation
  // guarantees the key exists and is unchanged), removals compact the id
  // space, additions append, and Finalize() re-derives everything derived
  // (entity types for the patched records, induced symmetric links, type
  // indexes) — the exact corpus a from-scratch rebuild would consume.
  wiki::Corpus out = wiki::Corpus::ParallelCopy(base, num_threads);
  for (const auto& article : batch.updated) {
    wiki::ArticleId id = out.FindExactTitle(article.language, article.title);
    WIKIMATCH_RETURN_NOT_OK(out.ReplaceArticle(id, article));
  }
  std::vector<wiki::ArticleId> removed_ids;
  removed_ids.reserve(batch.removed.size());
  for (const auto& [language, title] : batch.removed) {
    removed_ids.push_back(out.FindExactTitle(language, title));
  }
  out.EraseArticles(std::move(removed_ids));
  for (const auto& article : batch.added) {
    auto added = out.AddArticle(article);
    if (!added.ok()) return added.status();
  }
  out.Finalize();
  return out;
}

util::Status ApplyDeltaInPlace(wiki::Corpus* corpus, const DeltaBatch& batch,
                               DeltaUndo* undo) {
  WIKIMATCH_RETURN_NOT_OK(ValidateDeltaBatch(*corpus, batch));
  // Updates first: keys are untouched by updates, so ids are stable here.
  undo->replaced.reserve(batch.updated.size());
  for (const auto& article : batch.updated) {
    wiki::ArticleId id =
        corpus->FindExactTitle(article.language, article.title);
    undo->replaced.emplace_back(id, corpus->Get(id));
    WIKIMATCH_RETURN_NOT_OK(corpus->ReplaceArticle(id, article));
  }
  std::vector<wiki::ArticleId> removed_ids;
  removed_ids.reserve(batch.removed.size());
  for (const auto& [language, title] : batch.removed) {
    wiki::ArticleId id = corpus->FindExactTitle(language, title);
    removed_ids.push_back(id);
    undo->removed.emplace_back(id, corpus->Get(id));
  }
  corpus->EraseArticles(std::move(removed_ids));
  for (const auto& article : batch.added) {
    auto added = corpus->AddArticle(article);
    if (!added.ok()) return added.status();  // unreachable after validation
  }
  undo->added_count = batch.added.size();
  corpus->Finalize(&undo->finalize);
  return util::Status::OK();
}

void RevertDelta(wiki::Corpus* corpus, DeltaUndo undo) {
  // Reverse order of ApplyDeltaInPlace. Finalize mutations first, while
  // the reported post-batch ids are still valid.
  for (const auto& backlink : undo.finalize.backlinks_added) {
    corpus->GetMutable(backlink.id)->cross_language_links.erase(
        backlink.language);
  }
  for (wiki::ArticleId id : undo.finalize.entity_type_derived) {
    corpus->GetMutable(id)->entity_type.clear();
  }
  corpus->PopArticles(undo.added_count);
  corpus->RestoreArticles(std::move(undo.removed));
  for (auto& [id, article] : undo.replaced) {
    // Keys match by construction; the status is always OK.
    auto status = corpus->ReplaceArticle(id, std::move(article));
    (void)status;
  }
  // Everything is back to its finalized pre-batch value; this pass only
  // rebuilds the type index and clears the un-finalized flag.
  corpus->Finalize();
}

}  // namespace ingest
}  // namespace wikimatch
