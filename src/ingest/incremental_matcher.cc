#include "ingest/incremental_matcher.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <tuple>

#include "match/schema_builder.h"
#include "match/type_matcher.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace wikimatch {
namespace ingest {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Records every (language, title) a FindByTitle(lang, title) resolution can
// read: the starting title, each redirect hop, and the landing title —
// walked one hop past FindByTitle's depth bound, so this is a superset of
// the titles the resolution depends on. Dangling titles are recorded too:
// an article created there later re-routes the resolution.
void AddTitleChain(const wiki::Corpus& corpus, const std::string& lang,
                   const std::string& title,
                   std::set<std::pair<std::string, std::string>>* out) {
  std::string t = title;
  for (int depth = 0; depth <= 4; ++depth) {
    out->insert({lang, t});
    wiki::ArticleId id = corpus.FindExactTitle(lang, t);
    if (id == wiki::kInvalidArticle) return;
    const wiki::Article& article = corpus.Get(id);
    if (!article.IsRedirect()) return;
    t = article.redirect_to;
  }
}

}  // namespace

std::string ApplyStats::ToString() const {
  std::ostringstream os;
  os << "generation=" << generation << " added=" << articles_added
     << " updated=" << articles_updated << " removed=" << articles_removed
     << " changed_records=" << articles_changed
     << " units_total=" << units_total << " units_reused=" << units_reused
     << " units_recomputed=" << units_recomputed
     << " corpus_ms=" << corpus_ms << " dictionary_ms=" << dictionary_ms
     << " align_ms=" << align_ms << " total_ms=" << total_ms;
  return os.str();
}

struct IncrementalMatcher::ReclaimerSlot {
  util::Mutex mu;
  util::TaskHandle handle WIKIMATCH_GUARDED_BY(mu);
};

IncrementalMatcher::IncrementalMatcher(
    wiki::Corpus corpus, std::map<LanguagePair, match::PipelineResult> results,
    match::PipelineOptions options)
    : corpus_(std::move(corpus)),
      results_(std::move(results)),
      options_(std::move(options)),
      reclaimer_(std::make_unique<ReclaimerSlot>()) {
  dictionary_.Build(corpus_, options_.num_threads);
  RebuildFootprints();
}

IncrementalMatcher::IncrementalMatcher(IncrementalMatcher&&) noexcept =
    default;

IncrementalMatcher::~IncrementalMatcher() {
  if (reclaimer_ == nullptr) return;  // moved-from shell
  util::MutexLock lock(reclaimer_->mu);
  // Blocks until the in-flight reclaim (if any) finished — and if it is
  // still queued behind a saturated pool, steals and runs it right here
  // (TaskHandle::Wait's contract), so destruction never deadlocks and
  // never abandons retired state.
  reclaimer_->handle.Wait();
}

struct IncrementalMatcher::RetiredState {
  DeltaUndo undo;  // pre-images of replaced/removed articles
  std::map<LanguagePair, match::PipelineResult> results;
  std::map<LanguagePair, std::map<UnitKey, UnitFootprint>> footprints;
};

void IncrementalMatcher::ReclaimAsync(std::unique_ptr<RetiredState> retired) {
  util::MutexLock lock(reclaimer_->mu);
  // One reclaim in flight at a time (the historical join-then-launch
  // behavior): waiting on the previous handle bounds retired-state memory
  // to a single generation.
  reclaimer_->handle.Wait();
  // shared_ptr capture because std::function requires copyable callables;
  // the pool releases the closure (and with it the state) as soon as the
  // task ran, so the deallocation still happens off this thread.
  reclaimer_->handle = util::thread_pool_async(
      [state = std::shared_ptr<RetiredState>(std::move(retired))]() mutable {
        state.reset();
      });
}

util::Result<IncrementalMatcher> IncrementalMatcher::FromSnapshot(
    store::Snapshot snapshot, match::PipelineOptions options) {
  if (snapshot.meta.options.has_value()) {
    store::OptionsFingerprint supplied =
        store::OptionsFingerprint::From(options);
    if (!(supplied == *snapshot.meta.options)) {
      return util::Status::InvalidArgument(
          "snapshot was built with different matcher options than supplied "
          "— unit reuse would silently diverge from a rebuild; pass the "
          "build options (snapshot: " + snapshot.meta.options->ToString() +
          "; supplied: " + supplied.ToString() + ")");
    }
  }
  IncrementalMatcher matcher(std::move(snapshot.corpus),
                             std::move(snapshot.pipelines),
                             std::move(options));
  matcher.meta_ = std::move(snapshot.meta);
  return matcher;
}

IncrementalMatcher::UnitFootprint IncrementalMatcher::ComputeFootprint(
    const wiki::Corpus& corpus, const std::string& lang_a,
    const std::string& type_a, const std::string& lang_b,
    const std::string& type_b) {
  UnitFootprint fp;
  // Mirror BuildTypePairData's dual collection (sampling deliberately not
  // applied: a footprint over every dual is a superset of one over the
  // sample, and membership changes that would re-shuffle the sample are
  // caught by the type rule anyway).
  std::vector<std::pair<wiki::ArticleId, wiki::ArticleId>> duals;
  for (wiki::ArticleId id : corpus.ArticlesOfType(lang_a, type_a)) {
    const wiki::Article& a = corpus.Get(id);
    auto it = a.cross_language_links.find(lang_b);
    if (it == a.cross_language_links.end()) continue;
    // The dual pairing resolves through redirects in lang_b.
    AddTitleChain(corpus, lang_b, it->second, &fp.titles);
    wiki::ArticleId other = corpus.CrossLanguageTarget(id, lang_b);
    if (other == wiki::kInvalidArticle) continue;
    const wiki::Article& b = corpus.Get(other);
    if (!b.infobox.has_value() || b.entity_type != type_b) continue;
    duals.emplace_back(id, other);
  }
  for (const auto& [id_a, id_b] : duals) {
    for (int side = 0; side < 2; ++side) {
      wiki::ArticleId id = side == 0 ? id_a : id_b;
      const std::string& lang = side == 0 ? lang_a : lang_b;
      const wiki::Article& article = corpus.Get(id);
      for (const auto& [attr, value] : article.infobox->attributes) {
        (void)attr;
        if (side == 0 && lang_a != lang_b) {
          // lang_a components pass through the dictionary pre-translation;
          // record them so dictionary diffs can dirty this unit.
          for (const std::string& component :
               match::ValueComponents(value)) {
            fp.terms.insert(component);
          }
        }
        // Link canonicalization reads the target's redirect chain and the
        // landing article's record (the record change is caught via the
        // landing title being in the set).
        for (const auto& link : value.links) {
          AddTitleChain(corpus, lang, link.target, &fp.titles);
        }
      }
    }
  }
  return fp;
}

void IncrementalMatcher::RebuildFootprints() {
  footprints_.clear();
  for (const auto& [pair, result] : results_) {
    auto& per_pair = footprints_[pair];
    for (const auto& unit : result.per_type) {
      per_pair.emplace(UnitKey{unit.type_a, unit.type_b},
                       ComputeFootprint(corpus_, pair.first, unit.type_a,
                                        pair.second, unit.type_b));
    }
  }
}

util::Result<ApplyStats> IncrementalMatcher::Apply(const DeltaBatch& batch) {
  Clock::time_point apply_start = Clock::now();
  ApplyStats stats;
  stats.articles_added = batch.added.size();
  stats.articles_updated = batch.updated.size();
  stats.articles_removed = batch.removed.size();

  // 1. Patch the corpus in place (validation is the only failure point, and
  // it runs before any mutation). The undo record carries the pre-images of
  // every batch-named article plus the mutations Finalize performed beyond
  // the batch — and Finalize's only two mutation kinds (entity-type
  // derivation, induced symmetric links) are both reported — so together
  // they are a complete account of every record that changed.
  Clock::time_point corpus_start = Clock::now();
  auto retired = std::make_unique<RetiredState>();
  WIKIMATCH_RETURN_NOT_OK(ApplyDeltaInPlace(&corpus_, batch, &retired->undo));
  const DeltaUndo& undo = retired->undo;

  // 2. Changed-record set: every (language, title) whose finalized record
  // differs between the generations, the (language, entity type) sides any
  // changed version carries, and the dictionary keys the changed records'
  // cross-language links contribute (each link of article a feeds exactly
  // the forward key (a.lang, lang, a.title) and the reverse key
  // (lang, a.lang, title)).
  std::set<TitleKey> changed;
  std::set<std::pair<std::string, std::string>> touched_types;
  using DictKey = std::tuple<std::string, std::string, std::string>;
  std::set<DictKey> affected_keys;
  auto note_version = [&](const wiki::Article& article) {
    if (article.infobox.has_value() && !article.entity_type.empty()) {
      touched_types.insert({article.language, article.entity_type});
    }
  };
  auto note_links = [&](const wiki::Article& article) {
    for (const auto& [lang, title] : article.cross_language_links) {
      affected_keys.insert({article.language, lang, article.title});
      affected_keys.insert({lang, article.language, title});
    }
  };
  for (const auto& [id, pre] : undo.replaced) {
    (void)id;  // pre-batch id; removals below it may have shifted the record
    const wiki::Article& post =
        corpus_.Get(corpus_.FindExactTitle(pre.language, pre.title));
    if (ArticlesEqual(pre, post)) continue;  // no-op update
    changed.insert({pre.language, pre.title});
    note_version(pre);
    note_version(post);
    note_links(pre);
    note_links(post);
  }
  for (const auto& [id, pre] : undo.removed) {
    (void)id;
    changed.insert({pre.language, pre.title});
    note_version(pre);
    note_links(pre);
  }
  for (size_t k = corpus_.size() - undo.added_count; k < corpus_.size(); ++k) {
    const wiki::Article& post = corpus_.Get(static_cast<wiki::ArticleId>(k));
    changed.insert({post.language, post.title});
    note_version(post);
    note_links(post);
  }
  // Induced backlinks land on articles the batch never named (including
  // survivors whose link resolution was re-routed through a new redirect).
  // Entity-type derivations need no pass of their own: in a finalized base
  // corpus they can only hit batch-named articles, whose final records are
  // compared above.
  for (const auto& backlink : undo.finalize.backlinks_added) {
    const wiki::Article& post = corpus_.Get(backlink.id);
    changed.insert({post.language, post.title});
    note_version(post);
    note_links(post);
  }
  stats.articles_changed = changed.size();
  stats.corpus_ms = MsSince(corpus_start);

  // 3. Patch the dictionary at the affected keys only. A key's entry is the
  // contribution of its lowest-id contributor (Build scans ids ascending
  // and first insertion wins). Contributors at unaffected keys are articles
  // the batch left untouched, and id compaction preserves their relative
  // order, so no unaffected key can change winners. Forward contributors
  // ((from, term) names the article's own key) are unique via the title
  // index; reverse contributors are found in one id-ascending scan whose
  // first hit per key is therefore the lowest-id one.
  Clock::time_point dict_start = Clock::now();
  std::map<std::pair<std::string, std::string>, std::set<std::string>>
      changed_terms;
  std::vector<std::pair<DictKey, std::optional<std::string>>> dict_undo;
  if (!affected_keys.empty()) {
    std::map<DictKey, std::pair<wiki::ArticleId, std::string>> reverse_winner;
    for (wiki::ArticleId id = 0; id < corpus_.size(); ++id) {
      const wiki::Article& b = corpus_.Get(id);
      for (const auto& [lang, title] : b.cross_language_links) {
        DictKey key{lang, b.language, title};
        if (affected_keys.count(key) == 0) continue;
        reverse_winner.emplace(std::move(key), std::make_pair(id, b.title));
      }
    }
    for (const auto& key : affected_keys) {
      const auto& [from, to, term] = key;
      std::optional<std::pair<wiki::ArticleId, std::string>> winner;
      wiki::ArticleId forward = corpus_.FindExactTitle(from, term);
      if (forward != wiki::kInvalidArticle) {
        const wiki::Article& a = corpus_.Get(forward);
        if (auto it = a.cross_language_links.find(to);
            it != a.cross_language_links.end()) {
          winner = {forward, it->second};
        }
      }
      if (auto it = reverse_winner.find(key); it != reverse_winner.end()) {
        // Strict <: on an id tie (an article contributing both ways, only
        // possible for self-language links) Build emplaces forward first.
        if (!winner.has_value() || it->second.first < winner->first) {
          winner = it->second;
        }
      }
      std::optional<std::string> current =
          dictionary_.Translate(from, term, to);
      std::optional<std::string> target =
          winner.has_value() ? std::optional<std::string>(winner->second)
                             : std::nullopt;
      if (current == target) continue;
      dict_undo.emplace_back(key, std::move(current));
      if (target.has_value()) {
        dictionary_.Put(from, term, to, *target);
      } else {
        dictionary_.Erase(from, term, to);
      }
      changed_terms[{from, to}].insert(term);
    }
  }
  stats.dictionary_ms = MsSince(dict_start);

  // Undoes steps 1–3 so a failed Apply leaves the matcher serving its
  // previous generation byte-identically.
  auto fail = [&](util::Status status) {
    for (const auto& [key, old] : dict_undo) {
      const auto& [from, to, term] = key;
      if (old.has_value()) {
        dictionary_.Put(from, term, to, *old);
      } else {
        dictionary_.Erase(from, term, to);
      }
    }
    RevertDelta(&corpus_, std::move(retired->undo));
    return status;
  };

  // 4. Per language pair: re-run type matching (cheap, corpus-global),
  // then realign dirty units and reuse the rest. Results land in new
  // containers and commit at the end; corpus and dictionary are already
  // patched, so an alignment failure goes through fail() to roll them back.
  Clock::time_point align_start = Clock::now();
  std::map<LanguagePair, match::PipelineResult> new_results;
  std::map<LanguagePair, std::map<UnitKey, UnitFootprint>> new_footprints;
  match::AttributeAligner aligner(options_.matcher);
  for (const auto& [pair, old_result] : results_) {
    const std::string& lang_a = pair.first;
    const std::string& lang_b = pair.second;
    Clock::time_point pair_start = Clock::now();
    match::PipelineResult out;
    match::TypeMatcher type_matcher(options_.type_min_votes,
                                    options_.type_min_confidence);
    out.type_matches = type_matcher.Match(corpus_, lang_a, lang_b);
    out.stats.type_match_ms = MsSince(pair_start);

    std::map<UnitKey, size_t> old_index;
    for (size_t i = 0; i < old_result.per_type.size(); ++i) {
      old_index.emplace(UnitKey{old_result.per_type[i].type_a,
                                old_result.per_type[i].type_b},
                        i);
    }
    const auto& old_fps = footprints_[pair];
    const std::set<std::string>* terms_ab = nullptr;
    if (auto it = changed_terms.find(pair); it != changed_terms.end()) {
      terms_ab = &it->second;
    }

    auto unit_dirty = [&](const match::TypeMatch& tm,
                          const UnitFootprint& fp) {
      if (touched_types.count({lang_a, tm.type_a}) > 0 ||
          touched_types.count({lang_b, tm.type_b}) > 0) {
        return true;
      }
      for (const TitleKey& key : changed) {
        if (fp.titles.count(key) > 0) return true;
      }
      if (terms_ab != nullptr) {
        for (const std::string& term : *terms_ab) {
          if (fp.terms.count(term) > 0) return true;
        }
      }
      return false;
    };

    std::vector<bool> dirty(out.type_matches.size(), false);
    for (size_t i = 0; i < out.type_matches.size(); ++i) {
      const match::TypeMatch& tm = out.type_matches[i];
      auto old_it = old_index.find(UnitKey{tm.type_a, tm.type_b});
      auto fp_it = old_fps.find(UnitKey{tm.type_a, tm.type_b});
      dirty[i] = old_it == old_index.end() || fp_it == old_fps.end() ||
                 unit_dirty(tm, fp_it->second);
    }

    // Same slot scheme as MatchPipeline::Run, over the dirty units only,
    // so output order and merge order match a rebuild at any thread count.
    std::vector<std::optional<match::TypePairResult>> slots(
        out.type_matches.size());
    std::vector<util::Status> errors(out.type_matches.size());
    util::thread_pool_for(
        out.type_matches.size(), options_.num_threads, [&](size_t i) {
          if (!dirty[i]) return;
          const match::TypeMatch& tm = out.type_matches[i];
          auto data = match::BuildTypePairData(corpus_, dictionary_, lang_a,
                                               tm.type_a, lang_b, tm.type_b,
                                               options_.schema);
          if (!data.ok()) {
            if (data.status().code() != util::StatusCode::kNotFound) {
              errors[i] = data.status();
            } else {
              WIKIMATCH_LOG(Warning)
                  << "skipping type pair " << tm.type_a << "/" << tm.type_b
                  << ": " << data.status().ToString();
            }
            return;
          }
          match::TypePairResult result;
          result.type_a = tm.type_a;
          result.type_b = tm.type_b;
          result.num_duals = data->num_duals;
          result.frequencies = data->Frequencies();
          auto alignment = aligner.Align(data.ValueOrDie());
          if (!alignment.ok()) {
            errors[i] = alignment.status();
            return;
          }
          result.alignment = std::move(alignment).ValueOrDie();
          slots[i] = std::move(result);
        });

    auto& fps_out = new_footprints[pair];
    for (size_t i = 0; i < out.type_matches.size(); ++i) {
      if (!errors[i].ok()) return fail(errors[i]);
      const match::TypeMatch& tm = out.type_matches[i];
      UnitKey key{tm.type_a, tm.type_b};
      if (dirty[i]) {
        ++stats.units_recomputed;
        if (!slots[i].has_value()) continue;  // NotFound: skipped, like Run
        fps_out.emplace(key, ComputeFootprint(corpus_, lang_a, tm.type_a,
                                              lang_b, tm.type_b));
        out.per_type.push_back(std::move(*slots[i]));
      } else {
        ++stats.units_reused;
        // Copies (not moves) so a failed Apply never corrupts the base.
        out.per_type.push_back(old_result.per_type[old_index[key]]);
        fps_out.emplace(key, old_fps.at(key));
      }
    }
    stats.units_total += out.type_matches.size();

    out.stats.type_pairs = out.per_type.size();
    for (const auto& unit : out.per_type) {
      out.stats.align.Merge(unit.alignment.stats);
    }
    out.stats.total_ms = MsSince(pair_start);
    new_results.emplace(pair, std::move(out));
  }
  stats.align_ms = MsSince(align_start);

  // 5. Commit. Corpus and dictionary were patched in place; only the result
  // and footprint containers swap. The retired containers — and the undo
  // bundle's pre-image articles — go to the background reclaimer: their
  // destructors are pure deallocation that nothing downstream waits on.
  retired->results = std::move(results_);
  retired->footprints = std::move(footprints_);
  results_ = std::move(new_results);
  footprints_ = std::move(new_footprints);
  ReclaimAsync(std::move(retired));
  ++meta_.generation;
  // Stamp the options the new generation's units were (re)computed under;
  // the next FromSnapshot rejects an apply with different options.
  meta_.options = store::OptionsFingerprint::From(options_);
  stats.generation = meta_.generation;
  store::DeltaRecord record;
  record.generation = meta_.generation;
  record.articles_added = stats.articles_added;
  record.articles_updated = stats.articles_updated;
  record.articles_removed = stats.articles_removed;
  record.units_reused = stats.units_reused;
  record.units_recomputed = stats.units_recomputed;
  meta_.history.push_back(record);
  stats.total_ms = MsSince(apply_start);
  return stats;
}

store::Snapshot IncrementalMatcher::ToSnapshot() const {
  store::Snapshot snapshot;
  snapshot.corpus = corpus_;
  snapshot.dictionary = dictionary_;
  snapshot.pipelines = results_;
  snapshot.meta = meta_;
  return snapshot;
}

}  // namespace ingest
}  // namespace wikimatch
