// IncrementalMatcher: applies a DeltaBatch to an already-matched corpus and
// re-runs the expensive alignment stage (schema build + LSI + similarity
// join + match integration) only for the (language-pair, type-pair) units
// the delta can actually influence, reusing every other unit's result
// verbatim. The output is bit-identical to running MatchPipeline from
// scratch on the post-delta corpus — a property the test suite asserts on
// serialized bytes — because dirtiness is a sound over-approximation of
// each unit's true dependency footprint:
//
//   * membership: a unit reads the infoboxes of its member articles, found
//     through ArticlesOfType on both sides plus the lang_a members'
//     cross-language links (including redirect hops). Any changed article
//     whose pre- or post-delta record carries a typed infobox dirties every
//     unit touching that (language, type).
//   * titles: value links are canonicalized through FindByTitle (redirect
//     chains) and the landing article's cross-language links; the lang_a
//     members' cross-links resolve through redirects too. Each unit records
//     every (language, title) those resolutions visit — including dangling
//     targets, so an article later created at that title dirties the unit.
//   * translations: lang_a-side value components pass through
//     TranslationDictionary::TranslateOrKeep. Each unit records its
//     pre-translation components; the dictionary is patched in place at the
//     keys the changed records contribute (recomputing each key's
//     lowest-article-id winner, Build's first-insertion-wins order), and
//     the actually-retranslated terms dirty the units that use them.
//
// The changed-article set itself comes from ApplyDeltaInPlace's undo
// record: a field-level comparison of each batch-named article's pre-image
// against its finalized post record, plus the FinalizeReport — and since
// Finalize() is the only source of mutations beyond the batch and reports
// both kinds it performs (entity-type derivation, induced symmetric
// links), indirect ripple is caught no matter how the delta caused it.
// The same undo record rolls the corpus back byte-identically if a later
// stage of Apply fails.
//
// Type matching (cross-language link voting) is cheap and corpus-global,
// so it always re-runs in full; per-type-pair SimilarityJoinIndexes are
// rebuilt inside AttributeAligner::Align for dirty units only, which is
// the per-type-pair index invalidation this subsystem provides.

#ifndef WIKIMATCH_INGEST_INCREMENTAL_MATCHER_H_
#define WIKIMATCH_INGEST_INCREMENTAL_MATCHER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ingest/delta.h"
#include "match/dictionary.h"
#include "match/pipeline.h"
#include "store/snapshot.h"
#include "util/result.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace ingest {

/// \brief What one Apply() did, for logging, bench, and the snapshot
/// delta manifest.
struct ApplyStats {
  uint64_t generation = 0;  ///< generation the batch produced
  size_t articles_added = 0;
  size_t articles_updated = 0;
  size_t articles_removed = 0;
  size_t articles_changed = 0;  ///< finalized records that differ pre/post
  size_t units_total = 0;       ///< type matches across all language pairs
  size_t units_reused = 0;
  size_t units_recomputed = 0;
  double corpus_ms = 0.0;      ///< in-place corpus patch + change tracking
  double dictionary_ms = 0.0;  ///< affected-key dictionary patch
  double align_ms = 0.0;       ///< type matching + dirty-unit realignment
  double total_ms = 0.0;

  /// \brief One-line key=value rendering (CLI stderr).
  std::string ToString() const;
};

/// \brief Holds a matched corpus and applies delta batches to it.
class IncrementalMatcher {
 public:
  using LanguagePair = store::LanguagePair;

  /// \brief Wraps an existing run. `results` must come from MatchPipeline
  /// runs over `corpus` with these `options` — the reuse guarantee is
  /// relative to what a rebuild with the same options would produce.
  IncrementalMatcher(wiki::Corpus corpus,
                     std::map<LanguagePair, match::PipelineResult> results,
                     match::PipelineOptions options = {});

  /// \brief Wraps a loaded snapshot. The caller supplies the options the
  /// snapshot was built with (the defaults for snapshots from
  /// `wikimatch build-snapshot`); when the snapshot's meta section carries
  /// an options fingerprint (every snapshot written since fingerprints
  /// were added), a mismatch against the supplied options fails with
  /// InvalidArgument naming both sides — the unit-reuse guarantee is only
  /// relative to matching options, so a silent mismatch would corrupt
  /// results. Fingerprint-less (older) snapshots are trusted as before.
  static util::Result<IncrementalMatcher> FromSnapshot(
      store::Snapshot snapshot, match::PipelineOptions options = {});

  /// Movable (FromSnapshot returns by value), not copyable or assignable:
  /// the matcher owns the handle of a background reclaim task (shared
  /// thread pool, util/thread_pool.h) for retired generation state,
  /// waited on at destruction. Defined out of line where ReclaimerSlot is
  /// complete.
  IncrementalMatcher(IncrementalMatcher&&) noexcept;
  IncrementalMatcher& operator=(IncrementalMatcher&&) = delete;
  ~IncrementalMatcher();

  /// \brief Applies one batch: patches the corpus and dictionary in place,
  /// marks dirty units, realigns only those, and advances the generation.
  /// InvalidArgument on a malformed batch; any failure rolls the in-place
  /// patches back, so the matcher keeps serving its previous generation.
  util::Result<ApplyStats> Apply(const DeltaBatch& batch);

  const wiki::Corpus& corpus() const { return corpus_; }
  const match::TranslationDictionary& dictionary() const {
    return dictionary_;
  }
  const std::map<LanguagePair, match::PipelineResult>& results() const {
    return results_;
  }
  uint64_t generation() const { return meta_.generation; }
  const std::vector<store::DeltaRecord>& history() const {
    return meta_.history;
  }

  /// \brief Snapshot of the current state (corpus, dictionary, results,
  /// generation meta), ready for WriteSnapshotFile.
  store::Snapshot ToSnapshot() const;

 private:
  using TitleKey = std::pair<std::string, std::string>;  // (language, title)
  using UnitKey = std::pair<std::string, std::string>;   // (type_a, type_b)

  /// Everything outside a unit's own member infoboxes that its alignment
  /// reads (see file comment).
  struct UnitFootprint {
    std::set<TitleKey> titles;
    std::set<std::string> terms;  // lang_a components, pre-translation
  };

  static UnitFootprint ComputeFootprint(const wiki::Corpus& corpus,
                                        const std::string& lang_a,
                                        const std::string& type_a,
                                        const std::string& lang_b,
                                        const std::string& type_b);

  void RebuildFootprints();

  /// The previous generation's containers, bundled so their destruction
  /// (several ms of pure deallocation at corpus scale) can be handed to
  /// the shared thread pool instead of riding the Apply critical path.
  struct RetiredState;
  /// The reclaim task's pool handle plus the mutex that guards it,
  /// bundled behind a unique_ptr so the matcher stays movable (a
  /// util::Mutex member is not) and the thread-safety analysis can prove
  /// every wait/launch of the handle happens under the lock. Destruction
  /// waits on the handle; a reclaim still queued at that point is stolen
  /// and run by the destroying thread (tracked completion, never
  /// fire-and-forget).
  struct ReclaimerSlot;
  void ReclaimAsync(std::unique_ptr<RetiredState> retired);

  wiki::Corpus corpus_;
  match::TranslationDictionary dictionary_;
  std::map<LanguagePair, match::PipelineResult> results_;
  std::map<LanguagePair, std::map<UnitKey, UnitFootprint>> footprints_;
  match::PipelineOptions options_;
  store::SnapshotMeta meta_;
  std::unique_ptr<ReclaimerSlot> reclaimer_;
};

}  // namespace ingest
}  // namespace wikimatch

#endif  // WIKIMATCH_INGEST_INCREMENTAL_MATCHER_H_
