// Runtime lock-order deadlock detector (docs/ANALYSIS.md).
//
// Static analysis proves lock *discipline* (every GUARDED_BY access holds
// its mutex) but not lock *order* — two code paths each correct in
// isolation can still acquire the same two mutexes in opposite orders and
// deadlock only under the right interleaving. The detector closes that
// gap at runtime: every util::Mutex acquisition feeds a global
// acquisition-order graph (edge A->B = "some thread acquired B while
// holding A", with the backtrace of the first such acquisition), checked
// for cycles BEFORE blocking on the lock. A cycle is a potential deadlock
// even if this run's interleaving would have survived it; the process
// reports both acquisition stacks and aborts.
//
// Enabled by the WIKIMATCH_DEADLOCK_DEBUG CMake option, which compiles
// hooks into util::Mutex (src/util/mutex.h); tools/check.sh turns it on
// for the TSan stage. The engine itself (LockOrderRegistry) is always
// compiled and unit-testable without the build flag.

#ifndef WIKIMATCH_UTIL_DEADLOCK_H_
#define WIKIMATCH_UTIL_DEADLOCK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace wikimatch {
namespace util {

/// \brief Acquisition-order graph + per-thread held-lock stacks. Thread
/// safe; uses a raw std::mutex internally because it instruments
/// util::Mutex itself and must not recurse into the hooks.
class LockOrderRegistry {
 public:
  struct CycleReport {
    const void* acquiring = nullptr;  ///< the lock being acquired
    const void* holding = nullptr;    ///< the held lock it conflicts with
    /// Every lock on the existing acquiring->...->holding path.
    std::vector<const void*> path;
    std::string current_stack;  ///< this acquisition, symbolized
    std::string prior_stack;    ///< first acquisition of the path's first
                                ///< edge (the inverse ordering), symbolized

    /// \brief Human-readable multi-line report with both stacks.
    std::string Format() const;
  };

  /// \brief Records that thread `tid` is about to acquire `mu`. Returns a
  /// report if the new ordering edges would close a cycle (the caller
  /// decides whether to abort); otherwise records the edges and the held
  /// stack entry and returns nullopt.
  std::optional<CycleReport> NoteAcquire(uint64_t tid, const void* mu);

  /// \brief Records that thread `tid` released `mu` (most recent matching
  /// acquisition; out-of-order release is fine).
  void NoteRelease(uint64_t tid, const void* mu);

  /// \brief Drops every edge touching `mu` (its storage is being
  /// destroyed; the address may be reused by an unrelated mutex).
  void Forget(const void* mu);

  size_t NumEdges() const;

 private:
  struct Edge {
    std::vector<void*> stack;  ///< raw backtrace of the first acquisition
  };

  // True if `to` is reachable from `from` in the edge graph; fills `path`
  // (from ... to). Caller holds mu_.
  bool FindPath(const void* from, const void* to,
                std::vector<const void*>* path) const;

  mutable std::mutex mu_;
  std::map<const void*, std::map<const void*, Edge>> edges_;
  std::map<uint64_t, std::vector<const void*>> held_;
};

/// \brief The process-wide registry behind the util::Mutex hooks.
LockOrderRegistry& GlobalLockOrderRegistry();

/// \brief Stable id of the calling thread for NoteAcquire/NoteRelease.
uint64_t CurrentThreadId();

// util::Mutex hooks (compiled in under WIKIMATCH_DEADLOCK_DEBUG). OnLock
// runs BEFORE blocking on the lock so a genuine deadlock still reports;
// on a detected cycle it prints both stacks to stderr and aborts.
void DeadlockOnLock(const void* mu);
void DeadlockOnUnlock(const void* mu);
void DeadlockOnDestroy(const void* mu);

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_DEADLOCK_H_
