// Minimal parallel-for over an index range: fixed worker threads pulling
// indexes from an atomic counter. Used by the pipeline to align independent
// type pairs concurrently and by the aligner's similarity join to shard one
// type pair by group row; results are written to pre-sized slots so output
// order stays deterministic regardless of scheduling.
//
// Exception safety: a throw from `fn` no longer reaches std::terminate via
// the raw worker threads. The first exception (in completion order) is
// captured, remaining workers stop handing out new indexes, every worker is
// joined, and the exception is rethrown on the calling thread.

#ifndef WIKIMATCH_UTIL_PARALLEL_H_
#define WIKIMATCH_UTIL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wikimatch {
namespace util {

/// \brief Invokes `fn(i)` for every i in [0, n), using up to `threads`
/// worker threads (1 or 0 = run inline on the calling thread).
///
/// `fn` must be safe to call concurrently for distinct indexes. Blocks
/// until all invocations finish. If any invocation throws, the first
/// captured exception is rethrown on the calling thread after all workers
/// have joined; indexes not yet started when the exception is captured may
/// never run.
inline void ParallelFor(size_t n, size_t threads,
                        const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  threads = std::min(threads, n);
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&]() {
      while (!failed.load(std::memory_order_relaxed)) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

/// \brief A reasonable default worker count.
inline size_t DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_PARALLEL_H_
