// Minimal parallel-for over an index range: fixed worker threads pulling
// indexes from an atomic counter. Used by the pipeline to align independent
// type pairs concurrently and by the aligner's similarity join to shard one
// type pair by group row; results are written to pre-sized slots so output
// order stays deterministic regardless of scheduling.
//
// Exception safety: a throw from `fn` no longer reaches std::terminate via
// the raw worker threads. The first exception (in completion order) is
// captured, remaining workers stop handing out new indexes, every worker is
// joined, and the exception is rethrown on the calling thread.

#ifndef WIKIMATCH_UTIL_PARALLEL_H_
#define WIKIMATCH_UTIL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace wikimatch {
namespace util {

/// \brief Invokes `fn(i)` for every i in [0, n), using up to `threads`
/// worker threads (1 or 0 = run inline on the calling thread).
///
/// `fn` must be safe to call concurrently for distinct indexes. Blocks
/// until all invocations finish. If any invocation throws, the first
/// captured exception is rethrown on the calling thread after all workers
/// have joined; indexes not yet started when the exception is captured may
/// never run.
inline void ParallelFor(size_t n, size_t threads,
                        const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  threads = std::min(threads, n);
  // The error slot is shared worker state; it lives in an annotated bundle
  // so the thread-safety analysis can prove every access is under its
  // mutex (join() provides the final happens-before, but the locked read
  // below keeps the proof local and costs nothing after the barrier).
  struct ErrorSlot {
    Mutex mu;
    std::exception_ptr first WIKIMATCH_GUARDED_BY(mu);
  } error;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&]() {
      while (!failed.load(std::memory_order_relaxed)) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          MutexLock lock(error.mu);
          if (error.first == nullptr) {
            error.first = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  std::exception_ptr first_error;
  {
    MutexLock lock(error.mu);
    first_error = error.first;
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

/// \brief A reasonable default worker count.
inline size_t DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_PARALLEL_H_
