// util::ParallelFor — the project's classic parallel-loop entry point,
// now a thin shim over the shared work-stealing pool (util/thread_pool.h)
// instead of spawning fresh std::threads per call. The contract is
// unchanged: fn(i) runs exactly once for every i in [0, n), results go to
// pre-sized slots indexed by i so output order is deterministic at any
// thread count, and the first exception (in completion order) is rethrown
// on the calling thread after every participant drained.
//
// What changed underneath: `threads` no longer sets how many OS threads
// get created — it caps how many pool workers may cooperate on this loop
// (calling thread included). Nested ParallelFor calls therefore share one
// core budget: the pipeline looping over type pairs while each pair's
// aligner loops over group rows peaks at pool-size live workers, where
// the spawn-per-call design peaked at the product of the two knobs.

#ifndef WIKIMATCH_UTIL_PARALLEL_H_
#define WIKIMATCH_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "util/thread_pool.h"

namespace wikimatch {
namespace util {

/// \brief Invokes `fn(i)` for every i in [0, n), cooperating with up to
/// `threads` workers of the shared pool (1 or 0 = run inline on the
/// calling thread, with no pool traffic and no exception translation).
///
/// `fn` must be safe to call concurrently for distinct indexes. Blocks
/// until all invocations finish. If any invocation throws, the first
/// captured exception is rethrown on the calling thread after all workers
/// have drained; indexes not yet started when the exception was captured
/// may never run.
inline void ParallelFor(size_t n, size_t threads,
                        const std::function<void(size_t)>& fn) {
  thread_pool_for(n, threads, fn);
}

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_PARALLEL_H_
