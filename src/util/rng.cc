#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wikimatch {
namespace util {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(this);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Floating-point edge: land on the last index.
}

Rng Rng::Fork(uint64_t stream_id) {
  uint64_t mix = NextU64() ^ (stream_id * 0xA24BAED4963EE407ULL + 1);
  return Rng(mix);
}

ZipfSampler::ZipfSampler(uint64_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -exponent);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint64_t rank) const {
  assert(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace util
}  // namespace wikimatch
