#include "util/deadlock.h"

#include <execinfo.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <thread>

namespace wikimatch {
namespace util {

namespace {

constexpr int kMaxFrames = 48;

std::vector<void*> CaptureStack() {
  void* frames[kMaxFrames];
  int n = ::backtrace(frames, kMaxFrames);
  return std::vector<void*>(frames, frames + (n > 0 ? n : 0));
}

std::string Symbolize(const std::vector<void*>& stack) {
  if (stack.empty()) return "    <no frames captured>\n";
  char** symbols =
      ::backtrace_symbols(stack.data(), static_cast<int>(stack.size()));
  std::ostringstream out;
  for (size_t i = 0; i < stack.size(); ++i) {
    out << "    #" << i << " "
        << (symbols != nullptr ? symbols[i] : "<unknown>") << "\n";
  }
  std::free(symbols);  // backtrace_symbols hands ownership of one malloc block
  return out.str();
}

}  // namespace

std::string LockOrderRegistry::CycleReport::Format() const {
  std::ostringstream out;
  out << "wikimatch deadlock detector: lock-order cycle\n";
  out << "  acquiring mutex " << acquiring << " while holding " << holding
      << "\n";
  out << "  existing acquisition order:";
  for (const void* p : path) out << " " << p << " ->";
  out << " " << acquiring << " (cycle)\n";
  out << "  --- this acquisition (" << holding << " then " << acquiring
      << ") ---\n"
      << current_stack;
  out << "  --- prior conflicting acquisition (" << acquiring << " then "
      << (path.size() > 1 ? path[1] : holding) << ") ---\n"
      << prior_stack;
  return out.str();
}

bool LockOrderRegistry::FindPath(const void* from, const void* to,
                                 std::vector<const void*>* path) const {
  path->push_back(from);
  if (from == to) return true;
  auto it = edges_.find(from);
  if (it != edges_.end()) {
    for (const auto& [next, edge] : it->second) {
      // Ordered map: the DFS (and thus the reported path) is
      // deterministic for a given edge set.
      bool on_path = false;
      for (const void* seen : *path) {
        if (seen == next) on_path = true;
      }
      if (on_path) continue;
      if (FindPath(next, to, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

std::optional<LockOrderRegistry::CycleReport> LockOrderRegistry::NoteAcquire(
    uint64_t tid, const void* mu) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const void*>& held = held_[tid];
  std::vector<void*> stack;  // captured lazily, once, if needed
  for (const void* h : held) {
    if (h == mu) continue;  // recursive acquisition: not an order problem
    auto row = edges_.find(h);
    if (row != edges_.end() && row->second.count(mu) > 0) continue;
    // New ordering h -> mu: closing it into a cycle means mu -> ... -> h
    // already exists.
    std::vector<const void*> path;
    if (FindPath(mu, h, &path)) {
      CycleReport report;
      report.acquiring = mu;
      report.holding = h;
      report.path = path;
      report.current_stack = Symbolize(CaptureStack());
      const Edge& prior =
          edges_[mu].at(path.size() > 1 ? path[1] : path.back());
      report.prior_stack = Symbolize(prior.stack);
      return report;
    }
    if (stack.empty()) stack = CaptureStack();
    edges_[h][mu].stack = stack;
  }
  held.push_back(mu);
  return std::nullopt;
}

void LockOrderRegistry::NoteRelease(uint64_t tid, const void* mu) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(tid);
  if (it == held_.end()) return;
  std::vector<const void*>& held = it->second;
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1] == mu) {
      held.erase(held.begin() + static_cast<long>(i - 1));
      break;
    }
  }
  if (held.empty()) held_.erase(it);
}

void LockOrderRegistry::Forget(const void* mu) {
  std::lock_guard<std::mutex> lock(mu_);
  edges_.erase(mu);
  for (auto& [from, row] : edges_) row.erase(mu);
}

size_t LockOrderRegistry::NumEdges() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [from, row] : edges_) n += row.size();
  return n;
}

LockOrderRegistry& GlobalLockOrderRegistry() {
  static LockOrderRegistry* registry = new LockOrderRegistry();  // NOLINT(naked-new) — leaked singleton: outlives static destructors of annotated mutexes
  return *registry;
}

uint64_t CurrentThreadId() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

void DeadlockOnLock(const void* mu) {
  auto report = GlobalLockOrderRegistry().NoteAcquire(CurrentThreadId(), mu);
  if (report.has_value()) {
    std::string text = report->Format();
    std::fputs(text.c_str(), stderr);
    std::fflush(stderr);
    std::abort();
  }
}

void DeadlockOnUnlock(const void* mu) {
  GlobalLockOrderRegistry().NoteRelease(CurrentThreadId(), mu);
}

void DeadlockOnDestroy(const void* mu) {
  GlobalLockOrderRegistry().Forget(mu);
}

}  // namespace util
}  // namespace wikimatch
