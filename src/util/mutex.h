// Annotated mutex wrappers: util::Mutex is std::mutex declared as a Clang
// thread-safety capability, util::MutexLock is the scoped acquirer. Using
// these (instead of raw std::mutex / std::lock_guard) is what lets a Clang
// build with -Werror=thread-safety prove lock discipline over every
// WIKIMATCH_GUARDED_BY field — see util/thread_annotations.h and
// docs/ANALYSIS.md. tools/lint.sh rejects raw std::mutex outside util/.
//
// The wrappers add no state and no virtual calls; under GCC the
// annotations vanish and the generated code is exactly a std::mutex and a
// std::lock_guard.

#ifndef WIKIMATCH_UTIL_MUTEX_H_
#define WIKIMATCH_UTIL_MUTEX_H_

#include <mutex>

#include "util/thread_annotations.h"

namespace wikimatch {
namespace util {

/// \brief A std::mutex declared as a thread-safety capability.
class WIKIMATCH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WIKIMATCH_ACQUIRE() { mu_.lock(); }
  void Unlock() WIKIMATCH_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// \brief RAII lock over a util::Mutex (the std::lock_guard shape).
class WIKIMATCH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WIKIMATCH_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() WIKIMATCH_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_MUTEX_H_
