// Annotated mutex wrappers: util::Mutex is std::mutex declared as a Clang
// thread-safety capability, util::MutexLock is the scoped acquirer, and
// util::CondVar is the matching condition variable. Using these (instead
// of raw std::mutex / std::lock_guard / std::condition_variable) is what
// lets a Clang build with -Werror=thread-safety prove lock discipline over
// every WIKIMATCH_GUARDED_BY field — see util/thread_annotations.h and
// docs/ANALYSIS.md. wikimatch-lint rejects raw std::mutex outside util/.
//
// The wrappers add no state and no virtual calls; under GCC the
// annotations vanish and the generated code is exactly a std::mutex, a
// std::lock_guard, and a std::condition_variable_any.

#ifndef WIKIMATCH_UTIL_MUTEX_H_
#define WIKIMATCH_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

// WIKIMATCH_DEADLOCK_DEBUG (CMake option) compiles lock-order tracking
// into every util::Mutex: acquisitions feed a global acquisition-order
// graph and a detected order cycle aborts with both stacks — see
// util/deadlock.h and docs/ANALYSIS.md. Off by default: the hooks
// serialize on the registry and are strictly a debug/CI mode.
#if defined(WIKIMATCH_DEADLOCK_DEBUG)
#include "util/deadlock.h"
#define WIKIMATCH_DEADLOCK_ON_LOCK(mu) ::wikimatch::util::DeadlockOnLock(mu)
#define WIKIMATCH_DEADLOCK_ON_UNLOCK(mu) \
  ::wikimatch::util::DeadlockOnUnlock(mu)
#define WIKIMATCH_DEADLOCK_ON_DESTROY(mu) \
  ::wikimatch::util::DeadlockOnDestroy(mu)
#else
#define WIKIMATCH_DEADLOCK_ON_LOCK(mu) ((void)0)
#define WIKIMATCH_DEADLOCK_ON_UNLOCK(mu) ((void)0)
#define WIKIMATCH_DEADLOCK_ON_DESTROY(mu) ((void)0)
#endif

namespace wikimatch {
namespace util {

/// \brief A std::mutex declared as a thread-safety capability.
///
/// The lowercase lock()/unlock() aliases make it a BasicLockable so
/// util::CondVar (condition_variable_any) can release and reacquire it
/// inside Wait; call sites should use the capitalized names (or better,
/// util::MutexLock) so intent stays greppable.
class WIKIMATCH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() { WIKIMATCH_DEADLOCK_ON_DESTROY(this); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The lock-order hook runs BEFORE blocking so a genuine deadlock is
  // still diagnosed (the cycle is reported instead of hanging).
  void Lock() WIKIMATCH_ACQUIRE() {
    WIKIMATCH_DEADLOCK_ON_LOCK(this);
    mu_.lock();
  }
  void Unlock() WIKIMATCH_RELEASE() {
    WIKIMATCH_DEADLOCK_ON_UNLOCK(this);
    mu_.unlock();
  }

  // BasicLockable interface for std::condition_variable_any. Exempt from
  // the analysis: CondVar::Wait calls them through std:: code the
  // analysis cannot see, so annotating them would only produce false
  // positives at the Wait call site. The deadlock hooks still run here so
  // CondVar's release/reacquire keeps the held-lock stacks balanced.
  void lock() WIKIMATCH_NO_THREAD_SAFETY_ANALYSIS {
    WIKIMATCH_DEADLOCK_ON_LOCK(this);
    mu_.lock();
  }
  void unlock() WIKIMATCH_NO_THREAD_SAFETY_ANALYSIS {
    WIKIMATCH_DEADLOCK_ON_UNLOCK(this);
    mu_.unlock();
  }

 private:
  std::mutex mu_;
};

/// \brief Condition variable over util::Mutex. Wait must be called with
/// the mutex held (it is released while blocked and reacquired before
/// returning, like std::condition_variable::wait).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Blocks until notified (spurious wakeups possible — always
  /// re-check the predicate in a loop).
  void Wait(Mutex& mu) WIKIMATCH_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// \brief RAII lock over a util::Mutex (the std::lock_guard shape).
class WIKIMATCH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WIKIMATCH_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() WIKIMATCH_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_MUTEX_H_
