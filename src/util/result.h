// Result<T>: value-or-Status, the companion of Status for functions that
// produce a value on success (Arrow's arrow::Result idiom).

#ifndef WIKIMATCH_UTIL_RESULT_H_
#define WIKIMATCH_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace wikimatch {
namespace util {

/// \brief Holds either a value of type T or an error Status.
///
/// Construction from a T yields the success state; construction from a
/// non-OK Status yields the error state. Constructing from an OK Status is a
/// programming error (asserted in debug builds, converted to Internal error
/// otherwise).
///
/// [[nodiscard]] like Status: a dropped Result silently loses both the
/// value and the error, so ignoring one fails the build under
/// -Werror=unused-result (docs/ANALYSIS.md).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok());
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// \brief True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The status: OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \brief Const access to the value. Requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }

  /// \brief Mutable access to the value. Requires ok().
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }

  /// \brief Moves the value out. Requires ok().
  T ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// \brief The value, or `fallback` when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace util
}  // namespace wikimatch

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
/// The two-step concat is required so __LINE__ expands to its value and
/// several uses can share one scope.
#define WIKIMATCH_INTERNAL_CONCAT2(a, b) a##b
#define WIKIMATCH_INTERNAL_CONCAT(a, b) WIKIMATCH_INTERNAL_CONCAT2(a, b)
#define WIKIMATCH_ASSIGN_OR_RETURN(lhs, rexpr) \
  WIKIMATCH_ASSIGN_OR_RETURN_IMPL(             \
      WIKIMATCH_INTERNAL_CONCAT(_res_, __LINE__), lhs, rexpr)
#define WIKIMATCH_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                                    \
  if (!result.ok()) return result.status();                 \
  lhs = std::move(result).ValueOrDie()

#endif  // WIKIMATCH_UTIL_RESULT_H_
