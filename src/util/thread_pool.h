// The process-wide concurrency substrate: one fixed set of worker threads
// that every parallel loop and background task in the system shares, so
// nested parallelism (the pipeline aligning type pairs in parallel while
// each pair's similarity join shards by row) cooperates on a single core
// budget instead of multiplying threads — the pre-pool ParallelFor spawned
// fresh std::threads per call, so a P-pair run at T threads could put T²
// workers on the box.
//
// Shape (after the yocto-gl `concurrent` namespace): a lazily created
// global pool sized by DefaultThreads(), `thread_pool_for(n, fn)` for
// blocking parallel loops, `thread_pool_async(fn)` for one-shot background
// tasks with a waitable handle, plus injectable instances
// (ScopedThreadPoolOverride) so tests can pin the pool size or observe it.
//
// Scheduling model — cooperative work stealing at two granularities:
//
//   * A parallel loop (`For`) publishes a ForJob — an atomic index counter
//     over [0, n) — and the *calling thread immediately starts claiming
//     indexes itself*. Idle pool workers attach to any published job and
//     claim indexes from the same counter (that's the steal: work a caller
//     published is drained by whoever is free, index by index, so skewed
//     per-index costs balance automatically). Because the caller always
//     participates, a `For` issued from inside a pool task needs no free
//     worker to make progress: nesting can never deadlock, and inner loops
//     borrow whatever workers the outer level isn't using instead of
//     spawning new ones. Total live pool threads never exceeds the pool
//     size, at any nesting depth.
//
//   * An async task (`Async`) enters a FIFO queue that idle workers drain.
//     TaskHandle::Wait on a task that has not started yet *steals it* and
//     runs it on the waiting thread — waiting on a queued task behind a
//     saturated pool completes immediately instead of deadlocking.
//
// Determinism: `For(n, ...)` invokes fn(i) exactly once per index and
// blocks until every invocation finished; callers write results to
// pre-sized slots indexed by i (the ParallelFor contract), so output is
// byte-identical at any pool size and any thread count.
//
// Exceptions: the first exception thrown by any fn(i) (in completion
// order) is captured, remaining indexes stop being handed out, every
// participant drains, and the exception is rethrown on the calling thread
// — the same contract util::ParallelFor has always had. Async exceptions
// are captured into the handle (TaskHandle::error after Wait).

#ifndef WIKIMATCH_UTIL_THREAD_POOL_H_
#define WIKIMATCH_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wikimatch {
namespace util {

/// \brief Worker count for a default-sized pool: the WIKIMATCH_THREADS
/// environment variable if set to a positive integer, else the cgroup
/// v1/v2 cpu quota ceiling when the process runs in a quota-limited
/// container, else hardware_concurrency() (4 if unknown). Re-reads its
/// sources on every call (it sits on no hot path) so tests can vary the
/// environment.
size_t DefaultThreads();

class ThreadPool;

/// \brief Waitable handle to a task submitted with ThreadPool::Async /
/// thread_pool_async. Copyable (shared state); default-constructed
/// handles are empty and Wait on them is a no-op.
class TaskHandle {
 public:
  TaskHandle() = default;

  /// \brief True when the handle refers to a submitted task.
  bool valid() const { return state_ != nullptr; }

  /// \brief Blocks until the task has run. If the task is still queued
  /// (no worker picked it up yet), it is stolen and run on *this* thread,
  /// so waiting behind a saturated pool cannot deadlock. Exceptions the
  /// task threw are captured, not rethrown — check error().
  void Wait();

  /// \brief After Wait: the exception the task threw, or nullptr.
  std::exception_ptr error() const;

 private:
  friend class ThreadPool;
  struct State;
  explicit TaskHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// \brief A fixed-size work-stealing worker pool. One global instance
/// (ThreadPool::Global) is the system-wide substrate; tests construct
/// their own and inject them with ScopedThreadPoolOverride.
class ThreadPool {
 public:
  /// \brief Starts `num_threads` workers (0 = DefaultThreads(); clamped
  /// to at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// \brief Joins the workers. Queued async tasks that no worker started
  /// are run on the destroying thread first, so every TaskHandle issued
  /// by this pool completes. Must not race an in-flight For().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Number of worker threads (fixed for the pool's lifetime).
  size_t size() const { return workers_.size(); }

  /// \brief Invokes `fn(i)` exactly once for every i in [0, n), using the
  /// calling thread plus up to `max_workers - 1` pool workers, and blocks
  /// until all invocations finished. `max_workers` is the cap on total
  /// concurrent participants — the ParallelFor `threads` knob — so
  /// `max_workers <= 1` (or n == 1) runs inline with no pool traffic and
  /// no exception translation. `fn` must be safe to call concurrently for
  /// distinct indexes. First exception is rethrown on the calling thread
  /// after all participants drained; indexes not yet started when it was
  /// captured may never run. Reentrant: fn may itself call For/Async on
  /// the same pool.
  void For(size_t n, size_t max_workers, const std::function<void(size_t)>& fn);

  /// \brief Enqueues a one-shot task for any idle worker and returns a
  /// waitable handle. The task's captured state is released as soon as it
  /// finishes running (not when the last handle dies), so handing a
  /// container to Async is a way to deallocate it off-thread.
  TaskHandle Async(std::function<void()> fn);

  /// \brief The lazily created global pool (sized by SetDefaultPoolSize
  /// if that was called before first use, else DefaultThreads()), unless
  /// a ScopedThreadPoolOverride is active, in which case the override.
  static ThreadPool* Global();

  /// \brief Sizes the global pool created by the *first* Global() call;
  /// no effect once it exists (the CLI calls this right after flag
  /// parsing, before any parallel work).
  static void SetDefaultPoolSize(size_t num_threads);

 private:
  friend class TaskHandle;

  // One parallel loop in flight: an atomic claim counter over [0, n) plus
  // the bookkeeping the pool needs to know when every claimed index has
  // retired. Stack-allocated in For(); `attached` (guarded by the pool
  // mutex) keeps it alive — For() deregisters the job and then waits for
  // attached == 0 before returning, so no worker can hold a dangling
  // pointer.
  struct ForJob {
    ForJob(ThreadPool* p, size_t count, const std::function<void(size_t)>* f,
           size_t helpers)
        : pool(p), n(count), fn(f), max_helpers(helpers) {}

    ThreadPool* const pool;
    const size_t n;
    const std::function<void(size_t)>* const fn;
    const size_t max_helpers;  ///< cap on attached pool workers
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    size_t attached WIKIMATCH_GUARDED_BY(pool->mu_) = 0;
    Mutex error_mu;
    std::exception_ptr first_error WIKIMATCH_GUARDED_BY(error_mu);
  };

  void WorkerLoop();
  // Claims indexes from `job` until it is exhausted or failed; captures
  // the first exception into the job. Runs on callers and workers alike.
  static void RunForLoop(ForJob* job);
  static void RunAsyncTask(TaskHandle::State* task);
  // TaskHandle::Wait's steal path: if `state` is still queued, dequeues
  // and runs it on the calling thread. False if a worker already took it.
  bool StealQueuedTask(const std::shared_ptr<TaskHandle::State>& state);
  // Next job a worker should help with, or nullptr. Rotates across
  // published jobs so workers spread instead of piling onto the first.
  // `ForJob::attached` is declared guarded by job->pool->mu_, which is
  // always this->mu_ (jobs are only published to their own pool), but the
  // analysis cannot prove that alias — so this and the attach/detach
  // helpers require mu_ at the call site and opt their bodies out
  // (docs/ANALYSIS.md escape-hatch rule).
  ForJob* PickJob() WIKIMATCH_REQUIRES(mu_) WIKIMATCH_NO_THREAD_SAFETY_ANALYSIS;
  void AttachWorker(ForJob* job)
      WIKIMATCH_REQUIRES(mu_) WIKIMATCH_NO_THREAD_SAFETY_ANALYSIS;
  // True when this detach was the last — For()'s completion condition.
  bool DetachWorker(ForJob* job)
      WIKIMATCH_REQUIRES(mu_) WIKIMATCH_NO_THREAD_SAFETY_ANALYSIS;
  bool HasAttachedWorkers(const ForJob* job) const
      WIKIMATCH_REQUIRES(mu_) WIKIMATCH_NO_THREAD_SAFETY_ANALYSIS;

  Mutex mu_;
  CondVar work_cv_;  ///< workers: "a job or task may be available"
  CondVar done_cv_;  ///< For() callers: "a worker detached from a job"
  std::vector<ForJob*> jobs_ WIKIMATCH_GUARDED_BY(mu_);
  std::deque<std::shared_ptr<TaskHandle::State>> async_queue_
      WIKIMATCH_GUARDED_BY(mu_);
  size_t pick_cursor_ WIKIMATCH_GUARDED_BY(mu_) = 0;
  bool stop_ WIKIMATCH_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  ///< immutable after construction
};

/// \brief Replaces the pool Global() returns for the lifetime of this
/// object (tests: pin the pool size, count its threads, saturate it).
/// Not itself thread-safe — install before spawning work, from one
/// thread. Nests: restores the previous override on destruction.
class ScopedThreadPoolOverride {
 public:
  explicit ScopedThreadPoolOverride(ThreadPool* pool);
  ~ScopedThreadPoolOverride();

  ScopedThreadPoolOverride(const ScopedThreadPoolOverride&) = delete;
  ScopedThreadPoolOverride& operator=(const ScopedThreadPoolOverride&) =
      delete;

 private:
  ThreadPool* previous_;
};

/// \brief Parallel loop over [0, n) on the global pool, capped at
/// `threads` total participants (calling thread included). `threads <= 1`
/// or `n == 1` runs inline without instantiating the global pool, so
/// single-threaded configurations never pay for worker threads.
inline void thread_pool_for(size_t n, size_t threads,
                            const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::Global()->For(n, threads, fn);
}

/// \brief Parallel loop over [0, n) on the global pool, using every
/// worker plus the calling thread.
inline void thread_pool_for(size_t n, const std::function<void(size_t)>& fn) {
  ThreadPool* pool = ThreadPool::Global();
  pool->For(n, pool->size() + 1, fn);
}

/// \brief One-shot background task on the global pool.
inline TaskHandle thread_pool_async(std::function<void()> fn) {
  return ThreadPool::Global()->Async(std::move(fn));
}

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_THREAD_POOL_H_
