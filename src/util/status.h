// Status: error-handling primitive in the Arrow/RocksDB idiom.
//
// Library code in this project does not throw exceptions across public API
// boundaries. Operations that can fail return a Status (or a Result<T>, see
// result.h) which callers must inspect.

#ifndef WIKIMATCH_UTIL_STATUS_H_
#define WIKIMATCH_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace wikimatch {
namespace util {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kParseError = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// The OK state is represented without allocation; error states carry a
/// heap-allocated (code, message) record. Status is cheaply movable and
/// copyable.
///
/// The class is [[nodiscard]]: every function returning a Status by value
/// is a contract the caller must inspect, and ignoring one is a
/// compile-time error under -Werror=unused-result (set project-wide by
/// CMakeLists.txt). Intentional discards — rare, e.g. a best-effort
/// cleanup whose failure has no fallback — must be spelled
/// `(void)DoCleanup();` so they read as decisions, not accidents
/// (docs/ANALYSIS.md).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  /// \name Factory helpers, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// @}

  /// \brief True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }

  /// \brief The status code; kOk for success.
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// \brief The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy of this status with extra context prepended.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<Rep> rep_;  // nullptr <=> OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace util
}  // namespace wikimatch

/// Propagates an error Status from the current function.
#define WIKIMATCH_RETURN_NOT_OK(expr)                  \
  do {                                                 \
    ::wikimatch::util::Status _st = (expr);            \
    if (!_st.ok()) return _st;                         \
  } while (false)

#endif  // WIKIMATCH_UTIL_STATUS_H_
