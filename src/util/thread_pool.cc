#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>

namespace wikimatch {
namespace util {
namespace {

// Reads a single long from a one-value file; false on any failure.
bool ReadLongFile(const char* path, long* out) {
  std::ifstream f(path);
  long value = 0;
  if (!(f >> value)) return false;
  *out = value;
  return true;
}

// Worker-thread ceiling implied by the container's cpu quota, or 0 when
// the process is not quota-limited (or no cgroup files are readable).
// quota/period rounds up: a 2.5-cpu quota gets 3 workers.
size_t CgroupCpuQuotaThreads() {
  // cgroup v2: /sys/fs/cgroup/cpu.max holds "<quota|max> <period>".
  if (std::ifstream f("/sys/fs/cgroup/cpu.max"); f) {
    std::string quota_str;
    long period = 0;
    if ((f >> quota_str >> period) && quota_str != "max" && period > 0) {
      long quota = std::strtol(quota_str.c_str(), nullptr, 10);
      if (quota > 0) {
        return static_cast<size_t>((quota + period - 1) / period);
      }
    }
  }
  // cgroup v1: quota and period in separate files; quota -1 = unlimited.
  long quota = 0;
  long period = 0;
  if (ReadLongFile("/sys/fs/cgroup/cpu/cpu.cfs_quota_us", &quota) &&
      ReadLongFile("/sys/fs/cgroup/cpu/cpu.cfs_period_us", &period) &&
      quota > 0 && period > 0) {
    return static_cast<size_t>((quota + period - 1) / period);
  }
  return 0;
}

// The override installed by ScopedThreadPoolOverride, and the size hint
// consumed by the first Global() call. Atomics, not mutex-guarded: both
// are written from single-threaded setup code (test fixtures, CLI flag
// parsing) and only ever read afterwards.
std::atomic<ThreadPool*> g_pool_override{nullptr};
std::atomic<size_t> g_default_pool_size{0};

}  // namespace

size_t DefaultThreads() {
  if (const char* env = std::getenv("WIKIMATCH_THREADS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<size_t>(value);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  size_t threads = hw == 0 ? 4 : hw;
  size_t quota = CgroupCpuQuotaThreads();
  if (quota > 0 && quota < threads) threads = quota;
  return threads;
}

// ---------------------------------------------------------------- TaskHandle

struct TaskHandle::State {
  ThreadPool* pool = nullptr;  ///< for the Wait steal path
  // Owned by whoever dequeued the task (worker, stealing waiter, or the
  // pool destructor) — exactly one runner, handed off under the pool
  // mutex, so no guard is needed. Cleared as soon as the task ran so its
  // captures are released even while handles remain.
  std::function<void()> fn;
  Mutex mu;
  CondVar cv;
  bool done WIKIMATCH_GUARDED_BY(mu) = false;
  std::exception_ptr err WIKIMATCH_GUARDED_BY(mu);
};

void TaskHandle::Wait() {
  if (state_ == nullptr) return;
  {
    // Checking done first keeps Wait safe after the pool was destroyed
    // (the destructor completes every task, so by then done is set and
    // the pool pointer below is never touched).
    MutexLock lock(state_->mu);
    if (state_->done) return;
  }
  // Still queued? Run it here instead of waiting for a worker: a waiter
  // behind a saturated (or single-thread) pool must not deadlock.
  if (state_->pool != nullptr && state_->pool->StealQueuedTask(state_)) {
    return;
  }
  MutexLock lock(state_->mu);
  while (!state_->done) state_->cv.Wait(state_->mu);
}

std::exception_ptr TaskHandle::error() const {
  if (state_ == nullptr) return nullptr;
  MutexLock lock(state_->mu);
  return state_->err;
}

// ---------------------------------------------------------------- ThreadPool

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = num_threads == 0 ? DefaultThreads() : num_threads;
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  std::deque<std::shared_ptr<TaskHandle::State>> leftover;
  {
    MutexLock lock(mu_);
    stop_ = true;
    leftover.swap(async_queue_);
  }
  work_cv_.NotifyAll();
  for (auto& worker : workers_) worker.join();
  // Tasks no worker started still complete — on this thread — so every
  // TaskHandle this pool issued can be waited on after destruction.
  for (auto& task : leftover) RunAsyncTask(task.get());
}

void ThreadPool::For(size_t n, size_t max_workers,
                     const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // The inline fast path: no pool traffic, and (matching the historical
  // ParallelFor contract) an exception from fn propagates directly.
  if (max_workers <= 1 || n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t helpers = std::min({max_workers - 1, n - 1, workers_.size()});
  ForJob job(this, n, &fn, helpers);
  {
    MutexLock lock(mu_);
    jobs_.push_back(&job);
  }
  work_cv_.NotifyAll();
  // The caller claims indexes too — this is what makes nested For calls
  // (a pool worker publishing a job) deadlock-free: progress never
  // requires a free worker.
  RunForLoop(&job);
  {
    MutexLock lock(mu_);
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
    // After the erase no new worker can attach; drain the ones still
    // running claimed indexes. attached == 0 is also the lifetime fence:
    // past it no worker holds a pointer to this stack frame.
    while (HasAttachedWorkers(&job)) done_cv_.Wait(mu_);
  }
  std::exception_ptr first_error;
  {
    MutexLock lock(job.error_mu);
    first_error = job.first_error;
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

TaskHandle ThreadPool::Async(std::function<void()> fn) {
  auto state = std::make_shared<TaskHandle::State>();
  state->pool = this;
  state->fn = std::move(fn);
  {
    MutexLock lock(mu_);
    async_queue_.push_back(state);
  }
  work_cv_.NotifyOne();
  return TaskHandle(std::move(state));
}

ThreadPool* ThreadPool::Global() {
  ThreadPool* override_pool = g_pool_override.load(std::memory_order_acquire);
  if (override_pool != nullptr) return override_pool;
  static ThreadPool pool(g_default_pool_size.load(std::memory_order_relaxed));
  return &pool;
}

void ThreadPool::SetDefaultPoolSize(size_t num_threads) {
  g_default_pool_size.store(num_threads, std::memory_order_relaxed);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    ForJob* job = nullptr;
    std::shared_ptr<TaskHandle::State> task;
    {
      MutexLock lock(mu_);
      for (;;) {
        if (stop_) return;
        job = PickJob();
        if (job != nullptr) {
          AttachWorker(job);
          break;
        }
        if (!async_queue_.empty()) {
          task = std::move(async_queue_.front());
          async_queue_.pop_front();
          break;
        }
        work_cv_.Wait(mu_);
      }
    }
    if (job != nullptr) {
      RunForLoop(job);
      MutexLock lock(mu_);
      if (DetachWorker(job)) done_cv_.NotifyAll();
    } else {
      RunAsyncTask(task.get());
    }
  }
}

void ThreadPool::RunForLoop(ForJob* job) {
  while (!job->failed.load(std::memory_order_relaxed)) {
    size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) break;
    try {
      (*job->fn)(i);
    } catch (...) {
      MutexLock lock(job->error_mu);
      if (job->first_error == nullptr) {
        job->first_error = std::current_exception();
      }
      job->failed.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::RunAsyncTask(TaskHandle::State* task) {
  std::exception_ptr err;
  try {
    task->fn();
  } catch (...) {
    err = std::current_exception();
  }
  task->fn = nullptr;  // release captures now, not at last-handle death
  MutexLock lock(task->mu);
  task->done = true;
  task->err = err;
  task->cv.NotifyAll();
}

bool ThreadPool::StealQueuedTask(
    const std::shared_ptr<TaskHandle::State>& state) {
  {
    MutexLock lock(mu_);
    auto it = std::find(async_queue_.begin(), async_queue_.end(), state);
    if (it == async_queue_.end()) return false;
    async_queue_.erase(it);
  }
  RunAsyncTask(state.get());
  return true;
}

ThreadPool::ForJob* ThreadPool::PickJob() {
  const size_t count = jobs_.size();
  for (size_t k = 0; k < count; ++k) {
    ForJob* job = jobs_[(pick_cursor_ + k) % count];
    if (job->failed.load(std::memory_order_relaxed)) continue;
    if (job->next.load(std::memory_order_relaxed) >= job->n) continue;
    if (job->attached >= job->max_helpers) continue;
    pick_cursor_ = (pick_cursor_ + k + 1) % count;
    return job;
  }
  return nullptr;
}

void ThreadPool::AttachWorker(ForJob* job) { ++job->attached; }

bool ThreadPool::DetachWorker(ForJob* job) { return --job->attached == 0; }

bool ThreadPool::HasAttachedWorkers(const ForJob* job) const {
  return job->attached > 0;
}

ScopedThreadPoolOverride::ScopedThreadPoolOverride(ThreadPool* pool)
    : previous_(g_pool_override.exchange(pool, std::memory_order_acq_rel)) {}

ScopedThreadPoolOverride::~ScopedThreadPoolOverride() {
  g_pool_override.store(previous_, std::memory_order_release);
}

}  // namespace util
}  // namespace wikimatch
