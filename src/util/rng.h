// Deterministic pseudo-random number generation.
//
// All randomness in the project flows through Rng so that corpus generation,
// experiments, and tests are bit-reproducible given a seed. The core
// generator is xoshiro256**, seeded via SplitMix64 (the recommended seeding
// procedure for the xoshiro family).

#ifndef WIKIMATCH_UTIL_RNG_H_
#define WIKIMATCH_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wikimatch {
namespace util {

/// \brief SplitMix64 step: advances `state` and returns the next output.
///
/// Exposed for seeding and for cheap one-shot hashing of identifiers into
/// per-object seeds.
uint64_t SplitMix64(uint64_t* state);

/// \brief Deterministic xoshiro256** generator.
class Rng {
 public:
  /// Constructs a generator whose entire stream is a function of `seed`.
  explicit Rng(uint64_t seed);

  /// \brief Next 64 uniform random bits.
  uint64_t NextU64();

  /// \brief Uniform integer in [0, bound). `bound` must be > 0.
  ///
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// \brief Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// \brief Standard normal variate (Box-Muller; consumes two doubles).
  double NextGaussian();

  /// \brief Zipf-distributed rank in [0, n) with exponent `s`.
  ///
  /// Rank 0 is the most probable. Implemented via inverse-CDF over the
  /// precomputed harmonic weights when n is small; callers with large n
  /// should prefer ZipfSampler.
  uint64_t NextZipf(uint64_t n, double s);

  /// \brief Index drawn from the discrete distribution given by `weights`.
  ///
  /// Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  /// \brief Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// \brief Forks a child generator with an independent-looking stream.
  ///
  /// Derived deterministically from this generator's next output and
  /// `stream_id`, so the parent/child structure is reproducible.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t s_[4];
};

/// \brief Precomputed Zipf sampler over ranks [0, n).
///
/// Builds the CDF once (O(n)) and samples in O(log n); suitable for the
/// corpus generator's heavy-tailed attribute and entity popularity draws.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double exponent);

  /// \brief Draws a rank in [0, n); rank 0 is most probable.
  uint64_t Sample(Rng* rng) const;

  /// \brief Probability mass of `rank`.
  double Pmf(uint64_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_RNG_H_
