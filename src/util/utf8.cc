#include "util/utf8.h"

namespace wikimatch {
namespace util {

namespace {

// Returns the expected sequence length for a lead byte, or 0 if invalid.
inline int SequenceLength(unsigned char lead) {
  if (lead < 0x80) return 1;
  if ((lead & 0xE0) == 0xC0) return 2;
  if ((lead & 0xF0) == 0xE0) return 3;
  if ((lead & 0xF8) == 0xF0) return 4;
  return 0;
}

inline bool IsContinuation(unsigned char b) { return (b & 0xC0) == 0x80; }

}  // namespace

char32_t DecodeUtf8Char(std::string_view s, size_t* pos) {
  size_t i = *pos;
  unsigned char lead = static_cast<unsigned char>(s[i]);
  int len = SequenceLength(lead);
  if (len == 0 || i + static_cast<size_t>(len) > s.size()) {
    *pos = i + 1;
    return kReplacementChar;
  }
  if (len == 1) {
    *pos = i + 1;
    return lead;
  }
  char32_t cp = lead & (0x7F >> len);
  for (int k = 1; k < len; ++k) {
    unsigned char b = static_cast<unsigned char>(s[i + static_cast<size_t>(k)]);
    if (!IsContinuation(b)) {
      *pos = i + 1;
      return kReplacementChar;
    }
    cp = (cp << 6) | (b & 0x3F);
  }
  // Reject overlong encodings, surrogates, and out-of-range code points.
  static constexpr char32_t kMinForLen[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMinForLen[len] || cp > 0x10FFFF ||
      (cp >= 0xD800 && cp <= 0xDFFF)) {
    *pos = i + 1;
    return kReplacementChar;
  }
  *pos = i + static_cast<size_t>(len);
  return cp;
}

std::vector<char32_t> DecodeUtf8(std::string_view s) {
  std::vector<char32_t> out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) out.push_back(DecodeUtf8Char(s, &pos));
  return out;
}

void AppendUtf8(char32_t cp, std::string* out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) cp = kReplacementChar;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

std::string EncodeUtf8(const std::vector<char32_t>& cps) {
  std::string out;
  out.reserve(cps.size());
  for (char32_t cp : cps) AppendUtf8(cp, &out);
  return out;
}

bool IsValidUtf8(std::string_view s) {
  size_t pos = 0;
  while (pos < s.size()) {
    size_t before = pos;
    char32_t cp = DecodeUtf8Char(s, &pos);
    if (cp == kReplacementChar) {
      // Distinguish a literal U+FFFD (3 bytes consumed) from an error
      // (single-byte resync).
      if (pos - before != 3) return false;
    }
  }
  return true;
}

size_t Utf8Length(std::string_view s) {
  size_t n = 0;
  size_t pos = 0;
  while (pos < s.size()) {
    DecodeUtf8Char(s, &pos);
    ++n;
  }
  return n;
}

}  // namespace util
}  // namespace wikimatch
