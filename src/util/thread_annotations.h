// Clang thread-safety-analysis annotation macros (the capability model of
// -Wthread-safety), in the style of abseil's base/thread_annotations.h.
//
// Under Clang the macros expand to the analysis attributes, so a build with
// -Werror=thread-safety proves lock discipline at compile time: every read
// or write of a WIKIMATCH_GUARDED_BY(mu) field must happen while `mu` is
// held, functions declared WIKIMATCH_REQUIRES(mu) may only be called with
// `mu` held, and so on. Under GCC (which has no equivalent analysis) every
// macro expands to nothing, so annotated code compiles identically there.
//
// Annotate with the project wrappers in util/mutex.h (util::Mutex is the
// annotated capability, util::MutexLock the scoped acquirer); raw
// std::mutex outside util/ is rejected by wikimatch-lint precisely because
// the analysis cannot see through it. Conventions and the sanitizer/lint
// matrix are documented in docs/ANALYSIS.md.

#ifndef WIKIMATCH_UTIL_THREAD_ANNOTATIONS_H_
#define WIKIMATCH_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define WIKIMATCH_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WIKIMATCH_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Declares a class to be a capability (a lock-like resource).
#define WIKIMATCH_CAPABILITY(x) WIKIMATCH_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability at construction and
/// releases it at destruction.
#define WIKIMATCH_SCOPED_CAPABILITY WIKIMATCH_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while the given capability is held.
#define WIKIMATCH_GUARDED_BY(x) WIKIMATCH_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data may only be accessed while the capability is held.
#define WIKIMATCH_PT_GUARDED_BY(x) WIKIMATCH_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability (or capabilities) to be held by the
/// caller, and does not release them.
#define WIKIMATCH_REQUIRES(...) \
  WIKIMATCH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define WIKIMATCH_ACQUIRE(...) \
  WIKIMATCH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller held.
#define WIKIMATCH_RELEASE(...) \
  WIKIMATCH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must be called without the capability held (e.g. to document a
/// non-reentrant lock).
#define WIKIMATCH_EXCLUDES(...) \
  WIKIMATCH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability (annotates
/// accessors that expose a mutex).
#define WIKIMATCH_RETURN_CAPABILITY(x) \
  WIKIMATCH_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: turns the analysis off for one function body. Use only
/// for true false positives (locking through an alias the analysis cannot
/// track) and leave a comment explaining why — docs/ANALYSIS.md.
#define WIKIMATCH_NO_THREAD_SAFETY_ANALYSIS \
  WIKIMATCH_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // WIKIMATCH_UTIL_THREAD_ANNOTATIONS_H_
