// Lightweight leveled logging with stream syntax:
//
//   WIKIMATCH_LOG(INFO) << "parsed " << n << " infoboxes";
//
// The minimum emitted level defaults to WARNING (quiet libraries) and can be
// changed globally, e.g. by benchmark drivers that want progress output.
//
// Thread-safe: each statement is formatted into its own buffer and emitted
// to stderr as one write under a process-wide mutex, so statements from
// concurrent workers (util::ParallelFor) never interleave or tear.

#ifndef WIKIMATCH_UTIL_LOGGING_H_
#define WIKIMATCH_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace wikimatch {
namespace util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the global minimum level that is actually written to stderr.
void SetLogLevel(LogLevel level);

/// \brief Current global minimum level.
LogLevel GetLogLevel();

/// \brief One log statement; writes its buffer to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace util
}  // namespace wikimatch

#define WIKIMATCH_LOG(severity)                                     \
  ::wikimatch::util::LogMessage(                                    \
      ::wikimatch::util::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // WIKIMATCH_UTIL_LOGGING_H_
