#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace wikimatch {
namespace util {

std::vector<std::string> Split(std::string_view s, char sep) {
  return Split(s, std::string_view(&sep, 1));
}

std::vector<std::string> Split(std::string_view s, std::string_view sep) {
  std::vector<std::string> out;
  if (sep.empty()) {
    out.emplace_back(s);
    return out;
  }
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

bool EqualsIgnoreAsciiCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // Leading whitespace is dropped.
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_space = true;
    } else {
      if (in_space && !out.empty()) out.push_back(' ');
      in_space = false;
      out.push_back(c);
    }
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return {};
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

}  // namespace util
}  // namespace wikimatch
