// Minimal UTF-8 codec: decode to code points, encode back, validate.
//
// The corpus contains Portuguese and Vietnamese text, so correct multi-byte
// handling matters for tokenization, normalization, and edit distances.

#ifndef WIKIMATCH_UTIL_UTF8_H_
#define WIKIMATCH_UTIL_UTF8_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wikimatch {
namespace util {

/// \brief Unicode replacement character U+FFFD, emitted for invalid bytes.
inline constexpr char32_t kReplacementChar = 0xFFFD;

/// \brief Decodes one code point starting at `s[*pos]`.
///
/// Advances `*pos` past the consumed bytes (at least one, even on error) and
/// returns the code point, or kReplacementChar for malformed sequences
/// (truncated, overlong, surrogate, or > U+10FFFF).
char32_t DecodeUtf8Char(std::string_view s, size_t* pos);

/// \brief Decodes a whole string; malformed bytes become U+FFFD.
std::vector<char32_t> DecodeUtf8(std::string_view s);

/// \brief Appends the UTF-8 encoding of `cp` to `out`.
///
/// Invalid code points (surrogates, > U+10FFFF) encode as U+FFFD.
void AppendUtf8(char32_t cp, std::string* out);

/// \brief Encodes a code-point sequence as UTF-8.
std::string EncodeUtf8(const std::vector<char32_t>& cps);

/// \brief True iff `s` is well-formed UTF-8.
bool IsValidUtf8(std::string_view s);

/// \brief Number of code points in `s` (malformed bytes count as one each).
size_t Utf8Length(std::string_view s);

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_UTF8_H_
