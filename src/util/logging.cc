#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "util/mutex.h"

namespace wikimatch {
namespace util {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

// Serializes stderr emission: log statements run concurrently inside
// ParallelFor workers (e.g. the pipeline's per-type alignment), and
// unsynchronized fputs calls interleave or tear lines. Each statement is
// formatted into its own buffer first, so the lock is held only for the
// single write.
Mutex& EmitMutex() {
  static Mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    const std::string line = stream_.str();
    MutexLock lock(EmitMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace util
}  // namespace wikimatch
