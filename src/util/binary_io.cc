#include "util/binary_io.h"

#include <cstring>

namespace wikimatch {
namespace util {

void BinaryWriter::PutU32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutU64(s.size());
  buffer_.append(s);
}

Status BinaryReader::Require(size_t n) const {
  if (n > remaining()) {
    return Status::OutOfRange("truncated stream: need " + std::to_string(n) +
                              " bytes at offset " + std::to_string(offset_) +
                              ", have " + std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  WIKIMATCH_RETURN_NOT_OK(Require(1));
  return static_cast<uint8_t>(data_[offset_++]);
}

Result<uint32_t> BinaryReader::ReadU32() {
  WIKIMATCH_RETURN_NOT_OK(Require(4));
  uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[offset_++]))
         << shift;
  }
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  WIKIMATCH_RETURN_NOT_OK(Require(8));
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[offset_++]))
         << shift;
  }
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  WIKIMATCH_RETURN_NOT_OK(Require(size));
  std::string out(data_.substr(offset_, size));
  offset_ += size;
  return out;
}

}  // namespace util
}  // namespace wikimatch
