// Byte-level string helpers shared across the project.
//
// Unicode-aware operations (case folding of non-ASCII, diacritics folding)
// live in text/normalize.h; the helpers here are encoding-agnostic or
// ASCII-only and safe on UTF-8 byte strings.

#ifndef WIKIMATCH_UTIL_STRING_UTIL_H_
#define WIKIMATCH_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace wikimatch {
namespace util {

/// \brief Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Splits `s` on a multi-character separator, keeping empty fields.
std::vector<std::string> Split(std::string_view s, std::string_view sep);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// \brief Lowercases ASCII letters only; other bytes pass through.
std::string AsciiToLower(std::string_view s);

/// \brief True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// \brief ASCII-case-insensitive equality.
bool EqualsIgnoreAsciiCase(std::string_view a, std::string_view b);

/// \brief Collapses runs of ASCII whitespace to single spaces and trims.
std::string CollapseWhitespace(std::string_view s);

/// \brief printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_STRING_UTIL_H_
