// Little-endian binary encoding primitives for the snapshot store.
//
// BinaryWriter appends fixed-width integers, IEEE doubles, and
// length-prefixed strings to a growable byte buffer; BinaryReader decodes
// the same stream and reports truncation or overlong length fields as a
// clean util::Status instead of reading out of bounds. The encoding is
// byte-order independent (values are assembled byte by byte), so snapshots
// written on one machine load on any other.

#ifndef WIKIMATCH_UTIL_BINARY_IO_H_
#define WIKIMATCH_UTIL_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace wikimatch {
namespace util {

/// \brief Appends little-endian primitives to an owned byte buffer.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Doubles travel as their IEEE-754 bit pattern in a u64.
  void PutDouble(double v);
  /// u64 byte length followed by the raw bytes.
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix (section payloads already carry sizes).
  void PutBytes(std::string_view s) { buffer_.append(s); }

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// \brief Decodes a BinaryWriter stream; every read is bounds-checked.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }
  bool AtEnd() const { return offset_ == data_.size(); }

 private:
  /// OutOfRange unless `n` more bytes are available.
  Status Require(size_t n) const;

  std::string_view data_;
  size_t offset_ = 0;
};

}  // namespace util
}  // namespace wikimatch

#endif  // WIKIMATCH_UTIL_BINARY_IO_H_
