// Corpus: the in-memory multilingual article store with the indexes the
// matching pipeline needs — by language, by (language, entity type), by
// title, and the cross-language link graph.

#ifndef WIKIMATCH_WIKI_CORPUS_H_
#define WIKIMATCH_WIKI_CORPUS_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "wiki/article.h"
#include "wiki/dump_reader.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace wiki {

/// \brief In-memory multilingual corpus.
///
/// Usage: AddArticle() / IngestDump() all articles, then Finalize() once.
/// Finalize resolves entity types, symmetrizes cross-language links, and
/// builds the type indexes; lookups before Finalize see only title indexes.
class Corpus {
 public:
  Corpus() = default;

  /// \brief Adds one article. Fails with AlreadyExists for a duplicate
  /// (language, title).
  util::Result<ArticleId> AddArticle(Article article);

  /// \brief Parses every main-namespace, non-redirect page of a dump with
  /// `parser` and adds the results. Returns the number of articles added.
  util::Result<size_t> IngestDump(const std::vector<DumpPage>& pages,
                                  const std::string& language,
                                  const WikitextParser& parser);

  /// \brief Resolves entity types (from infobox templates), symmetrizes the
  /// cross-language link graph (if A links to B, B links to A), and builds
  /// per-type indexes. Idempotent.
  void Finalize();

  size_t size() const { return articles_.size(); }

  const Article& Get(ArticleId id) const { return articles_[id]; }
  Article* GetMutable(ArticleId id) { return &articles_[id]; }

  /// \brief Id of the article with normalized `title` in `language`,
  /// following redirect pages (bounded depth), or kInvalidArticle.
  ArticleId FindByTitle(const std::string& language,
                        const std::string& title) const;

  /// \brief Like FindByTitle but without redirect resolution.
  ArticleId FindExactTitle(const std::string& language,
                           const std::string& title) const;

  /// \brief All article ids in `language` (insertion order).
  const std::vector<ArticleId>& ArticlesInLanguage(
      const std::string& language) const;

  /// \brief Ids of articles in `language` with entity type `type` that have
  /// an infobox. Requires Finalize().
  const std::vector<ArticleId>& ArticlesOfType(const std::string& language,
                                               const std::string& type) const;

  /// \brief Languages present, sorted.
  std::vector<std::string> Languages() const;

  /// \brief Entity types present in `language`, sorted. Requires Finalize().
  std::vector<std::string> TypesIn(const std::string& language) const;

  /// \brief The article in `language` describing the same entity as `id`,
  /// following (symmetrized) cross-language links; kInvalidArticle if none.
  ArticleId CrossLanguageTarget(ArticleId id,
                                const std::string& language) const;

  /// \brief True iff articles `a` and `b` are connected by a cross-language
  /// link (i.e. describe the same entity).
  bool SameEntity(ArticleId a, ArticleId b) const;

  /// \brief Number of articles in `language` that carry an infobox.
  size_t InfoboxCount(const std::string& language) const;

 private:
  std::vector<Article> articles_;
  // (language, normalized title) -> id
  std::map<std::pair<std::string, std::string>, ArticleId> title_index_;
  std::map<std::string, std::vector<ArticleId>> language_index_;
  // (language, type) -> ids with infobox
  std::map<std::pair<std::string, std::string>, std::vector<ArticleId>>
      type_index_;
  bool finalized_ = false;

  static const std::vector<ArticleId> kEmpty;
};

}  // namespace wiki
}  // namespace wikimatch

#endif  // WIKIMATCH_WIKI_CORPUS_H_
