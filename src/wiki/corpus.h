// Corpus: the in-memory multilingual article store with the indexes the
// matching pipeline needs — by language, by (language, entity type), by
// title, and the cross-language link graph.

#ifndef WIKIMATCH_WIKI_CORPUS_H_
#define WIKIMATCH_WIKI_CORPUS_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "wiki/article.h"
#include "wiki/dump_reader.h"
#include "wiki/wikitext_parser.h"

namespace wikimatch {
namespace wiki {

/// \brief What Finalize() changed on already-present records: entity types
/// it derived and cross-language backlinks it induced. These are the only
/// two record mutations Finalize performs, so a caller holding this report
/// (plus its own edits) knows every record that differs from the
/// pre-Finalize state — the basis of incremental change tracking.
struct FinalizeReport {
  /// Articles whose empty entity_type was derived from their infobox.
  std::vector<ArticleId> entity_type_derived;
  struct Backlink {
    ArticleId id;          ///< article that gained the link
    std::string language;  ///< key of the inserted cross_language_links entry
    std::string title;     ///< value of the inserted entry
  };
  /// Backlinks inserted by link symmetrization.
  std::vector<Backlink> backlinks_added;
};

/// \brief In-memory multilingual corpus.
///
/// Usage: AddArticle() / IngestDump() all articles, then Finalize() once.
/// Finalize resolves entity types, symmetrizes cross-language links, and
/// builds the type indexes; lookups before Finalize see only title indexes.
class Corpus {
 public:
  Corpus() = default;

  /// \brief Adds one article. Fails with AlreadyExists for a duplicate
  /// (language, title).
  util::Result<ArticleId> AddArticle(Article article);

  /// \brief Deep copy of `base`, with the article payload copied by up to
  /// `num_threads` workers. Equivalent to the copy constructor; the
  /// parallelism only splits the per-article string copies, so the result
  /// is identical at any thread count.
  static Corpus ParallelCopy(const Corpus& base, size_t num_threads);

  /// \brief Replaces the article at `id` in place. The replacement must
  /// carry the same (language, title) key, so the title and language
  /// indexes stay valid; everything else may change. Un-finalizes the
  /// corpus — call Finalize() when done mutating.
  util::Status ReplaceArticle(ArticleId id, Article article);

  /// \brief Removes the given articles. Ids of later articles shift down
  /// (articles keep their relative order); the title and language indexes
  /// are patched in place. Un-finalizes the corpus — call Finalize() when
  /// done mutating.
  void EraseArticles(std::vector<ArticleId> ids);

  /// \brief Removes the last `n` articles (inverse of `n` AddArticle
  /// calls). Un-finalizes the corpus.
  void PopArticles(size_t n);

  /// \brief Re-inserts articles previously removed by EraseArticles, at the
  /// ids they originally occupied; later articles shift back up. The exact
  /// inverse of EraseArticles(ids) when given the same ids with the
  /// removed records. Un-finalizes the corpus.
  void RestoreArticles(std::vector<std::pair<ArticleId, Article>> originals);

  /// \brief Parses every main-namespace, non-redirect page of a dump with
  /// `parser` and adds the results. Returns the number of articles added.
  util::Result<size_t> IngestDump(const std::vector<DumpPage>& pages,
                                  const std::string& language,
                                  const WikitextParser& parser);

  /// \brief Resolves entity types (from infobox templates), symmetrizes the
  /// cross-language link graph (if A links to B, B links to A), and builds
  /// per-type indexes. Idempotent. When `report` is non-null, every record
  /// mutation performed is appended to it (nothing is recorded when the
  /// corpus was already finalized).
  void Finalize(FinalizeReport* report = nullptr);

  size_t size() const { return articles_.size(); }

  const Article& Get(ArticleId id) const { return articles_[id]; }
  Article* GetMutable(ArticleId id) { return &articles_[id]; }

  /// \brief Id of the article with normalized `title` in `language`,
  /// following redirect pages (bounded depth), or kInvalidArticle.
  ArticleId FindByTitle(const std::string& language,
                        const std::string& title) const;

  /// \brief Like FindByTitle but without redirect resolution.
  ArticleId FindExactTitle(const std::string& language,
                           const std::string& title) const;

  /// \brief All article ids in `language` (insertion order).
  const std::vector<ArticleId>& ArticlesInLanguage(
      const std::string& language) const;

  /// \brief Ids of articles in `language` with entity type `type` that have
  /// an infobox. Requires Finalize().
  const std::vector<ArticleId>& ArticlesOfType(const std::string& language,
                                               const std::string& type) const;

  /// \brief Languages present, sorted.
  std::vector<std::string> Languages() const;

  /// \brief Entity types present in `language`, sorted. Requires Finalize().
  std::vector<std::string> TypesIn(const std::string& language) const;

  /// \brief The article in `language` describing the same entity as `id`,
  /// following (symmetrized) cross-language links; kInvalidArticle if none.
  ArticleId CrossLanguageTarget(ArticleId id,
                                const std::string& language) const;

  /// \brief True iff articles `a` and `b` are connected by a cross-language
  /// link (i.e. describe the same entity).
  bool SameEntity(ArticleId a, ArticleId b) const;

  /// \brief Number of articles in `language` that carry an infobox.
  size_t InfoboxCount(const std::string& language) const;

 private:
  std::vector<Article> articles_;
  // (language, normalized title) -> id
  std::map<std::pair<std::string, std::string>, ArticleId> title_index_;
  std::map<std::string, std::vector<ArticleId>> language_index_;
  // (language, type) -> ids with infobox
  std::map<std::pair<std::string, std::string>, std::vector<ArticleId>>
      type_index_;
  bool finalized_ = false;

  static const std::vector<ArticleId> kEmpty;
};

}  // namespace wiki
}  // namespace wikimatch

#endif  // WIKIMATCH_WIKI_CORPUS_H_
