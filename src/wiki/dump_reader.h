// MediaWiki XML dump reader.
//
// Parses the subset of the pages-articles dump schema needed to extract
// (title, wikitext) pairs: <mediawiki><page><title/><ns/><redirect/>
// <revision><text/></revision></page>... A hand-rolled streaming scanner —
// no XML library dependency — with entity unescaping.

#ifndef WIKIMATCH_WIKI_DUMP_READER_H_
#define WIKIMATCH_WIKI_DUMP_READER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace wikimatch {
namespace wiki {

/// \brief One <page> element of a dump.
struct DumpPage {
  std::string title;
  /// Namespace number; 0 is the main/article namespace.
  int ns = 0;
  /// True when the page is a redirect (has a <redirect/> element).
  bool is_redirect = false;
  /// Wikitext of the latest revision.
  std::string text;
};

/// \brief Unescapes the five predefined XML entities plus numeric
/// references (&#...; and &#x...;).
std::string XmlUnescape(std::string_view s);

/// \brief Escapes text for embedding in an XML element.
std::string XmlEscape(std::string_view s);

/// \brief Parses a dump from memory. Returns ParseError on structural
/// problems (unterminated elements).
util::Result<std::vector<DumpPage>> ParseDump(std::string_view xml);

/// \brief Reads and parses a dump file.
util::Result<std::vector<DumpPage>> ReadDumpFile(const std::string& path);

/// \brief Serializes pages into dump XML (used by the synthetic generator
/// to exercise the full ingest path, and by tests for round-tripping).
std::string WriteDump(const std::vector<DumpPage>& pages,
                      std::string_view language);

}  // namespace wiki
}  // namespace wikimatch

#endif  // WIKIMATCH_WIKI_DUMP_READER_H_
