#include "wiki/dump_reader.h"

#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace wikimatch {
namespace wiki {

std::string XmlUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      ++i;
      continue;
    }
    size_t semi = s.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      out.push_back(s[i]);
      ++i;
      continue;
    }
    std::string_view ent = s.substr(i + 1, semi - i - 1);
    if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      long cp = 0;
      if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
        cp = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
      } else {
        cp = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
      }
      if (cp > 0 && cp <= 0x10FFFF) {
        // Inline UTF-8 encoding of the code point.
        char32_t c = static_cast<char32_t>(cp);
        if (c < 0x80) {
          out.push_back(static_cast<char>(c));
        } else if (c < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (c >> 6)));
          out.push_back(static_cast<char>(0x80 | (c & 0x3F)));
        } else if (c < 0x10000) {
          out.push_back(static_cast<char>(0xE0 | (c >> 12)));
          out.push_back(static_cast<char>(0x80 | ((c >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (c & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xF0 | (c >> 18)));
          out.push_back(static_cast<char>(0x80 | ((c >> 12) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | ((c >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (c & 0x3F)));
        }
      }
    } else {
      // Unknown entity: keep verbatim.
      out.append(s.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

// Extracts the text content of the first <tag ...>...</tag> in `s` starting
// at `from`. Returns false when the open tag is absent. Sets *next to just
// past the close tag.
bool ExtractElement(std::string_view s, std::string_view tag, size_t from,
                    size_t limit, std::string* content, size_t* next) {
  std::string open1 = "<" + std::string(tag) + ">";
  std::string open2 = "<" + std::string(tag) + " ";
  std::string close = "</" + std::string(tag) + ">";
  size_t open_pos = s.find(open1, from);
  size_t open_len = open1.size();
  size_t alt = s.find(open2, from);
  if (alt != std::string_view::npos &&
      (open_pos == std::string_view::npos || alt < open_pos)) {
    // Attribute form: skip to the closing '>'.
    size_t gt = s.find('>', alt);
    if (gt == std::string_view::npos) return false;
    open_pos = alt;
    open_len = gt - alt + 1;
  }
  if (open_pos == std::string_view::npos || open_pos >= limit) return false;
  size_t body_start = open_pos + open_len;
  size_t close_pos = s.find(close, body_start);
  if (close_pos == std::string_view::npos || close_pos > limit) return false;
  *content = XmlUnescape(s.substr(body_start, close_pos - body_start));
  if (next != nullptr) *next = close_pos + close.size();
  return true;
}

}  // namespace

util::Result<std::vector<DumpPage>> ParseDump(std::string_view xml) {
  std::vector<DumpPage> pages;
  size_t pos = 0;
  while (true) {
    size_t page_open = xml.find("<page>", pos);
    if (page_open == std::string_view::npos) break;
    size_t page_close = xml.find("</page>", page_open);
    if (page_close == std::string_view::npos) {
      return util::Status::ParseError("unterminated <page> element");
    }
    DumpPage page;
    std::string content;
    if (!ExtractElement(xml, "title", page_open, page_close, &content,
                        nullptr)) {
      return util::Status::ParseError("<page> without <title>");
    }
    page.title = content;
    if (ExtractElement(xml, "ns", page_open, page_close, &content, nullptr)) {
      page.ns = std::atoi(content.c_str());
    }
    page.is_redirect =
        xml.substr(page_open, page_close - page_open).find("<redirect") !=
        std::string_view::npos;
    if (ExtractElement(xml, "text", page_open, page_close, &content,
                       nullptr)) {
      page.text = content;
    }
    pages.push_back(std::move(page));
    pos = page_close + 7;
  }
  return pages;
}

util::Result<std::vector<DumpPage>> ReadDumpFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string buf(static_cast<size_t>(size), '\0');
  size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) {
    return util::Status::IoError("short read on " + path);
  }
  return ParseDump(buf);
}

std::string WriteDump(const std::vector<DumpPage>& pages,
                      std::string_view language) {
  std::string out;
  out += "<mediawiki xml:lang=\"" + std::string(language) + "\">\n";
  for (const auto& page : pages) {
    out += "  <page>\n";
    out += "    <title>" + XmlEscape(page.title) + "</title>\n";
    out += "    <ns>" + std::to_string(page.ns) + "</ns>\n";
    if (page.is_redirect) out += "    <redirect/>\n";
    out += "    <revision>\n      <text xml:space=\"preserve\">" +
           XmlEscape(page.text) + "</text>\n    </revision>\n";
    out += "  </page>\n";
  }
  out += "</mediawiki>\n";
  return out;
}

}  // namespace wiki
}  // namespace wikimatch
