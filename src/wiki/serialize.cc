#include "wiki/serialize.h"

namespace wikimatch {
namespace wiki {
namespace {

void EncodeAttributeValue(const AttributeValue& value,
                          util::BinaryWriter* w) {
  w->PutString(value.raw);
  w->PutString(value.text);
  w->PutU64(value.links.size());
  for (const auto& link : value.links) {
    w->PutString(link.target);
    w->PutString(link.anchor);
  }
}

util::Result<AttributeValue> DecodeAttributeValue(util::BinaryReader* r) {
  AttributeValue value;
  WIKIMATCH_ASSIGN_OR_RETURN(value.raw, r->ReadString());
  WIKIMATCH_ASSIGN_OR_RETURN(value.text, r->ReadString());
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t num_links, r->ReadU64());
  value.links.reserve(num_links);
  for (uint64_t i = 0; i < num_links; ++i) {
    Hyperlink link;
    WIKIMATCH_ASSIGN_OR_RETURN(link.target, r->ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(link.anchor, r->ReadString());
    value.links.push_back(std::move(link));
  }
  return value;
}

}  // namespace

void EncodeArticle(const Article& article, util::BinaryWriter* w) {
  w->PutString(article.title);
  w->PutString(article.language);
  w->PutString(article.entity_type);
  w->PutString(article.redirect_to);
  w->PutU8(article.infobox.has_value() ? 1 : 0);
  if (article.infobox.has_value()) {
    const Infobox& box = *article.infobox;
    w->PutString(box.template_type);
    w->PutString(box.template_name);
    w->PutU64(box.attributes.size());
    for (const auto& [name, value] : box.attributes) {
      w->PutString(name);
      EncodeAttributeValue(value, w);
    }
  }
  w->PutU64(article.categories.size());
  for (const auto& category : article.categories) w->PutString(category);
  w->PutU64(article.cross_language_links.size());
  for (const auto& [lang, title] : article.cross_language_links) {
    w->PutString(lang);
    w->PutString(title);
  }
}

util::Result<Article> DecodeArticle(util::BinaryReader* r) {
  Article article;
  WIKIMATCH_ASSIGN_OR_RETURN(article.title, r->ReadString());
  WIKIMATCH_ASSIGN_OR_RETURN(article.language, r->ReadString());
  WIKIMATCH_ASSIGN_OR_RETURN(article.entity_type, r->ReadString());
  WIKIMATCH_ASSIGN_OR_RETURN(article.redirect_to, r->ReadString());
  WIKIMATCH_ASSIGN_OR_RETURN(uint8_t has_infobox, r->ReadU8());
  if (has_infobox != 0) {
    Infobox box;
    WIKIMATCH_ASSIGN_OR_RETURN(box.template_type, r->ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(box.template_name, r->ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(uint64_t num_attrs, r->ReadU64());
    box.attributes.reserve(num_attrs);
    for (uint64_t i = 0; i < num_attrs; ++i) {
      WIKIMATCH_ASSIGN_OR_RETURN(std::string name, r->ReadString());
      auto value = DecodeAttributeValue(r);
      if (!value.ok()) return value.status();
      box.attributes.emplace_back(std::move(name),
                                  std::move(value).ValueOrDie());
    }
    article.infobox = std::move(box);
  }
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t num_categories, r->ReadU64());
  article.categories.reserve(num_categories);
  for (uint64_t i = 0; i < num_categories; ++i) {
    WIKIMATCH_ASSIGN_OR_RETURN(std::string category, r->ReadString());
    article.categories.push_back(std::move(category));
  }
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t num_links, r->ReadU64());
  for (uint64_t i = 0; i < num_links; ++i) {
    WIKIMATCH_ASSIGN_OR_RETURN(std::string lang, r->ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(std::string title, r->ReadString());
    article.cross_language_links.emplace(std::move(lang), std::move(title));
  }
  return article;
}

void EncodeCorpus(const Corpus& corpus, util::BinaryWriter* w) {
  w->PutU64(corpus.size());
  for (ArticleId id = 0; id < corpus.size(); ++id) {
    EncodeArticle(corpus.Get(id), w);
  }
}

util::Result<Corpus> DecodeCorpus(util::BinaryReader* r) {
  WIKIMATCH_ASSIGN_OR_RETURN(uint64_t num_articles, r->ReadU64());
  Corpus corpus;
  for (uint64_t i = 0; i < num_articles; ++i) {
    auto article = DecodeArticle(r);
    if (!article.ok()) return article.status();
    auto id = corpus.AddArticle(std::move(article).ValueOrDie());
    if (!id.ok()) {
      return id.status().WithContext("decoding corpus article " +
                                     std::to_string(i));
    }
  }
  corpus.Finalize();
  return corpus;
}

}  // namespace wiki
}  // namespace wikimatch
